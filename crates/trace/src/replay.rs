//! Record-once / replay-many trace engine.
//!
//! The paper's methodology simulates the *identical* uop stream many
//! times: three memory models per decomposition cell (§3.1), six
//! experiments per benchmark (Figure 3), plus the trace-driven cache and
//! MTC passes. Regenerating a synthetic workload for every run wastes
//! most of a figure's wall clock on redundant generation work. This
//! module captures a workload's stream once into a compact
//! structure-of-arrays arena ([`RecordedTrace`]) and replays it as a
//! [`Workload`] with O(1) per-uop dispatch, and provides a process-wide
//! [`TraceCache`] so one recording is shared across the three
//! decomposition runs, across all experiments of a benchmark, and across
//! runner threads.
//!
//! Replay is *exact*: the recorded stream is bit-for-bit the stream the
//! generator emitted, so simulation results are byte-identical whether a
//! trace was replayed or regenerated — which is what keeps the parallel
//! run engine's determinism and checkpoint/resume guarantees intact (see
//! DESIGN.md §9).
//!
//! # Example
//!
//! ```
//! use membw_trace::replay::RecordedTrace;
//! use membw_trace::{pattern::Strided, Workload};
//!
//! let live = Strided::reads(0, 4, 256).repeat(2);
//! let recorded = RecordedTrace::record(&live);
//! assert_eq!(recorded.collect_uops(), live.collect_uops());
//! assert_eq!(recorded.len(), 512);
//! ```

use crate::record::{AccessKind, MemRef};
use crate::sink::TraceSink;
use crate::uop::{BranchInfo, OpClass, Reg, Uop};
use crate::Workload;
use membw_runner::{ambient_cancel_token, ambient_governor, CancelToken};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

// Packed per-uop metadata layout (one u32 per uop):
//   bits 0-2   operation class (8 variants)
//   bit  3     dest register present
//   bit  4     src0 register present
//   bit  5     src1 register present
//   bit  6     branch info present
//   bit  7     branch taken
//   bits 8-15  dest register
//   bits 16-23 src0 register
//   bits 24-31 src1 register
const CLASS_MASK: u32 = 0b111;
const HAS_DEST: u32 = 1 << 3;
const HAS_SRC0: u32 = 1 << 4;
const HAS_SRC1: u32 = 1 << 5;
const HAS_BRANCH: u32 = 1 << 6;
const BRANCH_TAKEN: u32 = 1 << 7;

/// Fold `bytes` into a running 64-bit FNV-1a hash.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Content checksum of a trace arena: FNV-1a over the name and every
/// side array, each prefixed by its length so boundary shifts between
/// arrays cannot cancel out.
fn arena_checksum(
    name: &str,
    meta: &[u32],
    mem_addr: &[u64],
    mem_size: &[u16],
    branch_pc: &[u64],
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fnv1a(&mut h, &(name.len() as u64).to_le_bytes());
    fnv1a(&mut h, name.as_bytes());
    fnv1a(&mut h, &(meta.len() as u64).to_le_bytes());
    for v in meta {
        fnv1a(&mut h, &v.to_le_bytes());
    }
    fnv1a(&mut h, &(mem_addr.len() as u64).to_le_bytes());
    for v in mem_addr {
        fnv1a(&mut h, &v.to_le_bytes());
    }
    fnv1a(&mut h, &(mem_size.len() as u64).to_le_bytes());
    for v in mem_size {
        fnv1a(&mut h, &v.to_le_bytes());
    }
    fnv1a(&mut h, &(branch_pc.len() as u64).to_le_bytes());
    for v in branch_pc {
        fnv1a(&mut h, &v.to_le_bytes());
    }
    h
}

fn class_code(c: OpClass) -> u32 {
    match c {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::FpAdd => 2,
        OpClass::FpMul => 3,
        OpClass::FpDiv => 4,
        OpClass::Load => 5,
        OpClass::Store => 6,
        OpClass::Branch => 7,
    }
}

fn code_class(code: u32) -> OpClass {
    match code {
        0 => OpClass::IntAlu,
        1 => OpClass::IntMul,
        2 => OpClass::FpAdd,
        3 => OpClass::FpMul,
        4 => OpClass::FpDiv,
        5 => OpClass::Load,
        6 => OpClass::Store,
        _ => OpClass::Branch,
    }
}

/// A workload's uop stream, captured once into a structure-of-arrays
/// arena: one packed `u32` per uop plus side arrays for memory
/// references and branch PCs, indexed by sequential cursors during
/// replay. No per-record heap boxes; the whole trace is four flat
/// vectors.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    name: String,
    /// One packed word per uop (see the layout constants above).
    meta: Vec<u32>,
    /// Address of the i-th memory uop (loads and stores, in order).
    mem_addr: Vec<u64>,
    /// Size of the i-th memory uop.
    mem_size: Vec<u16>,
    /// PC of the i-th branch-info-carrying uop.
    branch_pc: Vec<u64>,
    /// FNV-1a content checksum sealed at recording time; [`verify`]
    /// recomputes it to detect in-memory corruption of a cached arena
    /// before it is replayed into results.
    ///
    /// [`verify`]: RecordedTrace::verify
    checksum: u64,
}

impl RecordedTrace {
    /// Capture `workload`'s full stream.
    ///
    /// Well-formedness (memory uops carry a `mem` whose kind matches
    /// the class, as the [`Uop`] constructors guarantee) is checked in
    /// debug builds.
    pub fn record<W: Workload + ?Sized>(workload: &W) -> Self {
        let mut sink = RecordingSink::new(workload.name());
        workload.generate(&mut sink);
        sink.finish()
    }

    /// Number of uops recorded.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Number of data-memory references recorded.
    pub fn num_mem_refs(&self) -> usize {
        self.mem_addr.len()
    }

    /// Approximate resident size of the arena in bytes (used for the
    /// [`TraceCache`] budget).
    pub fn arena_bytes(&self) -> u64 {
        (self.meta.capacity() * size_of::<u32>()
            + self.mem_addr.capacity() * size_of::<u64>()
            + self.mem_size.capacity() * size_of::<u16>()
            + self.branch_pc.capacity() * size_of::<u64>()
            + self.name.capacity()
            + size_of::<Self>()) as u64
    }

    /// The content checksum sealed when recording finished.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recompute the arena checksum and compare it against the sealed
    /// one. `false` means the arena was altered after recording and
    /// must not be replayed.
    pub fn verify(&self) -> bool {
        arena_checksum(
            &self.name,
            &self.meta,
            &self.mem_addr,
            &self.mem_size,
            &self.branch_pc,
        ) == self.checksum
    }

    /// Flip one bit of the arena's payload, leaving the sealed checksum
    /// untouched — a corruption injector for integrity tests and the
    /// mutation-fuzz harness. `bit` is reduced modulo the payload size,
    /// so any `u64` seed indexes a valid bit. No-op on an empty trace.
    #[doc(hidden)]
    pub fn corrupt_bit(&mut self, bit: u64) {
        let meta_bits = self.meta.len() as u64 * 32;
        let addr_bits = self.mem_addr.len() as u64 * 64;
        let size_bits = self.mem_size.len() as u64 * 16;
        let pc_bits = self.branch_pc.len() as u64 * 64;
        let total = meta_bits + addr_bits + size_bits + pc_bits;
        if total == 0 {
            return;
        }
        let mut bit = bit % total;
        if bit < meta_bits {
            self.meta[(bit / 32) as usize] ^= 1 << (bit % 32);
            return;
        }
        bit -= meta_bits;
        if bit < addr_bits {
            self.mem_addr[(bit / 64) as usize] ^= 1 << (bit % 64);
            return;
        }
        bit -= addr_bits;
        if bit < size_bits {
            self.mem_size[(bit / 16) as usize] ^= 1 << (bit % 16);
            return;
        }
        bit -= size_bits;
        self.branch_pc[(bit / 64) as usize] ^= 1 << (bit % 64);
    }

    #[inline]
    fn unpack(&self, i: usize, mem_cursor: &mut usize, branch_cursor: &mut usize) -> Uop {
        let m = self.meta[i];
        let class = code_class(m & CLASS_MASK);
        let dest: Option<Reg> = (m & HAS_DEST != 0).then_some((m >> 8) as Reg);
        let src0: Option<Reg> = (m & HAS_SRC0 != 0).then_some((m >> 16) as Reg);
        let src1: Option<Reg> = (m & HAS_SRC1 != 0).then_some((m >> 24) as Reg);
        let mem = if class.is_mem() {
            let k = *mem_cursor;
            *mem_cursor += 1;
            Some(MemRef {
                addr: self.mem_addr[k],
                size: self.mem_size[k],
                kind: if class == OpClass::Load {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                },
            })
        } else {
            None
        };
        let branch = if m & HAS_BRANCH != 0 {
            let k = *branch_cursor;
            *branch_cursor += 1;
            Some(BranchInfo {
                pc: self.branch_pc[k],
                taken: m & BRANCH_TAKEN != 0,
            })
        } else {
            None
        };
        Uop {
            class,
            dest,
            srcs: [src0, src1],
            mem,
            branch,
        }
    }
}

impl Workload for RecordedTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        // Poll the ambient cancel token so replay into sinks that do
        // not poll themselves still stops promptly under a drain.
        let cancel = ambient_cancel_token();
        let mut mem_cursor = 0;
        let mut branch_cursor = 0;
        for i in 0..self.meta.len() {
            if i.is_multiple_of(8192) {
                cancel.check();
            }
            sink.uop(self.unpack(i, &mut mem_cursor, &mut branch_cursor));
        }
        debug_assert_eq!(mem_cursor, self.mem_addr.len());
        debug_assert_eq!(branch_cursor, self.branch_pc.len());
    }

    fn for_each_mem_ref(&self, f: &mut dyn FnMut(MemRef)) {
        // Skip the full Uop reconstruction: only the class bits and the
        // memory side arrays matter here.
        let mut mem_cursor = 0;
        for &m in &self.meta {
            let class = code_class(m & CLASS_MASK);
            if class.is_mem() {
                let k = mem_cursor;
                mem_cursor += 1;
                f(MemRef {
                    addr: self.mem_addr[k],
                    size: self.mem_size[k],
                    kind: if class == OpClass::Load {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    },
                });
            }
        }
    }
}

/// A [`TraceSink`] that packs the incoming stream into a
/// [`RecordedTrace`] arena.
#[derive(Debug, Clone)]
pub struct RecordingSink {
    trace: RecordedTrace,
    /// Ambient cancel token, captured at construction and polled every
    /// 8192 recorded uops: a drain or deadline stops a long recording
    /// within milliseconds (the partial arena unwinds away unused).
    cancel: CancelToken,
}

impl RecordingSink {
    /// An empty recorder producing a trace named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            trace: RecordedTrace {
                name: name.into(),
                meta: Vec::new(),
                mem_addr: Vec::new(),
                mem_size: Vec::new(),
                branch_pc: Vec::new(),
                checksum: 0,
            },
            cancel: ambient_cancel_token(),
        }
    }

    /// Finish recording, returning the packed trace with capacity
    /// trimmed to length and its content checksum sealed.
    pub fn finish(mut self) -> RecordedTrace {
        self.trace.meta.shrink_to_fit();
        self.trace.mem_addr.shrink_to_fit();
        self.trace.mem_size.shrink_to_fit();
        self.trace.branch_pc.shrink_to_fit();
        self.trace.checksum = arena_checksum(
            &self.trace.name,
            &self.trace.meta,
            &self.trace.mem_addr,
            &self.trace.mem_size,
            &self.trace.branch_pc,
        );
        self.trace
    }
}

impl TraceSink for RecordingSink {
    fn uop(&mut self, uop: Uop) {
        if self.trace.meta.len().is_multiple_of(8192) {
            self.cancel.check();
        }
        debug_assert_eq!(
            uop.mem.is_some(),
            uop.class.is_mem(),
            "memory uops (and only memory uops) carry a MemRef"
        );
        let mut m = class_code(uop.class);
        if let Some(d) = uop.dest {
            m |= HAS_DEST | (u32::from(d) << 8);
        }
        if let Some(s) = uop.srcs[0] {
            m |= HAS_SRC0 | (u32::from(s) << 16);
        }
        if let Some(s) = uop.srcs[1] {
            m |= HAS_SRC1 | (u32::from(s) << 24);
        }
        if let Some(r) = uop.mem {
            debug_assert_eq!(
                r.kind.is_read(),
                uop.class == OpClass::Load,
                "MemRef kind must match the uop class"
            );
            self.trace.mem_addr.push(r.addr);
            self.trace.mem_size.push(r.size);
        }
        if let Some(b) = uop.branch {
            m |= HAS_BRANCH;
            if b.taken {
                m |= BRANCH_TAKEN;
            }
            self.trace.branch_pc.push(b.pc);
        }
        self.trace.meta.push(m);
    }
}

/// Environment knob naming the [`TraceCache`] budget in MiB.
///
/// Unset → a 512 MiB default; `0` → caching disabled (every caller
/// falls back to direct regeneration, which produces byte-identical
/// results).
pub const TRACE_CACHE_MB_ENV: &str = "MEMBW_TRACE_CACHE_MB";

const DEFAULT_BUDGET_BYTES: u64 = 512 * 1024 * 1024;

/// Counters describing a [`TraceCache`]'s behaviour so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Lookups that found a finished recording.
    pub hits: u64,
    /// Lookups that had to record (or wait for a concurrent recording).
    pub misses: u64,
    /// Recordings dropped to stay within the byte budget.
    pub evictions: u64,
    /// Bytes currently accounted to resident recordings.
    pub resident_bytes: u64,
    /// Cache hits whose arena failed checksum verification and were
    /// discarded and re-recorded instead of being served.
    pub verify_failures: u64,
}

struct CacheEntry {
    /// The recording slot. Holding this lock while recording serializes
    /// same-key callers (the second caller waits and reuses the first's
    /// work) without blocking callers on other keys.
    slot: Arc<Mutex<Option<Arc<RecordedTrace>>>>,
    bytes: u64,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<(String, String), CacheEntry>,
    tick: u64,
    stats: TraceCacheStats,
}

/// A process-wide cache of [`RecordedTrace`]s keyed by
/// `(benchmark, variant)` — variant is typically the scale — with an
/// explicit byte budget and least-recently-used eviction.
///
/// `Arc<RecordedTrace>` handles stay valid after eviction (eviction
/// drops the cache's reference, not the trace), so callers never
/// observe a trace disappearing mid-run.
pub struct TraceCache {
    budget_bytes: u64,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCache")
            .field("budget_bytes", &self.budget_bytes)
            .finish_non_exhaustive()
    }
}

impl TraceCache {
    /// A cache with an explicit byte budget. A budget of 0 disables
    /// caching: [`TraceCache::get_or_record`] always returns `None`.
    pub fn with_budget(budget_bytes: u64) -> Self {
        Self {
            budget_bytes,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                stats: TraceCacheStats::default(),
            }),
        }
    }

    /// The shared process-wide cache, budgeted from
    /// [`TRACE_CACHE_MB_ENV`] (read once, at first use).
    pub fn global() -> &'static TraceCache {
        static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
        GLOBAL.get_or_init(|| TraceCache::with_budget(budget_from_env()))
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// `true` if the budget disables caching entirely.
    pub fn is_disabled(&self) -> bool {
        self.budget_bytes == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TraceCacheStats {
        self.inner.lock().expect("trace cache poisoned").stats
    }

    /// Fetch the recording for `(name, variant)`, recording `workload`
    /// on first use. Returns `None` when caching is disabled — the
    /// caller should then use the workload directly.
    ///
    /// Concurrent callers with the same key serialize on the recording
    /// (the loser reuses the winner's arena); callers with different
    /// keys proceed in parallel.
    pub fn get_or_record<W: Workload + ?Sized>(
        &self,
        name: &str,
        variant: &str,
        workload: &W,
    ) -> Option<Arc<RecordedTrace>> {
        if self.is_disabled() {
            return None;
        }
        // Memory-governor consultation: under the Streaming level the
        // cache steps aside entirely (callers record-stream, which is
        // byte-identical); under CacheShrunk the effective byte cap is
        // clamped below the configured budget.
        let gov = ambient_governor();
        if gov.streaming() {
            return None;
        }
        let effective_budget = gov.cache_cap(self.budget_bytes);
        let slot = {
            let mut inner = self.inner.lock().expect("trace cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            let entry = inner
                .map
                .entry((name.to_string(), variant.to_string()))
                .or_insert_with(|| CacheEntry {
                    slot: Arc::new(Mutex::new(None)),
                    bytes: 0,
                    last_used: tick,
                });
            entry.last_used = tick;
            Arc::clone(&entry.slot)
        };

        // Poison-tolerant: a cancellation can unwind a recording while
        // it holds this lock. The slot is only ever written *after* a
        // recording completes, so a poisoned slot still holds `None`
        // (or a finished arena) — safe to reuse.
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        let mut verify_failed = false;
        if let Some(trace) = guard.as_ref() {
            if trace.verify() {
                let trace = Arc::clone(trace);
                drop(guard);
                let mut inner = self.inner.lock().expect("trace cache poisoned");
                inner.stats.hits += 1;
                // Honour a cap the governor shrank since the arena
                // landed: evict on the hit path too, and keep the
                // governor's residency view current.
                self.evict_to_effective_budget(&mut inner, effective_budget, &gov);
                gov.report_cache_resident(inner.stats.resident_bytes);
                return Some(trace);
            }
            // The cached arena no longer matches its sealed checksum
            // (in-memory corruption): never replay it. Drop the bad
            // recording and fall through to record afresh.
            verify_failed = true;
            *guard = None;
            eprintln!(
                "warning: cached trace {name}/{variant} failed checksum verification; \
                 discarded and re-recording"
            );
        }

        // Record while holding only this key's slot lock.
        let trace = Arc::new(RecordedTrace::record(workload));
        *guard = Some(Arc::clone(&trace));
        drop(guard);

        let bytes = trace.arena_bytes();
        gov.observe_arena_bytes(bytes);
        let mut inner = self.inner.lock().expect("trace cache poisoned");
        inner.stats.misses += 1;
        if verify_failed {
            inner.stats.verify_failures += 1;
        }
        let key = (name.to_string(), variant.to_string());
        if let Some(entry) = inner.map.get_mut(&key) {
            // A racing eviction may have already charged (or dropped)
            // this entry; only charge bytes not yet accounted. A
            // re-record after a verify failure may shrink the entry.
            let old = entry.bytes;
            entry.bytes = bytes;
            if bytes >= old {
                inner.stats.resident_bytes += bytes - old;
            } else {
                inner.stats.resident_bytes -= old - bytes;
            }
        }
        self.evict_to_effective_budget(&mut inner, effective_budget, &gov);
        gov.report_cache_resident(inner.stats.resident_bytes);
        Some(trace)
    }

    /// Flip one payload bit of the cached arena for `(name, variant)`,
    /// in place, without touching its sealed checksum. Returns `true`
    /// if a finished recording was present to corrupt. Corruption
    /// injector for integrity tests and the mutation-fuzz harness; the
    /// next lookup must detect the damage and re-record.
    #[doc(hidden)]
    pub fn corrupt_cached_trace(&self, name: &str, variant: &str, bit: u64) -> bool {
        let slot = {
            let inner = self.inner.lock().expect("trace cache poisoned");
            let Some(entry) = inner.map.get(&(name.to_string(), variant.to_string())) else {
                return false;
            };
            Arc::clone(&entry.slot)
        };
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(trace) = guard.as_mut() else {
            return false;
        };
        if trace.is_empty() {
            return false;
        }
        // Clone-on-write: outstanding handles keep the healthy arena;
        // the *cached* copy is the one damaged.
        Arc::make_mut(trace).corrupt_bit(bit);
        true
    }

    /// Drop least-recently-used finished recordings until resident
    /// bytes fit `budget`. Entries still recording (bytes == 0, slot
    /// locked elsewhere) carry no weight and are never worth evicting.
    fn evict_to_budget(&self, inner: &mut CacheInner, budget: u64) {
        while inner.stats.resident_bytes > budget {
            let victim = inner
                .map
                .iter()
                .filter(|(_, e)| e.bytes > 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(key) = victim else { break };
            let entry = inner.map.remove(&key).expect("victim exists");
            inner.stats.resident_bytes -= entry.bytes;
            inner.stats.evictions += 1;
        }
    }

    /// [`evict_to_budget`](Self::evict_to_budget) against the
    /// governor-clamped cap, crediting evictions the clamp forced
    /// (beyond what the configured budget alone would have evicted) to
    /// the governor's accounting.
    fn evict_to_effective_budget(
        &self,
        inner: &mut CacheInner,
        effective_budget: u64,
        gov: &membw_runner::Governor,
    ) {
        let before = inner.stats.evictions;
        self.evict_to_budget(inner, self.budget_bytes);
        let own = inner.stats.evictions - before;
        if effective_budget < self.budget_bytes {
            self.evict_to_budget(inner, effective_budget);
            gov.note_forced_evictions(inner.stats.evictions - before - own);
        }
    }
}

/// Parse a [`TRACE_CACHE_MB_ENV`] value into a byte budget.
///
/// # Errors
///
/// A non-numeric value is an error naming the variable and the bad
/// value — drivers (`repro`) validate the environment up front with
/// this and refuse to start, rather than silently running with a
/// default the user didn't ask for.
pub fn parse_cache_budget_mb(value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map(|mb| mb.saturating_mul(1024 * 1024))
        .map_err(|_| {
            format!(
                "invalid {TRACE_CACHE_MB_ENV}={value:?}: expected a whole number of MiB \
                 (0 disables the trace cache)"
            )
        })
}

fn budget_from_env() -> u64 {
    match std::env::var(TRACE_CACHE_MB_ENV) {
        Ok(v) => parse_cache_budget_mb(&v).unwrap_or_else(|e| {
            // Library-level fallback for embedders that skipped up-front
            // validation; `repro` rejects the value before this runs.
            eprintln!("warning: {e}; using the default budget");
            DEFAULT_BUDGET_BYTES
        }),
        Err(_) => DEFAULT_BUDGET_BYTES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Strided;
    use crate::sink::CollectSink;

    fn mixed_workload() -> crate::VecWorkload {
        crate::VecWorkload::new(
            "mixed",
            vec![
                MemRef::read(0x1000, 4),
                MemRef::write(0x2000, 8),
                MemRef::read(0x3000, 2),
            ],
        )
    }

    fn full_uop_workload() -> Vec<Uop> {
        vec![
            Uop::compute(OpClass::IntAlu, Some(1), [Some(2), None]),
            Uop::compute(OpClass::FpDiv, Some(63), [Some(62), Some(61)]),
            Uop::load(MemRef::read(0xdead_beef_0000, 8), Some(3), [Some(1), None]),
            Uop::store(MemRef::write(0x42, 2), [Some(3), Some(1)]),
            Uop::branch(0x4000, true, [Some(3), None]),
            Uop::branch(0x4010, false, [None, None]),
        ]
    }

    struct UopListWorkload(Vec<Uop>);
    impl Workload for UopListWorkload {
        fn name(&self) -> &str {
            "uoplist"
        }
        fn generate(&self, sink: &mut dyn TraceSink) {
            for &u in &self.0 {
                sink.uop(u);
            }
        }
    }

    #[test]
    fn roundtrip_is_exact_for_every_field() {
        let w = UopListWorkload(full_uop_workload());
        let rec = RecordedTrace::record(&w);
        assert_eq!(rec.len(), 6);
        assert_eq!(rec.num_mem_refs(), 2);
        assert_eq!(rec.collect_uops(), w.collect_uops());
        // Replaying twice yields the identical stream.
        assert_eq!(rec.collect_uops(), rec.collect_uops());
    }

    #[test]
    fn mem_ref_fast_path_matches_generate() {
        let w = mixed_workload();
        let rec = RecordedTrace::record(&w);
        assert_eq!(rec.collect_mem_refs(), w.collect_mem_refs());
        // And matches the slow path through generate().
        let mut sink = CollectSink::new();
        rec.generate(&mut sink);
        let via_uops: Vec<MemRef> = sink.into_uops().iter().filter_map(|u| u.mem).collect();
        assert_eq!(rec.collect_mem_refs(), via_uops);
    }

    #[test]
    fn strided_pattern_roundtrips() {
        let w = Strided::reads(0x8000, 4, 512).with_write_every(3).repeat(2);
        let rec = RecordedTrace::record(&w);
        assert_eq!(rec.collect_uops(), w.collect_uops());
        assert!(rec.arena_bytes() > 0);
    }

    #[test]
    fn cache_shares_one_recording_per_key() {
        let cache = TraceCache::with_budget(u64::MAX);
        let w = mixed_workload();
        let a = cache.get_or_record("mixed", "Test", &w).expect("enabled");
        let b = cache.get_or_record("mixed", "Test", &w).expect("enabled");
        assert!(Arc::ptr_eq(&a, &b), "second lookup reuses the arena");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.resident_bytes, a.arena_bytes());
        // A different variant records separately.
        let c = cache.get_or_record("mixed", "Small", &w).expect("enabled");
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache = TraceCache::with_budget(0);
        assert!(cache.is_disabled());
        assert!(cache.get_or_record("x", "y", &mixed_workload()).is_none());
        assert_eq!(cache.stats(), TraceCacheStats::default());
    }

    #[test]
    fn lru_eviction_respects_the_budget() {
        let w = Strided::reads(0, 4, 4096);
        let probe = RecordedTrace::record(&w);
        let one = probe.arena_bytes();
        // Budget fits two traces but not three.
        let cache = TraceCache::with_budget(one * 2 + one / 2);
        let a = cache.get_or_record("a", "t", &w).unwrap();
        let _b = cache.get_or_record("b", "t", &w).unwrap();
        // Touch "a" so "b" is the LRU when "c" lands.
        let a2 = cache.get_or_record("a", "t", &w).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        let _c = cache.get_or_record("c", "t", &w).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= cache.budget_bytes());
        // "b" was evicted; re-fetch records again (miss, not hit).
        let misses_before = s.misses;
        let _b2 = cache.get_or_record("b", "t", &w).unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1);
        // Evicted handles remain usable.
        assert_eq!(a.collect_mem_refs().len(), 4096);
    }

    #[test]
    fn checksum_seals_at_finish_and_catches_any_bit_flip() {
        let w = UopListWorkload(full_uop_workload());
        let rec = RecordedTrace::record(&w);
        assert!(rec.verify(), "freshly recorded arenas verify");
        // Re-recording the same stream yields the same checksum.
        assert_eq!(rec.checksum(), RecordedTrace::record(&w).checksum());
        // Every payload region is covered: probe bits landing in meta,
        // mem_addr, mem_size and branch_pc.
        for bit in [0u64, 6 * 32 + 3, 6 * 32 + 2 * 64 + 5, u64::MAX] {
            let mut bad = rec.clone();
            bad.corrupt_bit(bit);
            assert!(!bad.verify(), "bit {bit} flip must fail verification");
        }
    }

    #[test]
    fn cache_detects_corrupt_arena_and_rerecords() {
        let cache = TraceCache::with_budget(u64::MAX);
        let w = mixed_workload();
        let healthy = cache.get_or_record("mixed", "Test", &w).expect("enabled");
        assert!(
            cache.corrupt_cached_trace("mixed", "Test", 17),
            "a finished recording was present to corrupt"
        );
        let refetched = cache.get_or_record("mixed", "Test", &w).expect("enabled");
        assert!(
            !Arc::ptr_eq(&healthy, &refetched),
            "corrupt arena must not be served"
        );
        assert!(refetched.verify());
        assert_eq!(refetched.collect_uops(), w.collect_uops());
        let s = cache.stats();
        assert_eq!(s.verify_failures, 1);
        assert_eq!((s.hits, s.misses), (0, 2));
        assert_eq!(s.resident_bytes, refetched.arena_bytes());
        // Outstanding handles to the pre-corruption arena stay healthy
        // (clone-on-write damages only the cached copy).
        assert!(healthy.verify());
        // The healed entry now hits normally.
        let again = cache.get_or_record("mixed", "Test", &w).expect("enabled");
        assert!(Arc::ptr_eq(&refetched, &again));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn corrupting_an_absent_entry_is_a_no_op() {
        let cache = TraceCache::with_budget(u64::MAX);
        assert!(!cache.corrupt_cached_trace("nope", "t", 0));
    }

    #[test]
    fn cache_budget_env_parses_strictly() {
        assert_eq!(parse_cache_budget_mb("512"), Ok(512 * 1024 * 1024));
        assert_eq!(parse_cache_budget_mb(" 0 "), Ok(0));
        let err = parse_cache_budget_mb("lots").unwrap_err();
        assert!(err.contains(TRACE_CACHE_MB_ENV), "{err}");
        assert!(err.contains("lots"), "{err}");
        assert!(parse_cache_budget_mb("-1").is_err());
        assert!(parse_cache_budget_mb("1.5").is_err());
        assert!(parse_cache_budget_mb("").is_err());
    }

    #[test]
    fn concurrent_same_key_lookups_record_once() {
        let cache = Arc::new(TraceCache::with_budget(u64::MAX));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let w = Strided::reads(0, 4, 2048);
                    cache.get_or_record("shared", "t", &w).unwrap()
                })
            })
            .collect();
        let traces: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t), "all threads share one arena");
        }
        assert_eq!(cache.stats().misses, 1, "exactly one recording happened");
    }
}
