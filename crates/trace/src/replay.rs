//! Record-once / replay-many trace engine.
//!
//! The paper's methodology simulates the *identical* uop stream many
//! times: three memory models per decomposition cell (§3.1), six
//! experiments per benchmark (Figure 3), plus the trace-driven cache and
//! MTC passes. Regenerating a synthetic workload for every run wastes
//! most of a figure's wall clock on redundant generation work. This
//! module captures a workload's stream once into a compact
//! structure-of-arrays arena ([`RecordedTrace`]) and replays it as a
//! [`Workload`] with O(1) per-uop dispatch, and provides a process-wide
//! [`TraceCache`] so one recording is shared across the three
//! decomposition runs, across all experiments of a benchmark, and across
//! runner threads.
//!
//! Replay is *exact*: the recorded stream is bit-for-bit the stream the
//! generator emitted, so simulation results are byte-identical whether a
//! trace was replayed or regenerated — which is what keeps the parallel
//! run engine's determinism and checkpoint/resume guarantees intact (see
//! DESIGN.md §9).
//!
//! # Example
//!
//! ```
//! use membw_trace::replay::RecordedTrace;
//! use membw_trace::{pattern::Strided, Workload};
//!
//! let live = Strided::reads(0, 4, 256).repeat(2);
//! let recorded = RecordedTrace::record(&live);
//! assert_eq!(recorded.collect_uops(), live.collect_uops());
//! assert_eq!(recorded.len(), 512);
//! ```

use crate::record::{AccessKind, MemRef};
use crate::sink::TraceSink;
use crate::uop::{BranchInfo, OpClass, Reg, Uop};
use crate::Workload;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

// Packed per-uop metadata layout (one u32 per uop):
//   bits 0-2   operation class (8 variants)
//   bit  3     dest register present
//   bit  4     src0 register present
//   bit  5     src1 register present
//   bit  6     branch info present
//   bit  7     branch taken
//   bits 8-15  dest register
//   bits 16-23 src0 register
//   bits 24-31 src1 register
const CLASS_MASK: u32 = 0b111;
const HAS_DEST: u32 = 1 << 3;
const HAS_SRC0: u32 = 1 << 4;
const HAS_SRC1: u32 = 1 << 5;
const HAS_BRANCH: u32 = 1 << 6;
const BRANCH_TAKEN: u32 = 1 << 7;

fn class_code(c: OpClass) -> u32 {
    match c {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::FpAdd => 2,
        OpClass::FpMul => 3,
        OpClass::FpDiv => 4,
        OpClass::Load => 5,
        OpClass::Store => 6,
        OpClass::Branch => 7,
    }
}

fn code_class(code: u32) -> OpClass {
    match code {
        0 => OpClass::IntAlu,
        1 => OpClass::IntMul,
        2 => OpClass::FpAdd,
        3 => OpClass::FpMul,
        4 => OpClass::FpDiv,
        5 => OpClass::Load,
        6 => OpClass::Store,
        _ => OpClass::Branch,
    }
}

/// A workload's uop stream, captured once into a structure-of-arrays
/// arena: one packed `u32` per uop plus side arrays for memory
/// references and branch PCs, indexed by sequential cursors during
/// replay. No per-record heap boxes; the whole trace is four flat
/// vectors.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    name: String,
    /// One packed word per uop (see the layout constants above).
    meta: Vec<u32>,
    /// Address of the i-th memory uop (loads and stores, in order).
    mem_addr: Vec<u64>,
    /// Size of the i-th memory uop.
    mem_size: Vec<u16>,
    /// PC of the i-th branch-info-carrying uop.
    branch_pc: Vec<u64>,
}

impl RecordedTrace {
    /// Capture `workload`'s full stream.
    ///
    /// Well-formedness (memory uops carry a `mem` whose kind matches
    /// the class, as the [`Uop`] constructors guarantee) is checked in
    /// debug builds.
    pub fn record<W: Workload + ?Sized>(workload: &W) -> Self {
        let mut sink = RecordingSink::new(workload.name());
        workload.generate(&mut sink);
        sink.finish()
    }

    /// Number of uops recorded.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Number of data-memory references recorded.
    pub fn num_mem_refs(&self) -> usize {
        self.mem_addr.len()
    }

    /// Approximate resident size of the arena in bytes (used for the
    /// [`TraceCache`] budget).
    pub fn arena_bytes(&self) -> u64 {
        (self.meta.capacity() * size_of::<u32>()
            + self.mem_addr.capacity() * size_of::<u64>()
            + self.mem_size.capacity() * size_of::<u16>()
            + self.branch_pc.capacity() * size_of::<u64>()
            + self.name.capacity()
            + size_of::<Self>()) as u64
    }

    #[inline]
    fn unpack(&self, i: usize, mem_cursor: &mut usize, branch_cursor: &mut usize) -> Uop {
        let m = self.meta[i];
        let class = code_class(m & CLASS_MASK);
        let dest: Option<Reg> = (m & HAS_DEST != 0).then_some((m >> 8) as Reg);
        let src0: Option<Reg> = (m & HAS_SRC0 != 0).then_some((m >> 16) as Reg);
        let src1: Option<Reg> = (m & HAS_SRC1 != 0).then_some((m >> 24) as Reg);
        let mem = if class.is_mem() {
            let k = *mem_cursor;
            *mem_cursor += 1;
            Some(MemRef {
                addr: self.mem_addr[k],
                size: self.mem_size[k],
                kind: if class == OpClass::Load {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                },
            })
        } else {
            None
        };
        let branch = if m & HAS_BRANCH != 0 {
            let k = *branch_cursor;
            *branch_cursor += 1;
            Some(BranchInfo {
                pc: self.branch_pc[k],
                taken: m & BRANCH_TAKEN != 0,
            })
        } else {
            None
        };
        Uop {
            class,
            dest,
            srcs: [src0, src1],
            mem,
            branch,
        }
    }
}

impl Workload for RecordedTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut mem_cursor = 0;
        let mut branch_cursor = 0;
        for i in 0..self.meta.len() {
            sink.uop(self.unpack(i, &mut mem_cursor, &mut branch_cursor));
        }
        debug_assert_eq!(mem_cursor, self.mem_addr.len());
        debug_assert_eq!(branch_cursor, self.branch_pc.len());
    }

    fn for_each_mem_ref(&self, f: &mut dyn FnMut(MemRef)) {
        // Skip the full Uop reconstruction: only the class bits and the
        // memory side arrays matter here.
        let mut mem_cursor = 0;
        for &m in &self.meta {
            let class = code_class(m & CLASS_MASK);
            if class.is_mem() {
                let k = mem_cursor;
                mem_cursor += 1;
                f(MemRef {
                    addr: self.mem_addr[k],
                    size: self.mem_size[k],
                    kind: if class == OpClass::Load {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    },
                });
            }
        }
    }
}

/// A [`TraceSink`] that packs the incoming stream into a
/// [`RecordedTrace`] arena.
#[derive(Debug, Clone)]
pub struct RecordingSink {
    trace: RecordedTrace,
}

impl RecordingSink {
    /// An empty recorder producing a trace named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            trace: RecordedTrace {
                name: name.into(),
                meta: Vec::new(),
                mem_addr: Vec::new(),
                mem_size: Vec::new(),
                branch_pc: Vec::new(),
            },
        }
    }

    /// Finish recording, returning the packed trace with capacity
    /// trimmed to length.
    pub fn finish(mut self) -> RecordedTrace {
        self.trace.meta.shrink_to_fit();
        self.trace.mem_addr.shrink_to_fit();
        self.trace.mem_size.shrink_to_fit();
        self.trace.branch_pc.shrink_to_fit();
        self.trace
    }
}

impl TraceSink for RecordingSink {
    fn uop(&mut self, uop: Uop) {
        debug_assert_eq!(
            uop.mem.is_some(),
            uop.class.is_mem(),
            "memory uops (and only memory uops) carry a MemRef"
        );
        let mut m = class_code(uop.class);
        if let Some(d) = uop.dest {
            m |= HAS_DEST | (u32::from(d) << 8);
        }
        if let Some(s) = uop.srcs[0] {
            m |= HAS_SRC0 | (u32::from(s) << 16);
        }
        if let Some(s) = uop.srcs[1] {
            m |= HAS_SRC1 | (u32::from(s) << 24);
        }
        if let Some(r) = uop.mem {
            debug_assert_eq!(
                r.kind.is_read(),
                uop.class == OpClass::Load,
                "MemRef kind must match the uop class"
            );
            self.trace.mem_addr.push(r.addr);
            self.trace.mem_size.push(r.size);
        }
        if let Some(b) = uop.branch {
            m |= HAS_BRANCH;
            if b.taken {
                m |= BRANCH_TAKEN;
            }
            self.trace.branch_pc.push(b.pc);
        }
        self.trace.meta.push(m);
    }
}

/// Environment knob naming the [`TraceCache`] budget in MiB.
///
/// Unset → a 512 MiB default; `0` → caching disabled (every caller
/// falls back to direct regeneration, which produces byte-identical
/// results).
pub const TRACE_CACHE_MB_ENV: &str = "MEMBW_TRACE_CACHE_MB";

const DEFAULT_BUDGET_BYTES: u64 = 512 * 1024 * 1024;

/// Counters describing a [`TraceCache`]'s behaviour so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Lookups that found a finished recording.
    pub hits: u64,
    /// Lookups that had to record (or wait for a concurrent recording).
    pub misses: u64,
    /// Recordings dropped to stay within the byte budget.
    pub evictions: u64,
    /// Bytes currently accounted to resident recordings.
    pub resident_bytes: u64,
}

struct CacheEntry {
    /// The recording slot. Holding this lock while recording serializes
    /// same-key callers (the second caller waits and reuses the first's
    /// work) without blocking callers on other keys.
    slot: Arc<Mutex<Option<Arc<RecordedTrace>>>>,
    bytes: u64,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<(String, String), CacheEntry>,
    tick: u64,
    stats: TraceCacheStats,
}

/// A process-wide cache of [`RecordedTrace`]s keyed by
/// `(benchmark, variant)` — variant is typically the scale — with an
/// explicit byte budget and least-recently-used eviction.
///
/// `Arc<RecordedTrace>` handles stay valid after eviction (eviction
/// drops the cache's reference, not the trace), so callers never
/// observe a trace disappearing mid-run.
pub struct TraceCache {
    budget_bytes: u64,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCache")
            .field("budget_bytes", &self.budget_bytes)
            .finish_non_exhaustive()
    }
}

impl TraceCache {
    /// A cache with an explicit byte budget. A budget of 0 disables
    /// caching: [`TraceCache::get_or_record`] always returns `None`.
    pub fn with_budget(budget_bytes: u64) -> Self {
        Self {
            budget_bytes,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                stats: TraceCacheStats::default(),
            }),
        }
    }

    /// The shared process-wide cache, budgeted from
    /// [`TRACE_CACHE_MB_ENV`] (read once, at first use).
    pub fn global() -> &'static TraceCache {
        static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
        GLOBAL.get_or_init(|| TraceCache::with_budget(budget_from_env()))
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// `true` if the budget disables caching entirely.
    pub fn is_disabled(&self) -> bool {
        self.budget_bytes == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TraceCacheStats {
        self.inner.lock().expect("trace cache poisoned").stats
    }

    /// Fetch the recording for `(name, variant)`, recording `workload`
    /// on first use. Returns `None` when caching is disabled — the
    /// caller should then use the workload directly.
    ///
    /// Concurrent callers with the same key serialize on the recording
    /// (the loser reuses the winner's arena); callers with different
    /// keys proceed in parallel.
    pub fn get_or_record<W: Workload + ?Sized>(
        &self,
        name: &str,
        variant: &str,
        workload: &W,
    ) -> Option<Arc<RecordedTrace>> {
        if self.is_disabled() {
            return None;
        }
        let slot = {
            let mut inner = self.inner.lock().expect("trace cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            let entry = inner
                .map
                .entry((name.to_string(), variant.to_string()))
                .or_insert_with(|| CacheEntry {
                    slot: Arc::new(Mutex::new(None)),
                    bytes: 0,
                    last_used: tick,
                });
            entry.last_used = tick;
            Arc::clone(&entry.slot)
        };

        let mut guard = slot.lock().expect("trace slot poisoned");
        if let Some(trace) = guard.as_ref() {
            let trace = Arc::clone(trace);
            drop(guard);
            self.inner.lock().expect("trace cache poisoned").stats.hits += 1;
            return Some(trace);
        }

        // Record while holding only this key's slot lock.
        let trace = Arc::new(RecordedTrace::record(workload));
        *guard = Some(Arc::clone(&trace));
        drop(guard);

        let bytes = trace.arena_bytes();
        let mut inner = self.inner.lock().expect("trace cache poisoned");
        inner.stats.misses += 1;
        let key = (name.to_string(), variant.to_string());
        if let Some(entry) = inner.map.get_mut(&key) {
            // A racing eviction may have already charged (or dropped)
            // this entry; only charge bytes not yet accounted.
            let delta = bytes - entry.bytes;
            entry.bytes = bytes;
            inner.stats.resident_bytes += delta;
        }
        self.evict_to_budget(&mut inner);
        Some(trace)
    }

    /// Drop least-recently-used finished recordings until resident
    /// bytes fit the budget. Entries still recording (bytes == 0, slot
    /// locked elsewhere) carry no weight and are never worth evicting.
    fn evict_to_budget(&self, inner: &mut CacheInner) {
        while inner.stats.resident_bytes > self.budget_bytes {
            let victim = inner
                .map
                .iter()
                .filter(|(_, e)| e.bytes > 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(key) = victim else { break };
            let entry = inner.map.remove(&key).expect("victim exists");
            inner.stats.resident_bytes -= entry.bytes;
            inner.stats.evictions += 1;
        }
    }
}

fn budget_from_env() -> u64 {
    match std::env::var(TRACE_CACHE_MB_ENV) {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(mb) => mb.saturating_mul(1024 * 1024),
            Err(_) => {
                eprintln!(
                    "warning: ignoring unparsable {TRACE_CACHE_MB_ENV}={v:?}; \
                     using the default budget"
                );
                DEFAULT_BUDGET_BYTES
            }
        },
        Err(_) => DEFAULT_BUDGET_BYTES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Strided;
    use crate::sink::CollectSink;

    fn mixed_workload() -> crate::VecWorkload {
        crate::VecWorkload::new(
            "mixed",
            vec![
                MemRef::read(0x1000, 4),
                MemRef::write(0x2000, 8),
                MemRef::read(0x3000, 2),
            ],
        )
    }

    fn full_uop_workload() -> Vec<Uop> {
        vec![
            Uop::compute(OpClass::IntAlu, Some(1), [Some(2), None]),
            Uop::compute(OpClass::FpDiv, Some(63), [Some(62), Some(61)]),
            Uop::load(MemRef::read(0xdead_beef_0000, 8), Some(3), [Some(1), None]),
            Uop::store(MemRef::write(0x42, 2), [Some(3), Some(1)]),
            Uop::branch(0x4000, true, [Some(3), None]),
            Uop::branch(0x4010, false, [None, None]),
        ]
    }

    struct UopListWorkload(Vec<Uop>);
    impl Workload for UopListWorkload {
        fn name(&self) -> &str {
            "uoplist"
        }
        fn generate(&self, sink: &mut dyn TraceSink) {
            for &u in &self.0 {
                sink.uop(u);
            }
        }
    }

    #[test]
    fn roundtrip_is_exact_for_every_field() {
        let w = UopListWorkload(full_uop_workload());
        let rec = RecordedTrace::record(&w);
        assert_eq!(rec.len(), 6);
        assert_eq!(rec.num_mem_refs(), 2);
        assert_eq!(rec.collect_uops(), w.collect_uops());
        // Replaying twice yields the identical stream.
        assert_eq!(rec.collect_uops(), rec.collect_uops());
    }

    #[test]
    fn mem_ref_fast_path_matches_generate() {
        let w = mixed_workload();
        let rec = RecordedTrace::record(&w);
        assert_eq!(rec.collect_mem_refs(), w.collect_mem_refs());
        // And matches the slow path through generate().
        let mut sink = CollectSink::new();
        rec.generate(&mut sink);
        let via_uops: Vec<MemRef> = sink.into_uops().iter().filter_map(|u| u.mem).collect();
        assert_eq!(rec.collect_mem_refs(), via_uops);
    }

    #[test]
    fn strided_pattern_roundtrips() {
        let w = Strided::reads(0x8000, 4, 512).with_write_every(3).repeat(2);
        let rec = RecordedTrace::record(&w);
        assert_eq!(rec.collect_uops(), w.collect_uops());
        assert!(rec.arena_bytes() > 0);
    }

    #[test]
    fn cache_shares_one_recording_per_key() {
        let cache = TraceCache::with_budget(u64::MAX);
        let w = mixed_workload();
        let a = cache.get_or_record("mixed", "Test", &w).expect("enabled");
        let b = cache.get_or_record("mixed", "Test", &w).expect("enabled");
        assert!(Arc::ptr_eq(&a, &b), "second lookup reuses the arena");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.resident_bytes, a.arena_bytes());
        // A different variant records separately.
        let c = cache.get_or_record("mixed", "Small", &w).expect("enabled");
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cache = TraceCache::with_budget(0);
        assert!(cache.is_disabled());
        assert!(cache.get_or_record("x", "y", &mixed_workload()).is_none());
        assert_eq!(cache.stats(), TraceCacheStats::default());
    }

    #[test]
    fn lru_eviction_respects_the_budget() {
        let w = Strided::reads(0, 4, 4096);
        let probe = RecordedTrace::record(&w);
        let one = probe.arena_bytes();
        // Budget fits two traces but not three.
        let cache = TraceCache::with_budget(one * 2 + one / 2);
        let a = cache.get_or_record("a", "t", &w).unwrap();
        let _b = cache.get_or_record("b", "t", &w).unwrap();
        // Touch "a" so "b" is the LRU when "c" lands.
        let a2 = cache.get_or_record("a", "t", &w).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        let _c = cache.get_or_record("c", "t", &w).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= cache.budget_bytes());
        // "b" was evicted; re-fetch records again (miss, not hit).
        let misses_before = s.misses;
        let _b2 = cache.get_or_record("b", "t", &w).unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1);
        // Evicted handles remain usable.
        assert_eq!(a.collect_mem_refs().len(), 4096);
    }

    #[test]
    fn concurrent_same_key_lookups_record_once() {
        let cache = Arc::new(TraceCache::with_budget(u64::MAX));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let w = Strided::reads(0, 4, 2048);
                    cache.get_or_record("shared", "t", &w).unwrap()
                })
            })
            .collect();
        let traces: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t), "all threads share one arena");
        }
        assert_eq!(cache.stats().misses, 1, "exactly one recording happened");
    }
}
