//! Exact LRU stack-distance (reuse-distance) computation.
//!
//! The stack distance of an access is the number of *distinct* blocks
//! referenced since the previous access to the same block. A
//! fully-associative LRU cache of capacity `C` blocks hits exactly those
//! accesses whose stack distance is `< C` — so one pass over a trace yields
//! the miss ratio of *every* cache size at once (Mattson's stack
//! algorithm). We use it to sanity-check the cache simulator and to site
//! the synthetic workloads' working-set knees where the paper's benchmarks
//! have theirs.
//!
//! The implementation is the standard O(N log N) one: a Fenwick (binary
//! indexed) tree over trace positions, with each resident block's marker
//! bit kept at its most recent access position.

use crate::record::MemRef;
use crate::Workload;
use std::collections::HashMap;

/// Fenwick tree over trace positions.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn with_len(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Add `delta` at 1-based position `i`.
    fn add(&mut self, mut i: usize, delta: i32) {
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Prefix sum of positions `1..=i`.
    fn sum(&self, mut i: usize) -> u64 {
        let mut s = 0u64;
        while i > 0 {
            s += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Distribution of stack distances for one trace at one block granularity.
///
/// # Example
///
/// ```
/// use membw_trace::{MemRef, VecWorkload, reuse::ReuseProfile};
///
/// // a b a : the second access to `a` has stack distance 1 (just `b`).
/// let w = VecWorkload::new("t", vec![
///     MemRef::read(0, 4), MemRef::read(64, 4), MemRef::read(0, 4),
/// ]);
/// let p = ReuseProfile::measure(&w, 32);
/// assert_eq!(p.cold_misses(), 2);
/// assert_eq!(p.count_at(1), 1);
/// // An LRU cache with >= 2 blocks hits the reuse; 1 block does not.
/// assert_eq!(p.lru_misses(2), 2);
/// assert_eq!(p.lru_misses(1), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseProfile {
    /// `histogram[d]` = number of accesses with stack distance exactly `d`.
    histogram: HashMap<u64, u64>,
    cold: u64,
    total: u64,
    block_size: u64,
}

impl ReuseProfile {
    /// Measure the reuse profile of `workload` at `block_size` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    pub fn measure<W: Workload + ?Sized>(workload: &W, block_size: u64) -> Self {
        assert!(
            block_size.is_power_of_two(),
            "block_size must be a power of two, got {block_size}"
        );
        let mut blocks = Vec::new();
        workload.for_each_mem_ref(&mut |r: MemRef| blocks.push(r.block(block_size)));

        let n = blocks.len();
        let mut fenwick = Fenwick::with_len(n);
        // block -> 1-based position of most recent access
        let mut last_pos: HashMap<u64, usize> = HashMap::new();
        let mut histogram: HashMap<u64, u64> = HashMap::new();
        let mut cold = 0u64;

        for (idx, &b) in blocks.iter().enumerate() {
            let pos = idx + 1;
            match last_pos.get(&b).copied() {
                Some(prev) => {
                    // Distinct blocks touched strictly between prev and pos.
                    let d = fenwick.sum(pos - 1) - fenwick.sum(prev);
                    *histogram.entry(d).or_insert(0) += 1;
                    fenwick.add(prev, -1);
                }
                None => cold += 1,
            }
            fenwick.add(pos, 1);
            last_pos.insert(b, pos);
        }

        Self {
            histogram,
            cold,
            total: n as u64,
            block_size,
        }
    }

    /// Block size this profile was measured at.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Total accesses in the trace.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Accesses to never-before-seen blocks (compulsory misses).
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Number of accesses with stack distance exactly `d`.
    pub fn count_at(&self, d: u64) -> u64 {
        self.histogram.get(&d).copied().unwrap_or(0)
    }

    /// Iterate the `(distance, count)` pairs of the histogram, in
    /// unspecified order (cold accesses are not included).
    pub fn distances(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.histogram.iter().map(|(&d, &c)| (d, c))
    }

    /// Misses of a fully-associative LRU cache holding `capacity_blocks`.
    ///
    /// An access hits iff its stack distance is strictly less than the
    /// capacity; cold accesses always miss.
    pub fn lru_misses(&self, capacity_blocks: u64) -> u64 {
        let reuse_misses: u64 = self
            .histogram
            .iter()
            .filter(|(d, _)| **d >= capacity_blocks)
            .map(|(_, c)| *c)
            .sum();
        self.cold + reuse_misses
    }

    /// LRU miss ratio at `capacity_blocks` (1.0 for an empty trace).
    pub fn lru_miss_ratio(&self, capacity_blocks: u64) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.lru_misses(capacity_blocks) as f64 / self.total as f64
        }
    }

    /// The smallest capacity (in blocks) whose LRU miss ratio is at most
    /// `target`, scanning powers of two up to `max_blocks`. Returns `None`
    /// if no capacity in range reaches the target.
    pub fn working_set_knee(&self, target: f64, max_blocks: u64) -> Option<u64> {
        let mut c = 1u64;
        while c <= max_blocks {
            if self.lru_miss_ratio(c) <= target {
                return Some(c);
            }
            c *= 2;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecWorkload;

    fn trace_of(blocks: &[u64]) -> VecWorkload {
        VecWorkload::new(
            "t",
            blocks.iter().map(|&b| MemRef::read(b * 32, 4)).collect(),
        )
    }

    #[test]
    fn classic_stack_distance_example() {
        // a b c b a : distances — a:cold, b:cold, c:cold, b:1, a:2
        let p = ReuseProfile::measure(&trace_of(&[0, 1, 2, 1, 0]), 32);
        assert_eq!(p.cold_misses(), 3);
        assert_eq!(p.count_at(1), 1);
        assert_eq!(p.count_at(2), 1);
        assert_eq!(p.total(), 5);
    }

    #[test]
    fn zero_distance_for_immediate_reuse() {
        let p = ReuseProfile::measure(&trace_of(&[5, 5, 5]), 32);
        assert_eq!(p.cold_misses(), 1);
        assert_eq!(p.count_at(0), 2);
        // Even a 1-block cache hits immediate reuse.
        assert_eq!(p.lru_misses(1), 1);
    }

    #[test]
    fn lru_misses_monotone_in_capacity() {
        // Cyclic sweep over 4 blocks, 3 rounds: LRU thrashes below capacity 4.
        let seq: Vec<u64> = (0..12).map(|i| i % 4).collect();
        let p = ReuseProfile::measure(&trace_of(&seq), 32);
        assert_eq!(p.lru_misses(4), 4); // only cold misses
        assert_eq!(p.lru_misses(3), 12); // classic LRU thrash
        for c in 1..8 {
            assert!(p.lru_misses(c) >= p.lru_misses(c + 1));
        }
    }

    #[test]
    fn block_granularity_merges_words() {
        // Two words in the same 32-byte block: second access is distance 0.
        let w = VecWorkload::new("t", vec![MemRef::read(0, 4), MemRef::read(4, 4)]);
        let p = ReuseProfile::measure(&w, 32);
        assert_eq!(p.cold_misses(), 1);
        assert_eq!(p.count_at(0), 1);
        // At 4-byte granularity they are distinct blocks.
        let p4 = ReuseProfile::measure(&w, 4);
        assert_eq!(p4.cold_misses(), 2);
    }

    #[test]
    fn working_set_knee_finds_loop_size() {
        let seq: Vec<u64> = (0..400).map(|i| i % 8).collect();
        let p = ReuseProfile::measure(&trace_of(&seq), 32);
        assert_eq!(p.working_set_knee(0.05, 1024), Some(8));
        assert_eq!(p.working_set_knee(0.0, 4), None);
    }

    #[test]
    fn miss_ratio_of_empty_trace_is_one() {
        let p = ReuseProfile::measure(&trace_of(&[]), 32);
        assert_eq!(p.lru_miss_ratio(16), 1.0);
    }
}
