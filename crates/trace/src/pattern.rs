//! Low-level synthetic access-pattern generators.
//!
//! These are the building blocks the workload kernels compose, and they
//! are independently useful for testing cache behaviour: sequential and
//! strided sweeps (spatial locality), uniform random accesses (none),
//! pointer chases (neither spatial nor predictable), and Zipf-distributed
//! hot/cold accesses (temporal locality with a heavy tail, the shape of
//! hash-table codes like Compress).
//!
//! Every pattern is a [`Workload`]: deterministic and replayable. Random
//! patterns take an explicit seed.

use crate::record::MemRef;
use crate::sink::TraceSink;
use crate::uop::Uop;
use crate::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Repeats an inner workload a fixed number of times.
#[derive(Debug, Clone)]
pub struct Repeat<W> {
    inner: W,
    times: u32,
}

impl<W: Workload> Repeat<W> {
    /// Repeat `inner` `times` times.
    pub fn new(inner: W, times: u32) -> Self {
        Self { inner, times }
    }
}

impl<W: Workload> Workload for Repeat<W> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        for _ in 0..self.times {
            self.inner.generate(sink);
        }
    }
}

/// Strided sweep over a region: `count` accesses of `size` bytes, `stride`
/// bytes apart, starting at `base`.
///
/// # Example
///
/// ```
/// use membw_trace::{pattern::Strided, Workload};
///
/// let refs = Strided::reads(0, 8, 4).collect_mem_refs();
/// assert_eq!(refs[1].addr, 8);
/// assert_eq!(refs.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Strided {
    base: u64,
    stride: u64,
    count: u64,
    size: u16,
    write_every: Option<u64>,
}

impl Strided {
    /// A read-only strided sweep of 4-byte accesses.
    pub fn reads(base: u64, stride: u64, count: u64) -> Self {
        Self {
            base,
            stride,
            count,
            size: 4,
            write_every: None,
        }
    }

    /// A strided sweep where every `n`-th access (1-based) is a write.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_write_every(mut self, n: u64) -> Self {
        assert!(n > 0, "write_every interval must be positive");
        self.write_every = Some(n);
        self
    }

    /// Set the access size in bytes.
    pub fn with_size(mut self, size: u16) -> Self {
        self.size = size;
        self
    }

    /// Repeat the sweep `times` times.
    pub fn repeat(self, times: u32) -> Repeat<Self> {
        Repeat::new(self, times)
    }
}

impl Workload for Strided {
    fn name(&self) -> &str {
        "strided"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        for i in 0..self.count {
            let addr = self.base + i * self.stride;
            let write = self.write_every.is_some_and(|n| (i + 1) % n == 0);
            let r = if write {
                MemRef::write(addr, self.size)
            } else {
                MemRef::read(addr, self.size)
            };
            sink.uop(Uop::from_mem_ref(r));
        }
    }
}

/// Uniform random 4-byte accesses within `[base, base + extent)`.
#[derive(Debug, Clone)]
pub struct UniformRandom {
    base: u64,
    extent: u64,
    count: u64,
    write_fraction: f64,
    seed: u64,
}

impl UniformRandom {
    /// `count` random word accesses over `extent` bytes starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `extent < 4`.
    pub fn new(base: u64, extent: u64, count: u64, seed: u64) -> Self {
        assert!(extent >= 4, "extent must cover at least one word");
        Self {
            base,
            extent,
            count,
            write_fraction: 0.0,
            seed,
        }
    }

    /// Make a fraction of the accesses writes.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not within `0.0..=1.0`.
    pub fn with_write_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
        self.write_fraction = f;
        self
    }
}

impl Workload for UniformRandom {
    fn name(&self) -> &str {
        "uniform-random"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let words = self.extent / 4;
        for _ in 0..self.count {
            let w = rng.gen_range(0..words);
            let addr = self.base + w * 4;
            let r = if rng.gen_bool(self.write_fraction) {
                MemRef::write(addr, 4)
            } else {
                MemRef::read(addr, 4)
            };
            sink.uop(Uop::from_mem_ref(r));
        }
    }
}

/// A pointer chase: a fixed random permutation cycle over `nodes` nodes of
/// `node_bytes` each, followed for `count` hops.
///
/// Each hop reads the "next" field of the current node — no spatial
/// locality between consecutive accesses, and temporal reuse only after a
/// full cycle.
#[derive(Debug, Clone)]
pub struct PointerChase {
    base: u64,
    nodes: u64,
    node_bytes: u64,
    count: u64,
    seed: u64,
}

impl PointerChase {
    /// A chase over `nodes` nodes for `count` hops.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(base: u64, nodes: u64, node_bytes: u64, count: u64, seed: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self {
            base,
            nodes,
            node_bytes,
            count,
            seed,
        }
    }

    /// The permutation order visited, for testing.
    fn permutation(&self) -> Vec<u64> {
        let mut order: Vec<u64> = (0..self.nodes).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Fisher–Yates over positions 1.. keeps a single cycle through 0.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(1..=i);
            order.swap(i, j);
        }
        order
    }
}

impl Workload for PointerChase {
    fn name(&self) -> &str {
        "pointer-chase"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let order = self.permutation();
        let mut pos = 0usize;
        for _ in 0..self.count {
            let node = order[pos];
            let addr = self.base + node * self.node_bytes;
            sink.uop(Uop::from_mem_ref(MemRef::read(addr, 4)));
            pos = (pos + 1) % order.len();
        }
    }
}

/// Zipf-distributed accesses over `items` items: item `i` (rank starting
/// at 1) is chosen with probability proportional to `1 / i^theta`.
///
/// `theta ≈ 0.8–1.0` mimics hash-table hot spots; `theta = 0` degenerates
/// to uniform.
#[derive(Debug, Clone)]
pub struct Zipf {
    base: u64,
    items: u64,
    item_bytes: u64,
    count: u64,
    theta: f64,
    write_fraction: f64,
    seed: u64,
}

impl Zipf {
    /// `count` accesses over `items` items of `item_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0` or `theta < 0`.
    pub fn new(base: u64, items: u64, item_bytes: u64, count: u64, theta: f64, seed: u64) -> Self {
        assert!(items > 0, "need at least one item");
        assert!(theta >= 0.0, "theta must be non-negative");
        Self {
            base,
            items,
            item_bytes,
            count,
            theta,
            write_fraction: 0.0,
            seed,
        }
    }

    /// Make a fraction of the accesses writes.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not within `0.0..=1.0`.
    pub fn with_write_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
        self.write_fraction = f;
        self
    }

    /// Draw one rank in `1..=items` by inverse-CDF on a precomputed table.
    fn cdf(&self) -> Vec<f64> {
        let mut weights: Vec<f64> = (1..=self.items)
            .map(|i| 1.0 / (i as f64).powf(self.theta))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        weights
    }
}

impl Workload for Zipf {
    fn name(&self) -> &str {
        "zipf"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        // Scramble item ranks across the address space so hot items are not
        // spatially adjacent (as in a real hash table).
        let mut placement: Vec<u64> = (0..self.items).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        for i in (1..placement.len()).rev() {
            let j = rng.gen_range(0..=i);
            placement.swap(i, j);
        }
        let cdf = self.cdf();
        for _ in 0..self.count {
            let u: f64 = rng.gen();
            let rank = cdf.partition_point(|&c| c < u).min(self.items as usize - 1);
            let addr = self.base + placement[rank] * self.item_bytes;
            let r = if rng.gen_bool(self.write_fraction) {
                MemRef::write(addr, 4)
            } else {
                MemRef::read(addr, 4)
            };
            sink.uop(Uop::from_mem_ref(r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;
    use std::collections::HashMap;

    #[test]
    fn strided_addresses_and_writes() {
        let refs = Strided::reads(100, 8, 5)
            .with_write_every(2)
            .collect_mem_refs();
        assert_eq!(refs.len(), 5);
        assert_eq!(refs[0].addr, 100);
        assert_eq!(refs[4].addr, 132);
        assert!(refs[0].kind.is_read());
        assert!(refs[1].kind.is_write());
        assert!(refs[3].kind.is_write());
    }

    #[test]
    fn repeat_multiplies_length() {
        let w = Strided::reads(0, 4, 10).repeat(3);
        assert_eq!(w.collect_mem_refs().len(), 30);
    }

    #[test]
    fn uniform_random_is_deterministic_and_bounded() {
        let a = UniformRandom::new(0x1000, 256, 100, 7).collect_mem_refs();
        let b = UniformRandom::new(0x1000, 256, 100, 7).collect_mem_refs();
        assert_eq!(a, b);
        for r in &a {
            assert!(r.addr >= 0x1000 && r.addr < 0x1000 + 256);
            assert_eq!(r.addr % 4, 0);
        }
        let c = UniformRandom::new(0x1000, 256, 100, 8).collect_mem_refs();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn uniform_random_write_fraction_respected() {
        let refs = UniformRandom::new(0, 1024, 2000, 1)
            .with_write_fraction(0.5)
            .collect_mem_refs();
        let writes = refs.iter().filter(|r| r.kind.is_write()).count();
        assert!((800..1200).contains(&writes), "writes = {writes}");
    }

    #[test]
    fn pointer_chase_visits_every_node_per_cycle() {
        let chase = PointerChase::new(0, 16, 64, 16, 3);
        let refs = chase.collect_mem_refs();
        let mut nodes: Vec<u64> = refs.iter().map(|r| r.addr / 64).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 16, "one full cycle touches every node");
    }

    #[test]
    fn pointer_chase_cycles() {
        let chase = PointerChase::new(0, 8, 32, 24, 3);
        let refs = chase.collect_mem_refs();
        assert_eq!(refs[0].addr, refs[8].addr);
        assert_eq!(refs[3].addr, refs[19].addr);
    }

    #[test]
    fn zipf_concentrates_on_hot_items() {
        let z = Zipf::new(0, 1024, 16, 20_000, 1.0, 5);
        let refs = z.collect_mem_refs();
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for r in &refs {
            *counts.entry(r.addr).or_insert(0) += 1;
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top16: u64 = freq.iter().take(16).sum();
        // With theta=1, the hottest 16 of 1024 items draw well over 30 %.
        assert!(
            top16 as f64 / refs.len() as f64 > 0.3,
            "top16 fraction = {}",
            top16 as f64 / refs.len() as f64
        );
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let z = Zipf::new(0, 64, 4, 32_000, 0.0, 9);
        let s = TraceStats::of(&z);
        assert_eq!(s.unique_words, 64, "uniform draw covers all items");
    }
}
