//! Memory-reference and micro-op trace model for the `membw` simulators.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: memory references ([`MemRef`]), dependency-annotated micro-ops
//! ([`Uop`]), replayable trace sources ([`Workload`] / [`TraceSink`]),
//! trace statistics ([`stats::TraceStats`]), exact reuse-distance
//! computation ([`reuse`]), and low-level synthetic access-pattern
//! generators ([`pattern`]).
//!
//! The design follows the measurement methodology of Burger, Goodman and
//! Kägi, *Memory Bandwidth Limitations of Future Microprocessors* (ISCA
//! 1996): traces are *deterministic and replayable*, because the paper's
//! execution-time decomposition runs the same program three times against
//! three different memory models, and its traffic-inefficiency analysis
//! runs a two-pass optimal-replacement simulation that must observe the
//! identical reference stream on both passes.
//!
//! # Example
//!
//! ```
//! use membw_trace::{pattern::Strided, Workload, stats::TraceStats};
//!
//! // A word-by-word sweep over a 1 KiB region, twice.
//! let pattern = Strided::reads(0x1000, 4, 256).repeat(2);
//! let stats = TraceStats::of(&pattern);
//! assert_eq!(stats.refs, 512);
//! assert_eq!(stats.footprint_bytes(4), 1024);
//! ```

pub mod fasthash;
pub mod interleave;
pub mod io;
pub mod pattern;
pub mod record;
pub mod replay;
pub mod reuse;
pub mod signature;
pub mod sink;
pub mod squash;
pub mod stats;
pub mod swprefetch;
pub mod uop;

pub use fasthash::{FastBuildHasher, FastHashMap, FastHasher};
pub use interleave::Interleave;
pub use record::{AccessKind, MemRef};
pub use replay::{RecordedTrace, RecordingSink, TraceCache};
pub use signature::{SignatureCache, SignatureStore, TraceSignature};
pub use sink::{CollectSink, CountSink, FnSink, MemRefFnSink, TraceSink};
pub use squash::Squashing;
pub use swprefetch::SoftwarePrefetch;
pub use uop::{BranchInfo, OpClass, Reg, Uop};

/// A deterministic, replayable source of a micro-op trace.
///
/// A `Workload` is the unit the simulators consume. Calling
/// [`Workload::generate`] must emit the *identical* uop stream every time:
/// the timing decomposition of the paper (§3.1) simulates each program three
/// times (perfect memory, infinite bandwidth, full system), and the
/// minimal-traffic-cache simulation (§5.2) requires two passes over one
/// stream.
///
/// Implementors that need randomness must seed it from fixed state.
pub trait Workload {
    /// Short, stable identifier (used in reports, e.g. `"compress"`).
    fn name(&self) -> &str;

    /// Emit the full micro-op trace into `sink`, in program order.
    fn generate(&self, sink: &mut dyn TraceSink);

    /// Emit only the data-memory references, in program order.
    ///
    /// The default implementation adapts [`Workload::generate`]; pure
    /// memory-trace sources may override it and leave `generate` emitting
    /// bare load/store uops.
    fn for_each_mem_ref(&self, f: &mut dyn FnMut(MemRef)) {
        let mut sink = MemRefFnSink::new(f);
        self.generate(&mut sink);
    }

    /// Collect the data-memory references into a vector.
    ///
    /// Convenient for tests and for the two-pass optimal-replacement
    /// simulation; large workloads should prefer streaming via
    /// [`Workload::for_each_mem_ref`].
    fn collect_mem_refs(&self) -> Vec<MemRef> {
        let mut refs = Vec::new();
        self.for_each_mem_ref(&mut |r| refs.push(r));
        refs
    }

    /// Collect the full uop trace into a vector.
    fn collect_uops(&self) -> Vec<Uop> {
        let mut sink = CollectSink::new();
        self.generate(&mut sink);
        sink.into_uops()
    }
}

impl<W: Workload + ?Sized> Workload for &W {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn generate(&self, sink: &mut dyn TraceSink) {
        (**self).generate(sink)
    }
    fn for_each_mem_ref(&self, f: &mut dyn FnMut(MemRef)) {
        (**self).for_each_mem_ref(f)
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn generate(&self, sink: &mut dyn TraceSink) {
        (**self).generate(sink)
    }
    fn for_each_mem_ref(&self, f: &mut dyn FnMut(MemRef)) {
        (**self).for_each_mem_ref(f)
    }
}

/// A workload backed by an in-memory vector of memory references.
///
/// Useful in tests and whenever a reference stream has already been
/// materialized. Each reference is wrapped in a bare load/store uop when a
/// full uop stream is requested.
///
/// # Example
///
/// ```
/// use membw_trace::{MemRef, VecWorkload, Workload};
///
/// let w = VecWorkload::new("tiny", vec![MemRef::read(0, 4), MemRef::write(4, 4)]);
/// assert_eq!(w.collect_mem_refs().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecWorkload {
    name: String,
    refs: Vec<MemRef>,
}

impl VecWorkload {
    /// Create a workload that replays `refs` in order.
    pub fn new(name: impl Into<String>, refs: Vec<MemRef>) -> Self {
        Self {
            name: name.into(),
            refs,
        }
    }

    /// The underlying references.
    pub fn refs(&self) -> &[MemRef] {
        &self.refs
    }
}

impl Workload for VecWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        for &r in &self.refs {
            sink.uop(Uop::from_mem_ref(r));
        }
    }

    fn for_each_mem_ref(&self, f: &mut dyn FnMut(MemRef)) {
        for &r in &self.refs {
            f(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_workload_replays_in_order() {
        let refs = vec![MemRef::read(0, 4), MemRef::write(8, 4), MemRef::read(16, 8)];
        let w = VecWorkload::new("t", refs.clone());
        assert_eq!(w.collect_mem_refs(), refs);
        assert_eq!(w.name(), "t");
        // Replay is deterministic.
        assert_eq!(w.collect_mem_refs(), w.collect_mem_refs());
    }

    #[test]
    fn vec_workload_uops_carry_mem_refs() {
        let refs = vec![MemRef::read(0, 4), MemRef::write(8, 4)];
        let w = VecWorkload::new("t", refs.clone());
        let uops = w.collect_uops();
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[0].mem, Some(refs[0]));
        assert_eq!(uops[0].class, OpClass::Load);
        assert_eq!(uops[1].class, OpClass::Store);
    }

    #[test]
    fn workload_by_reference_delegates() {
        let w = VecWorkload::new("t", vec![MemRef::read(0, 4)]);
        let r: &dyn Workload = &w;
        assert_eq!(r.name(), "t");
        assert_eq!(w.collect_mem_refs().len(), 1);
        let boxed: Box<dyn Workload> = Box::new(w);
        assert_eq!(boxed.collect_mem_refs().len(), 1);
    }
}
