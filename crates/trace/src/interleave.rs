//! Interleaving multiple workloads: the multithreading / shared-cache
//! model of the paper's §2.1–2.2.
//!
//! "Frequent switching of threads will increase interference in the
//! caches …, causing an increase in cache misses and total traffic." An
//! [`Interleave`] round-robins fixed-size chunks of uops from several
//! workloads (optionally offsetting their address spaces so threads do
//! not alias), producing the combined reference stream a shared cache
//! would see.

use crate::record::MemRef;
use crate::sink::{CollectSink, TraceSink};
use crate::uop::Uop;
use crate::Workload;

/// Round-robin interleaving of several workloads' uop streams.
#[derive(Debug)]
pub struct Interleave<W> {
    threads: Vec<W>,
    chunk: usize,
    address_offset: u64,
}

impl<W: Workload> Interleave<W> {
    /// Interleave `threads`, switching every `chunk` uops.
    ///
    /// `address_offset` is added to thread *i*'s addresses as
    /// `i * address_offset`; pass 0 to let threads share data.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty or `chunk` is zero.
    pub fn new(threads: Vec<W>, chunk: usize, address_offset: u64) -> Self {
        assert!(!threads.is_empty(), "need at least one thread");
        assert!(chunk > 0, "chunk must be positive");
        Self {
            threads,
            chunk,
            address_offset,
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }
}

fn offset_uop(mut uop: Uop, offset: u64) -> Uop {
    if let Some(m) = uop.mem.as_mut() {
        *m = MemRef {
            addr: m.addr + offset,
            ..*m
        };
    }
    // Distinguish branch PCs per thread as well, so the predictor sees
    // separate (aliasing-prone) streams like a real shared table would.
    if let Some(b) = uop.branch.as_mut() {
        b.pc += offset;
    }
    uop
}

impl<W: Workload> Workload for Interleave<W> {
    fn name(&self) -> &str {
        "interleave"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        // Materialize each thread's stream, then round-robin chunks.
        // (Workload generation is push-based; buffering per thread keeps
        // the combinator simple and workloads unchanged.)
        let streams: Vec<Vec<Uop>> = self
            .threads
            .iter()
            .map(|t| {
                let mut c = CollectSink::new();
                t.generate(&mut c);
                c.into_uops()
            })
            .collect();
        let mut cursors = vec![0usize; streams.len()];
        loop {
            let mut emitted = false;
            for (i, stream) in streams.iter().enumerate() {
                let offset = i as u64 * self.address_offset;
                let end = (cursors[i] + self.chunk).min(stream.len());
                for &u in &stream[cursors[i]..end] {
                    sink.uop(offset_uop(u, offset));
                    emitted = true;
                }
                cursors[i] = end;
            }
            if !emitted {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecWorkload;

    fn thread(words: &[u64]) -> VecWorkload {
        VecWorkload::new("t", words.iter().map(|&w| MemRef::read(w * 4, 4)).collect())
    }

    #[test]
    fn round_robin_order() {
        let il = Interleave::new(vec![thread(&[0, 1, 2, 3]), thread(&[10, 11, 12, 13])], 2, 0);
        let refs = il.collect_mem_refs();
        let words: Vec<u64> = refs.iter().map(|r| r.addr / 4).collect();
        assert_eq!(words, vec![0, 1, 10, 11, 2, 3, 12, 13]);
    }

    #[test]
    fn uneven_lengths_drain_completely() {
        let il = Interleave::new(vec![thread(&[0]), thread(&[1, 2, 3, 4, 5])], 2, 0);
        assert_eq!(il.collect_mem_refs().len(), 6);
    }

    #[test]
    fn address_offset_separates_threads() {
        let il = Interleave::new(vec![thread(&[0]), thread(&[0])], 1, 0x1000);
        let refs = il.collect_mem_refs();
        assert_eq!(refs[0].addr, 0);
        assert_eq!(refs[1].addr, 0x1000);
    }

    #[test]
    fn single_thread_is_identity() {
        let t = thread(&[5, 6, 7]);
        let il = Interleave::new(vec![t.clone()], 2, 0);
        assert_eq!(il.collect_mem_refs(), t.collect_mem_refs());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_empty() {
        let _ = Interleave::<VecWorkload>::new(vec![], 1, 0);
    }
}
