//! Trace signatures: the few-KB summary the analytic fast path reads
//! instead of the trace arena.
//!
//! A [`TraceSignature`] condenses one (benchmark, scale) trace into
//! exactly what the ECM predictor
//! ([`membw_analytic::ecm`]) needs — an instruction-mix summary, the
//! register-dependency critical path, and one log₂-bucketed
//! reuse-distance histogram per block granularity in
//! [`SIGNATURE_BLOCK_SIZES`]. Computing it costs one replay of the
//! recorded trace plus one Mattson stack pass per block size; after
//! that, predictions for *any* cache/memsys configuration are pure
//! histogram arithmetic and never touch the arena again.
//!
//! Signatures persist through the PR 4 integrity layer: sealed with an
//! FNV-1a 64 header, written tmp→fsync→rename, keyed by
//! `sig-v1|name|variant`, and verified on load (seal, version, and a
//! name/variant echo against hash collisions). A corrupt file is
//! quarantined to a `.corrupt` generation and recomputed — a damaged
//! signature can cost a recompute, never a wrong prediction.

use crate::record::MemRef;
use crate::reuse::ReuseProfile;
use crate::uop::{OpClass, Uop, NUM_REGS};
use crate::{TraceSink, VecWorkload, Workload};
use membw_analytic::ecm::{BlockReuse, KernelSignature, MIX_CLASSES};
use membw_runner::persist;
use serde::json::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Signature format version; part of the persistence key, so a format
/// change simply recomputes rather than misreading old files.
pub const SIGNATURE_VERSION: u32 = 1;

/// Block granularities every signature records, ascending: all the
/// block sizes the repro's sweeps and machine specs use (4 B MTC words
/// through the 128 B experiment-B L2 block).
pub const SIGNATURE_BLOCK_SIZES: [u64; 6] = [4, 8, 16, 32, 64, 128];

/// Environment variable overriding the on-disk signature store
/// directory (default `results/.signatures`).
pub const SIG_DIR_ENV: &str = "MEMBW_SIG_DIR";

/// A persisted kernel signature with its identity echo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSignature {
    /// Format version ([`SIGNATURE_VERSION`]).
    pub version: u32,
    /// Benchmark name (echoed to defeat key-hash collisions).
    pub name: String,
    /// Scale variant (`"Test"`, `"Small"`, `"Full"`).
    pub variant: String,
    /// The model inputs.
    pub kernel: KernelSignature,
}

/// Streaming statistics collected in one pass over the uop trace.
struct MixSink {
    uops: u64,
    op_cycles: u64,
    branches: u64,
    taken_branches: u64,
    /// Branches whose outcome differs from the same PC's previous
    /// outcome (the predictor-difficulty proxy the time model charges
    /// a mispredict penalty for).
    dir_flips: u64,
    /// Last observed direction per branch PC.
    last_dir: HashMap<u64, bool>,
    class_counts: [u64; MIX_CLASSES.len()],
    /// Ready cycle of each logical register's latest value.
    reg_depth: [u64; NUM_REGS],
    crit_path: u64,
    refs: Vec<MemRef>,
}

impl MixSink {
    fn new() -> Self {
        MixSink {
            uops: 0,
            op_cycles: 0,
            branches: 0,
            taken_branches: 0,
            dir_flips: 0,
            last_dir: HashMap::new(),
            class_counts: [0; MIX_CLASSES.len()],
            reg_depth: [0; NUM_REGS],
            crit_path: 0,
            refs: Vec::new(),
        }
    }

    fn class_index(class: OpClass) -> usize {
        match class {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 3,
            OpClass::FpDiv => 4,
            OpClass::Load => 5,
            OpClass::Store => 6,
            OpClass::Branch => 7,
        }
    }
}

impl TraceSink for MixSink {
    fn uop(&mut self, uop: Uop) {
        self.uops += 1;
        let lat = u64::from(uop.class.latency());
        self.op_cycles += lat;
        self.class_counts[Self::class_index(uop.class)] += 1;
        if let Some(b) = uop.branch {
            self.branches += 1;
            if b.taken {
                self.taken_branches += 1;
            }
            if let Some(prev) = self.last_dir.insert(b.pc, b.taken) {
                if prev != b.taken {
                    self.dir_flips += 1;
                }
            }
        }
        if let Some(r) = uop.mem {
            self.refs.push(r);
        }
        // Register-dependency critical path with unit memory: a uop is
        // ready when its sources are, and completes `latency` later.
        let ready = uop
            .srcs
            .iter()
            .flatten()
            .map(|&r| self.reg_depth[usize::from(r)])
            .max()
            .unwrap_or(0);
        let done = ready + lat;
        if let Some(d) = uop.dest {
            self.reg_depth[usize::from(d)] = done;
        }
        self.crit_path = self.crit_path.max(done);
    }
}

/// Bucket a [`ReuseProfile`] into the log₂ histogram the predictor
/// consumes: bucket 0 holds distance 0, bucket `k ≥ 1` holds
/// `[2^(k−1), 2^k)`.
fn bucketize(profile: &ReuseProfile) -> Vec<u64> {
    let mut buckets: Vec<u64> = Vec::new();
    for (d, count) in profile.distances() {
        let idx = if d == 0 { 0 } else { d.ilog2() as usize + 1 };
        if buckets.len() <= idx {
            buckets.resize(idx + 1, 0);
        }
        buckets[idx] += count;
    }
    buckets
}

/// Compute the signature of `workload` from scratch (one uop replay +
/// one stack pass per block granularity).
pub fn compute_signature(name: &str, variant: &str, workload: &dyn Workload) -> TraceSignature {
    let mut mix = MixSink::new();
    workload.generate(&mut mix);

    let request_bytes: u64 = mix.refs.iter().map(|r| u64::from(r.size)).sum();
    let stores = mix.class_counts[MixSink::class_index(OpClass::Store)];
    let replay = VecWorkload::new(name, std::mem::take(&mut mix.refs));

    let mut reuse = Vec::with_capacity(SIGNATURE_BLOCK_SIZES.len());
    for &block in &SIGNATURE_BLOCK_SIZES {
        let profile = ReuseProfile::measure(&replay, block);
        let mut dirty = std::collections::HashSet::new();
        for r in replay.refs() {
            if r.kind.is_write() {
                dirty.insert(r.block(block));
            }
        }
        reuse.push(BlockReuse {
            block_size: block,
            accesses: profile.total(),
            cold: profile.cold_misses(),
            dirty_blocks: dirty.len() as u64,
            buckets: bucketize(&profile),
        });
    }

    TraceSignature {
        version: SIGNATURE_VERSION,
        name: name.to_string(),
        variant: variant.to_string(),
        kernel: KernelSignature {
            uops: mix.uops,
            mem_refs: replay.refs().len() as u64,
            stores,
            request_bytes,
            op_cycles: mix.op_cycles,
            crit_path: mix.crit_path,
            branches: mix.branches,
            taken_branches: mix.taken_branches,
            dir_flips: mix.dir_flips,
            class_counts: mix.class_counts.to_vec(),
            reuse,
        },
    }
}

fn store_key(name: &str, variant: &str) -> String {
    format!("sig-v{SIGNATURE_VERSION}|{name}|{variant}")
}

/// Sealed on-disk store for computed signatures, one file per
/// (name, variant), durable through the [`membw_runner::persist`]
/// tmp→fsync→rename + FNV-seal path.
pub struct SignatureStore {
    dir: PathBuf,
}

impl SignatureStore {
    /// Open (creating if needed) the store at `dir`, sweeping orphaned
    /// `*.tmp` files and bounding the `*.corrupt` quarantine backlog.
    ///
    /// # Errors
    ///
    /// Fails only if the directory cannot be created.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        membw_runner::faultio::create_dir_all(dir)?;
        persist::sweep_orphaned_tmp(dir);
        persist::sweep_corrupt_retention(dir, persist::CORRUPT_KEEP_DEFAULT);
        Ok(SignatureStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The file backing `(name, variant)`.
    pub fn path_for(&self, name: &str, variant: &str) -> PathBuf {
        let key = store_key(name, variant);
        self.dir
            .join(format!("{:016x}.sig.json", persist::fnv64(&key)))
    }

    /// The verified signature for `(name, variant)`, if a sealed entry
    /// exists. A file that fails the seal check, does not parse, or
    /// echoes a different identity (version, name, variant) is
    /// quarantined and reported as a miss — the caller recomputes.
    pub fn load(&self, name: &str, variant: &str) -> Option<TraceSignature> {
        let path = self.path_for(name, variant);
        let bytes = std::fs::read(&path).ok()?;
        // Bytes that aren't even UTF-8 are corruption like any other:
        // quarantine them rather than leaving a permanently dead entry.
        let decoded = String::from_utf8(bytes)
            .ok()
            .and_then(|text| Self::decode(&text, name, variant));
        match decoded {
            Some(sig) => Some(sig),
            None => {
                let quarantine = persist::quarantine_path(&path);
                eprintln!(
                    "signature: store entry {} failed verification; quarantined to {}",
                    path.display(),
                    quarantine.display()
                );
                let _ = membw_runner::faultio::rename(&path, &quarantine);
                None
            }
        }
    }

    fn decode(text: &str, name: &str, variant: &str) -> Option<TraceSignature> {
        let body = persist::unseal(text)?;
        let v: Value = serde_json::from_str(body).ok()?;
        let sig = TraceSignature::from_value(&v).ok()?;
        if sig.version != SIGNATURE_VERSION || sig.name != name || sig.variant != variant {
            return None;
        }
        Some(sig)
    }

    /// Durably persist `sig` (tmp→fsync→rename, FNV-sealed),
    /// overwriting any previous entry.
    ///
    /// # Errors
    ///
    /// The failed filesystem step, its path, and the OS error.
    pub fn save(&self, sig: &TraceSignature) -> Result<(), persist::PersistError> {
        let json = serde_json::to_string(&sig.to_value()).expect("value tree serializes");
        let sealed = persist::seal(&json);
        persist::write_atomic(&self.path_for(&sig.name, &sig.variant), sealed.as_bytes())
    }
}

/// Process-wide signature cache: memory → sealed store → compute, with
/// each signature computed at most once per process.
pub struct SignatureCache {
    entries: Mutex<HashMap<(String, String), Arc<TraceSignature>>>,
    store: Option<SignatureStore>,
}

impl SignatureCache {
    /// A cache backed by `store` (`None` = memory only; used by tests
    /// and as the fallback when the store directory cannot be created).
    pub fn with_store(store: Option<SignatureStore>) -> Self {
        SignatureCache {
            entries: Mutex::new(HashMap::new()),
            store,
        }
    }

    /// The shared process-wide cache, backed by `$MEMBW_SIG_DIR`
    /// (default `results/.signatures`).
    pub fn global() -> &'static SignatureCache {
        static GLOBAL: OnceLock<SignatureCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let dir = std::env::var(SIG_DIR_ENV)
                .map(PathBuf::from)
                .unwrap_or_else(|_| PathBuf::from("results/.signatures"));
            let store = match SignatureStore::open(&dir) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!(
                        "signature: cannot open store at {} ({e}); caching in memory only",
                        dir.display()
                    );
                    None
                }
            };
            SignatureCache::with_store(store)
        })
    }

    /// The signature for `(name, variant)`: from memory, else the
    /// sealed store, else computed from `workload` (and persisted).
    ///
    /// The cache lock is held across a compute so concurrent callers
    /// of the same key never duplicate the stack passes; computes are
    /// bounded (one per (benchmark, scale) per process lifetime).
    pub fn get_or_compute(
        &self,
        name: &str,
        variant: &str,
        workload: &dyn Workload,
    ) -> Arc<TraceSignature> {
        let key = (name.to_string(), variant.to_string());
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(sig) = entries.get(&key) {
            return Arc::clone(sig);
        }
        if let Some(store) = &self.store {
            if let Some(sig) = store.load(name, variant) {
                let sig = Arc::new(sig);
                entries.insert(key, Arc::clone(&sig));
                return sig;
            }
        }
        let sig = Arc::new(compute_signature(name, variant, workload));
        if let Some(store) = &self.store {
            if let Err(e) = store.save(&sig) {
                eprintln!("signature: persisting {name}/{variant} failed: {e:?}");
            }
        }
        entries.insert(key, Arc::clone(&sig));
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Strided;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("membw_sig_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn toy_workload() -> VecWorkload {
        VecWorkload::new(
            "toy",
            vec![
                MemRef::read(0, 4),
                MemRef::write(32, 4),
                MemRef::read(0, 4),
                MemRef::read(64, 4),
                MemRef::write(32, 4),
            ],
        )
    }

    #[test]
    fn signature_counts_mix_and_refs() {
        let sig = compute_signature("toy", "Test", &toy_workload());
        assert_eq!(sig.kernel.uops, 5);
        assert_eq!(sig.kernel.mem_refs, 5);
        assert_eq!(sig.kernel.stores, 2);
        assert_eq!(sig.kernel.request_bytes, 20);
        let br = sig.kernel.reuse_at(32).unwrap();
        assert_eq!(br.accesses, 5);
        assert_eq!(br.cold, 3);
        assert_eq!(br.dirty_blocks, 1);
        assert_eq!(sig.kernel.reuse.len(), SIGNATURE_BLOCK_SIZES.len());
    }

    #[test]
    fn bucketed_misses_agree_with_exact_profile_at_powers_of_two() {
        let w = Strided::reads(0, 4, 4096).repeat(3);
        let sig = compute_signature("strided", "Test", &w);
        for &block in &SIGNATURE_BLOCK_SIZES {
            let profile = ReuseProfile::measure(&w, block);
            let br = sig.kernel.reuse_at(block).unwrap();
            for m in 0..=20u32 {
                let cap = 1u64 << m;
                assert_eq!(
                    br.lru_misses(cap),
                    profile.lru_misses(cap),
                    "block {block} capacity {cap}"
                );
            }
        }
    }

    #[test]
    fn signature_is_deterministic() {
        let w = toy_workload();
        assert_eq!(
            compute_signature("toy", "Test", &w),
            compute_signature("toy", "Test", &w)
        );
    }

    #[test]
    fn store_round_trips_and_rejects_identity_mismatch() {
        let dir = tmpdir("rt");
        let store = SignatureStore::open(&dir).unwrap();
        let sig = compute_signature("toy", "Test", &toy_workload());
        assert!(store.load("toy", "Test").is_none());
        store.save(&sig).unwrap();
        assert_eq!(store.load("toy", "Test").as_ref(), Some(&sig));
        // A sealed entry for a different key must never be served.
        std::fs::rename(
            store.path_for("toy", "Test"),
            store.path_for("other", "Test"),
        )
        .unwrap();
        assert!(store.load("other", "Test").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_entries_are_quarantined_and_recomputed() {
        let dir = tmpdir("corrupt");
        let store = SignatureStore::open(&dir).unwrap();
        let sig = compute_signature("toy", "Test", &toy_workload());
        store.save(&sig).unwrap();
        let path = store.path_for("toy", "Test");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load("toy", "Test").is_none(), "corrupt entry misses");
        assert!(!path.exists(), "entry was quarantined away");
        // The cache recomputes an identical signature and re-persists.
        let cache = SignatureCache::with_store(Some(SignatureStore::open(&dir).unwrap()));
        let recomputed = cache.get_or_compute("toy", "Test", &toy_workload());
        assert_eq!(*recomputed, sig);
        assert_eq!(store.load("toy", "Test").as_ref(), Some(&sig));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_computes_once_and_reloads_across_instances() {
        let dir = tmpdir("cache");
        let cache = SignatureCache::with_store(Some(SignatureStore::open(&dir).unwrap()));
        let a = cache.get_or_compute("toy", "Test", &toy_workload());
        let b = cache.get_or_compute("toy", "Test", &toy_workload());
        assert!(Arc::ptr_eq(&a, &b), "second hit comes from memory");
        // A fresh cache (process restart) loads from the sealed store.
        let fresh = SignatureCache::with_store(Some(SignatureStore::open(&dir).unwrap()));
        let c = fresh.get_or_compute("toy", "Test", &toy_workload());
        assert_eq!(*c, *a);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
