//! Binary trace files (`.mwtr`): persist and replay reference streams.
//!
//! The paper's methodology is trace-driven (QPT-generated traces fed to
//! DineroIII and the MTC simulator); this module gives the workspace the
//! same workflow: dump any [`Workload`]'s reference stream to a compact
//! binary file, reload it later (or on another machine) as a
//! [`VecWorkload`], and feed it to any simulator.
//!
//! # Format
//!
//! Little-endian, fixed-width records:
//!
//! ```text
//! magic    8 bytes  "MWTRACE2"
//! count    8 bytes  u64 number of records
//! record  11 bytes  kind (1: 0=read, 1=write) | size u16 | addr u64
//! check    8 bytes  u64 FNV-1a over all record bytes
//! ```
//!
//! The trailing checksum catches any corruption the structural checks
//! can't — a flipped address bit is still a syntactically perfect
//! record. Version-1 files (magic `"MWTRACE1"`, no checksum) are still
//! read for compatibility with previously dumped traces; they get the
//! structural checks only. The two magics differ in two bits, so no
//! single-bit flip turns a checksummed file into a "legacy" one.

use crate::record::{AccessKind, MemRef};
use crate::{VecWorkload, Workload};
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic for the current (checksummed) trace format.
pub const MAGIC: &[u8; 8] = b"MWTRACE2";

/// File magic of the legacy checksum-less format, still readable.
pub const MAGIC_V1: &[u8; 8] = b"MWTRACE1";

/// Byte offset of the first record (magic + count header).
pub const RECORDS_START: u64 = 16;

/// Bytes per record (kind + size + addr).
pub const RECORD_BYTES: u64 = 11;

/// Bytes of the trailing content checksum (current format only).
pub const CHECKSUM_BYTES: u64 = 8;

/// 64-bit FNV-1a over a byte stream, continued from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Errors from trace (de)serialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic([u8; 8]),
    /// The stream ended before `count` records were read.
    Truncated {
        /// Records promised by the header.
        expected: u64,
        /// Records actually read.
        got: u64,
        /// Byte offset where the truncated record starts.
        offset: u64,
    },
    /// A record carried an invalid access-kind byte.
    BadKind {
        /// The offending kind byte.
        kind: u8,
        /// Zero-based index of the bad record.
        record: u64,
        /// Byte offset of the bad record.
        offset: u64,
    },
    /// The trailing content checksum did not match the record bytes.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed from the records actually read.
        computed: u64,
    },
    /// A current-format stream ended before its trailing checksum.
    MissingChecksum {
        /// Byte offset where the checksum should start.
        offset: u64,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::BadMagic(m) => write!(f, "not a trace file (magic {m:02x?})"),
            TraceIoError::Truncated {
                expected,
                got,
                offset,
            } => {
                write!(
                    f,
                    "trace truncated: header promised {expected} records, read {got} (stream ends inside the record at byte offset {offset})"
                )
            }
            TraceIoError::BadKind {
                kind,
                record,
                offset,
            } => write!(
                f,
                "invalid access kind byte {kind} in record {record} (byte offset {offset})"
            ),
            TraceIoError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch: file says {stored:016x}, records hash to {computed:016x} \
                 (the trace was altered after it was written)"
            ),
            TraceIoError::MissingChecksum { offset } => write!(
                f,
                "trace ends without its trailing checksum (expected 8 bytes at offset {offset})"
            ),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Write `refs` to `w` in `.mwtr` format.
///
/// A `&mut` reference may be passed for `w`.
///
/// # Errors
///
/// Propagates any I/O failure.
pub fn write_refs<W: Write>(mut w: W, refs: &[MemRef]) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&(refs.len() as u64).to_le_bytes())?;
    let mut hash = FNV_OFFSET;
    let mut buf = Vec::with_capacity(refs.len().min(1 << 16) * 11);
    for r in refs {
        buf.push(match r.kind {
            AccessKind::Read => 0u8,
            AccessKind::Write => 1u8,
        });
        buf.extend_from_slice(&r.size.to_le_bytes());
        buf.extend_from_slice(&r.addr.to_le_bytes());
        if buf.len() >= 1 << 20 {
            hash = fnv1a(hash, &buf);
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    hash = fnv1a(hash, &buf);
    w.write_all(&buf)?;
    w.write_all(&hash.to_le_bytes())?;
    Ok(())
}

/// Read a `.mwtr` stream from `r`.
///
/// A `&mut` reference may be passed for `r`.
///
/// # Errors
///
/// Returns [`TraceIoError`] on bad magic, truncation, invalid record
/// kinds, or I/O failure.
pub fn read_refs<R: Read>(mut r: R) -> Result<Vec<MemRef>, TraceIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    let checksummed = match &magic {
        m if m == MAGIC => true,
        m if m == MAGIC_V1 => false,
        _ => return Err(TraceIoError::BadMagic(magic)),
    };
    let mut count_bytes = [0u8; 8];
    r.read_exact(&mut count_bytes)?;
    let count = u64::from_le_bytes(count_bytes);
    let mut refs = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut hash = FNV_OFFSET;
    let mut rec = [0u8; 11];
    for i in 0..count {
        if let Err(e) = r.read_exact(&mut rec) {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                return Err(TraceIoError::Truncated {
                    expected: count,
                    got: i,
                    offset: RECORDS_START + i * RECORD_BYTES,
                });
            }
            return Err(e.into());
        }
        hash = fnv1a(hash, &rec);
        let kind = match rec[0] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            k => {
                return Err(TraceIoError::BadKind {
                    kind: k,
                    record: i,
                    offset: RECORDS_START + i * RECORD_BYTES,
                })
            }
        };
        let size = u16::from_le_bytes([rec[1], rec[2]]);
        let addr = u64::from_le_bytes(rec[3..11].try_into().expect("fixed slice"));
        refs.push(MemRef { addr, size, kind });
    }
    if checksummed {
        let mut stored_bytes = [0u8; 8];
        if let Err(e) = r.read_exact(&mut stored_bytes) {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                return Err(TraceIoError::MissingChecksum {
                    offset: RECORDS_START + count * RECORD_BYTES,
                });
            }
            return Err(e.into());
        }
        let stored = u64::from_le_bytes(stored_bytes);
        if stored != hash {
            return Err(TraceIoError::ChecksumMismatch {
                stored,
                computed: hash,
            });
        }
    }
    Ok(refs)
}

/// Dump a workload's reference stream to `path`, durably: the records
/// are serialized in memory, then published via the shared atomic
/// tmp→write→fsync→rename path ([`membw_runner::persist`]), so a crash
/// or full disk mid-dump leaves the previous trace (or nothing), never
/// a torn `.mwtr` file — and an fsync failure is a reported error, not
/// a silently-dropped one at file-handle drop.
///
/// # Errors
///
/// Propagates I/O failures, naming the failed persistence step and
/// path.
pub fn save_workload<W: Workload + ?Sized>(w: &W, path: &Path) -> Result<u64, TraceIoError> {
    let refs = w.collect_mem_refs();
    let mut buf = Vec::with_capacity(
        (RECORDS_START + refs.len() as u64 * RECORD_BYTES + CHECKSUM_BYTES) as usize,
    );
    write_refs(&mut buf, &refs)?;
    membw_runner::persist::write_atomic(path, &buf).map_err(|(step, at, e)| {
        TraceIoError::Io(io::Error::new(
            e.kind(),
            format!("cannot {step} at {}: {e}", at.display()),
        ))
    })?;
    Ok(refs.len() as u64)
}

/// Load a trace file as a replayable workload named after the file stem.
///
/// # Errors
///
/// Returns [`TraceIoError`] on malformed files.
pub fn load_workload(path: &Path) -> Result<VecWorkload, TraceIoError> {
    let file = std::fs::File::open(path)?;
    let refs = read_refs(io::BufReader::new(file))?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("trace")
        .to_string();
    Ok(VecWorkload::new(name, refs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Strided;

    fn sample() -> Vec<MemRef> {
        vec![
            MemRef::read(0x1000, 4),
            MemRef::write(0xdead_beef_cafe, 8),
            MemRef::read(u64::MAX - 7, 2),
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let mut buf = Vec::new();
        write_refs(&mut buf, &sample()).unwrap();
        assert_eq!(buf.len(), 16 + 3 * 11 + 8, "header + records + checksum");
        let back = read_refs(buf.as_slice()).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_refs(&mut buf, &[]).unwrap();
        assert_eq!(read_refs(buf.as_slice()).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTTRACE\0\0\0\0\0\0\0\0".to_vec();
        assert!(matches!(
            read_refs(buf.as_slice()),
            Err(TraceIoError::BadMagic(_))
        ));
    }

    #[test]
    fn truncation_detected_with_counts() {
        let mut buf = Vec::new();
        write_refs(&mut buf, &sample()).unwrap();
        // Cut the trailing checksum plus 5 bytes of the third record.
        buf.truncate(buf.len() - 8 - 5);
        match read_refs(buf.as_slice()) {
            Err(TraceIoError::Truncated {
                expected: 3,
                got: 2,
                offset,
            }) => assert_eq!(offset, 16 + 2 * 11, "third record's start offset"),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn missing_checksum_detected() {
        let mut buf = Vec::new();
        write_refs(&mut buf, &sample()).unwrap();
        // Records intact, trailing checksum short: the stream is
        // unverifiable, not "legacy".
        buf.truncate(buf.len() - 5);
        match read_refs(buf.as_slice()) {
            Err(TraceIoError::MissingChecksum { offset }) => assert_eq!(offset, 16 + 3 * 11),
            other => panic!("expected missing checksum, got {other:?}"),
        }
    }

    #[test]
    fn flipped_record_bit_fails_the_checksum() {
        let mut buf = Vec::new();
        write_refs(&mut buf, &sample()).unwrap();
        // Flip one address bit: structurally perfect, semantically
        // wrong — only the checksum can object.
        buf[16 + 11 + 3] ^= 0x40;
        match read_refs(buf.as_slice()) {
            Err(TraceIoError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed)
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn legacy_v1_files_still_read() {
        // A v1 file: old magic, no trailing checksum.
        let mut buf = Vec::new();
        write_refs(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 8);
        buf[..8].copy_from_slice(MAGIC_V1);
        assert_eq!(read_refs(buf.as_slice()).unwrap(), sample());
        // The two magics are two bit flips apart ('1' = 0x31, '2' =
        // 0x32), so one flipped bit cannot downgrade a checksummed file
        // into an unchecked legacy read.
        assert_eq!((MAGIC[7] ^ MAGIC_V1[7]).count_ones(), 2);
    }

    #[test]
    fn bad_kind_rejected() {
        let mut buf = Vec::new();
        write_refs(&mut buf, &sample()).unwrap();
        buf[16] = 7; // first record's kind byte
        assert!(matches!(
            read_refs(buf.as_slice()),
            Err(TraceIoError::BadKind {
                kind: 7,
                record: 0,
                offset: 16
            })
        ));
        // A bad kind mid-stream pinpoints its record and offset.
        let mut buf = Vec::new();
        write_refs(&mut buf, &sample()).unwrap();
        buf[16 + 11] = 9; // second record
        match read_refs(buf.as_slice()) {
            Err(TraceIoError::BadKind {
                kind: 9,
                record: 1,
                offset,
            }) => assert_eq!(offset, 27),
            other => panic!("expected bad kind, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip_via_workload() {
        let dir = std::env::temp_dir().join("membw_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.mwtr");
        let w = Strided::reads(0, 4, 500).with_write_every(3);
        let n = save_workload(&w, &path).unwrap();
        assert_eq!(n, 500);
        let loaded = load_workload(&path).unwrap();
        assert_eq!(loaded.name(), "sweep");
        assert_eq!(loaded.collect_mem_refs(), w.collect_mem_refs());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_on_disk_reports_offset_and_record() {
        // Regression: a trace file cut off mid-record (disk full,
        // killed dump) must fail with a typed error naming where the
        // stream broke — not a panic or a silently short workload.
        let dir = std::env::temp_dir().join("membw_trace_io_truncated_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cut.mwtr");
        let w = Strided::reads(0, 4, 100);
        save_workload(&w, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut inside record 40.
        std::fs::write(&path, &full[..16 + 40 * 11 + 5]).unwrap();
        match load_workload(&path) {
            Err(TraceIoError::Truncated {
                expected: 100,
                got: 40,
                offset,
            }) => assert_eq!(offset, 16 + 40 * 11),
            other => panic!("expected truncation, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_display() {
        let e = TraceIoError::Truncated {
            expected: 9,
            got: 1,
            offset: 27,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains("27"), "{e}");
        let e = TraceIoError::BadKind {
            kind: 3,
            record: 2,
            offset: 38,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains("38"), "{e}");
    }
}
