//! Software prefetching as a trace transformation (§2.1).
//!
//! "Both software and hardware prefetching techniques can increase
//! traffic to main memory. They may prefetch data too early…" A
//! compiler that inserts prefetch instructions is modeled here as a
//! stream rewrite: `distance` uops ahead of every load, insert a
//! *non-binding* copy of it — a load with no destination register.
//! Nothing ever waits on it, so it hides latency exactly like a real
//! prefetch; it still occupies MSHRs and buses, so it costs bandwidth
//! exactly like one too. An optional inaccuracy knob prefetches a wrong
//! address for a fraction of insertions (the "too early / wrong stream"
//! failure the paper describes).

use crate::record::MemRef;
use crate::sink::{CollectSink, TraceSink};
use crate::uop::{OpClass, Uop};
use crate::Workload;

fn hash(x: u64) -> u64 {
    let mut x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A workload with compiler-inserted software prefetches.
#[derive(Debug, Clone)]
pub struct SoftwarePrefetch<W> {
    inner: W,
    distance: usize,
    /// Wrong-address insertions per 256.
    wrong_per_256: u32,
    seed: u64,
}

impl<W: Workload> SoftwarePrefetch<W> {
    /// Prefetch each load `distance` uops early, perfectly accurate.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is zero.
    pub fn new(inner: W, distance: usize) -> Self {
        Self::with_inaccuracy(inner, distance, 0, 0)
    }

    /// Like [`SoftwarePrefetch::new`], with `wrong_per_256 / 256` of the
    /// prefetches fetching a displaced (useless) address.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is zero or `wrong_per_256 > 256`.
    pub fn with_inaccuracy(inner: W, distance: usize, wrong_per_256: u32, seed: u64) -> Self {
        assert!(distance > 0, "prefetch distance must be positive");
        assert!(wrong_per_256 <= 256, "probability is out of 256");
        Self {
            inner,
            distance,
            wrong_per_256,
            seed,
        }
    }
}

impl<W: Workload> Workload for SoftwarePrefetch<W> {
    fn name(&self) -> &str {
        "sw-prefetch"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut collected = CollectSink::new();
        self.inner.generate(&mut collected);
        let uops = collected.into_uops();
        for (i, &u) in uops.iter().enumerate() {
            // Insert the prefetch for the load `distance` ahead.
            if let Some(fut) = uops.get(i + self.distance) {
                if fut.class == OpClass::Load {
                    let m = fut.mem.expect("loads carry addresses");
                    let addr = if self.wrong_per_256 > 0
                        && hash(self.seed ^ i as u64) % 256 < u64::from(self.wrong_per_256)
                    {
                        m.addr.wrapping_add(4096 + ((hash(i as u64) % 4096) & !3))
                    } else {
                        m.addr
                    };
                    // Non-binding: no destination, nothing depends on it.
                    sink.uop(Uop::load(MemRef::read(addr, m.size), None, [None, None]));
                }
            }
            sink.uop(u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Strided;
    use crate::stats::TraceStats;
    use crate::VecWorkload;

    #[test]
    fn inserts_one_prefetch_per_future_load() {
        let inner = Strided::reads(0, 64, 100);
        let w = SoftwarePrefetch::new(inner.clone(), 8);
        let base = TraceStats::of(&inner);
        let s = TraceStats::of(&w);
        // Every load except the first 8 gets a prefetch... rather: every
        // load that is `distance` ahead of some position, i.e. loads at
        // positions >= 8: 92 of them.
        assert_eq!(s.reads, base.reads + 92);
    }

    #[test]
    fn accurate_prefetches_duplicate_addresses() {
        let inner = Strided::reads(0, 64, 50);
        let w = SoftwarePrefetch::new(inner, 4);
        let refs = w.collect_mem_refs();
        // Each prefetched address appears again later as the demand load.
        let mut counts = std::collections::HashMap::new();
        for r in &refs {
            *counts.entry(r.addr).or_insert(0u32) += 1;
        }
        let doubled = counts.values().filter(|&&c| c == 2).count();
        assert_eq!(doubled, 46);
    }

    #[test]
    fn prefetches_are_non_binding() {
        let inner = VecWorkload::new(
            "t",
            vec![
                MemRef::read(0, 4),
                MemRef::read(64, 4),
                MemRef::read(128, 4),
            ],
        );
        let w = SoftwarePrefetch::new(inner, 1);
        for u in w.collect_uops() {
            if u.class == OpClass::Load && u.dest.is_none() {
                return; // found a non-binding prefetch
            }
        }
        panic!("no non-binding prefetch emitted");
    }

    #[test]
    fn inaccurate_prefetches_touch_new_addresses() {
        let inner = Strided::reads(0, 64, 200);
        let accurate = SoftwarePrefetch::new(inner.clone(), 4);
        let sloppy = SoftwarePrefetch::with_inaccuracy(inner, 4, 128, 9);
        let fp_accurate = TraceStats::of(&accurate).unique_words;
        let fp_sloppy = TraceStats::of(&sloppy).unique_words;
        assert!(
            fp_sloppy > fp_accurate,
            "wrong prefetches widen the footprint: {fp_sloppy} vs {fp_accurate}"
        );
    }

    #[test]
    fn deterministic() {
        let inner = Strided::reads(0, 64, 100);
        let a = SoftwarePrefetch::with_inaccuracy(inner.clone(), 4, 64, 3).collect_mem_refs();
        let b = SoftwarePrefetch::with_inaccuracy(inner, 4, 64, 3).collect_mem_refs();
        assert_eq!(a, b);
    }
}
