//! Data-memory reference records.

use serde::{Deserialize, Serialize};

/// Whether a memory reference reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load from memory.
    Read,
    /// A store to memory.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Read`].
    pub fn is_read(self) -> bool {
        self == AccessKind::Read
    }

    /// `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        self == AccessKind::Write
    }
}

/// A single data-memory reference: address, size in bytes, and direction.
///
/// Sizes are small powers of two (1–8 bytes in practice). Following the
/// paper's tracing methodology (QPT splits double-word accesses into two
/// single-word accesses), workload generators emit mostly 4-byte
/// references; the cache simulators accept any size that does not straddle
/// a cache block.
///
/// # Example
///
/// ```
/// use membw_trace::MemRef;
///
/// let r = MemRef::read(0x1008, 4);
/// assert_eq!(r.block(32), 0x1000 / 32);
/// assert_eq!(r.word(), 0x1008 / 4);
/// assert!(r.kind.is_read());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Byte address of the access.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u16,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemRef {
    /// A read of `size` bytes at `addr`.
    pub fn read(addr: u64, size: u16) -> Self {
        Self {
            addr,
            size,
            kind: AccessKind::Read,
        }
    }

    /// A write of `size` bytes at `addr`.
    pub fn write(addr: u64, size: u16) -> Self {
        Self {
            addr,
            size,
            kind: AccessKind::Write,
        }
    }

    /// The block index this reference falls in, for `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block_size` is not a power of two.
    pub fn block(&self, block_size: u64) -> u64 {
        debug_assert!(block_size.is_power_of_two());
        self.addr / block_size
    }

    /// The 4-byte word index of this reference (the paper's MTC request
    /// granularity, §5.2).
    pub fn word(&self) -> u64 {
        self.addr / 4
    }

    /// `true` if the access lies entirely within one `block_size` block.
    pub fn fits_in_block(&self, block_size: u64) -> bool {
        let last = self.addr + u64::from(self.size) - 1;
        self.block(block_size) == last / block_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(MemRef::read(8, 4).kind, AccessKind::Read);
        assert_eq!(MemRef::write(8, 4).kind, AccessKind::Write);
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
    }

    #[test]
    fn block_and_word_indices() {
        let r = MemRef::read(100, 4);
        assert_eq!(r.block(32), 3);
        assert_eq!(r.block(64), 1);
        assert_eq!(r.word(), 25);
    }

    #[test]
    fn fits_in_block_detects_straddles() {
        assert!(MemRef::read(28, 4).fits_in_block(32));
        assert!(!MemRef::read(30, 4).fits_in_block(32));
        assert!(MemRef::read(0, 8).fits_in_block(8));
        assert!(!MemRef::read(4, 8).fits_in_block(8));
    }
}
