//! Dependency-annotated micro-operations.
//!
//! The timing simulators in `membw-sim` are *trace-driven*: instead of
//! executing an ISA, they consume a stream of micro-ops that carry exactly
//! the information a cycle-level core model needs — operation class (which
//! fixes functional-unit latency), register dependencies, memory address
//! for loads/stores, and branch identity/outcome for the predictor. The
//! workload generators in `membw-workloads` emit these alongside the memory
//! references so that the memory behaviour is identical across the paper's
//! three decomposition runs.

use crate::record::MemRef;
use serde::{Deserialize, Serialize};

/// A logical register name.
///
/// The trace uses a flat namespace of up to 64 logical registers; the
/// out-of-order model renames them into the RUU.
pub type Reg = u8;

/// Number of logical registers in the trace namespace.
pub const NUM_REGS: usize = 64;

/// Operation classes, each with a fixed execution latency.
///
/// Latencies follow SimpleScalar's defaults for the classes the paper's
/// experiments exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU op (1 cycle).
    IntAlu,
    /// Integer multiply (3 cycles).
    IntMul,
    /// Floating-point add/sub/compare (2 cycles).
    FpAdd,
    /// Floating-point multiply (4 cycles).
    FpMul,
    /// Floating-point divide (12 cycles, unpipelined in spirit).
    FpDiv,
    /// Memory load; latency comes from the memory hierarchy.
    Load,
    /// Memory store; retires through the write buffer.
    Store,
    /// Conditional branch (1 cycle to resolve once operands ready).
    Branch,
}

impl OpClass {
    /// Fixed execution latency in cycles (loads/stores report their
    /// address-generation latency; memory time is added by the hierarchy).
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Branch => 1,
            OpClass::IntMul => 3,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            OpClass::Load | OpClass::Store => 1,
        }
    }

    /// `true` for [`OpClass::Load`] and [`OpClass::Store`].
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// `true` for floating-point classes.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }
}

/// Identity and outcome of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Static address of the branch instruction (predictor index).
    pub pc: u64,
    /// Whether the branch was taken.
    pub taken: bool,
}

/// One micro-operation of the trace.
///
/// # Example
///
/// ```
/// use membw_trace::{MemRef, OpClass, Uop};
///
/// let load = Uop::load(MemRef::read(0x100, 4), Some(1), [Some(2), None]);
/// assert_eq!(load.class, OpClass::Load);
/// assert!(load.reads(2));
/// assert!(load.writes(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uop {
    /// Operation class.
    pub class: OpClass,
    /// Destination register, if any.
    pub dest: Option<Reg>,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Memory reference, present iff `class` is `Load` or `Store`.
    pub mem: Option<MemRef>,
    /// Branch identity/outcome, present iff `class` is `Branch`.
    pub branch: Option<BranchInfo>,
}

impl Uop {
    /// A computational uop of the given class.
    pub fn compute(class: OpClass, dest: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        debug_assert!(!class.is_mem() && class != OpClass::Branch);
        Self {
            class,
            dest,
            srcs,
            mem: None,
            branch: None,
        }
    }

    /// A load uop producing `dest` from `mem`, with `srcs` feeding the
    /// address computation.
    pub fn load(mem: MemRef, dest: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        debug_assert!(mem.kind.is_read());
        Self {
            class: OpClass::Load,
            dest,
            srcs,
            mem: Some(mem),
            branch: None,
        }
    }

    /// A store uop writing `mem`, with `srcs` providing address and data.
    pub fn store(mem: MemRef, srcs: [Option<Reg>; 2]) -> Self {
        debug_assert!(mem.kind.is_write());
        Self {
            class: OpClass::Store,
            dest: None,
            srcs,
            mem: Some(mem),
            branch: None,
        }
    }

    /// A conditional branch at `pc` with the given outcome, reading `srcs`.
    pub fn branch(pc: u64, taken: bool, srcs: [Option<Reg>; 2]) -> Self {
        Self {
            class: OpClass::Branch,
            dest: None,
            srcs,
            mem: None,
            branch: Some(BranchInfo { pc, taken }),
        }
    }

    /// Wrap a bare memory reference as a dependency-free load/store uop.
    pub fn from_mem_ref(mem: MemRef) -> Self {
        if mem.kind.is_read() {
            Uop::load(mem, None, [None, None])
        } else {
            Uop::store(mem, [None, None])
        }
    }

    /// `true` if this uop reads register `r`.
    pub fn reads(&self, r: Reg) -> bool {
        self.srcs.contains(&Some(r))
    }

    /// `true` if this uop writes register `r`.
    pub fn writes(&self, r: Reg) -> bool {
        self.dest == Some(r)
    }

    /// `true` if this uop is a load or store.
    pub fn is_mem(&self) -> bool {
        self.class.is_mem()
    }

    /// `true` if this uop is a conditional branch.
    pub fn is_branch(&self) -> bool {
        self.class == OpClass::Branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MemRef;

    #[test]
    fn latencies_are_ordered_sensibly() {
        assert_eq!(OpClass::IntAlu.latency(), 1);
        assert!(OpClass::IntMul.latency() > OpClass::IntAlu.latency());
        assert!(OpClass::FpMul.latency() > OpClass::FpAdd.latency());
        assert!(OpClass::FpDiv.latency() > OpClass::FpMul.latency());
    }

    #[test]
    fn class_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
        assert!(OpClass::FpAdd.is_fp());
        assert!(!OpClass::IntAlu.is_fp());
    }

    #[test]
    fn constructors_populate_fields() {
        let b = Uop::branch(0x40, true, [Some(3), None]);
        assert!(b.is_branch());
        assert_eq!(b.branch.unwrap().pc, 0x40);
        assert!(b.branch.unwrap().taken);
        assert!(b.reads(3));
        assert!(!b.reads(4));

        let s = Uop::store(MemRef::write(8, 4), [Some(1), Some(2)]);
        assert!(s.is_mem());
        assert_eq!(s.dest, None);
        assert!(!s.writes(1));

        let c = Uop::compute(OpClass::FpMul, Some(7), [Some(1), Some(2)]);
        assert!(c.writes(7));
        assert_eq!(c.mem, None);
    }

    #[test]
    fn from_mem_ref_maps_kind() {
        assert_eq!(Uop::from_mem_ref(MemRef::read(0, 4)).class, OpClass::Load);
        assert_eq!(Uop::from_mem_ref(MemRef::write(0, 4)).class, OpClass::Store);
    }
}
