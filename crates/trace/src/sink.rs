//! Trace sinks: consumers of a generated uop stream.

use crate::record::MemRef;
use crate::uop::Uop;

/// A consumer of micro-ops, fed by [`Workload::generate`].
///
/// [`Workload::generate`]: crate::Workload::generate
pub trait TraceSink {
    /// Consume one uop, in program order.
    fn uop(&mut self, uop: Uop);
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn uop(&mut self, uop: Uop) {
        (**self).uop(uop)
    }
}

/// Collects every uop into a vector.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    uops: Vec<Uop>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the collector, returning the uops in program order.
    pub fn into_uops(self) -> Vec<Uop> {
        self.uops
    }

    /// The uops collected so far.
    pub fn uops(&self) -> &[Uop] {
        &self.uops
    }
}

impl TraceSink for CollectSink {
    fn uop(&mut self, uop: Uop) {
        self.uops.push(uop);
    }
}

/// Counts uops and memory references without storing them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountSink {
    /// Total uops seen.
    pub uops: u64,
    /// Loads seen.
    pub loads: u64,
    /// Stores seen.
    pub stores: u64,
    /// Conditional branches seen.
    pub branches: u64,
}

impl CountSink {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads plus stores.
    pub fn mem_refs(&self) -> u64 {
        self.loads + self.stores
    }
}

impl TraceSink for CountSink {
    fn uop(&mut self, uop: Uop) {
        self.uops += 1;
        match uop.mem {
            Some(m) if m.kind.is_read() => self.loads += 1,
            Some(_) => self.stores += 1,
            None => {}
        }
        if uop.is_branch() {
            self.branches += 1;
        }
    }
}

/// Adapts a closure into a [`TraceSink`].
pub struct FnSink<F: FnMut(Uop)> {
    f: F,
}

impl<F: FnMut(Uop)> FnSink<F> {
    /// Wrap `f` as a sink.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: FnMut(Uop)> TraceSink for FnSink<F> {
    fn uop(&mut self, uop: Uop) {
        (self.f)(uop)
    }
}

impl<F: FnMut(Uop)> std::fmt::Debug for FnSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSink").finish_non_exhaustive()
    }
}

/// Filters the uop stream down to its memory references, feeding a closure.
pub struct MemRefFnSink<'a> {
    f: &'a mut dyn FnMut(MemRef),
}

impl<'a> MemRefFnSink<'a> {
    /// Wrap `f` as a memory-reference sink.
    pub fn new(f: &'a mut dyn FnMut(MemRef)) -> Self {
        Self { f }
    }
}

impl TraceSink for MemRefFnSink<'_> {
    fn uop(&mut self, uop: Uop) {
        if let Some(m) = uop.mem {
            (self.f)(m);
        }
    }
}

impl std::fmt::Debug for MemRefFnSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemRefFnSink").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MemRef;
    use crate::uop::OpClass;

    fn sample() -> Vec<Uop> {
        vec![
            Uop::compute(OpClass::IntAlu, Some(1), [None, None]),
            Uop::load(MemRef::read(0, 4), Some(2), [Some(1), None]),
            Uop::store(MemRef::write(4, 4), [Some(2), None]),
            Uop::branch(0x10, true, [Some(2), None]),
        ]
    }

    #[test]
    fn collect_sink_preserves_order() {
        let mut s = CollectSink::new();
        for u in sample() {
            s.uop(u);
        }
        assert_eq!(s.uops().len(), 4);
        assert_eq!(s.into_uops(), sample());
    }

    #[test]
    fn count_sink_classifies() {
        let mut s = CountSink::new();
        for u in sample() {
            s.uop(u);
        }
        assert_eq!(s.uops, 4);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.mem_refs(), 2);
    }

    #[test]
    fn mem_ref_sink_filters() {
        let mut seen = Vec::new();
        {
            let mut f = |m: MemRef| seen.push(m);
            let mut s = MemRefFnSink::new(&mut f);
            for u in sample() {
                s.uop(u);
            }
        }
        assert_eq!(seen, vec![MemRef::read(0, 4), MemRef::write(4, 4)]);
    }

    #[test]
    fn fn_sink_forwards_everything() {
        let mut n = 0u32;
        {
            let mut s = FnSink::new(|_| n += 1);
            for u in sample() {
                s.uop(u);
            }
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn sink_by_mut_reference_delegates() {
        let mut inner = CountSink::new();
        {
            let outer: &mut dyn TraceSink = &mut inner;
            outer.uop(Uop::compute(OpClass::IntAlu, None, [None, None]));
        }
        assert_eq!(inner.uops, 1);
    }
}
