//! Coarse-grained speculation with task squashes (§2.2's Multiscalar
//! argument).
//!
//! "Processors that rely heavily on coarse-grained speculative execution
//! … increase memory traffic whenever they must squash a task after an
//! incorrect speculation." This wrapper splits a workload's uop stream
//! into fixed-size tasks and, for a deterministic fraction of them, emits
//! the task's uops *twice*: once as the squashed (wrong-path) attempt —
//! whose memory traffic is real but whose architectural work is thrown
//! away — and once as the re-execution.

use crate::record::MemRef;
use crate::sink::{CollectSink, TraceSink};
use crate::uop::Uop;
use crate::Workload;

/// Deterministic splitmix-style hash used for squash decisions.
fn hash(x: u64) -> u64 {
    let mut x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A workload executed under coarse-grained speculation: some tasks run
/// twice (squash + replay).
#[derive(Debug, Clone)]
pub struct Squashing<W> {
    inner: W,
    task_uops: usize,
    /// Squash probability as a fraction of 256 (0 = never, 256 = always).
    squash_per_256: u32,
    seed: u64,
}

impl<W: Workload> Squashing<W> {
    /// Wrap `inner` with tasks of `task_uops` uops and a squash
    /// probability of `squash_per_256 / 256`.
    ///
    /// # Panics
    ///
    /// Panics if `task_uops` is zero or `squash_per_256 > 256`.
    pub fn new(inner: W, task_uops: usize, squash_per_256: u32, seed: u64) -> Self {
        assert!(task_uops > 0, "tasks must contain at least one uop");
        assert!(squash_per_256 <= 256, "probability is out of 256");
        Self {
            inner,
            task_uops,
            squash_per_256,
            seed,
        }
    }

    /// Number of tasks that would squash for a stream of `n` uops.
    pub fn expected_squashes(&self, n: usize) -> usize {
        let tasks = n.div_ceil(self.task_uops);
        (0..tasks)
            .filter(|&t| hash(self.seed ^ t as u64) % 256 < u64::from(self.squash_per_256))
            .count()
    }
}

impl<W: Workload> Workload for Squashing<W> {
    fn name(&self) -> &str {
        "squashing"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut collected = CollectSink::new();
        self.inner.generate(&mut collected);
        let uops = collected.into_uops();
        for (t, task) in uops.chunks(self.task_uops).enumerate() {
            let squash = hash(self.seed ^ t as u64) % 256 < u64::from(self.squash_per_256);
            if squash {
                // Wrong-path attempt: the task speculated down the wrong
                // control path, so its loads touch *different* data (a
                // task-dependent displacement models the wrong iteration
                // space); stores are suppressed (they never commit).
                let displacement = (hash(self.seed ^ 0xbad ^ t as u64) % (1 << 16)) & !3;
                for &u in task {
                    match u.mem {
                        Some(m) if m.kind.is_write() => continue,
                        Some(m) => {
                            let mut wrong = u;
                            wrong.mem = Some(MemRef {
                                addr: m.addr.wrapping_add(displacement),
                                ..m
                            });
                            sink.uop(wrong);
                        }
                        None => sink.uop(u),
                    }
                }
            }
            // The committed execution (re-execution after a squash).
            for &u in task {
                sink.uop(u);
            }
        }
    }

    fn for_each_mem_ref(&self, f: &mut dyn FnMut(MemRef)) {
        // Default adaptation through generate keeps squash semantics.
        let mut sink = crate::sink::MemRefFnSink::new(f);
        self.generate(&mut sink);
    }
}

/// Convenience: the uop overhead factor of a squash-rate sweep point.
pub fn overhead_factor<W: Workload>(w: &Squashing<W>) -> f64 {
    let base: Vec<Uop> = w.inner.collect_uops();
    let with: Vec<Uop> = w.collect_uops();
    with.len() as f64 / base.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Strided;
    use crate::stats::TraceStats;

    #[test]
    fn zero_squash_rate_is_identity() {
        let inner = Strided::reads(0, 4, 1000).with_write_every(4);
        let sq = Squashing::new(inner.clone(), 64, 0, 1);
        assert_eq!(sq.collect_mem_refs(), inner.collect_mem_refs());
    }

    #[test]
    fn full_squash_rate_roughly_doubles_loads() {
        let inner = Strided::reads(0, 4, 1024);
        let sq = Squashing::new(inner.clone(), 64, 256, 1);
        let base = TraceStats::of(&inner);
        let spec = TraceStats::of(&sq);
        assert_eq!(spec.reads, base.reads * 2, "every task replays its loads");
    }

    #[test]
    fn squashed_stores_never_reach_memory_twice() {
        let inner = Strided::reads(0, 4, 512).with_write_every(2);
        let sq = Squashing::new(inner.clone(), 64, 256, 1);
        let base = TraceStats::of(&inner);
        let spec = TraceStats::of(&sq);
        assert_eq!(spec.writes, base.writes, "wrong-path stores are suppressed");
        assert_eq!(spec.reads, base.reads * 2);
    }

    #[test]
    fn squash_traffic_grows_with_rate() {
        let inner = Strided::reads(0, 4, 4096);
        let none = TraceStats::of(&Squashing::new(inner.clone(), 128, 0, 9)).refs;
        let some = TraceStats::of(&Squashing::new(inner.clone(), 128, 64, 9)).refs;
        let lots = TraceStats::of(&Squashing::new(inner, 128, 192, 9)).refs;
        assert!(none < some && some < lots, "{none} {some} {lots}");
    }

    #[test]
    fn squash_decisions_are_deterministic() {
        let inner = Strided::reads(0, 4, 2048);
        let a = Squashing::new(inner.clone(), 64, 128, 3).collect_mem_refs();
        let b = Squashing::new(inner, 64, 128, 3).collect_mem_refs();
        assert_eq!(a, b);
    }

    #[test]
    fn expected_squashes_matches_generation() {
        let inner = Strided::reads(0, 4, 4096);
        let sq = Squashing::new(inner.clone(), 128, 128, 5);
        let n = inner.collect_uops().len();
        let expected = sq.expected_squashes(n);
        // Count replayed tasks by comparing lengths.
        let base_reads = TraceStats::of(&inner).reads as usize;
        let spec_reads = TraceStats::of(&sq).reads as usize;
        let replayed_loads = spec_reads - base_reads;
        // Each squashed 128-uop task replays up to 128 loads.
        assert!(replayed_loads > 0 && expected > 0);
        assert!(replayed_loads <= expected * 128);
    }
}
