//! Aggregate statistics over a memory-reference trace.

use crate::record::MemRef;
use crate::Workload;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Summary statistics for a memory-reference stream.
///
/// `footprint` is counted at 4-byte word granularity (the paper's request
/// granularity); [`TraceStats::footprint_bytes`] scales it to any block
/// size by counting distinct blocks instead.
///
/// # Example
///
/// ```
/// use membw_trace::{MemRef, VecWorkload, stats::TraceStats};
///
/// let w = VecWorkload::new("t", vec![
///     MemRef::read(0, 4), MemRef::read(0, 4), MemRef::write(4, 4),
/// ]);
/// let s = TraceStats::of(&w);
/// assert_eq!(s.refs, 3);
/// assert_eq!(s.reads, 2);
/// assert_eq!(s.writes, 1);
/// assert_eq!(s.unique_words, 2);
/// assert_eq!(s.request_bytes, 12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total references.
    pub refs: u64,
    /// Load references.
    pub reads: u64,
    /// Store references.
    pub writes: u64,
    /// Sum of access sizes in bytes (the denominator of the level-0 traffic
    /// ratio, §4.1: loads and stores issued times the load/store size).
    pub request_bytes: u64,
    /// Distinct 4-byte words touched.
    pub unique_words: u64,
}

impl TraceStats {
    /// Compute statistics for a workload's memory-reference stream.
    pub fn of<W: Workload + ?Sized>(workload: &W) -> Self {
        let mut builder = TraceStatsBuilder::new();
        workload.for_each_mem_ref(&mut |r| builder.record(r));
        builder.finish()
    }

    /// Fraction of references that are writes (0 when the trace is empty).
    pub fn write_fraction(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.writes as f64 / self.refs as f64
        }
    }

    /// Footprint in bytes at word granularity.
    ///
    /// `block_size` rounds the word footprint up to whole blocks — an upper
    /// bound for blocks larger than a word; exact for `block_size == 4`.
    pub fn footprint_bytes(&self, _block_size: u64) -> u64 {
        self.unique_words * 4
    }

    /// Footprint in mebibytes (the unit of the paper's Table 3).
    pub fn footprint_mib(&self) -> f64 {
        (self.unique_words * 4) as f64 / (1024.0 * 1024.0)
    }
}

/// Incremental builder for [`TraceStats`], usable as a streaming recorder.
#[derive(Debug, Default, Clone)]
pub struct TraceStatsBuilder {
    stats: TraceStats,
    words: HashSet<u64>,
}

impl TraceStatsBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one reference.
    pub fn record(&mut self, r: MemRef) {
        self.stats.refs += 1;
        if r.kind.is_read() {
            self.stats.reads += 1;
        } else {
            self.stats.writes += 1;
        }
        self.stats.request_bytes += u64::from(r.size);
        // A reference may span multiple words (e.g. an 8-byte access).
        let first = r.addr / 4;
        let last = (r.addr + u64::from(r.size).max(1) - 1) / 4;
        for w in first..=last {
            self.words.insert(w);
        }
    }

    /// Finalize the statistics.
    pub fn finish(mut self) -> TraceStats {
        self.stats.unique_words = self.words.len() as u64;
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecWorkload;

    #[test]
    fn counts_reads_and_writes() {
        let w = VecWorkload::new(
            "t",
            vec![MemRef::read(0, 4), MemRef::write(8, 4), MemRef::write(8, 4)],
        );
        let s = TraceStats::of(&w);
        assert_eq!(s.refs, 3);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert!((s.write_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_zero_write_fraction() {
        let s = TraceStats::of(&VecWorkload::new("e", vec![]));
        assert_eq!(s.write_fraction(), 0.0);
        assert_eq!(s.unique_words, 0);
    }

    #[test]
    fn wide_access_touches_multiple_words() {
        let w = VecWorkload::new("t", vec![MemRef::read(0, 8)]);
        let s = TraceStats::of(&w);
        assert_eq!(s.unique_words, 2);
        assert_eq!(s.request_bytes, 8);
    }

    #[test]
    fn footprint_units() {
        let refs: Vec<_> = (0..1024).map(|i| MemRef::read(i * 4, 4)).collect();
        let s = TraceStats::of(&VecWorkload::new("t", refs));
        assert_eq!(s.footprint_bytes(4), 4096);
        assert!((s.footprint_mib() - 4096.0 / 1048576.0).abs() < 1e-12);
    }
}
