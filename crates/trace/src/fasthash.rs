//! A fast, non-cryptographic hasher for block-number keys.
//!
//! The hot loops of the simulators (the **min** cache's residency map,
//! the next-use builder's last-seen map) key hash maps by block number —
//! small integers written once per access. `std`'s default SipHash is
//! DoS-resistant but costs tens of cycles per lookup; these maps never
//! see attacker-controlled keys, so a single multiply-xor mix
//! (Fibonacci hashing with an xorshift finalizer, as in FxHash/wyhash)
//! is both sufficient and several times faster.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// Multiply-mix hasher for integer keys (not DoS-resistant — use only
/// where keys are trusted, e.g. block numbers from a trace).
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

/// 2^64 / phi, the classic Fibonacci-hashing multiplier.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        let x = (self.state ^ word).wrapping_mul(K);
        self.state = x ^ (x >> 29);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips() {
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 7, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 7)), Some(&i));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn sequential_keys_spread() {
        // Fibonacci hashing must not collapse consecutive block numbers
        // into consecutive hashes (which would degrade the map's probe
        // behaviour less than a pathological hasher, but check spread
        // anyway): the low bits of the finished hash should vary.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u64 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 0x3F);
        }
        assert!(low_bits.len() > 32, "hashes cluster: {}", low_bits.len());
    }

    #[test]
    fn byte_writes_match_word_writes_for_padded_input() {
        let mut a = FastHasher::default();
        a.write_u64(0xDEAD_BEEF);
        let mut b = FastHasher::default();
        b.write(&0xDEAD_BEEFu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
