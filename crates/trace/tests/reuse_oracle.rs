//! Property tests pitting the Fenwick-tree reuse-distance implementation
//! against a naive O(N²) oracle.

use membw_trace::reuse::ReuseProfile;
use membw_trace::{MemRef, VecWorkload};
use proptest::prelude::*;
use std::collections::HashSet;

/// Naive stack-distance: count distinct blocks between consecutive uses.
fn naive_lru_misses(blocks: &[u64], capacity: u64) -> u64 {
    let mut misses = 0u64;
    for (i, &b) in blocks.iter().enumerate() {
        match blocks[..i].iter().rposition(|&x| x == b) {
            None => misses += 1,
            Some(prev) => {
                let distinct: HashSet<u64> = blocks[prev + 1..i].iter().copied().collect();
                if distinct.len() as u64 >= capacity {
                    misses += 1;
                }
            }
        }
    }
    misses
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fenwick_matches_naive_oracle(
        blocks in prop::collection::vec(0u64..32, 1..200),
        capacity in 1u64..16,
    ) {
        let refs: Vec<MemRef> = blocks.iter().map(|&b| MemRef::read(b * 32, 4)).collect();
        let profile = ReuseProfile::measure(&VecWorkload::new("t", refs), 32);
        prop_assert_eq!(
            profile.lru_misses(capacity),
            naive_lru_misses(&blocks, capacity)
        );
    }

    #[test]
    fn total_accesses_conserved(blocks in prop::collection::vec(0u64..64, 0..300)) {
        let refs: Vec<MemRef> = blocks.iter().map(|&b| MemRef::read(b * 32, 4)).collect();
        let profile = ReuseProfile::measure(&VecWorkload::new("t", refs), 32);
        prop_assert_eq!(profile.total(), blocks.len() as u64);
        // Cold misses equal the number of distinct blocks.
        let distinct: HashSet<u64> = blocks.iter().copied().collect();
        prop_assert_eq!(profile.cold_misses(), distinct.len() as u64);
        // An infinite cache only takes the cold misses.
        prop_assert_eq!(profile.lru_misses(u64::MAX), profile.cold_misses());
    }

    #[test]
    fn misses_monotone_nonincreasing_in_capacity(
        blocks in prop::collection::vec(0u64..48, 1..250),
    ) {
        let refs: Vec<MemRef> = blocks.iter().map(|&b| MemRef::read(b * 32, 4)).collect();
        let profile = ReuseProfile::measure(&VecWorkload::new("t", refs), 32);
        let mut last = u64::MAX;
        for c in 1..20 {
            let m = profile.lru_misses(c);
            prop_assert!(m <= last);
            last = m;
        }
    }
}
