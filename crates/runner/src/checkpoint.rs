//! Matrix checkpointing: persist completed job results so an
//! interrupted campaign resumes instead of recomputing.
//!
//! # Layout
//!
//! ```text
//! <root>/<label>-<fnv64(key) as hex>/
//!     meta.json     {"key": "<full key>", "jobs": N}
//!     <index>.json  one archived job result per completed job
//! ```
//!
//! The key encodes everything the job matrix depends on (target, scale,
//! matrix shape — workload seeds are compile-time constants covered by
//! the key's version tag), so a config change lands in a different
//! directory and can never replay stale results. A `meta.json` mismatch
//! within a directory (hash collision or layout change) wipes the
//! directory rather than trusting it.
//!
//! Writes go through a temp file + rename so a job killed mid-write
//! leaves no torn `<index>.json` behind; a torn or corrupt file is
//! treated as "not checkpointed" and recomputed. Because every job is a
//! pure function of its index and the serialization round trip is
//! lossless (bit-exact floats), a resumed run's merged output is
//! byte-identical to an uninterrupted one at any thread count.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Where checkpoints live and whether existing ones may be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Root directory (`repro` uses `results/.checkpoint`).
    pub root: PathBuf,
    /// Replay completed results from a previous run (`--resume`).
    /// When false, everything is recomputed and checkpoints are
    /// overwritten in place.
    pub resume: bool,
}

/// 64-bit FNV-1a — stable across runs and platforms (unlike
/// `DefaultHasher`, which makes no cross-version promise).
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Keep only filesystem-safe characters from a batch label.
fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// One batch's open checkpoint directory.
#[derive(Debug)]
pub(crate) struct Store {
    dir: PathBuf,
    resume: bool,
    /// Set once a save fails, so the warning prints once per batch.
    write_warned: Mutex<bool>,
}

impl Store {
    /// Open (creating or validating) the checkpoint directory for a
    /// batch. Returns `None` — checkpointing disabled, jobs just run —
    /// if the directory cannot be prepared; the campaign must not fail
    /// because its checkpoint store is unavailable.
    pub(crate) fn open(
        cfg: &CheckpointConfig,
        label: &str,
        key: &str,
        jobs: usize,
    ) -> Option<Store> {
        let dir = cfg.root.join(format!("{}-{:016x}", slug(label), fnv64(key)));
        let meta = serde_json::to_string(&Meta {
            key: key.to_string(),
            jobs: jobs as u64,
        })
        .expect("meta serializes");
        let meta_path = dir.join("meta.json");
        match std::fs::read_to_string(&meta_path) {
            Ok(existing) if existing == meta => {}
            Ok(_) => {
                // Same directory name, different batch identity: never
                // trust its contents.
                let _ = std::fs::remove_dir_all(&dir);
                write_meta(&dir, &meta_path, &meta)?;
            }
            Err(_) => write_meta(&dir, &meta_path, &meta)?,
        }
        Some(Store {
            dir,
            resume: cfg.resume,
            write_warned: Mutex::new(false),
        })
    }

    /// Load job `i`'s archived result, if resuming and present.
    pub(crate) fn load<T: Deserialize>(&self, i: usize) -> Option<T> {
        if !self.resume {
            return None;
        }
        let text = std::fs::read_to_string(self.dir.join(format!("{i}.json"))).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Persist job `i`'s result. Failure to write degrades to "no
    /// checkpoint" with a single stderr warning — it never fails the
    /// job.
    pub(crate) fn save<T: Serialize>(&self, i: usize, value: &T) {
        let body = serde_json::to_string_pretty(value).expect("job result serializes");
        let tmp = self.dir.join(format!("{i}.json.tmp"));
        let fin = self.dir.join(format!("{i}.json"));
        let result = std::fs::write(&tmp, body).and_then(|()| std::fs::rename(&tmp, &fin));
        if let Err(e) = result {
            let mut warned = self.write_warned.lock().expect("warn flag");
            if !*warned {
                *warned = true;
                eprintln!(
                    "warning: checkpoint write failed under {} ({e}); resume disabled for this batch",
                    self.dir.display()
                );
            }
        }
    }
}

fn write_meta(dir: &Path, meta_path: &Path, meta: &str) -> Option<()> {
    std::fs::create_dir_all(dir).ok()?;
    std::fs::write(meta_path, meta).ok()
}

#[derive(Serialize)]
struct Meta {
    key: String,
    jobs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("membw_ckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trips_job_results() {
        let root = tmp("round");
        let cfg = CheckpointConfig {
            root: root.clone(),
            resume: true,
        };
        let store = Store::open(&cfg, "t8", "v1/t8/test/7", 7).expect("open");
        assert_eq!(store.load::<u64>(3), None, "nothing archived yet");
        store.save(3, &42u64);
        assert_eq!(store.load::<u64>(3), Some(42));
        // resume=false ignores existing archives but still writes.
        let store = Store::open(
            &CheckpointConfig {
                root: root.clone(),
                resume: false,
            },
            "t8",
            "v1/t8/test/7",
            7,
        )
        .expect("open");
        assert_eq!(store.load::<u64>(3), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn key_change_invalidates_the_directory() {
        let root = tmp("invalid");
        let cfg = CheckpointConfig {
            root: root.clone(),
            resume: true,
        };
        let store = Store::open(&cfg, "t8", "v1/a", 4).expect("open");
        store.save(0, &1u64);
        let dir = store.dir.clone();
        // Forge a different meta under the same directory name.
        std::fs::write(dir.join("meta.json"), "{\"key\": \"other\", \"jobs\": 4}").unwrap();
        let store = Store::open(&cfg, "t8", "v1/a", 4).expect("open");
        assert_eq!(store.load::<u64>(0), None, "stale results wiped");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_archive_is_recomputed_not_trusted() {
        let root = tmp("corrupt");
        let cfg = CheckpointConfig {
            root: root.clone(),
            resume: true,
        };
        let store = Store::open(&cfg, "x", "v1/x", 2).expect("open");
        std::fs::write(store.dir.join("0.json"), "{ not json").unwrap();
        assert_eq!(store.load::<u64>(0), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: the on-disk layout depends on this value never moving.
        assert_eq!(fnv64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(slug("fig3/SPEC92 (test)"), "fig3_SPEC92__test_");
    }
}
