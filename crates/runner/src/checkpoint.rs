//! Matrix checkpointing: persist completed job results so an
//! interrupted campaign resumes instead of recomputing.
//!
//! # Layout
//!
//! ```text
//! <root>/<label>-<fnv64(key) as hex>/
//!     meta.json     {"key": "<full key>", "jobs": N}
//!     <index>.json  one archived job result per completed job
//! ```
//!
//! The key encodes everything the job matrix depends on (target, scale,
//! matrix shape — workload seeds are compile-time constants covered by
//! the key's version tag), so a config change lands in a different
//! directory and can never replay stale results. A `meta.json` mismatch
//! within a directory (hash collision or layout change) wipes the
//! directory rather than trusting it.
//!
//! # Integrity
//!
//! Every `<index>.json` carries a content checksum header:
//!
//! ```text
//! #membw-ckpt fnv64=0123456789abcdef
//! { ...the archived JSON body... }
//! ```
//!
//! On load the body is re-hashed; a mismatch (bit rot, a torn write
//! that survived rename, manual editing) **quarantines** the artifact —
//! it is renamed to `<index>.json.corrupt`, a structured warning names
//! it on stderr, and the job is recomputed. Corrupt checkpoints are
//! therefore never served, and never crash a campaign.
//!
//! Writes go through a temp file that is fsynced and then renamed, so a
//! job killed mid-write (or a full disk) leaves no torn `<index>.json`
//! behind; a failed write degrades to "no checkpoint" with a warning
//! naming the operation, path, and OS error (`ENOSPC` included).
//! Orphaned `*.tmp` files from a killed run are swept when the batch
//! directory is reopened. Because every job is a pure function of its
//! index and the serialization round trip is lossless (bit-exact
//! floats), a resumed run's merged output is byte-identical to an
//! uninterrupted one at any thread count.

use crate::persist;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Where checkpoints live and whether existing ones may be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Root directory (`repro` uses `results/.checkpoint`).
    pub root: PathBuf,
    /// Replay completed results from a previous run (`--resume`).
    /// When false, everything is recomputed and checkpoints are
    /// overwritten in place.
    pub resume: bool,
}

/// Checkpoint artifacts quarantined (renamed to `*.corrupt`) by this
/// process because their checksum or structure did not verify.
static QUARANTINED: AtomicU64 = AtomicU64::new(0);

/// How many corrupt checkpoint artifacts this process has quarantined.
pub fn quarantined_artifacts() -> u64 {
    QUARANTINED.load(Ordering::Relaxed)
}

/// Keep only filesystem-safe characters from a batch label.
fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// One batch's open checkpoint directory.
#[derive(Debug)]
pub(crate) struct Store {
    dir: PathBuf,
    resume: bool,
    /// Set once a save fails, so the warning prints once per batch.
    write_warned: Mutex<bool>,
}

impl Store {
    /// Open (creating or validating) the checkpoint directory for a
    /// batch, sweeping any orphaned `*.tmp` files a killed run left
    /// behind. Returns `None` — checkpointing disabled, jobs just run —
    /// if the directory cannot be prepared; the campaign must not fail
    /// because its checkpoint store is unavailable.
    pub(crate) fn open(
        cfg: &CheckpointConfig,
        label: &str,
        key: &str,
        jobs: usize,
    ) -> Option<Store> {
        let dir = cfg
            .root
            .join(format!("{}-{:016x}", slug(label), persist::fnv64(key)));
        let meta = serde_json::to_string(&Meta {
            key: key.to_string(),
            jobs: jobs as u64,
        })
        .expect("meta serializes");
        let meta_path = dir.join("meta.json");
        match std::fs::read_to_string(&meta_path) {
            Ok(existing) if existing == meta => {}
            Ok(_) => {
                // Same directory name, different batch identity: never
                // trust its contents.
                let _ = std::fs::remove_dir_all(&dir);
                write_meta(&dir, &meta_path, &meta)?;
            }
            Err(_) => write_meta(&dir, &meta_path, &meta)?,
        }
        persist::sweep_orphaned_tmp(&dir);
        persist::sweep_corrupt_retention(&dir, persist::CORRUPT_KEEP_DEFAULT);
        Some(Store {
            dir,
            resume: cfg.resume,
            write_warned: Mutex::new(false),
        })
    }

    /// Load job `i`'s archived result, if resuming and present.
    ///
    /// An artifact whose checksum header is missing, malformed, or
    /// wrong — or whose verified body still fails to deserialize — is
    /// quarantined (renamed to `<i>.json.corrupt`, with a stderr
    /// warning) and reported as "not checkpointed", so the job is
    /// recomputed rather than served corrupt data.
    pub(crate) fn load<T: Deserialize>(&self, i: usize) -> Option<T> {
        if !self.resume {
            return None;
        }
        let path = self.dir.join(format!("{i}.json"));
        let text = std::fs::read_to_string(&path).ok()?;
        let parsed = persist::unseal(&text).and_then(|body| serde_json::from_str(body).ok());
        if parsed.is_none() {
            self.quarantine(&path);
        }
        parsed
    }

    /// Rename a failed-verification artifact aside (`<path>.corrupt`,
    /// `<path>.corrupt-2`, …) so it is preserved for inspection but
    /// never consulted again; the retention sweep on the next open
    /// bounds how many generations accumulate.
    fn quarantine(&self, path: &Path) {
        let corrupt = persist::quarantine_path(path);
        QUARANTINED.fetch_add(1, Ordering::Relaxed);
        match crate::faultio::rename(path, &corrupt) {
            Ok(()) => eprintln!(
                "warning: checkpoint {} failed verification; quarantined to {} and recomputing",
                path.display(),
                corrupt.display()
            ),
            Err(e) => {
                // Last resort: make sure the bad artifact cannot be
                // replayed on the next resume either.
                let _ = crate::faultio::remove_file(path);
                eprintln!(
                    "warning: checkpoint {} failed verification and could not be quarantined \
                     ({e}); removed and recomputing",
                    path.display()
                );
            }
        }
    }

    /// Persist job `i`'s result with a content checksum, via an fsynced
    /// temp file + rename. Failure to write (`ENOSPC`, permissions, a
    /// short write) degrades to "no checkpoint" with a single stderr
    /// warning naming the operation, path, and OS error — it never
    /// fails the job.
    pub(crate) fn save<T: Serialize>(&self, i: usize, value: &T) {
        let body = serde_json::to_string_pretty(value).expect("job result serializes");
        let sealed = persist::seal(&body);
        let fin = self.dir.join(format!("{i}.json"));
        if let Err((context, path, e)) = persist::write_atomic(&fin, sealed.as_bytes()) {
            let mut warned = self.write_warned.lock().expect("warn flag");
            if !*warned {
                *warned = true;
                eprintln!(
                    "warning: cannot {context} at {} ({e}); resume disabled for this batch",
                    path.display()
                );
            }
        }
    }
}

fn write_meta(dir: &Path, meta_path: &Path, meta: &str) -> Option<()> {
    crate::faultio::create_dir_all(dir).ok()?;
    // Atomic + fsynced like every other artifact: a crash mid-meta must
    // not leave a directory whose identity file is torn (a torn meta
    // would wipe the directory's completed checkpoints on reopen).
    match persist::write_atomic(meta_path, meta.as_bytes()) {
        Ok(()) => Some(()),
        Err((context, path, e)) => {
            eprintln!(
                "warning: cannot {context} at {} ({e}); checkpointing disabled for this batch",
                path.display()
            );
            None
        }
    }
}

#[derive(Serialize)]
struct Meta {
    key: String,
    jobs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("membw_ckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trips_job_results() {
        let root = tmp("round");
        let cfg = CheckpointConfig {
            root: root.clone(),
            resume: true,
        };
        let store = Store::open(&cfg, "t8", "v1/t8/test/7", 7).expect("open");
        assert_eq!(store.load::<u64>(3), None, "nothing archived yet");
        store.save(3, &42u64);
        assert_eq!(store.load::<u64>(3), Some(42));
        // resume=false ignores existing archives but still writes.
        let store = Store::open(
            &CheckpointConfig {
                root: root.clone(),
                resume: false,
            },
            "t8",
            "v1/t8/test/7",
            7,
        )
        .expect("open");
        assert_eq!(store.load::<u64>(3), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn key_change_invalidates_the_directory() {
        let root = tmp("invalid");
        let cfg = CheckpointConfig {
            root: root.clone(),
            resume: true,
        };
        let store = Store::open(&cfg, "t8", "v1/a", 4).expect("open");
        store.save(0, &1u64);
        let dir = store.dir.clone();
        // Forge a different meta under the same directory name.
        std::fs::write(dir.join("meta.json"), "{\"key\": \"other\", \"jobs\": 4}").unwrap();
        let store = Store::open(&cfg, "t8", "v1/a", 4).expect("open");
        assert_eq!(store.load::<u64>(0), None, "stale results wiped");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_archive_is_quarantined_not_trusted() {
        let root = tmp("corrupt");
        let cfg = CheckpointConfig {
            root: root.clone(),
            resume: true,
        };
        let store = Store::open(&cfg, "x", "v1/x", 2).expect("open");
        std::fs::write(store.dir.join("0.json"), "{ not json").unwrap();
        let before = quarantined_artifacts();
        assert_eq!(store.load::<u64>(0), None);
        assert_eq!(quarantined_artifacts(), before + 1);
        assert!(
            store.dir.join("0.json.corrupt").exists(),
            "bad artifact preserved under quarantine"
        );
        assert!(!store.dir.join("0.json").exists());
        // A second load sees nothing (no double quarantine, no crash).
        assert_eq!(store.load::<u64>(0), None);
        assert_eq!(quarantined_artifacts(), before + 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let root = tmp("flip");
        let cfg = CheckpointConfig {
            root: root.clone(),
            resume: true,
        };
        let store = Store::open(&cfg, "x", "v1/flip", 1).expect("open");
        store.save(0, &1234567u64);
        let path = store.dir.join("0.json");
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a digit inside the JSON body: still valid JSON, wrong
        // value — only the checksum can catch it.
        let pos = bytes.len() - 2;
        bytes[pos] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            store.load::<u64>(0),
            None,
            "checksum must reject a silently-altered body"
        );
        assert!(store.dir.join("0.json.corrupt").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn headerless_legacy_artifacts_are_quarantined() {
        let root = tmp("legacy");
        let cfg = CheckpointConfig {
            root: root.clone(),
            resume: true,
        };
        let store = Store::open(&cfg, "x", "v1/legacy", 1).expect("open");
        // A pre-checksum artifact: valid JSON, no header. Unverifiable
        // bytes are never replayed into results.
        std::fs::write(store.dir.join("0.json"), "7").unwrap();
        assert_eq!(store.load::<u64>(0), None);
        assert!(store.dir.join("0.json.corrupt").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn orphaned_tmp_files_are_swept_on_open() {
        let root = tmp("orphan");
        let cfg = CheckpointConfig {
            root: root.clone(),
            resume: true,
        };
        let store = Store::open(&cfg, "x", "v1/orphan", 2).expect("open");
        let orphan = store.dir.join("1.json.tmp");
        std::fs::write(&orphan, "half-written").unwrap();
        let store = Store::open(&cfg, "x", "v1/orphan", 2).expect("reopen");
        assert!(!orphan.exists(), "reopen sweeps orphaned tmp files");
        assert_eq!(store.load::<u64>(1), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn labels_are_slugged() {
        assert_eq!(slug("fig3/SPEC92 (test)"), "fig3_SPEC92__test_");
    }

    #[test]
    fn repeated_quarantines_keep_distinct_generations() {
        let root = tmp("regen");
        let cfg = CheckpointConfig {
            root: root.clone(),
            resume: true,
        };
        let store = Store::open(&cfg, "x", "v1/regen", 1).expect("open");
        for gen in ["first bad", "second bad"] {
            std::fs::write(store.dir.join("0.json"), gen).unwrap();
            assert_eq!(store.load::<u64>(0), None);
        }
        assert!(store.dir.join("0.json.corrupt").exists());
        assert!(
            store.dir.join("0.json.corrupt-2").exists(),
            "second failure must not overwrite the first generation"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_bounds_the_quarantine_backlog() {
        let root = tmp("rebound");
        let cfg = CheckpointConfig {
            root: root.clone(),
            resume: true,
        };
        let store = Store::open(&cfg, "x", "v1/rebound", 1).expect("open");
        for gen in 0..6 {
            std::fs::write(store.dir.join("0.json"), format!("bad {gen}")).unwrap();
            assert_eq!(store.load::<u64>(0), None);
        }
        let count = |dir: &std::path::Path| {
            std::fs::read_dir(dir)
                .unwrap()
                .flatten()
                .filter(|e| e.path().to_string_lossy().contains(".corrupt"))
                .count()
        };
        assert_eq!(count(&store.dir), 6);
        let store = Store::open(&cfg, "x", "v1/rebound", 1).expect("reopen");
        assert_eq!(
            count(&store.dir),
            crate::persist::CORRUPT_KEEP_DEFAULT,
            "reopen trims the backlog to the newest generations"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
