//! Durable artifact persistence: the one place that knows how to get
//! bytes onto disk so that a crash — at any instant — leaves either the
//! previous artifact or the new one, never a torn hybrid.
//!
//! Three layers, each usable on its own:
//!
//! * **Atomic writes** — [`write_atomic`] writes to a `*.tmp` sibling,
//!   fsyncs, then renames onto the destination. A process killed
//!   mid-write leaves only the orphaned temp file, which
//!   [`sweep_orphaned_tmp`] removes the next time the directory is
//!   opened.
//! * **Content seals** — [`seal`] prefixes a body with its FNV-1a 64
//!   checksum (`#membw-ckpt fnv64=…`); [`unseal`] verifies and strips
//!   it. Bit rot, manual edits, and torn writes that somehow survive
//!   the rename are all caught at read time.
//! * **Quarantine retention** — artifacts that fail verification are
//!   renamed aside with [`quarantine_path`] (never deleted, so they can
//!   be inspected) and [`sweep_corrupt_retention`] bounds how many
//!   quarantined generations a flaky disk can accumulate per artifact.
//!
//! The checkpoint store (PR 4), the `repro` JSON archives, and the
//! `membw serve` result store all persist through this module, so their
//! crash-safety stories are literally the same code path. Every
//! filesystem operation goes through [`faultio`](crate::faultio), so
//! the `MEMBW_IO_FAULT` plan — short writes, injected `ENOSPC`, failing
//! `fsync`, torn renames, a crash at any I/O point — exercises exactly
//! the code production runs.
//!
//! Temp files are named `<artifact>.p<pid>.tmp`, so the orphan sweep
//! can tell a *dead* writer's leftovers (swept) from a *live* sibling
//! process writing into the same directory (left alone).

use crate::faultio::{self, Dir, DurableFile};
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a over a string — stable across runs and platforms
/// (unlike `DefaultHasher`, which makes no cross-version promise).
pub fn fnv64(s: &str) -> u64 {
    fnv64_bytes(s.as_bytes())
}

/// FNV-1a over raw bytes (the content checksum of sealed artifacts).
pub fn fnv64_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The checksum header prefix of a sealed artifact.
pub const SEAL_HEADER: &str = "#membw-ckpt fnv64=";

/// Prefix `body` with its content checksum header.
pub fn seal(body: &str) -> String {
    format!("{SEAL_HEADER}{:016x}\n{body}", fnv64_bytes(body.as_bytes()))
}

/// Split a sealed artifact into its verified body, or `None` if the
/// header is missing/malformed or the checksum does not match.
pub fn unseal(text: &str) -> Option<&str> {
    let rest = text.strip_prefix(SEAL_HEADER)?;
    let (hex, body) = rest.split_once('\n')?;
    let stored = u64::from_str_radix(hex, 16).ok()?;
    (stored == fnv64_bytes(body.as_bytes())).then_some(body)
}

/// A failed persistence step: which operation failed, on which path,
/// and the OS error — the same shape `MembwError::Io` renders.
pub type PersistError = (&'static str, PathBuf, std::io::Error);

/// The temp sibling this process writes `fin` through:
/// `<fin>.p<pid>.tmp`. The embedded PID lets [`sweep_orphaned_tmp`]
/// distinguish a dead writer's leftovers from a live one's in-flight
/// file.
pub fn tmp_path(fin: &Path) -> PathBuf {
    let mut tmp = fin.as_os_str().to_owned();
    tmp.push(format!(".p{}.tmp", std::process::id()));
    PathBuf::from(tmp)
}

/// Write `bytes` to `fin` durably: create `<fin>.p<pid>.tmp`, write,
/// fsync, rename onto `fin`, fsync the parent directory. A crash at any
/// point leaves either the old `fin` (plus at worst an orphaned temp
/// file) or the complete new one.
///
/// # Errors
///
/// Names the failed operation and path (`ENOSPC`, permissions, short
/// writes included); the temp file is removed on failure. Sync errors
/// are returned from the explicit `fsync` calls here — never deferred
/// to a file-handle drop that cannot report them.
pub fn write_atomic(fin: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = tmp_path(fin);
    let result = write_atomic_at(&tmp, fin, bytes);
    if result.is_err() {
        let _ = faultio::remove_file(&tmp);
    }
    result
}

fn write_atomic_at(tmp: &Path, fin: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let mut f = DurableFile::create(tmp)
        .map_err(|e| ("create artifact temp file", tmp.to_path_buf(), e))?;
    f.write_all(bytes)
        .map_err(|e| ("write artifact", tmp.to_path_buf(), e))?;
    // fsync before rename: otherwise a crash can leave a renamed but
    // empty/short file, which is exactly the torn artifact the rename
    // is meant to rule out.
    f.sync_all()
        .map_err(|e| ("fsync artifact", tmp.to_path_buf(), e))?;
    drop(f);
    faultio::rename(tmp, fin).map_err(|e| ("publish artifact", fin.to_path_buf(), e))?;
    // fsync the directory so the new *entry* survives power loss too; a
    // crash before this point replays the old artifact, which is fine.
    if let Some(parent) = fin.parent().filter(|p| !p.as_os_str().is_empty()) {
        let dir =
            Dir::open(parent).map_err(|e| ("open artifact directory", parent.to_path_buf(), e))?;
        dir.sync_all()
            .map_err(|e| ("fsync artifact directory", parent.to_path_buf(), e))?;
    }
    Ok(())
}

/// The PID embedded in a `<artifact>.p<pid>.tmp` name, if the name has
/// that shape. Legacy bare `*.tmp` names yield `None`.
fn tmp_owner_pid(name: &str) -> Option<u32> {
    let stem = name.strip_suffix(".tmp")?;
    let (_, pid) = stem.rsplit_once(".p")?;
    pid.parse().ok()
}

/// True when the process that owns a temp file is still alive (Linux:
/// `/proc/<pid>` exists). On platforms without `/proc` every owner
/// looks dead, which degrades to the historical sweep-everything
/// behaviour.
fn tmp_owner_alive(pid: u32) -> bool {
    Path::new("/proc").join(pid.to_string()).exists()
}

/// Remove `*.tmp` leftovers from a process that was killed mid-save,
/// returning how many were removed. A temp file whose embedded PID
/// belongs to a still-running process is an in-flight write by a live
/// sibling and is left alone; bare legacy `*.tmp` names (no PID) are
/// always swept.
pub fn sweep_orphaned_tmp(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "tmp") {
            continue;
        }
        let owner = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(tmp_owner_pid);
        if owner.is_some_and(tmp_owner_alive) {
            continue;
        }
        if faultio::remove_file(&path).is_ok() {
            swept += 1;
        }
    }
    swept
}

/// Default number of quarantined generations kept per artifact by
/// [`sweep_corrupt_retention`].
pub const CORRUPT_KEEP_DEFAULT: usize = 3;

/// A fresh quarantine destination for `path`: `<path>.corrupt` if free,
/// else `<path>.corrupt-2`, `<path>.corrupt-3`, … so repeated failures
/// of the same artifact keep distinct generations (which the retention
/// sweep then bounds) instead of silently overwriting the evidence.
pub fn quarantine_path(path: &Path) -> PathBuf {
    let base = {
        let mut s = path.as_os_str().to_owned();
        s.push(".corrupt");
        PathBuf::from(s)
    };
    if !base.exists() {
        return base;
    }
    for n in 2u64.. {
        let mut s = path.as_os_str().to_owned();
        s.push(format!(".corrupt-{n}"));
        let candidate = PathBuf::from(s);
        if !candidate.exists() {
            return candidate;
        }
    }
    unreachable!("some quarantine suffix is always free")
}

/// The quarantine family an artifact belongs to: `x.json.corrupt` and
/// `x.json.corrupt-7` both map to `x.json`.
fn corrupt_base(path: &Path) -> Option<String> {
    let name = path.file_name()?.to_str()?;
    let (base, suffix) = name.rsplit_once(".corrupt")?;
    if suffix.is_empty()
        || suffix
            .strip_prefix('-')
            .is_some_and(|n| n.parse::<u64>().is_ok())
    {
        Some(base.to_string())
    } else {
        None
    }
}

/// Bound the quarantine backlog in `dir`: for each artifact, keep the
/// `keep` newest `*.corrupt` generations (by modification time, then
/// name) and delete the rest, logging what was dropped. Returns the
/// number of files removed. A flaky disk can therefore never grow a
/// results directory without bound.
pub fn sweep_corrupt_retention(dir: &Path, keep: usize) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    // Group quarantine files by the artifact they came from.
    let mut families: std::collections::BTreeMap<String, Vec<PathBuf>> =
        std::collections::BTreeMap::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if let Some(base) = corrupt_base(&path) {
            families.entry(base).or_default().push(path);
        }
    }
    let mut dropped = 0usize;
    for (base, mut paths) in families {
        if paths.len() <= keep {
            continue;
        }
        // Newest first: modification time descending, then name
        // descending as the deterministic tie-break (generation
        // suffixes grow over time).
        paths.sort_by(|a, b| {
            let mt = |p: &Path| std::fs::metadata(p).and_then(|m| m.modified()).ok();
            mt(b).cmp(&mt(a)).then_with(|| b.cmp(a))
        });
        let excess = paths.split_off(keep);
        let n = excess.len();
        for p in &excess {
            let _ = std::fs::remove_file(p);
        }
        dropped += n;
        eprintln!(
            "warning: quarantine retention dropped {n} older corrupt artifact(s) of {base} \
             under {} (keeping the {keep} newest)",
            dir.display()
        );
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("membw_persist_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: on-disk layouts depend on these values never moving.
        assert_eq!(fnv64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn seal_unseal_roundtrip_and_reject() {
        let sealed = seal("{\"x\": 1}");
        assert!(sealed.starts_with(SEAL_HEADER));
        assert_eq!(unseal(&sealed), Some("{\"x\": 1}"));
        let tampered = sealed.replace('1', "2");
        assert_eq!(unseal(&tampered), None);
        assert_eq!(unseal("#membw-ckpt fnv64=zz\nbody"), None);
        assert_eq!(unseal("no header at all"), None);
    }

    #[test]
    fn write_atomic_publishes_and_cleans_tmp() {
        let dir = tmpdir("atomic");
        let fin = dir.join("out.json");
        write_atomic(&fin, b"hello").unwrap();
        assert_eq!(std::fs::read(&fin).unwrap(), b"hello");
        assert!(!tmp_path(&fin).exists());
        // Overwrite in place is atomic too.
        write_atomic(&fin, b"world").unwrap();
        assert_eq!(std::fs::read(&fin).unwrap(), b"world");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_failure_names_operation_and_path() {
        let dir = tmpdir("atomic_fail");
        let fin = dir.join("no/such/dir/out.json");
        let (ctx, path, _) = write_atomic(&fin, b"x").unwrap_err();
        assert_eq!(ctx, "create artifact temp file");
        let name = path.to_string_lossy().into_owned();
        assert!(
            name.contains("out.json.p") && name.ends_with(".tmp"),
            "temp name carries the artifact and writer pid: {name}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_tmp_files_are_swept() {
        let dir = tmpdir("sweep");
        std::fs::write(dir.join("a.json.tmp"), "half").unwrap();
        std::fs::write(dir.join("b.json"), "whole").unwrap();
        assert_eq!(sweep_orphaned_tmp(&dir), 1);
        assert!(!dir.join("a.json.tmp").exists());
        assert!(dir.join("b.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_spares_a_live_writers_tmp_and_claims_dead_ones() {
        let dir = tmpdir("liveness");
        // Our own in-flight write: the sweep must not race us.
        let alive = tmp_path(&dir.join("mine.json"));
        std::fs::write(&alive, "in flight").unwrap();
        // A writer that no longer exists (PIDs are bounded well below
        // this on Linux), and a pre-PID legacy name.
        let dead = dir.join("theirs.json.p999999999.tmp");
        std::fs::write(&dead, "orphan").unwrap();
        let legacy = dir.join("old.json.tmp");
        std::fs::write(&legacy, "orphan").unwrap();
        assert_eq!(sweep_orphaned_tmp(&dir), 2);
        assert!(alive.exists(), "live sibling's tmp must survive the sweep");
        assert!(!dead.exists());
        assert!(!legacy.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_owner_pid_parses_only_the_pid_shape() {
        assert_eq!(tmp_owner_pid("x.json.p1234.tmp"), Some(1234));
        assert_eq!(tmp_owner_pid("x.json.tmp"), None);
        assert_eq!(tmp_owner_pid("x.json.pabc.tmp"), None);
        assert_eq!(tmp_owner_pid("x.json.p12"), None);
    }

    #[test]
    fn quarantine_paths_never_collide() {
        let dir = tmpdir("qpath");
        let artifact = dir.join("3.json");
        let q1 = quarantine_path(&artifact);
        assert!(q1.to_string_lossy().ends_with("3.json.corrupt"));
        std::fs::write(&q1, "gen1").unwrap();
        let q2 = quarantine_path(&artifact);
        assert!(q2.to_string_lossy().ends_with("3.json.corrupt-2"));
        std::fs::write(&q2, "gen2").unwrap();
        let q3 = quarantine_path(&artifact);
        assert!(q3.to_string_lossy().ends_with("3.json.corrupt-3"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_base_groups_generations() {
        assert_eq!(
            corrupt_base(Path::new("/x/3.json.corrupt")),
            Some("3.json".into())
        );
        assert_eq!(
            corrupt_base(Path::new("/x/3.json.corrupt-12")),
            Some("3.json".into())
        );
        assert_eq!(corrupt_base(Path::new("/x/3.json")), None);
        assert_eq!(corrupt_base(Path::new("/x/3.json.corrupted")), None);
    }

    #[test]
    fn retention_keeps_the_newest_n_per_artifact() {
        let dir = tmpdir("retention");
        // Five generations of one artifact, two of another; mtimes are
        // too coarse to distinguish here, so the name tie-break rules.
        for name in [
            "0.json.corrupt",
            "0.json.corrupt-2",
            "0.json.corrupt-3",
            "0.json.corrupt-4",
            "0.json.corrupt-5",
            "1.json.corrupt",
            "1.json.corrupt-2",
        ] {
            std::fs::write(dir.join(name), name).unwrap();
        }
        let dropped = sweep_corrupt_retention(&dir, 3);
        assert_eq!(dropped, 2, "five generations of 0.json minus three kept");
        assert!(dir.join("0.json.corrupt-5").exists());
        assert!(dir.join("0.json.corrupt-4").exists());
        assert!(dir.join("0.json.corrupt-3").exists());
        assert!(!dir.join("0.json.corrupt-2").exists());
        assert!(!dir.join("0.json.corrupt").exists());
        // The under-bound family is untouched.
        assert!(dir.join("1.json.corrupt").exists());
        assert!(dir.join("1.json.corrupt-2").exists());
        // Idempotent: a second sweep drops nothing.
        assert_eq!(sweep_corrupt_retention(&dir, 3), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
