//! Deterministic I/O fault injection: the facade every durable write
//! in the workspace goes through, and the one place the failure surface
//! of the filesystem itself becomes injectable.
//!
//! The durability story built by the checkpoint store, the `.mwtr`
//! writer, the signature store, and the `membw serve` result store is a
//! *claim* until something actually makes `write(2)` return short,
//! `fsync` fail, or the process die between `rename` and the next line.
//! This module makes all of that a pure function of an environment
//! variable, so the crash-consistency proof in
//! `tests/crash_consistency.rs` can enumerate every I/O point of a
//! workload and kill the process at each one.
//!
//! # `MEMBW_IO_FAULT` grammar
//!
//! Comma-separated directives (strictly validated; a typo is a
//! named-variable error and a refusal to start):
//!
//! * `enospc[:P]` — write operations fail as if the disk were full;
//!   with `:P` only the P-th write operation (1-based, process-wide),
//!   without it every one.
//! * `eintr` — the first write attempt of every logical write returns
//!   `EINTR`; a correct caller retries and the output bytes are
//!   unchanged (this *proves* the retry loop exists).
//! * `shortwrite` — write operations write only half the buffer per
//!   call, so a single `write_all` needs several raw writes; output
//!   bytes are unchanged if and only if the loop is correct.
//! * `fsyncfail[:P]` — fsync operations (file and directory) fail
//!   with an injected I/O error.
//! * `tornrename[:P]` — instead of an atomic rename, half the source
//!   bytes are copied to the destination and the operation fails: the
//!   torn publish a non-atomic filesystem could leave behind. Readers
//!   must quarantine the destination, never serve it.
//! * `crash@K` — the process hard-aborts (`std::process::abort`, no
//!   destructors, no flushes) immediately before executing the K-th
//!   I/O point. While a crash (or count) plan is active, logical
//!   writes are split in two so crash points land *inside* writes too.
//! * `count:PATH` — no faults; after every I/O point the running
//!   count, operation, and path are written to `PATH`, so a harness
//!   can enumerate the I/O points of a workload before exploring them.
//!
//! # I/O points
//!
//! Every operation performed through this module — create, raw write,
//! fsync, rename, remove, mkdir — is one I/O point, numbered from 1 in
//! process order. `crash@K` therefore reaches states like "temp file
//! created but empty", "half the payload written", "fsynced but not
//! renamed", and "renamed but the directory not yet fsynced".
//!
//! With `MEMBW_IO_FAULT` unset the facade is pass-through: one relaxed
//! atomic load per operation, no counting, no bookkeeping.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Environment variable carrying the I/O fault plan.
pub const IO_FAULT_ENV: &str = "MEMBW_IO_FAULT";

/// Which operations of one kind a directive selects. Public so other
/// fault layers (the serve crate's `MEMBW_NET_FAULT` wire plan) reuse
/// the exact `all`-vs-`Nth` semantics instead of reinventing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Select {
    /// Directive absent.
    #[default]
    Off,
    /// Every operation of the kind.
    All,
    /// Only the N-th operation of the kind (1-based, process-wide).
    Nth(u64),
}

impl Select {
    /// True when the directive fires on the `n`-th operation (1-based).
    pub fn hits(self, n: u64) -> bool {
        match self {
            Select::Off => false,
            Select::All => true,
            Select::Nth(k) => k == n,
        }
    }
}

/// A parsed `MEMBW_IO_FAULT` plan. See the [module docs](self) for the
/// grammar.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    crash_at: Option<u64>,
    count_to: Option<PathBuf>,
    enospc: Select,
    fsyncfail: Select,
    tornrename: Select,
    eintr: bool,
    shortwrite: bool,
}

impl FaultPlan {
    /// Strictly parse a [`IO_FAULT_ENV`] spec.
    ///
    /// # Errors
    ///
    /// Names the variable and the offending entry, like every other
    /// fault-env validator in the workspace.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let bad = |entry: &str, why: &str| {
            format!(
                "invalid {IO_FAULT_ENV} entry {entry:?}: {why} (expected \
                 enospc[:pth]|eintr|shortwrite|fsyncfail[:pth]|tornrename[:pth]|crash@K|count:PATH)"
            )
        };
        let nth = |entry: &str, arg: &str| -> Result<Select, String> {
            match arg.parse::<u64>() {
                Ok(n) if n >= 1 => Ok(Select::Nth(n)),
                _ => Err(bad(entry, "the operation index must be a positive integer")),
            }
        };
        for entry in spec.split(',') {
            let entry = entry.trim();
            match entry {
                "eintr" => plan.eintr = true,
                "shortwrite" => plan.shortwrite = true,
                "enospc" => plan.enospc = Select::All,
                "fsyncfail" => plan.fsyncfail = Select::All,
                "tornrename" => plan.tornrename = Select::All,
                _ => {
                    if let Some(p) = entry.strip_prefix("enospc:") {
                        plan.enospc = nth(entry, p)?;
                    } else if let Some(p) = entry.strip_prefix("fsyncfail:") {
                        plan.fsyncfail = nth(entry, p)?;
                    } else if let Some(p) = entry.strip_prefix("tornrename:") {
                        plan.tornrename = nth(entry, p)?;
                    } else if let Some(k) = entry.strip_prefix("crash@") {
                        match k.parse::<u64>() {
                            Ok(k) if k >= 1 => plan.crash_at = Some(k),
                            _ => {
                                return Err(bad(entry, "crash@K needs a positive I/O point number"))
                            }
                        }
                    } else if let Some(path) = entry.strip_prefix("count:") {
                        if path.is_empty() {
                            return Err(bad(entry, "count: needs a file path"));
                        }
                        plan.count_to = Some(PathBuf::from(path));
                    } else {
                        return Err(bad(entry, "unknown directive"));
                    }
                }
            }
        }
        Ok(plan)
    }

    /// True when the plan wants fine-grained I/O points: logical writes
    /// are split in two so a crash (or the count) can land mid-write.
    fn stepped(&self) -> bool {
        self.crash_at.is_some() || self.count_to.is_some()
    }
}

/// Strictly validate a [`IO_FAULT_ENV`] spec without installing it.
///
/// # Errors
///
/// The named-variable parse error.
pub fn validate_spec(spec: &str) -> Result<(), String> {
    FaultPlan::parse(spec).map(|_| ())
}

// ---------------------------------------------------------------------
// Plan installation and the I/O point counter.

/// Fast-path gate: false means "no plan, no bookkeeping".
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
static ENV_READ: Once = Once::new();

static IO_POINTS: AtomicU64 = AtomicU64::new(0);
static WRITE_OPS: AtomicU64 = AtomicU64::new(0);
static FSYNC_OPS: AtomicU64 = AtomicU64::new(0);
static RENAME_OPS: AtomicU64 = AtomicU64::new(0);

fn install(plan: Option<FaultPlan>) {
    let mut slot = PLAN.lock().expect("fault plan");
    // Each installed plan counts points and per-operation ordinals from
    // 1: `enospc:N` means the N-th write *under this plan*, not the
    // N-th since the process started — in-process harnesses install
    // plans repeatedly and must not inherit a previous plan's progress.
    IO_POINTS.store(0, Ordering::SeqCst);
    WRITE_OPS.store(0, Ordering::SeqCst);
    FSYNC_OPS.store(0, Ordering::SeqCst);
    RENAME_OPS.store(0, Ordering::SeqCst);
    ACTIVE.store(plan.is_some(), Ordering::SeqCst);
    *slot = plan.map(Arc::new);
}

fn init_from_env() {
    ENV_READ.call_once(|| {
        if let Ok(spec) = std::env::var(IO_FAULT_ENV) {
            match FaultPlan::parse(&spec) {
                Ok(plan) => install(Some(plan)),
                Err(e) => {
                    // Drivers validate up front and exit 2; a library
                    // hitting a malformed spec honours the same
                    // contract — refuse to run, never silently ignore
                    // an injection hook.
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
    });
}

/// Install (or with `None` clear) the process-wide fault plan,
/// overriding whatever [`IO_FAULT_ENV`] said. Test harnesses that run
/// the daemon in-process use this; CLI runs never call it.
pub fn set_plan(plan: Option<FaultPlan>) {
    ENV_READ.call_once(|| {}); // disarm the env initializer
    install(plan);
}

/// The number of I/O points executed so far under an active plan
/// (always 0 when no plan is installed — the pass-through path does no
/// counting).
pub fn io_points() -> u64 {
    IO_POINTS.load(Ordering::SeqCst)
}

fn current() -> Option<Arc<FaultPlan>> {
    init_from_env();
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    PLAN.lock().expect("fault plan").clone()
}

/// Count one I/O point; honour `count:` and `crash@K`.
fn io_point(plan: &FaultPlan, op: &str, path: &Path) {
    let k = IO_POINTS.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(file) = &plan.count_to {
        // Bypasses the facade on purpose: the bookkeeping file is not
        // part of the workload under test.
        let _ = std::fs::write(file, format!("{k} {op} {}\n", path.display()));
    }
    if plan.crash_at == Some(k) {
        eprintln!(
            "faultio: injected crash at I/O point {k} (before {op} {})",
            path.display()
        );
        std::process::abort();
    }
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected {what} ({IO_FAULT_ENV})"))
}

// ---------------------------------------------------------------------
// The facade.

/// A file opened for durable writing through the fault plan. Wraps
/// create/write/fsync; [`rename`], [`remove_file`], [`create_dir_all`]
/// and [`Dir`] cover the rest of the durable-write vocabulary.
#[derive(Debug)]
pub struct DurableFile {
    file: std::fs::File,
    path: PathBuf,
}

impl DurableFile {
    /// Create (truncating) `path` for writing. One I/O point.
    ///
    /// # Errors
    ///
    /// The underlying create error.
    pub fn create(path: &Path) -> io::Result<DurableFile> {
        if let Some(plan) = current() {
            io_point(&plan, "create", path);
        }
        Ok(DurableFile {
            file: std::fs::File::create(path)?,
            path: path.to_path_buf(),
        })
    }

    /// Write all of `buf`, retrying interrupted and short writes. Under
    /// an active plan each raw write attempt is one I/O point; `eintr`,
    /// `shortwrite`, and `enospc` inject here.
    ///
    /// # Errors
    ///
    /// The underlying (or injected) write error; `EINTR` is always
    /// retried, a short write always continued.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let Some(plan) = current() else {
            return self.file.write_all(buf);
        };
        let mut rest = buf;
        // One mid-buffer boundary is enough to prove the loop and to
        // give crash plans a torn-write state to land on.
        let mut split_pending = (plan.shortwrite || plan.stepped()) && rest.len() >= 2;
        let mut eintr_pending = plan.eintr;
        while !rest.is_empty() {
            let nth_write = WRITE_OPS.fetch_add(1, Ordering::SeqCst) + 1;
            io_point(&plan, "write", &self.path);
            let attempt: io::Result<usize> = if eintr_pending {
                eintr_pending = false;
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected EINTR ({IO_FAULT_ENV})"),
                ))
            } else if plan.enospc.hits(nth_write) {
                Err(injected("ENOSPC: no space left on device"))
            } else {
                let take = if split_pending {
                    split_pending = false;
                    (rest.len() / 2).max(1)
                } else {
                    rest.len()
                };
                self.file.write_all(&rest[..take]).map(|()| take)
            };
            match attempt {
                Ok(n) => rest = &rest[n..],
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Fsync the file. One I/O point; `fsyncfail` injects here. The
    /// error is returned — never deferred to a drop that cannot report
    /// it.
    ///
    /// # Errors
    ///
    /// The underlying (or injected) fsync error.
    pub fn sync_all(&self) -> io::Result<()> {
        let Some(plan) = current() else {
            return self.file.sync_all();
        };
        let nth = FSYNC_OPS.fetch_add(1, Ordering::SeqCst) + 1;
        io_point(&plan, "fsync", &self.path);
        if plan.fsyncfail.hits(nth) {
            return Err(injected("fsync failure"));
        }
        self.file.sync_all()
    }
}

/// A directory handle for rename durability: after publishing via
/// [`rename`], fsyncing the parent directory makes the new directory
/// entry itself survive power loss.
#[derive(Debug)]
pub struct Dir {
    file: std::fs::File,
    path: PathBuf,
}

impl Dir {
    /// Open `path` (a directory) for fsync.
    ///
    /// # Errors
    ///
    /// The underlying open error.
    pub fn open(path: &Path) -> io::Result<Dir> {
        Ok(Dir {
            file: std::fs::File::open(path)?,
            path: path.to_path_buf(),
        })
    }

    /// Fsync the directory. One I/O point; `fsyncfail` injects here
    /// too (directory fsync fails the same way file fsync does).
    ///
    /// # Errors
    ///
    /// The underlying (or injected) fsync error.
    pub fn sync_all(&self) -> io::Result<()> {
        let Some(plan) = current() else {
            return self.file.sync_all();
        };
        let nth = FSYNC_OPS.fetch_add(1, Ordering::SeqCst) + 1;
        io_point(&plan, "fsyncdir", &self.path);
        if plan.fsyncfail.hits(nth) {
            return Err(injected("directory fsync failure"));
        }
        self.file.sync_all()
    }
}

/// Rename `from` onto `to`. One I/O point; `tornrename` injects here:
/// half the source bytes land at the destination and the call fails,
/// simulating the torn publish of a non-atomic filesystem.
///
/// # Errors
///
/// The underlying (or injected) rename error.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    let Some(plan) = current() else {
        return std::fs::rename(from, to);
    };
    let nth = RENAME_OPS.fetch_add(1, Ordering::SeqCst) + 1;
    io_point(&plan, "rename", to);
    if plan.tornrename.hits(nth) {
        let bytes = std::fs::read(from).unwrap_or_default();
        let _ = std::fs::write(to, &bytes[..bytes.len() / 2]);
        let _ = std::fs::remove_file(from);
        return Err(injected("torn rename"));
    }
    std::fs::rename(from, to)
}

/// Remove `path`. One I/O point (so crash plans cover sweep/cleanup
/// states); no fault directive targets removes.
///
/// # Errors
///
/// The underlying remove error.
pub fn remove_file(path: &Path) -> io::Result<()> {
    if let Some(plan) = current() {
        io_point(&plan, "remove", path);
    }
    std::fs::remove_file(path)
}

/// Create `path` and its ancestors. One I/O point.
///
/// # Errors
///
/// The underlying mkdir error.
pub fn create_dir_all(path: &Path) -> io::Result<()> {
    if let Some(plan) = current() {
        io_point(&plan, "mkdir", path);
    }
    std::fs::create_dir_all(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plan-installing tests share the process-wide plan; serialize
    /// them so parallel test threads never see each other's injection.
    static PLAN_LOCK: Mutex<()> = Mutex::new(());

    fn with_plan<R>(spec: &str, f: impl FnOnce() -> R) -> R {
        let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_plan(Some(FaultPlan::parse(spec).expect("test spec")));
        let out = f();
        set_plan(None);
        out
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("membw_faultio_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn specs_parse_strictly() {
        assert!(FaultPlan::parse("eintr").unwrap().eintr);
        assert!(FaultPlan::parse("shortwrite").unwrap().shortwrite);
        assert_eq!(FaultPlan::parse("enospc").unwrap().enospc, Select::All);
        assert_eq!(FaultPlan::parse("enospc:3").unwrap().enospc, Select::Nth(3));
        assert_eq!(
            FaultPlan::parse("fsyncfail:1").unwrap().fsyncfail,
            Select::Nth(1)
        );
        assert_eq!(
            FaultPlan::parse("tornrename").unwrap().tornrename,
            Select::All
        );
        assert_eq!(FaultPlan::parse("crash@7").unwrap().crash_at, Some(7));
        let combo = FaultPlan::parse("eintr, shortwrite, fsyncfail:2").unwrap();
        assert!(combo.eintr && combo.shortwrite);
        assert_eq!(combo.fsyncfail, Select::Nth(2));
        assert_eq!(
            FaultPlan::parse("count:/tmp/points").unwrap().count_to,
            Some(PathBuf::from("/tmp/points"))
        );
        for bad in [
            "",
            "enospcc",
            "enospc:",
            "enospc:0",
            "enospc:x",
            "crash@",
            "crash@0",
            "crash@x",
            "count:",
            "eintr;shortwrite",
        ] {
            let e = FaultPlan::parse(bad).unwrap_err();
            assert!(e.contains(IO_FAULT_ENV), "{bad:?} -> {e}");
        }
    }

    #[test]
    fn eintr_and_shortwrite_are_transparent_to_a_correct_loop() {
        let dir = tmpdir("transparent");
        let path = dir.join("payload");
        let body = b"0123456789abcdef0123456789abcdef";
        with_plan("eintr, shortwrite", || {
            let mut f = DurableFile::create(&path).unwrap();
            f.write_all(body).unwrap();
            f.sync_all().unwrap();
        });
        assert_eq!(std::fs::read(&path).unwrap(), body, "bytes unchanged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_and_fsyncfail_inject_errors() {
        let dir = tmpdir("errs");
        with_plan("enospc", || {
            let mut f = DurableFile::create(&dir.join("a")).unwrap();
            let e = f.write_all(b"xx").unwrap_err();
            assert!(e.to_string().contains("ENOSPC"), "{e}");
        });
        with_plan("fsyncfail", || {
            let mut f = DurableFile::create(&dir.join("b")).unwrap();
            f.write_all(b"xx").unwrap();
            let e = f.sync_all().unwrap_err();
            assert!(e.to_string().contains("injected fsync"), "{e}");
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_rename_leaves_half_the_bytes_and_fails() {
        let dir = tmpdir("torn");
        let src = dir.join("src");
        let dst = dir.join("dst");
        std::fs::write(&src, b"0123456789").unwrap();
        with_plan("tornrename", || {
            let e = rename(&src, &dst).unwrap_err();
            assert!(e.to_string().contains("torn rename"), "{e}");
        });
        assert!(!src.exists(), "torn rename consumes the source");
        assert_eq!(std::fs::read(&dst).unwrap(), b"01234", "half published");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn count_mode_enumerates_points() {
        let dir = tmpdir("count");
        let counter = dir.join("points");
        let spec = format!("count:{}", counter.display());
        with_plan(&spec, || {
            let mut f = DurableFile::create(&dir.join("x")).unwrap();
            f.write_all(b"0123456789").unwrap(); // stepped: two raw writes
            f.sync_all().unwrap();
            rename(&dir.join("x"), &dir.join("y")).unwrap();
        });
        let last = std::fs::read_to_string(&counter).unwrap();
        let k: u64 = last.split_whitespace().next().unwrap().parse().unwrap();
        assert!(k >= 5, "create + 2 writes + fsync + rename, got {last:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nth_selection_spares_other_operations() {
        let dir = tmpdir("nth");
        with_plan("enospc:2", || {
            // Ordinals restart at plan installation, so "the second
            // write" is deterministic no matter what ran before.
            let mut f = DurableFile::create(&dir.join("a")).unwrap();
            f.write_all(b"first").unwrap(); // write #1: fine
            let e = f.write_all(b"second").unwrap_err(); // write #2: injected
            assert!(e.to_string().contains("ENOSPC"), "{e}");
            assert_eq!(WRITE_OPS.load(Ordering::SeqCst), 2);
            f.write_all(b"third").unwrap(); // later writes unaffected
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
