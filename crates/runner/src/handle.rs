//! Job handles: submit work to a resident pool and await, poll, or
//! cancel it **without owning the process**.
//!
//! [`Runner`](crate::Runner) is batch-shaped: the caller blocks until
//! the whole matrix is merged. A long-lived service (`membw serve`)
//! needs the opposite shape — requests arrive one at a time, each wants
//! its own completion, and the process keeps running whatever any
//! individual job does. [`Dispatcher`] provides that shape on the same
//! foundations:
//!
//! * **Deterministic ordering** — queued jobs execute strictly by
//!   (priority descending, arrival order ascending). Two identical
//!   submission sequences dispatch in exactly the same order whatever
//!   the worker count.
//! * **Bounded admission** — at most `workers` jobs run concurrently
//!   and at most `queue_bound` wait; past that, [`Dispatcher::submit`]
//!   returns [`SubmitError::QueueFull`] immediately (the caller turns
//!   that into a 429-style `busy` response instead of stalling).
//! * **Fault isolation** — a panicking job resolves its own handle to
//!   [`JobOutcome::Panicked`] with the panic message; the worker thread
//!   and every other job are untouched.
//! * **Cooperative cancellation** — every job gets a private
//!   [`CancelToken`], installed ambiently while it runs so the sim hot
//!   loops poll it exactly as they poll SIGINT in CLI runs.
//!   [`JobHandle::cancel`] stops a queued job before it starts and
//!   drains a running one at the next poll.
//!
//! Workers capture the *submitting context's* ambient configuration
//! (checkpoint store, memory governor, thread count, retries, job
//! timeout) at construction, so dispatched jobs behave exactly like
//! jobs the constructing thread would have run inline.

use crate::cancel::{with_cancel_token, CancelReason, CancelToken, CancelUnwind};
use crate::governor::{ambient_governor, with_governor, Governor};
use crate::{
    configured_checkpoint, configured_job_timeout, configured_jobs, configured_retries,
    failure::panic_message, with_checkpoint, with_job_timeout, with_jobs, with_retries,
    CheckpointConfig,
};
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The wait queue is at its bound; the caller should shed load
    /// (reply `busy`) rather than queue unboundedly.
    QueueFull {
        /// The configured queue bound that was hit.
        bound: usize,
    },
    /// The dispatcher is draining; no new work is admitted.
    Draining,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { bound } => {
                write!(f, "job queue is full ({bound} waiting)")
            }
            SubmitError::Draining => write!(f, "dispatcher is draining"),
        }
    }
}

/// How a dispatched job ended.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The job ran to completion; the result is shared by every clone
    /// of the handle (dedupe fan-out waits on one computation).
    Completed(Arc<T>),
    /// The job panicked; the process and its siblings survived.
    Panicked(String),
    /// The job was cancelled before or during execution.
    Cancelled(CancelReason),
}

impl<T> Clone for JobOutcome<T> {
    fn clone(&self) -> Self {
        match self {
            JobOutcome::Completed(v) => JobOutcome::Completed(Arc::clone(v)),
            JobOutcome::Panicked(m) => JobOutcome::Panicked(m.clone()),
            JobOutcome::Cancelled(r) => JobOutcome::Cancelled(*r),
        }
    }
}

/// Shared completion state of one dispatched job.
struct JobState<T> {
    token: CancelToken,
    slot: Mutex<Option<JobOutcome<T>>>,
    done: Condvar,
}

impl<T> JobState<T> {
    fn resolve(&self, outcome: JobOutcome<T>) {
        let mut slot = self.slot.lock().expect("job slot");
        if slot.is_none() {
            *slot = Some(outcome);
        }
        self.done.notify_all();
    }
}

/// A cloneable handle to one dispatched job. All clones share the same
/// completion state and cancel token.
pub struct JobHandle<T> {
    state: Arc<JobState<T>>,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let done = self.state.slot.lock().expect("job slot").is_some();
        f.debug_struct("JobHandle").field("done", &done).finish()
    }
}

impl<T> Clone for JobHandle<T> {
    fn clone(&self) -> Self {
        JobHandle {
            state: Arc::clone(&self.state),
        }
    }
}

impl<T> JobHandle<T> {
    /// The job's private cancel token (armed with deadlines by callers
    /// that want a per-request wall-clock bound).
    pub fn token(&self) -> CancelToken {
        self.state.token.clone()
    }

    /// Request cancellation: a queued job resolves without running, a
    /// running job drains at its next poll.
    pub fn cancel(&self) {
        self.state.token.cancel(CancelReason::Interrupted);
    }

    /// The outcome, if the job has finished.
    pub fn poll(&self) -> Option<JobOutcome<T>> {
        self.state.slot.lock().expect("job slot").clone()
    }

    /// Block until the job finishes.
    pub fn wait(&self) -> JobOutcome<T> {
        let mut slot = self.state.slot.lock().expect("job slot");
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            slot = self.state.done.wait(slot).expect("job slot");
        }
    }

    /// Block until the job finishes or `timeout` elapses (`None`).
    /// The job keeps running after a timed-out wait — other waiters
    /// (and the result store) still get its outcome.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.state.slot.lock().expect("job slot");
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Some(outcome.clone());
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _) = self.state.done.wait_timeout(slot, left).expect("job slot");
            slot = guard;
        }
    }
}

type Job<T> = Box<dyn FnOnce() -> T + Send + 'static>;

struct Pending<T> {
    job: Job<T>,
    state: Arc<JobState<T>>,
}

struct QueueState<T> {
    /// Keyed by (priority descending, arrival ascending): `BTreeMap`
    /// iteration order *is* the dispatch order, which makes the
    /// ordering contract auditable in one line.
    queue: BTreeMap<(Reverse<u8>, u64), Pending<T>>,
    next_seq: u64,
    open: bool,
    active: usize,
}

struct Shared<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    /// Signalled when a job retires (drain waits on this).
    retired: Condvar,
    queue_bound: usize,
    /// Ambient context captured at construction, re-installed in every
    /// worker so dispatched jobs see the constructor's configuration.
    ctx: AmbientCtx,
}

/// The ambient configuration a dispatcher's workers inherit.
struct AmbientCtx {
    jobs: usize,
    retries: u32,
    timeout: Option<Duration>,
    checkpoint: Option<CheckpointConfig>,
    governor: Arc<Governor>,
}

/// See the [module docs](self).
pub struct Dispatcher<T: Send + Sync + 'static> {
    shared: Arc<Shared<T>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<T: Send + Sync + 'static> Dispatcher<T> {
    /// A dispatcher with `workers` concurrent executors and room for
    /// `queue_bound` waiting jobs (both clamped to at least 1). The
    /// calling thread's ambient configuration (jobs, retries, timeout,
    /// checkpoint, governor) is captured and installed in every worker.
    pub fn new(workers: usize, queue_bound: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: BTreeMap::new(),
                next_seq: 0,
                open: true,
                active: 0,
            }),
            available: Condvar::new(),
            retired: Condvar::new(),
            queue_bound: queue_bound.max(1),
            ctx: AmbientCtx {
                jobs: configured_jobs(),
                retries: configured_retries(),
                timeout: configured_job_timeout(),
                checkpoint: configured_checkpoint(),
                governor: ambient_governor(),
            },
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Dispatcher { shared, workers }
    }

    /// Queue `job` for execution. Higher `priority` dispatches first;
    /// equal priorities dispatch in arrival order (FIFO).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] once `queue_bound` jobs are waiting;
    /// [`SubmitError::Draining`] after [`Dispatcher::drain`].
    pub fn submit(
        &self,
        priority: u8,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> Result<JobHandle<T>, SubmitError> {
        let state = Arc::new(JobState {
            token: CancelToken::new(),
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        {
            let mut q = self.shared.state.lock().expect("dispatcher state");
            if !q.open {
                return Err(SubmitError::Draining);
            }
            if q.queue.len() >= self.shared.queue_bound {
                return Err(SubmitError::QueueFull {
                    bound: self.shared.queue_bound,
                });
            }
            let seq = q.next_seq;
            q.next_seq += 1;
            q.queue.insert(
                (Reverse(priority), seq),
                Pending {
                    job: Box::new(job),
                    state: Arc::clone(&state),
                },
            );
        }
        self.shared.available.notify_one();
        Ok(JobHandle { state })
    }

    /// Jobs currently executing.
    pub fn active(&self) -> usize {
        self.shared.state.lock().expect("dispatcher state").active
    }

    /// Jobs waiting in the queue.
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("dispatcher state")
            .queue
            .len()
    }

    /// Stop admission and cancel everything: queued jobs resolve as
    /// [`JobOutcome::Cancelled`] without running, running jobs drain at
    /// their next cancel poll (checkpointing completed inner work
    /// through the normal durable path). Does not block.
    pub fn drain(&self) {
        let drained: Vec<Arc<JobState<T>>> = {
            let mut q = self.shared.state.lock().expect("dispatcher state");
            q.open = false;
            let queued = std::mem::take(&mut q.queue);
            queued.into_values().map(|p| p.state).collect()
        };
        for state in drained {
            state.token.cancel(CancelReason::Interrupted);
            state.resolve(JobOutcome::Cancelled(CancelReason::Interrupted));
        }
        // Running jobs: cancel cooperatively via their own tokens.
        // (Their states are only reachable through their handles; the
        // worker resolves them when the unwind lands.)
        self.shared.available.notify_all();
    }

    /// Stop admission, let queued and running jobs **finish**, then
    /// join the workers. Blocks until the pool is idle.
    pub fn close(self) {
        {
            let mut q = self.shared.state.lock().expect("dispatcher state");
            q.open = false;
        }
        self.shared.available.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Block until no job is executing and the queue is empty (used by
    /// drain-style shutdown after [`Dispatcher::drain`]).
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.shared.state.lock().expect("dispatcher state");
        loop {
            if q.active == 0 && q.queue.is_empty() {
                return true;
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self
                .shared
                .retired
                .wait_timeout(q, left)
                .expect("dispatcher state");
            q = guard;
        }
    }
}

fn worker_loop<T: Send + Sync + 'static>(shared: &Shared<T>) {
    loop {
        let pending = {
            let mut q = shared.state.lock().expect("dispatcher state");
            loop {
                if let Some(&key) = q.queue.keys().next() {
                    let p = q.queue.remove(&key).expect("key just observed");
                    q.active += 1;
                    break p;
                }
                if !q.open {
                    return;
                }
                q = shared.available.wait(q).expect("dispatcher state");
            }
        };
        let outcome = run_one(&shared.ctx, &pending.state.token, pending.job);
        pending.state.resolve(outcome);
        {
            let mut q = shared.state.lock().expect("dispatcher state");
            q.active -= 1;
        }
        shared.retired.notify_all();
    }
}

/// Execute one job under the captured ambient context with per-job
/// panic isolation and cancellation accounting.
fn run_one<T>(ctx: &AmbientCtx, token: &CancelToken, job: Job<T>) -> JobOutcome<T> {
    if let Some(reason) = token.cancel_reason() {
        return JobOutcome::Cancelled(reason);
    }
    let tok = token.clone();
    let result = catch_unwind(AssertUnwindSafe(|| {
        with_jobs(ctx.jobs, || {
            with_retries(ctx.retries, || {
                with_job_timeout(ctx.timeout, || {
                    with_checkpoint(ctx.checkpoint.clone(), || {
                        with_governor(Arc::clone(&ctx.governor), || with_cancel_token(tok, job))
                    })
                })
            })
        })
    }));
    match result {
        Ok(v) => JobOutcome::Completed(Arc::new(v)),
        Err(p) => match p.downcast_ref::<CancelUnwind>() {
            Some(cu) => JobOutcome::Cancelled(cu.0),
            None => JobOutcome::Panicked(panic_message(p.as_ref())),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn submit_await_round_trips() {
        let d = Dispatcher::new(2, 8);
        let h = d.submit(0, || 6 * 7).unwrap();
        match h.wait() {
            JobOutcome::Completed(v) => assert_eq!(*v, 42),
            other => panic!("unexpected outcome: {other:?}"),
        }
        d.close();
    }

    #[test]
    fn priority_then_fifo_ordering_is_deterministic() {
        // One worker, blocked by a gate job while we queue the rest:
        // the observed execution order must be priority desc, then
        // arrival order, independent of submission jitter.
        let d: Dispatcher<()> = Dispatcher::new(1, 16);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let blocker = d
            .submit(255, move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        // (priority, tag) in scrambled submission order; expected
        // execution: p2 before p1 before p0, FIFO within each.
        for (prio, tag) in [
            (1u8, "b1"),
            (0, "c1"),
            (2, "a1"),
            (1, "b2"),
            (2, "a2"),
            (0, "c2"),
        ] {
            let order = Arc::clone(&order);
            handles.push(
                d.submit(prio, move || order.lock().unwrap().push(tag))
                    .unwrap(),
            );
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        blocker.wait();
        for h in &handles {
            h.wait();
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec!["a1", "a2", "b1", "b2", "c1", "c2"]
        );
        d.close();
    }

    #[test]
    fn queue_bound_refuses_with_queue_full() {
        let d: Dispatcher<()> = Dispatcher::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let blocker = d
            .submit(9, move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .unwrap();
        // Wait until the blocker is actually running so the queue is
        // empty, then fill it to the bound.
        while d.active() == 0 {
            std::thread::yield_now();
        }
        let _q1 = d.submit(0, || ()).unwrap();
        let _q2 = d.submit(0, || ()).unwrap();
        assert_eq!(
            d.submit(0, || ()).unwrap_err(),
            SubmitError::QueueFull { bound: 2 }
        );
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        blocker.wait();
        d.close();
    }

    #[test]
    fn panicking_job_resolves_its_own_handle_only() {
        let d = Dispatcher::new(2, 8);
        let bad = d
            .submit(0, || -> u32 { panic!("request 7 exploded") })
            .unwrap();
        let good = d.submit(0, || 5u32).unwrap();
        match bad.wait() {
            JobOutcome::Panicked(m) => assert!(m.contains("request 7 exploded"), "{m}"),
            other => panic!("unexpected outcome: {other:?}"),
        }
        match good.wait() {
            JobOutcome::Completed(v) => assert_eq!(*v, 5),
            other => panic!("unexpected outcome: {other:?}"),
        }
        // The pool survives and keeps serving.
        let again = d.submit(0, || 11u32).unwrap();
        assert!(matches!(again.wait(), JobOutcome::Completed(v) if *v == 11));
        d.close();
    }

    #[test]
    fn cancel_stops_a_queued_job_before_it_runs() {
        let d: Dispatcher<()> = Dispatcher::new(1, 8);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let blocker = d
            .submit(9, move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        let queued = d.submit(0, move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        let queued = queued.unwrap();
        queued.cancel();
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        blocker.wait();
        match queued.wait() {
            JobOutcome::Cancelled(CancelReason::Interrupted) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(ran.load(Ordering::SeqCst), 0, "cancelled before execution");
        d.close();
    }

    #[test]
    fn running_jobs_see_their_own_ambient_token() {
        let d = Dispatcher::new(1, 4);
        let h = d
            .submit(0, || {
                // The ambient token inside the job is the handle's.
                let tok = crate::ambient_cancel_token();
                tok.cancel(CancelReason::Interrupted);
                tok.check(); // unwinds -> Cancelled, not Panicked
            })
            .unwrap();
        match h.wait() {
            JobOutcome::Cancelled(CancelReason::Interrupted) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
        d.close();
    }

    #[test]
    fn drain_cancels_queued_work_and_refuses_new() {
        let d: Dispatcher<u32> = Dispatcher::new(1, 8);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let blocker = d
            .submit(9, move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                1
            })
            .unwrap();
        while d.active() == 0 {
            std::thread::yield_now();
        }
        let queued = d.submit(0, || 2).unwrap();
        d.drain();
        assert!(matches!(
            queued.wait(),
            JobOutcome::Cancelled(CancelReason::Interrupted)
        ));
        assert_eq!(d.submit(0, || 3).unwrap_err(), SubmitError::Draining);
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        blocker.wait();
        assert!(d.wait_idle(Duration::from_secs(5)));
        d.close();
    }

    #[test]
    fn wait_timeout_returns_none_while_running() {
        let d: Dispatcher<()> = Dispatcher::new(1, 4);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let h = d
            .submit(0, move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .unwrap();
        assert!(h.wait_timeout(Duration::from_millis(50)).is_none());
        assert!(h.poll().is_none());
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        assert!(h.wait_timeout(Duration::from_secs(5)).is_some());
        d.close();
    }

    #[test]
    fn workers_inherit_the_constructor_ambient_config() {
        // with_jobs is thread-local; the dispatcher must carry it into
        // its workers or dispatched runs would see the global default.
        let seen = with_jobs(3, || {
            let d = Dispatcher::new(1, 4);
            let h = d.submit(0, configured_jobs).unwrap();
            let out = match h.wait() {
                JobOutcome::Completed(v) => *v,
                other => panic!("unexpected outcome: {other:?}"),
            };
            d.close();
            out
        });
        assert_eq!(seen, 3);
    }
}
