//! Deterministic, fault-tolerant parallel execution of the experiment
//! job matrix.
//!
//! Every experiment in this reproduction — the three-run `f_P/f_L/f_B`
//! decomposition (§3), the Table 7/8 traffic sweeps, the Table 9/10
//! factor studies, the Figure 4 curves — expands into a matrix of
//! *independent* jobs: (experiment × workload × run). This crate fans
//! that matrix out over a fixed-width pool of OS threads and merges the
//! results **in canonical index order**, so the assembled tables, plots
//! and JSON are byte-identical whatever the thread count.
//!
//! # Determinism contract
//!
//! [`Runner::run`] returns `out[i] == f(i)` for every `i`, with results
//! placed by job index, never by completion order. Each job must be a
//! pure function of its index (all the membw jobs regenerate their
//! traces from the workload's fixed seed, so they are). Under that
//! contract `--jobs 1` and `--jobs N` are indistinguishable from the
//! output side; the tier-1 determinism test asserts it end-to-end.
//!
//! # Fault tolerance
//!
//! [`Runner::try_run`] adds per-job isolation on top of the same
//! contract: a panicking job becomes an `Err(`[`JobFailure`]`)` in its
//! slot instead of killing the pool, an overrunning job is marked
//! failed once it exceeds the configured deadline ([`set_job_timeout`] /
//! `--job-timeout`), and failed attempts are retried up to the
//! configured budget ([`set_retries`] / `--retries`) — deterministically,
//! because a retry re-evaluates the same pure `f(i)`. Healthy siblings
//! always complete and merge in index order, so a faulted campaign's
//! surviving output is byte-identical to the fault-free run.
//!
//! [`Runner::checkpointed`] additionally persists each completed job
//! result under the configured checkpoint root ([`set_checkpoint`] /
//! `--resume`), so an interrupted campaign resumes from completed work
//! instead of recomputing it — see [`checkpoint`](CheckpointConfig).
//!
//! # Choosing the pool width
//!
//! Priority order: [`with_jobs`] (thread-local override, used by tests),
//! then [`set_jobs`] (process-wide, set by `repro --jobs N`), then the
//! `MEMBW_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use membw_runner::Runner;
//!
//! let squares = Runner::new(4).run(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Fault isolation: job 2 panics, siblings still deliver.
//! let out = Runner::new(4).try_run("demo", 4, |i| {
//!     assert!(i != 2, "boom");
//!     i * 10
//! });
//! assert_eq!(out[0].as_ref().copied(), Ok(0));
//! assert!(out[2].is_err());
//! assert_eq!(out[3].as_ref().copied(), Ok(30));
//! ```

mod cancel;
mod checkpoint;
mod failure;
pub mod faultenv;
pub mod faultio;
mod governor;
mod handle;
mod inject;
pub mod persist;

pub use cancel::{
    ambient_cancel_token, global_cancel_token, install_signal_drain, with_cancel_token,
    CancelReason, CancelToken, CancelUnwind,
};
pub use checkpoint::{quarantined_artifacts, CheckpointConfig};
pub use failure::{JobError, JobFailure};
pub use faultenv::validate_env as validate_fault_env;
pub use governor::{
    ambient_governor, global_governor, parse_mem_budget_mb, set_mem_budget, with_governor,
    AdmissionGuard, Governor, GovernorStats, MEM_BUDGET_MB_ENV,
};
pub use handle::{Dispatcher, JobHandle, JobOutcome, SubmitError};
pub use inject::{
    validate_selector_spec, validate_slow_spec, FAULT_CANCEL_ENV, FAULT_INJECT_ENV, FAULT_SLOW_ENV,
};

use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Process-wide override set by `--jobs N` (0 = unset).
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(0);
/// Process-wide retry budget set by `--retries N`.
static GLOBAL_RETRIES: AtomicUsize = AtomicUsize::new(0);
/// Process-wide per-job deadline in milliseconds set by
/// `--job-timeout SECS` (0 = no deadline).
static GLOBAL_TIMEOUT_MS: AtomicU64 = AtomicU64::new(0);
/// Process-wide checkpoint configuration set by `repro`.
static GLOBAL_CHECKPOINT: Mutex<Option<CheckpointConfig>> = Mutex::new(None);

thread_local! {
    /// Thread-local override installed by [`with_jobs`] (0 = unset).
    static TL_JOBS: Cell<usize> = const { Cell::new(0) };
    /// Thread-local override installed by [`with_retries`].
    static TL_RETRIES: Cell<Option<u32>> = const { Cell::new(None) };
    /// Thread-local override installed by [`with_job_timeout`]
    /// (`Some(None)` forces "no deadline" regardless of the global).
    static TL_TIMEOUT: Cell<Option<Option<Duration>>> = const { Cell::new(None) };
    /// Thread-local override installed by [`with_checkpoint`].
    static TL_CHECKPOINT: RefCell<Option<Option<CheckpointConfig>>> =
        const { RefCell::new(None) };
}

/// Environment variable naming the default pool width (same meaning as
/// `repro --jobs N`).
pub const JOBS_ENV: &str = "MEMBW_JOBS";

/// Strictly parse a [`JOBS_ENV`] / `--jobs` value: a positive integer
/// thread count.
///
/// # Errors
///
/// Anything else is an error naming the variable and the bad value —
/// drivers (`repro`) validate the environment up front with this and
/// refuse to start, rather than silently running with a parallelism
/// the user didn't ask for.
pub fn parse_jobs(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "invalid {JOBS_ENV} value {raw:?}: expected a positive integer thread count"
        )),
    }
}

/// Set the process-wide job count (e.g. from a `--jobs N` flag).
///
/// Values are clamped to at least 1.
pub fn set_jobs(n: usize) {
    GLOBAL_JOBS.store(n.max(1), Ordering::SeqCst);
}

/// Run `f` with the job count forced to `n` on this thread (and the
/// runners it creates). Restores the previous override afterwards, so
/// tests can compare `--jobs 1` and `--jobs 8` runs side by side
/// without touching process state.
pub fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = TL_JOBS.with(|c| c.replace(n.max(1)));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_JOBS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The effective job count for a runner created on this thread.
pub fn configured_jobs() -> usize {
    let tl = TL_JOBS.with(Cell::get);
    if tl > 0 {
        return tl;
    }
    let global = GLOBAL_JOBS.load(Ordering::SeqCst);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var(JOBS_ENV) {
        match parse_jobs(&v) {
            Ok(n) => return n,
            // Library-level fallback for embedders that skipped up-front
            // validation; `repro` rejects the value before this runs.
            Err(e) => eprintln!("warning: {e}; using the detected parallelism"),
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Set the process-wide per-job retry budget (`--retries N`): a failed
/// job is re-attempted up to `n` more times before it is reported.
pub fn set_retries(n: u32) {
    GLOBAL_RETRIES.store(n as usize, Ordering::SeqCst);
}

/// Run `f` with the retry budget forced to `n` on this thread.
pub fn with_retries<R>(n: u32, f: impl FnOnce() -> R) -> R {
    let prev = TL_RETRIES.with(|c| c.replace(Some(n)));
    struct Restore(Option<u32>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_RETRIES.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The effective retry budget for a runner created on this thread.
pub fn configured_retries() -> u32 {
    TL_RETRIES
        .with(Cell::get)
        .unwrap_or_else(|| GLOBAL_RETRIES.load(Ordering::SeqCst) as u32)
}

/// Set the process-wide per-job deadline (`--job-timeout SECS`);
/// `None` disables the watchdog.
pub fn set_job_timeout(timeout: Option<Duration>) {
    let ms = timeout.map_or(0, |d| d.as_millis().max(1) as u64);
    GLOBAL_TIMEOUT_MS.store(ms, Ordering::SeqCst);
}

/// Run `f` with the per-job deadline forced to `timeout` on this thread.
pub fn with_job_timeout<R>(timeout: Option<Duration>, f: impl FnOnce() -> R) -> R {
    let prev = TL_TIMEOUT.with(|c| c.replace(Some(timeout)));
    struct Restore(Option<Option<Duration>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_TIMEOUT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The effective per-job deadline for a runner created on this thread.
pub fn configured_job_timeout() -> Option<Duration> {
    if let Some(tl) = TL_TIMEOUT.with(Cell::get) {
        return tl;
    }
    match GLOBAL_TIMEOUT_MS.load(Ordering::SeqCst) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    }
}

/// Set the process-wide checkpoint configuration (`repro` points this
/// at `results/.checkpoint`); `None` disables checkpointing — the
/// library default, so embedding tests never touch the filesystem.
pub fn set_checkpoint(cfg: Option<CheckpointConfig>) {
    *GLOBAL_CHECKPOINT.lock().expect("checkpoint config") = cfg;
}

/// Run `f` with the checkpoint configuration forced to `cfg` on this
/// thread (tests use a temp dir without touching process state).
pub fn with_checkpoint<R>(cfg: Option<CheckpointConfig>, f: impl FnOnce() -> R) -> R {
    let prev = TL_CHECKPOINT.with(|c| c.replace(Some(cfg)));
    struct Restore(Option<Option<CheckpointConfig>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_CHECKPOINT.with(|c| {
                *c.borrow_mut() = self.0.take();
            });
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The effective checkpoint configuration on this thread.
pub fn configured_checkpoint() -> Option<CheckpointConfig> {
    if let Some(tl) = TL_CHECKPOINT.with(|c| c.borrow().clone()) {
        return tl;
    }
    GLOBAL_CHECKPOINT.lock().expect("checkpoint config").clone()
}

/// Aggregate accounting of the jobs a process has executed, for the
/// report layer (wall-clock summaries stay on stderr so stdout remains
/// byte-identical across thread counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Job batches dispatched ([`Runner::run`] calls that ran anything).
    pub batches: u64,
    /// Jobs executed.
    pub jobs: u64,
    /// Summed per-job wall time in nanoseconds (CPU-side cost; exceeds
    /// real wall time when jobs overlap).
    pub busy_nanos: u64,
    /// Job attempts re-run under the retry policy.
    pub retries: u64,
    /// Jobs that ultimately failed (after all attempts).
    pub failures: u64,
    /// Jobs satisfied from a checkpoint instead of executing.
    pub resumed: u64,
    /// Jobs cancelled by an interrupt drain or deadline (not counted
    /// as failures: their work is simply deferred to a `--resume` run).
    pub cancelled: u64,
}

impl Metrics {
    /// Summed per-job wall time.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos)
    }
}

static METRIC_BATCHES: AtomicU64 = AtomicU64::new(0);
static METRIC_JOBS: AtomicU64 = AtomicU64::new(0);
static METRIC_BUSY_NANOS: AtomicU64 = AtomicU64::new(0);
static METRIC_RETRIES: AtomicU64 = AtomicU64::new(0);
static METRIC_FAILURES: AtomicU64 = AtomicU64::new(0);
static METRIC_RESUMED: AtomicU64 = AtomicU64::new(0);
static METRIC_CANCELLED: AtomicU64 = AtomicU64::new(0);

/// Snapshot the process-wide job metrics.
pub fn metrics() -> Metrics {
    Metrics {
        batches: METRIC_BATCHES.load(Ordering::Relaxed),
        jobs: METRIC_JOBS.load(Ordering::Relaxed),
        busy_nanos: METRIC_BUSY_NANOS.load(Ordering::Relaxed),
        retries: METRIC_RETRIES.load(Ordering::Relaxed),
        failures: METRIC_FAILURES.load(Ordering::Relaxed),
        resumed: METRIC_RESUMED.load(Ordering::Relaxed),
        cancelled: METRIC_CANCELLED.load(Ordering::Relaxed),
    }
}

/// Difference between two [`metrics`] snapshots (`later - earlier`),
/// the per-target accounting `repro` prints.
pub fn metrics_delta(earlier: Metrics, later: Metrics) -> Metrics {
    Metrics {
        batches: later.batches.saturating_sub(earlier.batches),
        jobs: later.jobs.saturating_sub(earlier.jobs),
        busy_nanos: later.busy_nanos.saturating_sub(earlier.busy_nanos),
        retries: later.retries.saturating_sub(earlier.retries),
        failures: later.failures.saturating_sub(earlier.failures),
        resumed: later.resumed.saturating_sub(earlier.resumed),
        cancelled: later.cancelled.saturating_sub(earlier.cancelled),
    }
}

/// A fixed-width deterministic job pool.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    threads: usize,
    retries: u32,
    timeout: Option<Duration>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Runner {
    /// A runner with an explicit thread count (clamped to at least 1),
    /// no retries, and no job deadline.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            retries: 0,
            timeout: None,
        }
    }

    /// A runner honouring the thread-local / process-wide / environment
    /// configuration for thread count, retry budget, and job deadline.
    pub fn from_env() -> Self {
        Self {
            threads: configured_jobs().max(1),
            retries: configured_retries(),
            timeout: configured_job_timeout(),
        }
    }

    /// This runner with a per-job retry budget.
    pub fn retries(mut self, n: u32) -> Self {
        self.retries = n;
        self
    }

    /// This runner with a per-job deadline.
    pub fn timeout(mut self, d: Option<Duration>) -> Self {
        self.timeout = d;
        self
    }

    /// The pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute jobs `0..n` and return their results in index order.
    ///
    /// Work is distributed by an atomic cursor (self-balancing: a slow
    /// job never stalls the queue behind it), but results are merged by
    /// index, so the output is independent of scheduling. With one
    /// thread (or one job) everything runs inline on the caller's
    /// thread — that is the `--jobs 1` serial baseline.
    ///
    /// # Panics
    ///
    /// A panicking job aborts the batch: the scope joins its workers
    /// and re-panics on the caller's thread. Campaign code should use
    /// [`Runner::try_run`], which isolates the failure instead.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        METRIC_BATCHES.fetch_add(1, Ordering::Relaxed);
        METRIC_JOBS.fetch_add(n as u64, Ordering::Relaxed);
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n)
                .map(|i| {
                    let t0 = Instant::now();
                    let v = f(i);
                    METRIC_BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    v
                })
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = Instant::now();
                    let v = f(i);
                    METRIC_BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    *slots[i].lock().expect("job slot poisoned") = Some(v);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("job slot poisoned")
                    .expect("every job index was executed")
            })
            .collect()
    }

    /// Fault-isolated [`Runner::run`]: execute jobs `0..n` and return
    /// one `Result` per job, in index order.
    ///
    /// A job that panics (on every allowed attempt) or overruns the
    /// configured deadline yields `Err(`[`JobFailure`]`)` in its slot;
    /// sibling jobs are unaffected. `label` names the batch in failure
    /// reports and fault-injection hooks (`MEMBW_FAULT_INJECT`).
    pub fn try_run<T, F>(&self, label: &str, n: usize, f: F) -> Vec<Result<T, JobFailure>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.exec(label, None::<&NoCkpt>, n, f)
    }

    /// [`Runner::try_run`] with matrix checkpointing: every completed
    /// job result is archived under the configured checkpoint root
    /// ([`set_checkpoint`] / [`with_checkpoint`]), and — when resuming —
    /// jobs whose results are already archived are replayed instead of
    /// recomputed.
    ///
    /// `key` must encode everything the batch's results depend on
    /// (target, scale, matrix shape); a changed key lands in a fresh
    /// directory. With no checkpoint configured this is exactly
    /// [`Runner::try_run`].
    pub fn checkpointed<T, F>(
        &self,
        label: &str,
        key: &str,
        n: usize,
        f: F,
    ) -> Vec<Result<T, JobFailure>>
    where
        T: Send + Serialize + Deserialize,
        F: Fn(usize) -> T + Sync,
    {
        let store =
            configured_checkpoint().and_then(|cfg| checkpoint::Store::open(&cfg, label, key, n));
        match store {
            Some(store) => self.exec(label, Some(&JsonCkpt { store }), n, f),
            None => self.exec(label, None::<&NoCkpt>, n, f),
        }
    }

    /// The fault-isolated execution engine behind [`Runner::try_run`]
    /// and [`Runner::checkpointed`].
    fn exec<T, F, C>(
        &self,
        label: &str,
        ckpt: Option<&C>,
        n: usize,
        f: F,
    ) -> Vec<Result<T, JobFailure>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: CkptIo<T> + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        METRIC_BATCHES.fetch_add(1, Ordering::Relaxed);
        let attempts_allowed = self.retries + 1;
        // Capture the ambient cancellation/governance context on the
        // *calling* thread (where `with_cancel_token`/`with_governor`
        // overrides live) and re-install it inside every worker and
        // watchdog thread below, so jobs always see the right one.
        let cancel = ambient_cancel_token();
        let gov = ambient_governor();

        // One attempt, panic-isolated; the caller decides about retries.
        // A cancellation unwind (the token's private payload) is kept
        // distinct from a genuine panic.
        let attempt_inline = |i: usize| -> Result<T, JobError> {
            METRIC_JOBS.fetch_add(1, Ordering::Relaxed);
            let t0 = Instant::now();
            let out = catch_unwind(AssertUnwindSafe(|| {
                inject::apply(label, i);
                f(i)
            }));
            METRIC_BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            out.map_err(|p| match p.downcast_ref::<CancelUnwind>() {
                Some(cu) => JobError::Cancelled(cu.0),
                None => JobError::Panicked(failure::panic_message(p.as_ref())),
            })
        };

        // Full per-job lifecycle: cancellation, resume, admission,
        // attempts, checkpoint, retry accounting. `attempt` abstracts
        // over inline vs watchdog execution.
        let run_job = |i: usize, attempt: &dyn Fn(usize) -> Result<T, JobError>| {
            // Drain mode: once the run is cancelled, pending jobs fail
            // fast (attempts = 0 — they never started) so the batch
            // returns within a poll interval of the request.
            if let Some(reason) = cancel.cancel_reason() {
                METRIC_CANCELLED.fetch_add(1, Ordering::Relaxed);
                return Err(JobFailure {
                    index: i,
                    attempts: 0,
                    error: JobError::Cancelled(reason),
                });
            }
            if let Some(c) = ckpt {
                if let Some(v) = c.load(i) {
                    METRIC_RESUMED.fetch_add(1, Ordering::Relaxed);
                    return Ok(v);
                }
            }
            // Memory-governor gate: under the Throttled level this
            // serializes job admission (resumed jobs above skip it —
            // replaying a checkpoint costs no working set).
            let _slot = gov.admit(&cancel);
            let mut attempts = 0;
            loop {
                if attempts > 0 {
                    METRIC_RETRIES.fetch_add(1, Ordering::Relaxed);
                }
                attempts += 1;
                match attempt(i) {
                    Ok(v) => {
                        if let Some(c) = ckpt {
                            c.save(i, &v);
                        }
                        return Ok(v);
                    }
                    Err(e) => {
                        // Only panics consume the retry budget: a
                        // timed-out attempt already burned the full
                        // deadline once (re-running it is presumed
                        // doomed and would multiply the stall), and a
                        // cancelled attempt means the whole run is
                        // stopping. `attempts` reports what actually
                        // ran, not the theoretical budget.
                        let retryable = matches!(e, JobError::Panicked(_));
                        if !retryable || attempts >= attempts_allowed {
                            if matches!(e, JobError::Cancelled(_)) {
                                METRIC_CANCELLED.fetch_add(1, Ordering::Relaxed);
                            } else {
                                METRIC_FAILURES.fetch_add(1, Ordering::Relaxed);
                            }
                            return Err(JobFailure {
                                index: i,
                                attempts,
                                error: e,
                            });
                        }
                    }
                }
            }
        };

        let workers = self.threads.min(n);
        if workers <= 1 && self.timeout.is_none() {
            // Serial baseline: no threads at all (also keeps `--jobs 1`
            // runnable on targets where spawning is undesirable). The
            // caller's thread already carries the ambient context.
            return (0..n).map(|i| run_job(i, &attempt_inline)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<T, JobFailure>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            let worker = || {
                // Workers are fresh threads: re-install the captured
                // ambient context so the jobs' own polls (sim loops,
                // trace recording) and cache lookups see it.
                let wc = cancel.clone();
                let wg = std::sync::Arc::clone(&gov);
                with_cancel_token(wc, || {
                    with_governor(wg, || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let result = match self.timeout {
                            None => run_job(i, &attempt_inline),
                            Some(deadline) => run_job(i, &|i| {
                                // Watchdog: run the attempt on its own
                                // scoped thread and stop waiting at the
                                // deadline. A timed-out attempt keeps
                                // running (std threads cannot be killed)
                                // but its result is dropped with the
                                // receiver; the scope joins it before
                                // the batch returns.
                                let (tx, rx) = mpsc::channel();
                                let ac = cancel.clone();
                                let ag = std::sync::Arc::clone(&gov);
                                scope.spawn(move || {
                                    let r = with_cancel_token(ac, || {
                                        with_governor(ag, || attempt_inline(i))
                                    });
                                    let _ = tx.send(r);
                                });
                                match rx.recv_timeout(deadline) {
                                    Ok(r) => r,
                                    Err(_) => Err(JobError::TimedOut(deadline)),
                                }
                            }),
                        };
                        *slots[i].lock().expect("job slot poisoned") = Some(result);
                    })
                })
            };
            for _ in 0..workers {
                scope.spawn(worker);
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("job slot poisoned")
                    .expect("every job index was executed")
            })
            .collect()
    }

    /// [`Runner::run`] over a slice: `out[i] == f(&items[i])`.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run(items.len(), |i| f(&items[i]))
    }

    /// Expand the cross product `a × b` (a-major, the canonical matrix
    /// order) and run one job per pair, returning results in that
    /// order: `out[i * b.len() + j] == f(&a[i], &b[j])`.
    pub fn cross<A, B, T, F>(&self, a: &[A], b: &[B], f: F) -> Vec<T>
    where
        A: Sync,
        B: Sync,
        T: Send,
        F: Fn(&A, &B) -> T + Sync,
    {
        if b.is_empty() {
            return Vec::new();
        }
        self.run(a.len() * b.len(), |k| f(&a[k / b.len()], &b[k % b.len()]))
    }
}

/// Checkpoint I/O as seen by the execution engine.
trait CkptIo<T> {
    fn load(&self, i: usize) -> Option<T>;
    fn save(&self, i: usize, v: &T);
}

/// The "checkpointing disabled" codec (never instantiated).
enum NoCkpt {}

impl<T> CkptIo<T> for NoCkpt {
    fn load(&self, _: usize) -> Option<T> {
        match *self {}
    }
    fn save(&self, _: usize, _: &T) {
        match *self {}
    }
}

/// JSON checkpoint codec over a [`checkpoint::Store`].
struct JsonCkpt {
    store: checkpoint::Store,
}

impl<T: Serialize + Deserialize> CkptIo<T> for JsonCkpt {
    fn load(&self, i: usize) -> Option<T> {
        self.store.load(i)
    }
    fn save(&self, i: usize, v: &T) {
        self.store.save(i, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_arrive_in_index_order() {
        let r = Runner::new(8);
        // Jobs finish in scrambled order (later indices sleep less);
        // the merge must still be by index.
        let out = r.run(32, |i| {
            std::thread::sleep(Duration::from_micros((32 - i as u64) * 50));
            i * 10
        });
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let r = Runner::new(1);
        let main_thread = std::thread::current().id();
        let out = r.run(4, |i| (i, std::thread::current().id()));
        for (i, (idx, tid)) in out.into_iter().enumerate() {
            assert_eq!(i, idx);
            assert_eq!(tid, main_thread, "serial baseline must not spawn");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let r = Runner::new(3);
        let counts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        let _ = r.run(100, |i| counts[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(13);
        assert_eq!(Runner::new(1).run(257, f), Runner::new(7).run(257, f));
    }

    #[test]
    fn cross_is_a_major() {
        let r = Runner::new(4);
        let out = r.cross(&[10, 20], &[1, 2, 3], |a, b| a + b);
        assert_eq!(out, vec![11, 12, 13, 21, 22, 23]);
    }

    #[test]
    fn cross_with_empty_axis_is_empty() {
        let r = Runner::new(4);
        let out: Vec<i32> = r.cross(&[1, 2], &[] as &[i32], |a, b| a + b);
        assert!(out.is_empty());
        let out: Vec<i32> = r.cross(&[] as &[i32], &[1, 2], |a, b| a + b);
        assert!(out.is_empty());
    }

    #[test]
    fn with_jobs_overrides_and_restores() {
        let before = configured_jobs();
        let inside = with_jobs(3, configured_jobs);
        assert_eq!(inside, 3);
        assert_eq!(configured_jobs(), before);
        // Nesting: innermost wins.
        let nested = with_jobs(2, || with_jobs(5, configured_jobs));
        assert_eq!(nested, 5);
    }

    #[test]
    fn with_retries_and_timeout_override_and_restore() {
        let r = with_retries(4, configured_retries);
        assert_eq!(r, 4);
        let t = with_job_timeout(Some(Duration::from_secs(9)), configured_job_timeout);
        assert_eq!(t, Some(Duration::from_secs(9)));
        let t = with_job_timeout(None, configured_job_timeout);
        assert_eq!(t, None);
        let c = with_checkpoint(
            Some(CheckpointConfig {
                root: "/tmp/x".into(),
                resume: true,
            }),
            configured_checkpoint,
        );
        assert_eq!(c.map(|c| c.resume), Some(true));
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<String> = (0..20).map(|i| format!("w{i}")).collect();
        let out = Runner::new(6).map(&items, |s| s.len());
        assert_eq!(out, items.iter().map(String::len).collect::<Vec<_>>());
    }

    #[test]
    fn metrics_accumulate() {
        let before = metrics();
        let _ = Runner::new(2).run(10, |i| i);
        let delta = metrics_delta(before, metrics());
        assert!(delta.batches >= 1);
        assert!(delta.jobs >= 10);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn job_panics_propagate() {
        let _ = Runner::new(4).run(16, |i| {
            assert!(i != 7, "job 7 exploded");
            i
        });
    }

    #[test]
    fn try_run_isolates_a_panicking_job() {
        for threads in [1, 4] {
            let out = Runner::new(threads).try_run("iso", 16, |i| {
                assert!(i != 7, "job 7 exploded");
                i * 2
            });
            for (i, r) in out.iter().enumerate() {
                if i == 7 {
                    let err = r.as_ref().unwrap_err();
                    assert_eq!(err.index, 7);
                    assert_eq!(err.attempts, 1);
                    assert!(
                        matches!(&err.error, JobError::Panicked(m) if m.contains("job 7 exploded")),
                        "{err}"
                    );
                } else {
                    assert_eq!(r.as_ref().copied(), Ok(i * 2), "sibling {i} must survive");
                }
            }
        }
    }

    #[test]
    fn retries_rerun_flaky_jobs_deterministically() {
        let calls: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        let out = Runner::new(3).retries(2).try_run("flaky", 8, |i| {
            let call = calls[i].fetch_add(1, Ordering::SeqCst);
            // Job 5 fails its first two attempts, succeeds on the third.
            assert!(i != 5 || call >= 2, "flaking");
            i
        });
        assert_eq!(out[5].as_ref().copied(), Ok(5));
        assert_eq!(calls[5].load(Ordering::SeqCst), 3);
        for (i, c) in calls.iter().enumerate() {
            if i != 5 {
                assert_eq!(c.load(Ordering::SeqCst), 1, "healthy job {i} ran once");
            }
        }
    }

    #[test]
    fn retry_budget_exhaustion_reports_attempts() {
        let out = Runner::new(2).retries(3).try_run("doomed", 4, |i| {
            assert!(i != 1, "always fails");
            i
        });
        let err = out[1].as_ref().unwrap_err();
        assert_eq!(err.attempts, 4, "1 + 3 retries");
    }

    #[test]
    fn timed_out_jobs_do_not_burn_the_retry_budget() {
        // Satellite of PR 5: a timeout is not retried — the attempt
        // already consumed the full deadline once, so re-running it
        // would multiply the stall while the retry budget stays
        // reserved for genuinely transient (panic) failures.
        let calls: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        let out = Runner::new(2)
            .retries(3)
            .timeout(Some(Duration::from_millis(50)))
            .try_run("doomed-slow", 4, |i| {
                calls[i].fetch_add(1, Ordering::SeqCst);
                if i == 1 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                i
            });
        let err = out[1].as_ref().unwrap_err();
        assert!(matches!(err.error, JobError::TimedOut(_)), "{err}");
        assert_eq!(err.attempts, 1, "one attempt, no retries burned");
        assert_eq!(calls[1].load(Ordering::SeqCst), 1, "ran exactly once");
        // Panics, by contrast, still consume the full budget.
        let out = Runner::new(2)
            .retries(3)
            .timeout(Some(Duration::from_millis(200)))
            .try_run("doomed-panic", 2, |i| {
                assert!(i != 1, "always fails");
                i
            });
        assert_eq!(out[1].as_ref().unwrap_err().attempts, 4, "1 + 3 retries");
    }

    #[test]
    fn cancellation_drains_a_batch_and_marks_pending_jobs() {
        for threads in [1, 4] {
            let token = CancelToken::new();
            let trigger = token.clone();
            let out = with_cancel_token(token, || {
                Runner::new(threads).try_run("drain", 16, move |i| {
                    if i == 3 {
                        // Simulate SIGINT landing mid-job; the job's own
                        // poll (here explicit) unwinds it.
                        trigger.cancel(CancelReason::Interrupted);
                        ambient_cancel_token().check();
                    }
                    i * 2
                })
            });
            // Jobs dispatched before the cancel completed normally; the
            // rest are Cancelled, never Panicked, and jobs that never
            // started report attempts = 0. (How many raced past the
            // cancel depends on scheduling; the reason and shape do
            // not.)
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(v) => assert_eq!(*v, i * 2),
                    Err(e) => {
                        assert!(
                            matches!(e.error, JobError::Cancelled(CancelReason::Interrupted)),
                            "job {i}: {e}"
                        );
                        if i != 3 {
                            assert_eq!(e.attempts, 0, "job {i} never started");
                        }
                    }
                }
            }
            assert!(
                out[3].is_err(),
                "the in-flight job is cancelled, not completed"
            );
            if threads == 1 {
                // Serial dispatch is fully deterministic: the prefix
                // completes, everything from the trigger drains.
                assert!(out[..3].iter().all(Result::is_ok));
                assert!(out[3..].iter().all(Result::is_err));
            }
        }
    }

    #[test]
    fn cancelled_jobs_are_not_retried() {
        let calls: Vec<AtomicU32> = (0..2).map(|_| AtomicU32::new(0)).collect();
        let token = CancelToken::new();
        let trigger = token.clone();
        let calls = &calls;
        let out = with_cancel_token(token, || {
            Runner::new(1)
                .retries(5)
                .try_run("cancel-noretry", 2, move |i| {
                    calls[i].fetch_add(1, Ordering::SeqCst);
                    if i == 0 {
                        trigger.cancel(CancelReason::DeadlineExceeded);
                        ambient_cancel_token().check();
                    }
                    i
                })
        });
        let err = out[0].as_ref().unwrap_err();
        assert!(matches!(
            err.error,
            JobError::Cancelled(CancelReason::DeadlineExceeded)
        ));
        assert_eq!(err.attempts, 1);
        assert_eq!(calls[0].load(Ordering::SeqCst), 1, "no retry after cancel");
        assert_eq!(
            calls[1].load(Ordering::SeqCst),
            0,
            "sibling never dispatched"
        );
    }

    #[test]
    fn cancelled_batch_resumes_byte_identically() {
        // The PR's headline guarantee at engine level: cancel mid-batch,
        // resume with the same checkpoint, get the uninterrupted result.
        let root =
            std::env::temp_dir().join(format!("membw_runner_ckpt_cancel_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cfg = Some(CheckpointConfig {
            root: root.clone(),
            resume: true,
        });
        let token = CancelToken::new();
        let trigger = token.clone();
        let first = with_checkpoint(cfg.clone(), || {
            with_cancel_token(token, || {
                Runner::new(1).checkpointed("cancel-resume", "v1/cr/8", 8, move |i| {
                    if i == 4 {
                        trigger.cancel(CancelReason::Interrupted);
                        ambient_cancel_token().check();
                    }
                    i as u64 * 7
                })
            })
        });
        assert!(first[..4].iter().all(Result::is_ok), "prefix completed");
        assert!(first[4..].iter().all(Result::is_err), "suffix drained");
        // Resume with a live token: completed jobs replay, cancelled
        // slots recompute.
        let executed = AtomicU32::new(0);
        let second = with_checkpoint(cfg, || {
            Runner::new(1).checkpointed("cancel-resume", "v1/cr/8", 8, |i| {
                executed.fetch_add(1, Ordering::SeqCst);
                i as u64 * 7
            })
        });
        assert_eq!(
            second
                .iter()
                .map(|r| *r.as_ref().unwrap())
                .collect::<Vec<_>>(),
            (0..8).map(|i| i * 7).collect::<Vec<u64>>()
        );
        assert_eq!(
            executed.load(Ordering::SeqCst),
            4,
            "only cancelled slots re-ran"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cancelled_jobs_count_as_cancelled_not_failed() {
        let before = metrics();
        let token = CancelToken::new();
        token.cancel(CancelReason::Interrupted);
        let out = with_cancel_token(token, || Runner::new(2).try_run("all-cancelled", 5, |i| i));
        assert!(out.iter().all(Result::is_err));
        // Every slot reports Cancelled with attempts 0 — none of them
        // count as failures (metrics are process-global and other tests
        // run concurrently, so assert on the returned shape plus the
        // cancelled counter's growth, not on an exact failure delta).
        for r in &out {
            let e = r.as_ref().unwrap_err();
            assert!(matches!(e.error, JobError::Cancelled(_)), "{e}");
            assert_eq!(e.attempts, 0);
        }
        let d = metrics_delta(before, metrics());
        assert!(d.cancelled >= 5, "cancelled counted: {d:?}");
    }

    #[test]
    fn jobs_env_parses_strictly() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert_eq!(parse_jobs(" 1 "), Ok(1));
        for bad in ["0", "-2", "many", "1.5", ""] {
            let err = parse_jobs(bad).unwrap_err();
            assert!(err.contains(JOBS_ENV), "{bad:?} -> {err}");
            assert!(err.contains(&format!("{bad:?}")), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn deadline_marks_slow_jobs_failed_without_poisoning_siblings() {
        let r = Runner::new(4).timeout(Some(Duration::from_millis(50)));
        let out = r.try_run("slowpoke", 8, |i| {
            if i == 2 {
                std::thread::sleep(Duration::from_millis(400));
            }
            i
        });
        let err = out[2].as_ref().unwrap_err();
        assert!(
            matches!(err.error, JobError::TimedOut(_)),
            "expected timeout, got {err}"
        );
        for (i, r) in out.iter().enumerate() {
            if i != 2 {
                assert_eq!(r.as_ref().copied(), Ok(i));
            }
        }
    }

    #[test]
    fn deadline_applies_on_a_single_thread_too() {
        let r = Runner::new(1).timeout(Some(Duration::from_millis(50)));
        let out = r.try_run("serial-slow", 3, |i| {
            if i == 1 {
                std::thread::sleep(Duration::from_millis(400));
            }
            i
        });
        assert!(out[1].is_err());
        assert_eq!(out[0].as_ref().copied(), Ok(0));
        assert_eq!(out[2].as_ref().copied(), Ok(2));
    }

    #[test]
    fn checkpoint_resume_replays_archived_results() {
        let root = std::env::temp_dir().join(format!("membw_runner_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cfg = Some(CheckpointConfig {
            root: root.clone(),
            resume: true,
        });
        let first = with_checkpoint(cfg.clone(), || {
            Runner::new(4).checkpointed("ckpt-test", "v1/demo/6", 6, |i| i as u64 * 3)
        });
        assert!(first.iter().all(Result::is_ok));
        // Second run: the closure must never execute — results replay.
        let second = with_checkpoint(cfg, || {
            Runner::new(4).checkpointed("ckpt-test", "v1/demo/6", 6, |i| -> u64 {
                panic!("job {i} should have been resumed")
            })
        });
        assert_eq!(
            second
                .iter()
                .map(|r| *r.as_ref().unwrap())
                .collect::<Vec<_>>(),
            vec![0, 3, 6, 9, 12, 15]
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_without_resume_recomputes() {
        let root =
            std::env::temp_dir().join(format!("membw_runner_ckpt_nr_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mk = |resume| {
            Some(CheckpointConfig {
                root: root.clone(),
                resume,
            })
        };
        let _ = with_checkpoint(mk(true), || {
            Runner::new(2).checkpointed("nr", "v1/nr/4", 4, |i| i as u64)
        });
        let ran = AtomicU32::new(0);
        let out = with_checkpoint(mk(false), || {
            Runner::new(2).checkpointed("nr", "v1/nr/4", 4, |i| {
                ran.fetch_add(1, Ordering::SeqCst);
                i as u64
            })
        });
        assert!(out.iter().all(Result::is_ok));
        assert_eq!(ran.load(Ordering::SeqCst), 4, "--no-resume recomputes");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn failed_jobs_are_not_checkpointed_and_retry_on_resume() {
        let root =
            std::env::temp_dir().join(format!("membw_runner_ckpt_fail_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cfg = Some(CheckpointConfig {
            root: root.clone(),
            resume: true,
        });
        let first = with_checkpoint(cfg.clone(), || {
            Runner::new(2).checkpointed("heal", "v1/heal/4", 4, |i| {
                assert!(i != 2, "transient outage");
                i as u64
            })
        });
        assert!(first[2].is_err());
        // Resume: healthy jobs replay, the failed one re-executes and
        // now succeeds — exactly the interrupted-campaign story.
        let executed = AtomicU32::new(0);
        let second = with_checkpoint(cfg, || {
            Runner::new(2).checkpointed("heal", "v1/heal/4", 4, |i| {
                executed.fetch_add(1, Ordering::SeqCst);
                i as u64
            })
        });
        assert!(second.iter().all(Result::is_ok));
        assert_eq!(
            executed.load(Ordering::SeqCst),
            1,
            "only the failed job re-ran"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn try_run_is_deterministic_across_thread_counts_with_faults() {
        let run = |threads| {
            Runner::new(threads).try_run("det", 40, |i| {
                assert!(i % 13 != 5, "periodic fault");
                (i as u64).wrapping_mul(0x9E37_79B9)
            })
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (Ok(v), Ok(w)) => assert_eq!(v, w),
                (Err(e), Err(f)) => assert_eq!(e, f),
                other => panic!("divergent fault placement: {other:?}"),
            }
        }
    }

    #[test]
    fn failure_metrics_accumulate() {
        let before = metrics();
        let _ = Runner::new(2).retries(1).try_run("metrics", 6, |i| {
            assert!(i != 3, "fails twice");
            i
        });
        let d = metrics_delta(before, metrics());
        assert!(d.retries >= 1, "retry counted");
        assert!(d.failures >= 1, "failure counted");
    }
}
