//! Deterministic parallel execution of the experiment job matrix.
//!
//! Every experiment in this reproduction — the three-run `f_P/f_L/f_B`
//! decomposition (§3), the Table 7/8 traffic sweeps, the Table 9/10
//! factor studies, the Figure 4 curves — expands into a matrix of
//! *independent* jobs: (experiment × workload × run). This crate fans
//! that matrix out over a fixed-width pool of OS threads and merges the
//! results **in canonical index order**, so the assembled tables, plots
//! and JSON are byte-identical whatever the thread count.
//!
//! # Determinism contract
//!
//! [`Runner::run`] returns `out[i] == f(i)` for every `i`, with results
//! placed by job index, never by completion order. Each job must be a
//! pure function of its index (all the membw jobs regenerate their
//! traces from the workload's fixed seed, so they are). Under that
//! contract `--jobs 1` and `--jobs N` are indistinguishable from the
//! output side; the tier-1 determinism test asserts it end-to-end.
//!
//! # Choosing the pool width
//!
//! Priority order: [`with_jobs`] (thread-local override, used by tests),
//! then [`set_jobs`] (process-wide, set by `repro --jobs N`), then the
//! `MEMBW_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use membw_runner::Runner;
//!
//! let squares = Runner::new(4).run(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Process-wide override set by `--jobs N` (0 = unset).
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Thread-local override installed by [`with_jobs`] (0 = unset).
    static TL_JOBS: Cell<usize> = const { Cell::new(0) };
}

/// Set the process-wide job count (e.g. from a `--jobs N` flag).
///
/// Values are clamped to at least 1.
pub fn set_jobs(n: usize) {
    GLOBAL_JOBS.store(n.max(1), Ordering::SeqCst);
}

/// Run `f` with the job count forced to `n` on this thread (and the
/// runners it creates). Restores the previous override afterwards, so
/// tests can compare `--jobs 1` and `--jobs 8` runs side by side
/// without touching process state.
pub fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = TL_JOBS.with(|c| c.replace(n.max(1)));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_JOBS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The effective job count for a runner created on this thread.
pub fn configured_jobs() -> usize {
    let tl = TL_JOBS.with(Cell::get);
    if tl > 0 {
        return tl;
    }
    let global = GLOBAL_JOBS.load(Ordering::SeqCst);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var("MEMBW_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Aggregate accounting of the jobs a process has executed, for the
/// report layer (wall-clock summaries stay on stderr so stdout remains
/// byte-identical across thread counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Job batches dispatched ([`Runner::run`] calls that ran anything).
    pub batches: u64,
    /// Jobs executed.
    pub jobs: u64,
    /// Summed per-job wall time in nanoseconds (CPU-side cost; exceeds
    /// real wall time when jobs overlap).
    pub busy_nanos: u64,
}

impl Metrics {
    /// Summed per-job wall time.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos)
    }
}

static METRIC_BATCHES: AtomicU64 = AtomicU64::new(0);
static METRIC_JOBS: AtomicU64 = AtomicU64::new(0);
static METRIC_BUSY_NANOS: AtomicU64 = AtomicU64::new(0);

/// Snapshot the process-wide job metrics.
pub fn metrics() -> Metrics {
    Metrics {
        batches: METRIC_BATCHES.load(Ordering::Relaxed),
        jobs: METRIC_JOBS.load(Ordering::Relaxed),
        busy_nanos: METRIC_BUSY_NANOS.load(Ordering::Relaxed),
    }
}

/// Difference between two [`metrics`] snapshots (`later - earlier`),
/// the per-target accounting `repro` prints.
pub fn metrics_delta(earlier: Metrics, later: Metrics) -> Metrics {
    Metrics {
        batches: later.batches.saturating_sub(earlier.batches),
        jobs: later.jobs.saturating_sub(earlier.jobs),
        busy_nanos: later.busy_nanos.saturating_sub(earlier.busy_nanos),
    }
}

/// A fixed-width deterministic job pool.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    threads: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Runner {
    /// A runner with an explicit thread count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A runner honouring [`with_jobs`] / [`set_jobs`] / `MEMBW_JOBS` /
    /// available parallelism, in that order.
    pub fn from_env() -> Self {
        Self::new(configured_jobs())
    }

    /// The pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute jobs `0..n` and return their results in index order.
    ///
    /// Work is distributed by an atomic cursor (self-balancing: a slow
    /// job never stalls the queue behind it), but results are merged by
    /// index, so the output is independent of scheduling. With one
    /// thread (or one job) everything runs inline on the caller's
    /// thread — that is the `--jobs 1` serial baseline.
    ///
    /// # Panics
    ///
    /// A panicking job aborts the batch: the scope joins its workers
    /// and re-panics on the caller's thread (the job's own payload is
    /// reported on stderr by the worker thread as it unwinds).
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        METRIC_BATCHES.fetch_add(1, Ordering::Relaxed);
        METRIC_JOBS.fetch_add(n as u64, Ordering::Relaxed);
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n)
                .map(|i| {
                    let t0 = Instant::now();
                    let v = f(i);
                    METRIC_BUSY_NANOS
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    v
                })
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = Instant::now();
                    let v = f(i);
                    METRIC_BUSY_NANOS
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    *slots[i].lock().expect("job slot poisoned") = Some(v);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("job slot poisoned")
                    .expect("every job index was executed")
            })
            .collect()
    }

    /// [`Runner::run`] over a slice: `out[i] == f(&items[i])`.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run(items.len(), |i| f(&items[i]))
    }

    /// Expand the cross product `a × b` (a-major, the canonical matrix
    /// order) and run one job per pair, returning results in that
    /// order: `out[i * b.len() + j] == f(&a[i], &b[j])`.
    pub fn cross<A, B, T, F>(&self, a: &[A], b: &[B], f: F) -> Vec<T>
    where
        A: Sync,
        B: Sync,
        T: Send,
        F: Fn(&A, &B) -> T + Sync,
    {
        if b.is_empty() {
            return Vec::new();
        }
        self.run(a.len() * b.len(), |k| f(&a[k / b.len()], &b[k % b.len()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_arrive_in_index_order() {
        let r = Runner::new(8);
        // Jobs finish in scrambled order (later indices sleep less);
        // the merge must still be by index.
        let out = r.run(32, |i| {
            std::thread::sleep(Duration::from_micros((32 - i as u64) * 50));
            i * 10
        });
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let r = Runner::new(1);
        let main_thread = std::thread::current().id();
        let out = r.run(4, |i| (i, std::thread::current().id()));
        for (i, (idx, tid)) in out.into_iter().enumerate() {
            assert_eq!(i, idx);
            assert_eq!(tid, main_thread, "serial baseline must not spawn");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let r = Runner::new(3);
        let counts: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        let _ = r.run(100, |i| counts[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(13);
        assert_eq!(Runner::new(1).run(257, f), Runner::new(7).run(257, f));
    }

    #[test]
    fn cross_is_a_major() {
        let r = Runner::new(4);
        let out = r.cross(&[10, 20], &[1, 2, 3], |a, b| a + b);
        assert_eq!(out, vec![11, 12, 13, 21, 22, 23]);
    }

    #[test]
    fn cross_with_empty_axis_is_empty() {
        let r = Runner::new(4);
        let out: Vec<i32> = r.cross(&[1, 2], &[] as &[i32], |a, b| a + b);
        assert!(out.is_empty());
        let out: Vec<i32> = r.cross(&[] as &[i32], &[1, 2], |a, b| a + b);
        assert!(out.is_empty());
    }

    #[test]
    fn with_jobs_overrides_and_restores() {
        let before = configured_jobs();
        let inside = with_jobs(3, configured_jobs);
        assert_eq!(inside, 3);
        assert_eq!(configured_jobs(), before);
        // Nesting: innermost wins.
        let nested = with_jobs(2, || with_jobs(5, configured_jobs));
        assert_eq!(nested, 5);
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<String> = (0..20).map(|i| format!("w{i}")).collect();
        let out = Runner::new(6).map(&items, |s| s.len());
        assert_eq!(out, items.iter().map(String::len).collect::<Vec<_>>());
    }

    #[test]
    fn metrics_accumulate() {
        let before = metrics();
        let _ = Runner::new(2).run(10, |i| i);
        let delta = metrics_delta(before, metrics());
        assert!(delta.batches >= 1);
        assert!(delta.jobs >= 10);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn job_panics_propagate() {
        let _ = Runner::new(4).run(16, |i| {
            assert!(i != 7, "job 7 exploded");
            i
        });
    }
}
