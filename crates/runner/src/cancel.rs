//! Cooperative cancellation: a cheap shared token the sim hot loops
//! poll, wired to SIGINT/SIGTERM and to the `--deadline` wall clock.
//!
//! # Protocol
//!
//! A [`CancelToken`] is a shared pair of atomics (state + deadline).
//! Code that wants to *stop* work calls [`CancelToken::cancel`] (or the
//! signal handler / deadline does); code that wants to *be stoppable*
//! polls [`CancelToken::check`] every few thousand units of work. The
//! poll is one relaxed atomic load on the fast path — cheap enough for
//! the per-uop sim loops, the MTC reference scan, and trace recording.
//!
//! `check()` stops the current job by unwinding with a private
//! [`CancelUnwind`] payload (via [`std::panic::resume_unwind`], so the
//! process panic hook stays silent). The run engine's per-job
//! `catch_unwind` recognizes that payload and reports the job as
//! [`JobError::Cancelled`](crate::JobError::Cancelled) instead of
//! `Panicked` — completed siblings keep their results, checkpoints
//! flush through the normal durable path, and a later `--resume` run
//! recomputes only the cancelled slots.
//!
//! # Ambient installation
//!
//! Like the jobs/retries/checkpoint configuration, the token is
//! installed ambiently: [`global_cancel_token`] is the process-wide
//! token (the one SIGINT flips), and [`with_cancel_token`] overrides it
//! thread-locally so tests can cancel an isolated batch without
//! touching process state. [`Runner`](crate::Runner) captures the
//! ambient token when a batch starts and re-installs it inside every
//! worker and watchdog thread, so jobs always see the right one.
//!
//! # Deadlines
//!
//! [`CancelToken::set_deadline`] arms a monotonic wall-clock bound;
//! the token *self-cancels* with [`CancelReason::DeadlineExceeded`] on
//! the first poll past the deadline. No timer thread exists — the
//! clock is only consulted at poll cadence, which is why polls are
//! split into a cheap flag check and a rarer deadline check.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Why a token was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// An interrupt was requested (SIGINT/SIGTERM drain, or an explicit
    /// [`CancelToken::cancel`] call).
    Interrupted,
    /// The `--deadline` wall-clock bound elapsed.
    DeadlineExceeded,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Interrupted => write!(f, "interrupt"),
            CancelReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// The unwind payload [`CancelToken::check`] throws. Public so the
/// engine (and any embedder with its own `catch_unwind`) can downcast
/// and distinguish cancellation from a genuine panic.
#[derive(Debug, Clone, Copy)]
pub struct CancelUnwind(pub CancelReason);

/// Token state values (in `Inner::state`).
const LIVE: u8 = 0;
const INTERRUPTED: u8 = 1;
const DEADLINE: u8 = 2;
/// "No deadline armed" sentinel (in `Inner::deadline_nanos`).
const NO_DEADLINE: u64 = u64::MAX;

/// The shared core of a token. Const-constructible so the process-wide
/// instance can live in a `static` the signal handler reaches without
/// allocation or locking.
struct Inner {
    /// `LIVE`, `INTERRUPTED`, or `DEADLINE`.
    state: AtomicU8,
    /// Armed deadline as nanoseconds since [`anchor`], or `NO_DEADLINE`.
    deadline_nanos: AtomicU64,
    /// SIGINT/SIGTERM deliveries observed (drain-mode bookkeeping).
    signals: AtomicU64,
}

impl Inner {
    const fn new() -> Self {
        Inner {
            state: AtomicU8::new(LIVE),
            deadline_nanos: AtomicU64::new(NO_DEADLINE),
            signals: AtomicU64::new(0),
        }
    }

    fn cancel(&self, reason: CancelReason) {
        let state = match reason {
            CancelReason::Interrupted => INTERRUPTED,
            CancelReason::DeadlineExceeded => DEADLINE,
        };
        // First cancellation wins; a later deadline must not overwrite
        // an interrupt (or vice versa) so failure tables stay stable.
        let _ = self
            .state
            .compare_exchange(LIVE, state, Ordering::SeqCst, Ordering::SeqCst);
    }

    fn reason(&self) -> Option<CancelReason> {
        match self.state.load(Ordering::Relaxed) {
            INTERRUPTED => Some(CancelReason::Interrupted),
            DEADLINE => Some(CancelReason::DeadlineExceeded),
            _ => {
                let deadline = self.deadline_nanos.load(Ordering::Relaxed);
                if deadline != NO_DEADLINE && monotonic_nanos() >= deadline {
                    self.cancel(CancelReason::DeadlineExceeded);
                    // Re-read: a racing interrupt may have won the CAS.
                    return self.reason();
                }
                None
            }
        }
    }
}

/// The process-wide token's core. A `static` (not a lazy `Arc`) so the
/// async-signal handler can flip it with a single atomic store.
static GLOBAL_INNER: Inner = Inner::new();

/// Monotonic time anchor: nanoseconds are measured from the first call.
fn monotonic_nanos() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Where a token's shared core lives.
#[derive(Clone)]
enum Core {
    /// The process-wide static (what the signal handler cancels).
    Global,
    /// An independently owned core (tests, scoped batches).
    Owned(Arc<Inner>),
}

/// A cheap, cloneable cancellation token.
///
/// Cloning shares the underlying state: cancelling any clone cancels
/// them all. See the [module docs](self) for the protocol.
#[derive(Clone)]
pub struct CancelToken {
    core: Core,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("global", &matches!(self.core, Core::Global))
            .field("reason", &self.cancel_reason())
            .finish()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, independent token (not cancelled, no deadline).
    pub fn new() -> Self {
        CancelToken {
            core: Core::Owned(Arc::new(Inner::new())),
        }
    }

    fn inner(&self) -> &Inner {
        match &self.core {
            Core::Global => &GLOBAL_INNER,
            Core::Owned(arc) => arc,
        }
    }

    /// Request cancellation with an explicit reason. Idempotent; the
    /// first reason sticks.
    pub fn cancel(&self, reason: CancelReason) {
        self.inner().cancel(reason);
    }

    /// Whether cancellation has been requested (including a deadline
    /// that has now elapsed). One relaxed load on the fast path.
    pub fn is_cancelled(&self) -> bool {
        self.inner().reason().is_some()
    }

    /// The sticky cancellation reason, if any.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        self.inner().reason()
    }

    /// Arm a wall-clock deadline `d` from now. The token self-cancels
    /// with [`CancelReason::DeadlineExceeded`] at the first poll past
    /// it. Re-arming replaces the previous deadline.
    pub fn set_deadline(&self, d: Duration) {
        let at = monotonic_nanos().saturating_add(d.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.inner().deadline_nanos.store(at, Ordering::SeqCst);
    }

    /// Time remaining until the armed deadline (`None` when no deadline
    /// is armed; zero once it has elapsed).
    pub fn deadline_remaining(&self) -> Option<Duration> {
        match self.inner().deadline_nanos.load(Ordering::Relaxed) {
            NO_DEADLINE => None,
            at => Some(Duration::from_nanos(at.saturating_sub(monotonic_nanos()))),
        }
    }

    /// Poll point for hot loops: returns immediately while live, and
    /// unwinds with a [`CancelUnwind`] payload once cancelled (skipping
    /// the process panic hook). The run engine's per-job isolation
    /// converts the unwind into
    /// [`JobError::Cancelled`](crate::JobError::Cancelled).
    #[inline]
    pub fn check(&self) {
        if let Some(reason) = self.inner().reason() {
            std::panic::resume_unwind(Box::new(CancelUnwind(reason)));
        }
    }

    /// Signal deliveries observed by the drain handler on this token
    /// (0 when no handler is installed or no signal arrived).
    pub fn signals_seen(&self) -> u64 {
        self.inner().signals.load(Ordering::Relaxed)
    }
}

/// The process-wide token: the one [`install_signal_drain`] wires to
/// SIGINT/SIGTERM and `repro --deadline` arms.
pub fn global_cancel_token() -> CancelToken {
    CancelToken { core: Core::Global }
}

thread_local! {
    /// Thread-local override installed by [`with_cancel_token`].
    static TL_CANCEL: std::cell::RefCell<Option<CancelToken>> =
        const { std::cell::RefCell::new(None) };
}

/// Run `f` with `token` as the ambient cancel token on this thread,
/// restoring the previous override afterwards. Tests cancel an
/// isolated batch this way without touching the process-wide token.
pub fn with_cancel_token<R>(token: CancelToken, f: impl FnOnce() -> R) -> R {
    let prev = TL_CANCEL.with(|c| c.replace(Some(token)));
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_CANCEL.with(|c| {
                *c.borrow_mut() = self.0.take();
            });
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The ambient token on this thread: the [`with_cancel_token`]
/// override if one is installed, else the process-wide token.
pub fn ambient_cancel_token() -> CancelToken {
    TL_CANCEL
        .with(|c| c.borrow().clone())
        .unwrap_or_else(global_cancel_token)
}

/// Async-signal-safe SIGINT/SIGTERM handler: first delivery flips the
/// global token to `INTERRUPTED` (drain mode — in-flight jobs cancel
/// cooperatively and completed work flushes); a second delivery
/// force-exits with code 130 for runs that cannot drain.
#[cfg(unix)]
extern "C" fn drain_handler(_sig: i32) {
    // Everything here must be async-signal-safe: atomic ops and _exit
    // only — no allocation, no locks, no stdio.
    let prior = GLOBAL_INNER.signals.fetch_add(1, Ordering::SeqCst);
    if prior >= 1 {
        // SAFETY: _exit is async-signal-safe by POSIX; it terminates
        // the process without running atexit handlers or unwinding.
        unsafe { _exit(130) };
    }
    GLOBAL_INNER
        .state
        .compare_exchange(LIVE, INTERRUPTED, Ordering::SeqCst, Ordering::SeqCst)
        .ok();
}

// std already links libc; declaring the two POSIX entry points we need
// avoids growing the (offline, vendored-only) dependency set.
#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn _exit(code: i32) -> !;
}

/// Install the SIGINT/SIGTERM request-drain handler on the global
/// token. Call once, early in `main`, from binaries that want the
/// drain protocol (libraries and tests never install it). On
/// non-unix targets this is a no-op.
pub fn install_signal_drain() {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: drain_handler is async-signal-safe (atomics + _exit)
        // and has the exact `extern "C" fn(i32)` ABI signal expects.
        let handler = drain_handler as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.cancel_reason(), None);
        t.check(); // must not unwind
    }

    #[test]
    fn cancel_is_sticky_and_first_reason_wins() {
        let t = CancelToken::new();
        t.cancel(CancelReason::Interrupted);
        assert!(t.is_cancelled());
        t.cancel(CancelReason::DeadlineExceeded);
        assert_eq!(t.cancel_reason(), Some(CancelReason::Interrupted));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel(CancelReason::Interrupted);
        assert!(t.is_cancelled());
    }

    #[test]
    fn check_unwinds_with_a_recognizable_payload() {
        let t = CancelToken::new();
        t.cancel(CancelReason::DeadlineExceeded);
        let err = catch_unwind(AssertUnwindSafe(|| t.check())).unwrap_err();
        let cu = err
            .downcast_ref::<CancelUnwind>()
            .expect("payload must be CancelUnwind");
        assert_eq!(cu.0, CancelReason::DeadlineExceeded);
    }

    #[test]
    fn deadline_self_cancels() {
        let t = CancelToken::new();
        assert_eq!(t.deadline_remaining(), None);
        t.set_deadline(Duration::from_millis(20));
        assert!(t.deadline_remaining().is_some());
        assert!(!t.is_cancelled(), "deadline still in the future");
        std::thread::sleep(Duration::from_millis(40));
        assert!(t.is_cancelled());
        assert_eq!(t.cancel_reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn ambient_override_restores() {
        let t = CancelToken::new();
        t.cancel(CancelReason::Interrupted);
        let seen = with_cancel_token(t, || ambient_cancel_token().is_cancelled());
        assert!(seen);
        // Outside the override the ambient token is the (live) global.
        assert!(!ambient_cancel_token().is_cancelled());
    }

    #[test]
    fn reasons_display() {
        assert_eq!(CancelReason::Interrupted.to_string(), "interrupt");
        assert_eq!(
            CancelReason::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
    }
}
