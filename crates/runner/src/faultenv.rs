//! The consolidated registry of strict fault-injection environment
//! validators.
//!
//! Every fault hook in the workspace follows the same contract: a
//! malformed spec is a **named-variable error and a refusal to start**
//! (exit 2 from drivers), never a silently-ignored hook. This module is
//! the one place that knows which variables exist, so drivers validate
//! all of them with one call and the "garbage spec is rejected with the
//! variable's name" property is asserted once, uniformly, for every
//! hook ([`tests::every_registered_var_rejects_garbage_by_name`]).
//!
//! The serve-layer variables (`MEMBW_SERVE_FAULT` protocol chaos and
//! `MEMBW_NET_FAULT` wire-level fault plans) live in the `membw-serve`
//! crate — a layer above this one — and register themselves through the
//! same [`FaultVar`] shape; the serve driver chains the registries so
//! every hook keeps the one garbage-spec-is-exit-2 contract.

use crate::{faultio, inject};

/// One strict fault-env variable: its name, its grammar (for docs and
/// error messages), and its validator.
#[derive(Clone, Copy)]
pub struct FaultVar {
    /// The environment variable name.
    pub name: &'static str,
    /// Human-readable grammar summary.
    pub grammar: &'static str,
    /// Strict spec validator; the error names the variable.
    pub validate: fn(&str) -> Result<(), String>,
}

/// The fault variables owned by the runner layer.
pub fn vars() -> [FaultVar; 4] {
    [
        FaultVar {
            name: inject::FAULT_INJECT_ENV,
            grammar: "label:index[,label:*] — matching jobs panic on every attempt",
            validate: |spec| inject::validate_selector_spec(inject::FAULT_INJECT_ENV, spec),
        },
        FaultVar {
            name: inject::FAULT_CANCEL_ENV,
            grammar: "label:index[,label:*] — dispatching a match cancels the run",
            validate: |spec| inject::validate_selector_spec(inject::FAULT_CANCEL_ENV, spec),
        },
        FaultVar {
            name: inject::FAULT_SLOW_ENV,
            grammar: "label:index:millis — matching jobs sleep before running",
            validate: inject::validate_slow_spec,
        },
        FaultVar {
            name: faultio::IO_FAULT_ENV,
            grammar: "enospc[:pth]|eintr|shortwrite|fsyncfail[:pth]|tornrename[:pth]\
                      |crash@K|count:PATH — I/O-layer fault plan",
            validate: faultio::validate_spec,
        },
    ]
}

/// Validate every variable in `vars` that is present in the
/// environment.
///
/// # Errors
///
/// The first validator failure, naming the variable.
pub fn validate(vars: &[FaultVar]) -> Result<(), String> {
    for var in vars {
        if let Ok(spec) = std::env::var(var.name) {
            (var.validate)(&spec)?;
        }
    }
    Ok(())
}

/// Validate every runner-layer fault variable present in the
/// environment. Drivers (`repro`) call this before starting work.
///
/// # Errors
///
/// The first validator failure, naming the variable.
pub fn validate_env() -> Result<(), String> {
    validate(&vars())
}

/// Assert the uniform contract on one [`FaultVar`]: garbage is
/// rejected, and the error names the variable so the user knows which
/// knob to fix. Shared by this module's tests and the serve layer's.
pub fn assert_rejects_garbage(var: &FaultVar) {
    for garbage in [
        "@@definitely-not-a-spec@@",
        "",
        ",,,",
        "label:index:extra:junk:!",
    ] {
        match (var.validate)(garbage) {
            Ok(()) => panic!("{} accepted garbage spec {garbage:?}", var.name),
            Err(e) => assert!(
                e.contains(var.name),
                "{} error must name the variable: {e}",
                var.name
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_var_rejects_garbage_by_name() {
        for var in &vars() {
            assert_rejects_garbage(var);
        }
    }

    #[test]
    fn every_registered_var_accepts_a_canonical_spec() {
        for (name, spec) in [
            (inject::FAULT_INJECT_ENV, "table8:*"),
            (inject::FAULT_CANCEL_ENV, "fig3/SPEC92:3"),
            (inject::FAULT_SLOW_ENV, "table8:0:500"),
            (faultio::IO_FAULT_ENV, "eintr,shortwrite,enospc:3"),
        ] {
            let var = vars()
                .into_iter()
                .find(|v| v.name == name)
                .expect("registered");
            (var.validate)(spec).unwrap_or_else(|e| panic!("{name}={spec:?}: {e}"));
            assert!(!var.grammar.is_empty());
        }
    }

    #[test]
    fn validate_checks_only_present_vars() {
        // A variable that is unset cannot fail validation.
        let unset = FaultVar {
            name: "MEMBW_FAULTENV_TEST_UNSET_VAR",
            grammar: "never valid",
            validate: |_| Err("MEMBW_FAULTENV_TEST_UNSET_VAR always fails".into()),
        };
        assert!(validate(&[unset]).is_ok());
        std::env::set_var(unset.name, "x");
        assert!(validate(&[unset]).is_err());
        std::env::remove_var(unset.name);
    }
}
