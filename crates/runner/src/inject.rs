//! Deterministic fault injection for tests and CI smoke runs.
//!
//! Two environment variables, read at job dispatch:
//!
//! * `MEMBW_FAULT_INJECT` — comma-separated `label:index` entries (or
//!   `label:*` for every job of a batch); matching jobs panic with a
//!   recognizable message on **every** attempt, exercising the
//!   catch_unwind isolation, retry accounting, and failure summary.
//! * `MEMBW_FAULT_SLOW` — comma-separated `label:index:millis` entries;
//!   matching jobs sleep before running, exercising the `--job-timeout`
//!   watchdog.
//!
//! The hooks key on the batch *label* (`"table8"`, `"fig3/SPEC92"`, …)
//! plus the canonical job index, so an injected fault is a pure
//! function of the matrix position — the healthy jobs' outputs stay
//! byte-identical at any `--jobs` setting.

/// True if `entry` (e.g. `"table8:3"` or `"table8:*"`) selects job
/// `index` of batch `label`.
fn selects(entry: &str, label: &str, index: usize) -> bool {
    let Some((l, i)) = entry.rsplit_once(':') else {
        return false;
    };
    l == label && (i == "*" || i.parse() == Ok(index))
}

/// Apply any configured injection for (`label`, `index`): sleep first
/// (slow-job injection), then panic (fault injection).
///
/// # Panics
///
/// Panics deliberately when `MEMBW_FAULT_INJECT` selects this job; the
/// engine's catch_unwind turns it into a per-job failure.
pub(crate) fn apply(label: &str, index: usize) {
    if let Ok(spec) = std::env::var("MEMBW_FAULT_SLOW") {
        for entry in spec.split(',') {
            if let Some((sel, ms)) = entry.rsplit_once(':') {
                if selects(sel, label, index) {
                    if let Ok(ms) = ms.trim().parse::<u64>() {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                }
            }
        }
    }
    if let Ok(spec) = std::env::var("MEMBW_FAULT_INJECT") {
        for entry in spec.split(',') {
            if selects(entry.trim(), label, index) {
                panic!("injected fault at {label}:{index} (MEMBW_FAULT_INJECT)");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_grammar() {
        assert!(selects("table8:3", "table8", 3));
        assert!(!selects("table8:3", "table8", 4));
        assert!(!selects("table8:3", "table7", 3));
        assert!(selects("table8:*", "table8", 11));
        assert!(!selects("table8", "table8", 0), "no index part");
        // Labels may themselves contain ':'-free slashes.
        assert!(selects("fig3/SPEC92:0", "fig3/SPEC92", 0));
    }
}
