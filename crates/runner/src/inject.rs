//! Deterministic fault injection for tests and CI smoke runs.
//!
//! Three environment variables, read at job dispatch:
//!
//! * `MEMBW_FAULT_INJECT` — comma-separated `label:index` entries (or
//!   `label:*` for every job of a batch); matching jobs panic with a
//!   recognizable message on **every** attempt, exercising the
//!   catch_unwind isolation, retry accounting, and failure summary.
//! * `MEMBW_FAULT_SLOW` — comma-separated `label:index:millis` entries;
//!   matching jobs sleep before running, exercising the `--job-timeout`
//!   watchdog. The sleep is sliced and polls the ambient cancel token,
//!   so a drain is never stuck behind an injected delay.
//! * `MEMBW_FAULT_CANCEL` — comma-separated `label:index` entries (or
//!   `label:*`); dispatching a matching job cancels the ambient
//!   [`CancelToken`](crate::CancelToken), exercising the full
//!   interrupt-drain path in-process, with no real signals.
//!
//! The hooks key on the batch *label* (`"table8"`, `"fig3/SPEC92"`, …)
//! plus the canonical job index, so an injected fault is a pure
//! function of the matrix position — the healthy jobs' outputs stay
//! byte-identical at any `--jobs` setting.
//!
//! Each variable's grammar has a strict validator, registered in the
//! consolidated [`faultenv`](crate::faultenv) module that drivers call
//! up front: a typo'd spec is a named-variable error and a refusal to
//! start, never a silently-ignored hook.

use crate::cancel::{ambient_cancel_token, CancelReason};
use std::time::Duration;

/// Environment variable injecting per-job panics.
pub const FAULT_INJECT_ENV: &str = "MEMBW_FAULT_INJECT";
/// Environment variable injecting per-job delays.
pub const FAULT_SLOW_ENV: &str = "MEMBW_FAULT_SLOW";
/// Environment variable injecting an ambient-token cancellation.
pub const FAULT_CANCEL_ENV: &str = "MEMBW_FAULT_CANCEL";

/// True if `entry` (e.g. `"table8:3"` or `"table8:*"`) selects job
/// `index` of batch `label`.
fn selects(entry: &str, label: &str, index: usize) -> bool {
    let Some((l, i)) = entry.rsplit_once(':') else {
        return false;
    };
    l == label && (i == "*" || i.parse() == Ok(index))
}

/// Validate one `label:index` selector (index may be `*`).
fn check_selector(var: &str, entry: &str) -> Result<(), String> {
    let bad = |why: &str| {
        Err(format!(
            "invalid {var} entry {entry:?}: {why} \
             (expected label:index, with index a job number or '*')"
        ))
    };
    let Some((label, index)) = entry.rsplit_once(':') else {
        return bad("missing ':index' part");
    };
    if label.is_empty() {
        return bad("empty batch label");
    }
    if index != "*" && index.parse::<usize>().is_err() {
        return bad("index is neither a job number nor '*'");
    }
    Ok(())
}

/// Strictly validate a [`FAULT_INJECT_ENV`] / [`FAULT_CANCEL_ENV`]
/// spec: comma-separated `label:index` selectors.
pub fn validate_selector_spec(var: &str, spec: &str) -> Result<(), String> {
    for entry in spec.split(',') {
        check_selector(var, entry.trim())?;
    }
    Ok(())
}

/// Strictly validate a [`FAULT_SLOW_ENV`] spec: comma-separated
/// `label:index:millis` entries.
pub fn validate_slow_spec(spec: &str) -> Result<(), String> {
    for entry in spec.split(',') {
        let entry = entry.trim();
        let Some((sel, ms)) = entry.rsplit_once(':') else {
            return Err(format!(
                "invalid {FAULT_SLOW_ENV} entry {entry:?}: \
                 expected label:index:millis"
            ));
        };
        if ms.trim().parse::<u64>().is_err() {
            return Err(format!(
                "invalid {FAULT_SLOW_ENV} entry {entry:?}: \
                 {ms:?} is not a millisecond count"
            ));
        }
        check_selector(FAULT_SLOW_ENV, sel)?;
    }
    Ok(())
}

/// Sleep for `ms` milliseconds in 50 ms slices, polling the ambient
/// cancel token between slices: an injected delay must never hold a
/// drain hostage. Cancellation unwinds via the token's normal
/// [`check`](crate::CancelToken::check) protocol.
fn cancellable_sleep(ms: u64) {
    let token = ambient_cancel_token();
    let mut remaining = Duration::from_millis(ms);
    const SLICE: Duration = Duration::from_millis(50);
    while !remaining.is_zero() {
        token.check();
        let step = remaining.min(SLICE);
        std::thread::sleep(step);
        remaining -= step;
    }
    token.check();
}

/// Apply any configured injection for (`label`, `index`): cancel the
/// ambient token first (cancel injection), then sleep (slow-job
/// injection), then panic (fault injection).
///
/// # Panics
///
/// Panics deliberately when `MEMBW_FAULT_INJECT` selects this job; the
/// engine's catch_unwind turns it into a per-job failure. A
/// `MEMBW_FAULT_CANCEL` match cancels the ambient token and then
/// unwinds through the normal cancellation poll.
pub(crate) fn apply(label: &str, index: usize) {
    if let Ok(spec) = std::env::var(FAULT_CANCEL_ENV) {
        for entry in spec.split(',') {
            if selects(entry.trim(), label, index) {
                ambient_cancel_token().cancel(CancelReason::Interrupted);
            }
        }
    }
    if let Ok(spec) = std::env::var(FAULT_SLOW_ENV) {
        for entry in spec.split(',') {
            if let Some((sel, ms)) = entry.rsplit_once(':') {
                if selects(sel, label, index) {
                    if let Ok(ms) = ms.trim().parse::<u64>() {
                        cancellable_sleep(ms);
                    }
                }
            }
        }
    }
    if let Ok(spec) = std::env::var(FAULT_INJECT_ENV) {
        for entry in spec.split(',') {
            if selects(entry.trim(), label, index) {
                panic!("injected fault at {label}:{index} ({FAULT_INJECT_ENV})");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_grammar() {
        assert!(selects("table8:3", "table8", 3));
        assert!(!selects("table8:3", "table8", 4));
        assert!(!selects("table8:3", "table7", 3));
        assert!(selects("table8:*", "table8", 11));
        assert!(!selects("table8", "table8", 0), "no index part");
        // Labels may themselves contain ':'-free slashes.
        assert!(selects("fig3/SPEC92:0", "fig3/SPEC92", 0));
    }

    #[test]
    fn selector_specs_validate_strictly() {
        assert!(validate_selector_spec(FAULT_INJECT_ENV, "table8:3").is_ok());
        assert!(validate_selector_spec(FAULT_INJECT_ENV, "table8:*, fig4:0").is_ok());
        assert!(validate_selector_spec(FAULT_INJECT_ENV, "fig3/SPEC92:12").is_ok());

        for bad in ["table8", "table8:x", ":3", "table8:3,oops", ""] {
            let err = validate_selector_spec(FAULT_INJECT_ENV, bad).unwrap_err();
            assert!(err.contains(FAULT_INJECT_ENV), "{bad:?} -> {err}");
        }
        // The cancel variable is named in its own errors.
        let err = validate_selector_spec(FAULT_CANCEL_ENV, "nope").unwrap_err();
        assert!(err.contains(FAULT_CANCEL_ENV), "{err}");
    }

    #[test]
    fn slow_specs_validate_strictly() {
        assert!(validate_slow_spec("table8:3:500").is_ok());
        assert!(validate_slow_spec("fig3/SPEC92:*:30000, table7:0:1").is_ok());

        for bad in ["table8:3", "table8:3:fast", "table8::5", ":*:5", ""] {
            let err = validate_slow_spec(bad).unwrap_err();
            assert!(err.contains(FAULT_SLOW_ENV), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn cancellable_sleep_aborts_early_when_cancelled() {
        use crate::cancel::{with_cancel_token, CancelToken};
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let token = CancelToken::new();
        token.cancel(CancelReason::Interrupted);
        let t0 = std::time::Instant::now();
        let unwound = with_cancel_token(token, || {
            catch_unwind(AssertUnwindSafe(|| cancellable_sleep(10_000))).is_err()
        });
        assert!(unwound, "a cancelled sleep must unwind");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "must not serve the full injected delay"
        );
    }
}
