//! Global memory governor: keeps a whole `repro` invocation inside a
//! byte budget by shedding *speed*, never *results*.
//!
//! # State machine
//!
//! The governor walks a monotonic escalation ladder; it never
//! de-escalates within a run, so a budgeted run's degradation sequence
//! is stable and auditable from the event log:
//!
//! ```text
//! Normal ──▶ CacheShrunk ──▶ Streaming ──▶ Throttled
//! ```
//!
//! * **Normal** — no interference; the trace cache uses its configured
//!   `MEMBW_TRACE_CACHE_MB` budget.
//! * **CacheShrunk** — the trace-cache byte cap is clamped to half the
//!   governor budget; the cache's existing LRU eviction does the work.
//! * **Streaming** — the cache cap drops to zero: replays degrade to
//!   record-streaming (every job regenerates its trace), which PR 3's
//!   determinism contract guarantees is byte-identical on stdout.
//! * **Throttled** — new job admission serializes (at most one job in
//!   flight at a time) so peak working-set, not just cache residency,
//!   fits the budget. A lone job is always admitted — the ladder can
//!   slow the run down arbitrarily but can never wedge it.
//!
//! Escalation triggers whenever *projected* usage at the current level
//! exceeds the budget, where projected usage is the cache residency the
//! level would allow plus (jobs in flight × the largest trace arena
//! observed so far) as the per-job working-set estimate. Every
//! transition is logged loudly to stderr (`governor: …`) and kept for
//! the end-of-run summary.
//!
//! Because all three degradations preserve each job's pure-function
//! contract, stdout stays byte-identical to an unbudgeted run — the CI
//! smoke diffs it.
//!
//! # Ambient installation
//!
//! Mirrors the jobs/retries/checkpoint/cancel pattern:
//! [`global_governor`] is the process-wide instance `repro
//! --mem-budget` configures via [`set_mem_budget`]; [`with_governor`]
//! installs a scoped override for tests. The run engine captures the
//! ambient governor per batch and re-installs it inside worker
//! threads; the trace cache consults it on every lookup.

use crate::cancel::CancelToken;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Environment variable naming the invocation-wide memory budget in
/// mebibytes (same meaning as `repro --mem-budget MB`).
pub const MEM_BUDGET_MB_ENV: &str = "MEMBW_MEM_BUDGET_MB";

const MIB: u64 = 1024 * 1024;
/// "No budget" sentinel in `budget_bytes`.
const UNLIMITED: u64 = u64::MAX;

/// Escalation ladder levels (values of `Governor::level`).
const NORMAL: u8 = 0;
const CACHE_SHRUNK: u8 = 1;
const STREAMING: u8 = 2;
const THROTTLED: u8 = 3;

fn level_name(level: u8) -> &'static str {
    match level {
        NORMAL => "normal",
        CACHE_SHRUNK => "cache-shrunk",
        STREAMING => "streaming",
        _ => "throttled",
    }
}

/// Point-in-time governor accounting for the stderr summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GovernorStats {
    /// Configured budget in bytes (`None` = unlimited).
    pub budget_bytes: Option<u64>,
    /// Current escalation level name (`normal`, `cache-shrunk`,
    /// `streaming`, `throttled`).
    pub level: &'static str,
    /// Trace-cache resident bytes last reported by the cache.
    pub cache_resident_bytes: u64,
    /// Largest single trace arena observed (the per-job working-set
    /// estimate).
    pub arena_estimate_bytes: u64,
    /// Evictions the governor forced beyond the cache's own budget.
    pub forced_evictions: u64,
    /// Times a job waited for serialized admission under `Throttled`.
    pub throttled_admissions: u64,
    /// Arena-free (analytic-only) admissions via
    /// [`Governor::admit_light`]; excluded from the in-flight estimate.
    pub light_admissions: u64,
    /// Escalation events so far.
    pub events: u64,
}

/// See the [module docs](self) for the state machine.
pub struct Governor {
    /// Budget in bytes; `UNLIMITED` disables the governor entirely.
    budget_bytes: AtomicU64,
    /// Current ladder level (monotonic within a run).
    level: AtomicU8,
    /// Last cache residency report.
    cache_resident: AtomicU64,
    /// Max observed arena size (per-job working-set estimate).
    arena_estimate: AtomicU64,
    /// Evictions forced beyond the cache's configured budget.
    forced_evictions: AtomicU64,
    /// Jobs that waited for serialized admission.
    throttled_admissions: AtomicU64,
    /// Arena-free admissions (analytic-only work; stats only — never
    /// part of the projected-usage estimate).
    light_admissions: AtomicU64,
    /// Arena-free work currently in flight (stats only).
    light_inflight: AtomicU64,
    /// Jobs currently admitted (mirrors the mutexed count for lock-free
    /// projection reads).
    inflight_mirror: AtomicU64,
    /// Admission gate: count of jobs in flight.
    admission: Mutex<u64>,
    /// Signalled when a job retires.
    retired: Condvar,
    /// Escalation event log (bounded; also mirrored to stderr live).
    events: Mutex<Vec<String>>,
}

impl std::fmt::Debug for Governor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Governor")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for Governor {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Governor {
    /// A governor with no budget: every consultation is a cheap no-op.
    pub fn unlimited() -> Self {
        Governor {
            budget_bytes: AtomicU64::new(UNLIMITED),
            level: AtomicU8::new(NORMAL),
            cache_resident: AtomicU64::new(0),
            arena_estimate: AtomicU64::new(0),
            forced_evictions: AtomicU64::new(0),
            throttled_admissions: AtomicU64::new(0),
            light_admissions: AtomicU64::new(0),
            light_inflight: AtomicU64::new(0),
            inflight_mirror: AtomicU64::new(0),
            admission: Mutex::new(0),
            retired: Condvar::new(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A governor budgeted at `mb` mebibytes (0 = strictest: full
    /// degradation from the first job).
    pub fn with_budget_mb(mb: u64) -> Self {
        let g = Self::unlimited();
        g.set_budget_mb(Some(mb));
        g
    }

    /// (Re)configure the budget; `None` disables the governor.
    pub fn set_budget_mb(&self, mb: Option<u64>) {
        let bytes = mb.map_or(UNLIMITED, |m| m.saturating_mul(MIB));
        self.budget_bytes.store(bytes, Ordering::SeqCst);
    }

    /// Whether a budget is configured at all — the fast-path gate every
    /// consultation checks first.
    pub fn limited(&self) -> bool {
        self.budget_bytes.load(Ordering::Relaxed) != UNLIMITED
    }

    fn level_now(&self) -> u8 {
        self.level.load(Ordering::Relaxed)
    }

    /// Cache residency the ladder level would permit, given the actual
    /// residency `resident`.
    fn cache_allowance(&self, level: u8, resident: u64) -> u64 {
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        match level {
            NORMAL => resident,
            CACHE_SHRUNK => resident.min(budget / 2),
            _ => 0,
        }
    }

    /// Projected bytes at `level` with `inflight` jobs running.
    fn projected(&self, level: u8, inflight: u64) -> u64 {
        let resident = self.cache_resident.load(Ordering::Relaxed);
        let estimate = self.arena_estimate.load(Ordering::Relaxed);
        self.cache_allowance(level, resident)
            .saturating_add(inflight.saturating_mul(estimate))
    }

    /// Climb the ladder while projected usage exceeds the budget.
    /// Monotonic: concurrent callers race upward only.
    fn maybe_escalate(&self, inflight: u64) {
        if !self.limited() {
            return;
        }
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        loop {
            let level = self.level_now();
            if level >= THROTTLED {
                return;
            }
            let projected = self.projected(level, inflight);
            if projected <= budget {
                return;
            }
            if self
                .level
                .compare_exchange(level, level + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                let msg = format!(
                    "governor: {} -> {}: projected {:.1} MiB over {} MiB budget \
                     (cache {:.1} MiB resident, {} in flight x {:.1} MiB est.)",
                    level_name(level),
                    level_name(level + 1),
                    projected as f64 / MIB as f64,
                    budget / MIB,
                    self.cache_resident.load(Ordering::Relaxed) as f64 / MIB as f64,
                    inflight,
                    self.arena_estimate.load(Ordering::Relaxed) as f64 / MIB as f64,
                );
                eprintln!("{msg}");
                let mut log = self.events.lock().unwrap_or_else(PoisonError::into_inner);
                log.push(msg);
            }
        }
    }

    /// Admit one job, honouring the ladder: under `Throttled`,
    /// admission serializes (waits until no other job is in flight),
    /// polling `cancel` so a drain is never blocked on the gate. The
    /// returned guard retires the job on drop.
    pub fn admit(self: &Arc<Self>, cancel: &CancelToken) -> AdmissionGuard {
        if !self.limited() {
            return AdmissionGuard {
                gov: None,
                light: false,
            };
        }
        let mut inflight = self
            .admission
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut waited = false;
        loop {
            self.maybe_escalate(*inflight + 1);
            // Always admit a lone job; and never gate a cancelled run —
            // its jobs fail fast at the pre-dispatch check anyway.
            if self.level_now() < THROTTLED || *inflight == 0 || cancel.is_cancelled() {
                break;
            }
            waited = true;
            let (guard, _timeout) = self
                .retired
                .wait_timeout(inflight, Duration::from_millis(25))
                .unwrap_or_else(PoisonError::into_inner);
            inflight = guard;
        }
        if waited {
            self.throttled_admissions.fetch_add(1, Ordering::Relaxed);
        }
        *inflight += 1;
        self.inflight_mirror.store(*inflight, Ordering::Relaxed);
        drop(inflight);
        AdmissionGuard {
            gov: Some(Arc::clone(self)),
            light: false,
        }
    }

    /// Admit arena-free ("light") work: analytic-only renders and other
    /// jobs that never touch a trace arena. The governor's job is to
    /// shed *memory* pressure, and light work holds none — so light
    /// admissions are counted for the stats summary but excluded from
    /// the ladder's projected-usage estimate (`inflight × arena
    /// estimate`) and never wait on the `Throttled` serialization gate.
    pub fn admit_light(self: &Arc<Self>) -> AdmissionGuard {
        self.light_admissions.fetch_add(1, Ordering::Relaxed);
        self.light_inflight.fetch_add(1, Ordering::Relaxed);
        AdmissionGuard {
            gov: Some(Arc::clone(self)),
            light: true,
        }
    }

    /// The trace cache reports its resident bytes after every insert or
    /// eviction; growth past the budget escalates the ladder.
    pub fn report_cache_resident(&self, bytes: u64) {
        if !self.limited() {
            return;
        }
        self.cache_resident.store(bytes, Ordering::Relaxed);
        self.maybe_escalate(self.inflight_mirror.load(Ordering::Relaxed));
    }

    /// The trace layer reports each recorded arena's size; the largest
    /// one becomes the per-job working-set estimate.
    pub fn observe_arena_bytes(&self, bytes: u64) {
        if !self.limited() {
            return;
        }
        self.arena_estimate.fetch_max(bytes, Ordering::Relaxed);
        self.maybe_escalate(self.inflight_mirror.load(Ordering::Relaxed));
    }

    /// The byte cap the ladder currently imposes on the trace cache,
    /// given the cache's own `configured` budget. `Normal` passes the
    /// configured cap through; `CacheShrunk` clamps it to half the
    /// governor budget; `Streaming`/`Throttled` return 0 (no caching).
    pub fn cache_cap(&self, configured: u64) -> u64 {
        if !self.limited() {
            return configured;
        }
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        match self.level_now() {
            NORMAL => configured,
            CACHE_SHRUNK => configured.min(budget / 2),
            _ => 0,
        }
    }

    /// Whether replays should skip the cache entirely and record-stream.
    pub fn streaming(&self) -> bool {
        self.limited() && self.level_now() >= STREAMING
    }

    /// Count evictions the governor forced beyond the cache's own
    /// budget (reported by the cache when the effective cap shrank).
    pub fn note_forced_evictions(&self, n: u64) {
        if n > 0 {
            self.forced_evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Snapshot the governor accounting.
    pub fn stats(&self) -> GovernorStats {
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        GovernorStats {
            budget_bytes: (budget != UNLIMITED).then_some(budget),
            level: level_name(self.level_now()),
            cache_resident_bytes: self.cache_resident.load(Ordering::Relaxed),
            arena_estimate_bytes: self.arena_estimate.load(Ordering::Relaxed),
            forced_evictions: self.forced_evictions.load(Ordering::Relaxed),
            throttled_admissions: self.throttled_admissions.load(Ordering::Relaxed),
            light_admissions: self.light_admissions.load(Ordering::Relaxed),
            events: self
                .events
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len() as u64,
        }
    }

    /// The escalation event log (in order; also printed live).
    pub fn events(&self) -> Vec<String> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// RAII admission slot from [`Governor::admit`]; dropping it retires
/// the job and wakes throttled waiters.
pub struct AdmissionGuard {
    gov: Option<Arc<Governor>>,
    light: bool,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        if let Some(gov) = self.gov.take() {
            if self.light {
                // Light work never took an admission slot: only the
                // stats counter retires.
                let prev = gov.light_inflight.fetch_sub(1, Ordering::Relaxed);
                debug_assert!(prev > 0, "light admission retired twice");
                return;
            }
            let mut inflight = gov.admission.lock().unwrap_or_else(PoisonError::into_inner);
            *inflight = inflight.saturating_sub(1);
            gov.inflight_mirror.store(*inflight, Ordering::Relaxed);
            drop(inflight);
            gov.retired.notify_all();
        }
    }
}

/// The process-wide governor (`repro --mem-budget` configures it via
/// [`set_mem_budget`]; unlimited until then).
pub fn global_governor() -> Arc<Governor> {
    static GLOBAL: OnceLock<Arc<Governor>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Governor::unlimited())))
}

/// Configure the process-wide governor's budget (`--mem-budget MB` /
/// `MEMBW_MEM_BUDGET_MB`); `None` disables it.
pub fn set_mem_budget(mb: Option<u64>) {
    global_governor().set_budget_mb(mb);
}

thread_local! {
    /// Thread-local override installed by [`with_governor`].
    static TL_GOVERNOR: std::cell::RefCell<Option<Arc<Governor>>> =
        const { std::cell::RefCell::new(None) };
}

/// Run `f` with `gov` as the ambient governor on this thread,
/// restoring the previous override afterwards (tests budget an
/// isolated batch without touching process state).
pub fn with_governor<R>(gov: Arc<Governor>, f: impl FnOnce() -> R) -> R {
    let prev = TL_GOVERNOR.with(|c| c.replace(Some(gov)));
    struct Restore(Option<Arc<Governor>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_GOVERNOR.with(|c| {
                *c.borrow_mut() = self.0.take();
            });
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The ambient governor on this thread: the [`with_governor`] override
/// if installed, else the process-wide instance.
pub fn ambient_governor() -> Arc<Governor> {
    TL_GOVERNOR
        .with(|c| c.borrow().clone())
        .unwrap_or_else(global_governor)
}

/// Strictly parse a mebibyte budget (for `--mem-budget` and
/// `MEMBW_MEM_BUDGET_MB`): a bare non-negative integer. 0 is legal and
/// means "strictest" — degrade everything from the start.
pub fn parse_mem_budget_mb(raw: &str) -> Result<u64, String> {
    let trimmed = raw.trim();
    trimmed.parse::<u64>().map_err(|_| {
        format!(
            "invalid {MEM_BUDGET_MB_ENV} value {raw:?}: \
             expected a non-negative integer mebibyte count (0 = strictest)"
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_is_inert() {
        let g = Arc::new(Governor::unlimited());
        assert!(!g.limited());
        g.report_cache_resident(1 << 40);
        g.observe_arena_bytes(1 << 40);
        assert_eq!(g.cache_cap(123), 123);
        assert!(!g.streaming());
        assert_eq!(g.stats().level, "normal");
        let _a = g.admit(&CancelToken::new());
        let _b = g.admit(&CancelToken::new());
    }

    #[test]
    fn escalation_ladder_is_monotonic_and_ordered() {
        let g = Arc::new(Governor::with_budget_mb(10));
        // 4 MiB cache + one 8 MiB job projected over 10 MiB: shrink the
        // cache first.
        g.observe_arena_bytes(8 * MIB);
        g.report_cache_resident(4 * MIB);
        let _slot = g.admit(&CancelToken::new());
        // The cache allowance at CacheShrunk is min(4, 10/2) = 4 MiB,
        // still over with the 8 MiB job — so the ladder runs to
        // Streaming (cache 0 + 8 MiB job fits 10 MiB).
        assert_eq!(g.stats().level, "streaming");
        assert!(g.streaming());
        assert_eq!(g.cache_cap(512 * MIB), 0);
        let events = g.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].contains("normal -> cache-shrunk"), "{events:?}");
        assert!(
            events[1].contains("cache-shrunk -> streaming"),
            "{events:?}"
        );
    }

    #[test]
    fn zero_budget_degrades_fully_but_always_admits() {
        let g = Arc::new(Governor::with_budget_mb(0));
        g.observe_arena_bytes(MIB);
        let t = CancelToken::new();
        let first = g.admit(&t);
        assert_eq!(g.stats().level, "throttled");
        // A second admission must wait for the first to retire; retire
        // it from another thread and require the gate to open.
        let g2 = Arc::clone(&g);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            drop(first);
        });
        let second = g2.admit(&t);
        handle.join().unwrap();
        drop(second);
        assert!(g.stats().throttled_admissions >= 1);
    }

    #[test]
    fn cancelled_run_is_never_gated() {
        let g = Arc::new(Governor::with_budget_mb(0));
        g.observe_arena_bytes(MIB);
        let t = CancelToken::new();
        let _held = g.admit(&t);
        t.cancel(crate::CancelReason::Interrupted);
        // Would deadlock if the gate ignored cancellation.
        let _second = g.admit(&t);
    }

    #[test]
    fn cache_shrink_level_halves_the_cap() {
        let g = Arc::new(Governor::with_budget_mb(100));
        // 80 MiB resident + one 30 MiB job projects to 110 MiB: one
        // escalation (to cache-shrunk, allowance 50 + 30 = 80) suffices.
        g.observe_arena_bytes(30 * MIB);
        let _slot = g.admit(&CancelToken::new());
        g.report_cache_resident(80 * MIB);
        assert_eq!(g.stats().level, "cache-shrunk");
        assert_eq!(g.cache_cap(512 * MIB), 50 * MIB);
        assert!(!g.streaming());
    }

    #[test]
    fn light_admissions_never_escalate_or_block() {
        // Even a zero-budget governor with a huge arena estimate must
        // admit any number of light (arena-free) jobs immediately and
        // stay at its current ladder level: light work holds no arena,
        // so it contributes nothing to projected usage.
        let g = Arc::new(Governor::with_budget_mb(0));
        g.observe_arena_bytes(64 * MIB);
        let guards: Vec<AdmissionGuard> = (0..32).map(|_| g.admit_light()).collect();
        assert_eq!(g.stats().level, "normal");
        assert_eq!(g.stats().light_admissions, 32);
        drop(guards);
        assert_eq!(g.light_inflight.load(Ordering::Relaxed), 0);
        // And light work does not occupy the throttle gate: a real job
        // admitted while light work is in flight is a lone job.
        let _light = g.admit_light();
        let t = CancelToken::new();
        let _real = g.admit(&t);
        assert_eq!(g.stats().throttled_admissions, 0);
    }

    #[test]
    fn light_admissions_are_excluded_from_projection() {
        let g = Arc::new(Governor::with_budget_mb(100));
        g.observe_arena_bytes(60 * MIB);
        // 32 light admissions project 0 bytes; one real job projects 60
        // MiB — under the 100 MiB budget either way.
        let _lights: Vec<AdmissionGuard> = (0..32).map(|_| g.admit_light()).collect();
        let _real = g.admit(&CancelToken::new());
        assert_eq!(g.stats().level, "normal");
        assert_eq!(g.inflight_mirror.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn budget_parser_accepts_integers_and_names_the_variable() {
        assert_eq!(parse_mem_budget_mb("64"), Ok(64));
        assert_eq!(parse_mem_budget_mb(" 0 "), Ok(0));
        let err = parse_mem_budget_mb("lots").unwrap_err();
        assert!(err.contains(MEM_BUDGET_MB_ENV), "{err}");
        assert!(parse_mem_budget_mb("-3").is_err());
        assert!(parse_mem_budget_mb("").is_err());
    }

    #[test]
    fn ambient_override_restores() {
        let g = Arc::new(Governor::with_budget_mb(7));
        let seen = with_governor(Arc::clone(&g), || ambient_governor().limited());
        assert!(seen);
        // Outside the override: the global governor (unlimited unless
        // a concurrent test configured it — don't assert on that).
        let _ = ambient_governor();
    }
}
