//! Typed per-job failures: what the engine reports instead of letting a
//! panicking or overrunning job abort the whole campaign.

use crate::cancel::CancelReason;
use std::any::Any;
use std::time::Duration;

/// Why a single job attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload's message is preserved.
    Panicked(String),
    /// The job exceeded the configured `--job-timeout` deadline.
    ///
    /// The engine cannot preempt the runaway computation (std threads
    /// are not killable); it stops waiting, marks the job failed, and
    /// keeps scheduling siblings. The stray attempt finishes on its
    /// own thread and its late result is discarded. Timeouts are not
    /// retried: an attempt that already consumed the full deadline is
    /// presumed doomed, so the remaining `--retries` budget is left
    /// intact for genuinely transient (panic) failures.
    TimedOut(Duration),
    /// The job was cancelled cooperatively — a SIGINT/SIGTERM drain,
    /// the `--deadline` wall clock, or an explicit
    /// [`CancelToken::cancel`](crate::CancelToken::cancel).
    ///
    /// Cancelled jobs are never retried (the whole run is stopping)
    /// and never checkpointed, so a `--resume` run recomputes exactly
    /// these slots and reproduces the uninterrupted output.
    Cancelled(CancelReason),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "panicked: {msg}"),
            JobError::TimedOut(d) => {
                write!(f, "exceeded {:.1}s job deadline", d.as_secs_f64())
            }
            JobError::Cancelled(reason) => write!(f, "cancelled ({reason})"),
        }
    }
}

/// A job that ultimately failed after every allowed attempt.
///
/// Returned as the `Err` arm of [`crate::Runner::try_run`]; the job's
/// siblings are unaffected and their results are still delivered in
/// canonical index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Canonical job index within its batch.
    pub index: usize,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// The last attempt's error.
    pub error: JobError,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} failed after {} attempt(s): {}",
            self.index, self.attempts, self.error
        )
    }
}

impl std::error::Error for JobFailure {}

/// Extract a human-readable message from a panic payload (`panic!` with
/// a string literal or a formatted message covers practically all of
/// std and this workspace).
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_cause() {
        let f = JobFailure {
            index: 7,
            attempts: 3,
            error: JobError::Panicked("boom".into()),
        };
        let s = f.to_string();
        assert!(s.contains("job 7"), "{s}");
        assert!(s.contains("3 attempt"), "{s}");
        assert!(s.contains("boom"), "{s}");

        let t = JobError::TimedOut(Duration::from_millis(1500)).to_string();
        assert!(t.contains("1.5s"), "{t}");

        let c = JobError::Cancelled(CancelReason::Interrupted).to_string();
        assert_eq!(c, "cancelled (interrupt)");
        let c = JobError::Cancelled(CancelReason::DeadlineExceeded).to_string();
        assert_eq!(c, "cancelled (deadline exceeded)");
    }

    #[test]
    fn panic_messages_extracted() {
        let b: Box<dyn Any + Send> = Box::new("static str");
        assert_eq!(panic_message(b.as_ref()), "static str");
        let b: Box<dyn Any + Send> = Box::new(format!("formatted {}", 1));
        assert_eq!(panic_message(b.as_ref()), "formatted 1");
        let b: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(b.as_ref()), "non-string panic payload");
    }
}
