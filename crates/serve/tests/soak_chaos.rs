//! The tentpole soak: adversarial clients hammer a live daemon while
//! well-formed clients keep querying. Acceptance criteria (from the
//! design): every response a well-formed client receives is either a
//! byte-exact match of the CLI output for its request or a well-formed
//! structured error; the daemon never crashes; the drain completes
//! with completed work durably persisted and no stray `.tmp` files.
//!
//! `MEMBW_SERVE_FAULT` narrows the chaos modes (default: all of them);
//! `MEMBW_FAULT_INJECT` is aimed at one target (`table8`) so the
//! request-level fault-isolation pillar is exercised end to end: that
//! target's render fails with a structured `jobs-failed` error while
//! every other request — on the same daemon, some at the same moment —
//! stays byte-perfect.

use membw_core::runner::{self, CancelReason, CancelToken};
use membw_core::service::{error_kind, ServiceRequest, ServiceResponse};
use membw_core::sweep::SweepMode;
use membw_core::targets;
use membw_core::workloads::Scale;
use membw_serve::{chaos, client, serve, Endpoint, ResultStore, ServeConfig, Server};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

/// Cheap, distinct targets the well-formed clients rotate through.
const GOOD_TARGETS: [&str; 6] = [
    "fig1",
    "table1",
    "table2",
    "table3",
    "params",
    "extrapolate",
];
/// The render the chaos clients keep poking at.
const CHAOS_TARGET: &str = "table7";
/// The render `MEMBW_FAULT_INJECT` makes panic inside the engine.
const FAILING_TARGET: &str = "table8";

fn request(target: &str) -> ServiceRequest {
    let mut req = ServiceRequest::new(target);
    req.scale = "test".to_string();
    req
}

fn expected_stdout() -> HashMap<&'static str, String> {
    GOOD_TARGETS
        .iter()
        .chain([CHAOS_TARGET].iter())
        .map(|t| {
            let rendered =
                targets::render_target(t, Scale::Test, SweepMode::Stack).expect("reference render");
            (*t, rendered.stdout)
        })
        .collect()
}

/// A response a well-formed client may legitimately see: a byte-exact
/// result, or a well-formed busy/structured error. Anything else fails
/// the soak.
fn check_well_formed(
    target: &str,
    resp: &ServiceResponse,
    expected: &HashMap<&'static str, String>,
) {
    match resp {
        ServiceResponse::Ok { stdout, fnv64, .. } => {
            assert_eq!(
                stdout, &expected[target],
                "target {target}: ok response must be byte-exact CLI output"
            );
            let actual = format!("{:016x}", runner::persist::fnv64(stdout));
            assert_eq!(
                &actual, fnv64,
                "target {target}: response checksum must match payload"
            );
        }
        ServiceResponse::Busy { bound, .. } => {
            assert!(*bound > 0, "busy response must carry its bound");
        }
        ServiceResponse::Error { kind, message, .. } => {
            assert!(
                !kind.is_empty() && !message.is_empty(),
                "structured error must carry kind and message"
            );
        }
        ServiceResponse::Draining => {
            panic!("target {target}: got draining before the drain started");
        }
        ServiceResponse::Stats(_) => {
            panic!("target {target}: stats response to a non-stats request");
        }
    }
}

/// Raw client: one line out, one line back.
fn raw_exchange(endpoint: &Endpoint, line: &str) -> ServiceResponse {
    let mut s = endpoint.connect().expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(line.as_bytes()).unwrap();
    s.write_all(b"\n").unwrap();
    s.flush().unwrap();
    let mut reader = BufReader::new(s);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read response line");
    serde_json::from_str(reply.trim()).expect("well-formed response JSON")
}

#[test]
fn soak_daemon_survives_chaos_and_drains_clean() {
    // Engine-level fault injection on one target only: its requests
    // must fail structurally, nobody else's.
    std::env::set_var(runner::FAULT_INJECT_ENV, format!("{FAILING_TARGET}:*"));
    let expected = expected_stdout();

    let base = std::env::temp_dir().join(format!("membw_soak_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let store_dir = base.join("store");
    let endpoint = Endpoint::Unix(base.join("soak.sock"));

    let config = ServeConfig {
        max_inflight: 1,
        queue_bound: 2, // small on purpose: bursts should brush the busy path
        conn_limit: 32,
        read_timeout: Duration::from_millis(400), // quick slow-loris verdicts
        max_frame: 2048,
        analytic: false,
    };
    let store = ResultStore::open(&store_dir).expect("open store");
    let server = Arc::new(Server::new(config, store));
    let cancel = CancelToken::new();
    let listener = endpoint.listen().expect("listen");
    let serve_thread = {
        let srv = Arc::clone(&server);
        let token = cancel.clone();
        std::thread::spawn(move || serve(&srv, listener, &token))
    };
    assert!(
        client::wait_ready(&endpoint, Duration::from_secs(10)),
        "daemon never came up"
    );

    // --- Chaos + well-formed traffic, concurrently. -------------------
    let chaos_line = serde_json::to_string(&request(CHAOS_TARGET)).unwrap();
    let modes = chaos::modes_from_env().expect("chaos spec");
    let chaos_thread = {
        let ep = endpoint.clone();
        let line = chaos_line.clone();
        std::thread::spawn(move || {
            let mut dup_replies = Vec::new();
            for round in 0..3 {
                for mode in &modes {
                    let replies = chaos::apply(&ep, *mode, &line);
                    if let chaos::FaultMode::DupBurst(_) = mode {
                        dup_replies.push((round, replies));
                    }
                }
            }
            dup_replies
        })
    };
    let good_threads: Vec<_> = GOOD_TARGETS
        .iter()
        .map(|t| {
            let ep = endpoint.clone();
            std::thread::spawn(move || -> Vec<(&'static str, ServiceResponse)> {
                (0..4)
                    .map(|_| {
                        (
                            *t,
                            client::query(&ep, &request(t), Some(Duration::from_secs(60)))
                                .expect("query"),
                        )
                    })
                    .collect()
            })
        })
        .collect();

    for h in good_threads {
        for (target, resp) in h.join().expect("well-formed client thread") {
            check_well_formed(target, &resp, &expected);
        }
    }
    let dup_replies = chaos_thread.join().expect("chaos thread");
    assert!(!dup_replies.is_empty(), "dupburst mode must have run");
    for (round, replies) in &dup_replies {
        for line in replies {
            let resp: ServiceResponse = serde_json::from_str(line).expect("dupburst reply parses");
            check_well_formed(CHAOS_TARGET, &resp, &expected);
        }
        // Burst clients that got answers must all have the same bytes
        // unless some were refused busy (different, still well-formed).
        let oks: Vec<&String> = replies
            .iter()
            .filter(|l| l.contains("\"status\":\"ok\""))
            .collect();
        for l in &oks {
            assert_eq!(
                *l, oks[0],
                "dupburst round {round}: ok replies must be byte-identical"
            );
        }
    }

    // --- Malformed clients get structured errors, not a dead daemon. --
    match raw_exchange(&endpoint, "this is not json") {
        ServiceResponse::Error { kind, .. } => assert_eq!(kind, error_kind::BAD_REQUEST),
        other => panic!("malformed JSON should yield bad-request, got {other:?}"),
    }
    match raw_exchange(&endpoint, r#"{"target":"nosuchfigure"}"#) {
        ServiceResponse::Error { kind, .. } => assert_eq!(kind, error_kind::UNKNOWN_TARGET),
        other => panic!("unknown target should yield unknown-target, got {other:?}"),
    }
    {
        // A frame longer than max_frame without a newline.
        let mut s = endpoint.connect().unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(&vec![b'x'; 4096]).unwrap();
        s.flush().unwrap();
        let mut reader = BufReader::new(s);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        match serde_json::from_str::<ServiceResponse>(reply.trim()).expect("frame error parses") {
            ServiceResponse::Error { kind, .. } => assert_eq!(kind, error_kind::FRAME_TOO_LONG),
            other => panic!("oversized frame should yield frame-too-long, got {other:?}"),
        }
    }

    // --- Fault isolation end to end: the injected target fails with a
    // structured error; the daemon and everyone else are unaffected. --
    match raw_exchange(
        &endpoint,
        &serde_json::to_string(&request(FAILING_TARGET)).unwrap(),
    ) {
        ServiceResponse::Error { kind, message, .. } => {
            assert_eq!(
                kind,
                error_kind::JOBS_FAILED,
                "injected engine faults surface as jobs-failed: {message}"
            );
        }
        other => panic!("fault-injected render should fail structurally, got {other:?}"),
    }
    let resp = client::query(
        &endpoint,
        &request(CHAOS_TARGET),
        Some(Duration::from_secs(60)),
    )
    .unwrap();
    check_well_formed(CHAOS_TARGET, &resp, &expected);
    std::env::remove_var(runner::FAULT_INJECT_ENV);

    // --- Drain. -------------------------------------------------------
    cancel.cancel(CancelReason::Interrupted);
    let served = serve_thread
        .join()
        .expect("serve thread")
        .expect("serve loop exits cleanly");
    assert!(served > 0, "the soak must have served connections");
    assert!(
        matches!(
            server.handle_request(&request(CHAOS_TARGET)),
            ServiceResponse::Draining
        ),
        "post-drain requests must be refused as draining"
    );

    // Durability: completed results persisted, no torn or temporary
    // files left behind.
    let mut entries = 0;
    for e in std::fs::read_dir(&store_dir).unwrap() {
        let name = e.unwrap().file_name().to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "stray temp file in store: {name}");
        assert!(
            !name.contains(".corrupt"),
            "quarantined entry in a crash-free soak: {name}"
        );
        if name.ends_with(".json") {
            entries += 1;
        }
    }
    assert!(entries > 0, "completed renders must be durably persisted");
    let _ = std::fs::remove_dir_all(&base);
}
