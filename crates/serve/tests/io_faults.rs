//! Server-side I/O fault soak: injected ENOSPC and fsync failures
//! while a live daemon serves.
//!
//! The durability contract under an injected storage fault is strict:
//! the *answer* is still byte-exact (the render happened; only the
//! warm-restart cache misses out), nothing half-written is ever
//! published, and every loss is visible — `save_failures` moves for
//! failed saves, `quarantined` moves for entries that rot on disk.
//! This lives in its own test binary because the fault plan is
//! process-global ([`faultio::set_plan`]); sharing a process with the
//! chaos soak would race the plans.

use membw_core::runner::{persist, CancelReason, CancelToken};
use membw_core::service::{ServiceRequest, ServiceResponse, STATS_TARGET};
use membw_core::sweep::SweepMode;
use membw_core::targets;
use membw_core::workloads::Scale;
use membw_serve::{chaos, client, serve, Endpoint, ResultStore, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

fn request(target: &str) -> ServiceRequest {
    let mut req = ServiceRequest::new(target);
    req.scale = "test".to_string();
    req
}

fn reference(target: &str) -> String {
    targets::render_target(target, Scale::Test, SweepMode::Stack)
        .expect("reference render")
        .stdout
}

/// The one Ok reply a faulted exchange must still produce, byte-exact.
fn assert_ok_exact(replies: &[String], expected: &str, what: &str) {
    assert_eq!(replies.len(), 1, "{what}: one reply expected");
    match serde_json::from_str::<ServiceResponse>(&replies[0]).expect("reply parses") {
        ServiceResponse::Ok { stdout, .. } => {
            assert_eq!(stdout, expected, "{what}: bytes must survive the fault");
        }
        other => panic!("{what}: expected ok despite the storage fault, got {other:?}"),
    }
}

#[test]
fn storage_faults_move_counters_never_bytes() {
    let base = std::env::temp_dir().join(format!("membw_io_faults_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let store_dir = base.join("store");
    let endpoint = Endpoint::Unix(base.join("io.sock"));

    let config = ServeConfig {
        max_inflight: 1,
        queue_bound: 4,
        conn_limit: 8,
        read_timeout: Duration::from_millis(400),
        max_frame: 2048,
        analytic: false,
    };
    let store = ResultStore::open(&store_dir).expect("open store");
    let server = Arc::new(Server::new(config, store));
    let cancel = CancelToken::new();
    let listener = endpoint.listen().expect("listen");
    let serve_thread = {
        let srv = Arc::clone(&server);
        let token = cancel.clone();
        std::thread::spawn(move || serve(&srv, listener, &token))
    };
    assert!(
        client::wait_ready(&endpoint, Duration::from_secs(10)),
        "daemon never came up"
    );

    let stats = |label: &str| -> membw_core::service::ServeStats {
        match client::query(
            &endpoint,
            &request(STATS_TARGET),
            Some(Duration::from_secs(10)),
        )
        .expect("stats query")
        {
            ServiceResponse::Stats(s) => s,
            other => panic!("{label}: expected stats, got {other:?}"),
        }
    };
    assert_eq!(stats("baseline").save_failures, 0);

    // --- ENOSPC during a full exchange: answer served, save lost. ----
    let line2 = serde_json::to_string(&request("table2")).unwrap();
    let replies = chaos::apply(&endpoint, chaos::FaultMode::Enospc, &line2);
    assert_ok_exact(&replies, &reference("table2"), "enospc");

    // --- fsyncfail: the classic silently-swallowed error must not be.
    let line3 = serde_json::to_string(&request("table3")).unwrap();
    let replies = chaos::apply(&endpoint, chaos::FaultMode::FsyncFail, &line3);
    assert_ok_exact(&replies, &reference("table3"), "fsyncfail");

    let after = stats("after faults");
    assert_eq!(
        after.save_failures, 2,
        "each faulted save must be counted, not swallowed"
    );
    assert_eq!(after.quarantined, 0, "no entry rotted yet");

    // Neither failed save may have published anything: both requests
    // are store misses now and recompute to the same bytes.
    let key2 = request("table2").coalesce_key();
    let entry2 = store_dir.join(format!("{:016x}.json", persist::fnv64(&key2)));
    assert!(
        !entry2.exists(),
        "a failed save must publish nothing (found {})",
        entry2.display()
    );
    match client::query(&endpoint, &request("table2"), Some(Duration::from_secs(60))).unwrap() {
        ServiceResponse::Ok { stdout, source, .. } => {
            assert_eq!(stdout, reference("table2"));
            assert_eq!(
                source,
                membw_core::service::source::COMPUTED,
                "failed save cannot be a store hit"
            );
        }
        other => panic!("fault-free requery must succeed, got {other:?}"),
    }
    assert!(entry2.exists(), "the fault-free save publishes durably");

    // --- Rot the published entry: quarantined moves, bytes do not. ---
    let mut bytes = std::fs::read(&entry2).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01; // any body bit-flip breaks the FNV seal
    std::fs::write(&entry2, bytes).unwrap();
    match client::query(&endpoint, &request("table2"), Some(Duration::from_secs(60))).unwrap() {
        ServiceResponse::Ok { stdout, .. } => assert_eq!(
            stdout,
            reference("table2"),
            "a rotted entry is recomputed, never served"
        ),
        other => panic!("recompute after quarantine must succeed, got {other:?}"),
    }
    let end = stats("after quarantine");
    assert_eq!(end.quarantined, 1, "the rotted entry must be counted");

    // --- Drain: no stray temp files despite the injected failures. ---
    cancel.cancel(CancelReason::Interrupted);
    serve_thread
        .join()
        .expect("serve thread")
        .expect("serve loop exits cleanly");
    for e in std::fs::read_dir(&store_dir).unwrap() {
        let name = e.unwrap().file_name().to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "stray temp file: {name}");
    }
    let _ = std::fs::remove_dir_all(&base);
}
