//! Wire-level "never a wrong answer" proof: inject a fault at *every*
//! enumerated net point of a store-cold and a store-warm exchange —
//! including hard-aborting the daemon mid-request under supervision —
//! and prove the client contract holds at jobs 1 and 8:
//!
//! > under any injected wire fault, a client observes either the
//! > correct reply bytes or a retryable (typed-transient/transport)
//! > failure whose bounded retry converges to bytes identical to a
//! > fault-free run — never a wrong answer, never a hung slot.
//!
//! Mirrors `tests/crash_consistency.rs`: the daemon runs as a real
//! subprocess (this test binary re-executed with the `child_daemon`
//! test selected and driver env vars set), `MEMBW_NET_FAULT=count:PATH`
//! enumerates the exchange's net points, then each directive explores
//! them. The fault plan lives only in the daemon's environment, so the
//! parent's client sockets stay pass-through and the enumeration is
//! exactly the daemon-side fault surface.
//!
//! Fault-free byte identity is asserted too: every converged answer is
//! compared against `targets::render_target` — the same renderer the
//! CLI prints from — so "correct bytes" means CLI-identical bytes.

use membw_core::runner::faultio;
use membw_core::service::{ServiceRequest, ServiceResponse, STATS_TARGET};
use membw_core::sweep::SweepMode;
use membw_core::targets;
use membw_core::workloads::Scale;
use membw_serve::supervisor::{supervise, SupervisorConfig};
use membw_serve::{client, Endpoint, ResultStore, NET_FAULT_ENV};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

/// Driver env vars for the subprocess daemon. Unset → `child_daemon`
/// passes as a no-op in a normal `cargo test` run.
const SOCKET_ENV: &str = "MEMBW_WIRE_SOCKET";
const STORE_ENV: &str = "MEMBW_WIRE_STORE";
const JOBS_ENV: &str = "MEMBW_WIRE_JOBS";

/// The exchange under proof: cheap enough that exploring every net
/// point at two job counts stays fast, real enough to cross the full
/// request→validate→triage→render→store→reply path.
const TARGET: &str = "table2";

fn request() -> ServiceRequest {
    let mut req = ServiceRequest::new(TARGET);
    req.scale = "test".to_string();
    req
}

fn reference_stdout() -> String {
    targets::render_target(TARGET, Scale::Test, SweepMode::Stack)
        .expect("reference render")
        .stdout
}

fn base_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("membw_wire_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Subprocess entry: a real daemon over a Unix socket, driven by env
/// vars, serving until SIGTERM (or an injected `crash@K` abort).
#[test]
fn child_daemon() {
    let Ok(socket) = std::env::var(SOCKET_ENV) else {
        return;
    };
    let store_dir = std::env::var(STORE_ENV).expect("store dir env");
    let jobs: usize = std::env::var(JOBS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    membw_core::runner::set_jobs(jobs);
    membw_core::runner::install_signal_drain();
    let endpoint = Endpoint::Unix(PathBuf::from(&socket));
    let store = ResultStore::open(Path::new(&store_dir)).expect("open store");
    let config = membw_serve::ServeConfig {
        max_inflight: 2,
        queue_bound: 8,
        conn_limit: 16,
        read_timeout: Duration::from_secs(2),
        max_frame: 64 * 1024,
        analytic: false,
    };
    let server = std::sync::Arc::new(membw_serve::Server::new(config, store));
    let listener = endpoint.listen().expect("listen");
    // Pidfile last: its existence is the parent's readiness signal
    // (probe connects would consume accept points and skew the
    // enumeration, so the parent never dials until it means it).
    membw_serve::net::write_pidfile(&endpoint).expect("pidfile");
    let cancel = membw_core::runner::global_cancel_token();
    membw_serve::serve(&server, listener, &cancel).expect("serve loop");
    membw_serve::net::remove_pidfile(&endpoint);
}

/// One daemon generation's spawn configuration.
struct DaemonSpec {
    socket: PathBuf,
    store: PathBuf,
    jobs: usize,
    net_fault: Option<String>,
}

impl DaemonSpec {
    fn command(&self) -> Command {
        let exe = std::env::current_exe().expect("own test binary");
        let mut cmd = Command::new(exe);
        // --nocapture: libtest's capture buffer would die with the
        // process and swallow the crash announcement.
        cmd.args([
            "child_daemon",
            "--exact",
            "--test-threads=1",
            "--quiet",
            "--nocapture",
        ]);
        // Clean slate: no fault plan or driver var may leak in from
        // the outer environment.
        for var in [
            SOCKET_ENV,
            STORE_ENV,
            JOBS_ENV,
            NET_FAULT_ENV,
            faultio::IO_FAULT_ENV,
            membw_serve::chaos::SERVE_FAULT_ENV,
            membw_serve::supervisor::RESTARTS_ENV,
        ] {
            cmd.env_remove(var);
        }
        cmd.env(SOCKET_ENV, &self.socket);
        cmd.env(STORE_ENV, &self.store);
        cmd.env(JOBS_ENV, self.jobs.to_string());
        if let Some(plan) = &self.net_fault {
            cmd.env(NET_FAULT_ENV, plan);
        }
        cmd.stdout(std::process::Stdio::null());
        cmd.stderr(std::process::Stdio::piped());
        cmd
    }

    fn spawn(&self) -> std::process::Child {
        self.command().spawn().expect("spawn daemon child")
    }

    fn pidfile(&self) -> PathBuf {
        let mut os = self.socket.as_os_str().to_os_string();
        os.push(".pid");
        PathBuf::from(os)
    }
}

/// Wait until the daemon has published its pidfile (written after the
/// listener is bound) — readiness without probe connections.
fn wait_pidfile(spec: &DaemonSpec, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while !spec.pidfile().exists() {
        assert!(
            Instant::now() < deadline,
            "daemon never published {} — did the child fail to start?",
            spec.pidfile().display()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn read_pid(spec: &DaemonSpec) -> u32 {
    std::fs::read_to_string(spec.pidfile())
        .expect("read pidfile")
        .trim()
        .parse()
        .expect("pidfile holds a PID")
}

/// SIGTERM the daemon (drain path) and reap the child process.
fn terminate(spec: &DaemonSpec, child: &mut std::process::Child) {
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
    let _ = spec;
    let out = child.wait().expect("reap daemon child");
    assert!(out.success(), "daemon child must drain cleanly, got {out:?}");
}

/// Pre-seed a store directory so the exchange is a warm store hit.
fn seed_store(dir: &Path, stdout: &str) {
    let store = ResultStore::open(dir).expect("open store for seeding");
    store
        .save(&request().coalesce_key(), stdout)
        .expect("seed store entry");
}

/// The successful-exchange stdout a response must carry.
fn ok_stdout(resp: &ServiceResponse, what: &str) -> String {
    match resp {
        ServiceResponse::Ok { stdout, .. } => stdout.clone(),
        other => panic!("{what}: expected ok, got {other:?}"),
    }
}

/// Enumerate the net points of one full exchange under `count:PATH`.
fn enumerate_points(tag: &str, jobs: usize, warm: bool, reference: &str) -> u64 {
    let base = base_dir(tag);
    let count_file = base.join("netpoints");
    let spec = DaemonSpec {
        socket: base.join("d.sock"),
        store: base.join("store"),
        jobs,
        net_fault: Some(format!("count:{}", count_file.display())),
    };
    if warm {
        seed_store(&spec.store, reference);
    }
    let mut child = spec.spawn();
    wait_pidfile(&spec, Duration::from_secs(30));
    let endpoint = Endpoint::Unix(spec.socket.clone());
    let resp = client::query(&endpoint, &request(), Some(Duration::from_secs(120)))
        .expect("enumeration exchange");
    assert_eq!(
        ok_stdout(&resp, "enumeration"),
        reference,
        "count plan must not perturb the answer"
    );
    // Let the server consume the client's EOF (its final net point)
    // before stopping the count.
    std::thread::sleep(Duration::from_millis(300));
    terminate(&spec, &mut child);
    let recorded = std::fs::read_to_string(&count_file).expect("count file written");
    let n: u64 = recorded
        .split_whitespace()
        .next()
        .expect("count file records the last point")
        .parse()
        .expect("net point number");
    let _ = std::fs::remove_dir_all(&base);
    assert!(n >= 4, "an exchange has at least accept+read+write+eof: {n}");
    n
}

/// The core contract assertion: run one exchange against a daemon with
/// `plan` installed. The first attempt must yield either the correct
/// bytes or a retryable failure; in the latter case bounded backoff
/// against the same daemon must converge to the correct bytes.
fn assert_converges(tag: &str, jobs: usize, warm: bool, plan: &str, reference: &str) {
    let base = base_dir(tag);
    let spec = DaemonSpec {
        socket: base.join("d.sock"),
        store: base.join("store"),
        jobs,
        net_fault: Some(plan.to_string()),
    };
    if warm {
        seed_store(&spec.store, reference);
    }
    let mut child = spec.spawn();
    wait_pidfile(&spec, Duration::from_secs(30));
    let endpoint = Endpoint::Unix(spec.socket.clone());
    let what = format!("{plan} jobs={jobs} warm={warm}");
    match client::query(&endpoint, &request(), Some(Duration::from_secs(120))) {
        Ok(resp) if client::retryable(&resp) || matches!(resp, ServiceResponse::Busy { .. }) => {
            converge(&endpoint, reference, &what);
        }
        Ok(resp) => {
            // A response that is not retryable must already be the
            // correct answer — a wrong or mangled "ok" here is exactly
            // the bug class this proof exists to exclude.
            assert_eq!(ok_stdout(&resp, &what), reference, "{what}");
        }
        Err(e) => {
            assert!(
                client::transport_retryable(&e),
                "{what}: transport failure must be classified retryable: {e}"
            );
            converge(&endpoint, reference, &what);
        }
    }
    terminate(&spec, &mut child);
    let _ = std::fs::remove_dir_all(&base);
}

/// Bounded-backoff retry until the correct bytes appear.
fn converge(endpoint: &Endpoint, reference: &str, what: &str) {
    let policy = client::Backoff {
        initial: Duration::from_millis(25),
        factor: 2,
        cap: Duration::from_millis(500),
        attempts: 10,
    };
    let resp = client::query_with_backoff(endpoint, &request(), Some(Duration::from_secs(120)), &policy)
        .unwrap_or_else(|e| panic!("{what}: bounded retry must converge: {e}"));
    assert_eq!(
        ok_stdout(&resp, what),
        reference,
        "{what}: retry must converge to fault-free bytes"
    );
}

/// Explore `disconnect@K` at every enumerated point, cold and warm.
fn explore_disconnects(jobs: usize) {
    let reference = reference_stdout();
    for warm in [false, true] {
        let heat = if warm { "warm" } else { "cold" };
        let n = enumerate_points(&format!("count_{heat}_j{jobs}"), jobs, warm, &reference);
        // Every point, concurrently: each exploration owns its daemon,
        // socket, and store, so they only contend for CPU.
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for k in 1..=n {
                let reference = &reference;
                handles.push((
                    k,
                    scope.spawn(move || {
                        assert_converges(
                            &format!("disc_{heat}_j{jobs}_k{k}"),
                            jobs,
                            warm,
                            &format!("disconnect@{k}"),
                            reference,
                        );
                    }),
                ));
            }
            let mut failures = Vec::new();
            for (k, h) in handles {
                if let Err(e) = h.join() {
                    let msg = e
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "opaque panic".to_string());
                    failures.push(format!("disconnect@{k} ({heat}, jobs {jobs}): {msg}"));
                }
            }
            assert!(
                failures.is_empty(),
                "contract violated at {} of {n} points:\n{}",
                failures.len(),
                failures.join("\n")
            );
        });
    }
}

#[test]
fn disconnect_at_every_point_jobs1() {
    explore_disconnects(1);
}

#[test]
fn disconnect_at_every_point_jobs8() {
    explore_disconnects(8);
}

/// Torn frames at byte offsets spanning the reply (first byte, inside
/// the envelope, inside the payload), plus injected accept failures
/// and stalled writes — each must converge.
#[test]
fn torn_frames_accept_failures_and_stalls_converge() {
    let reference = reference_stdout();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, (plan, jobs, warm)) in [
            ("tornframe@1", 1, false),
            ("tornframe@30", 1, true),
            ("tornframe@150", 8, false),
            ("tornframe@150", 1, true),
            ("acceptfail:1", 1, false),
            ("acceptfail:1", 8, true),
            ("stallwrite:10", 1, true),
            ("stallwrite:10", 8, false),
        ]
        .into_iter()
        .enumerate()
        {
            let reference = &reference;
            handles.push(scope.spawn(move || {
                assert_converges(&format!("mix{i}"), jobs, warm, plan, reference);
            }));
        }
        for h in handles {
            h.join().expect("mixed wire-fault exploration");
        }
    });
}

/// `crash@K` under supervision: the daemon hard-aborts mid-request at
/// point K (exit 134 — PR 9's convention), the supervisor restarts it
/// with deterministic backoff, the restarted generation rebinds the
/// stale socket and republishes the pidfile, and the client's bounded
/// retry converges to the fault-free bytes. The restart is visible to
/// clients as the `supervisor-restarts` stats counter.
fn explore_supervised_crashes(jobs: usize, warm: bool) {
    let reference = reference_stdout();
    let heat = if warm { "warm" } else { "cold" };
    let n = enumerate_points(&format!("scount_{heat}_j{jobs}"), jobs, warm, &reference);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for k in 1..=n {
            let reference = &reference;
            handles.push((
                k,
                scope.spawn(move || {
                    supervised_crash_converges(k, jobs, warm, reference);
                }),
            ));
        }
        let mut failures = Vec::new();
        for (k, h) in handles {
            if let Err(e) = h.join() {
                let msg = e
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "opaque panic".to_string());
                failures.push(format!("crash@{k} ({heat}, jobs {jobs}): {msg}"));
            }
        }
        assert!(
            failures.is_empty(),
            "supervised-crash contract violated at {} of {n} points:\n{}",
            failures.len(),
            failures.join("\n")
        );
    });
}

fn supervised_crash_converges(k: u64, jobs: usize, warm: bool, reference: &str) {
    let heat = if warm { "warm" } else { "cold" };
    let base = base_dir(&format!("crash_{heat}_j{jobs}_k{k}"));
    let spec = DaemonSpec {
        socket: base.join("d.sock"),
        store: base.join("store"),
        jobs,
        net_fault: None,
    };
    if warm {
        seed_store(&spec.store, reference);
    }
    let what = format!("crash@{k} jobs={jobs} warm={warm}");

    // The supervisor loop runs in its own thread; generation 0 carries
    // the crash plan, every restarted generation runs clean — the fault
    // is transient by construction, so supervision must heal it.
    let sup_cfg = SupervisorConfig {
        max_fast_crashes: 3,
        healthy_after: Duration::from_millis(100),
        backoff_initial: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
    };
    let cancel = membw_core::runner::CancelToken::new();
    let sup = {
        let spec = DaemonSpec {
            socket: spec.socket.clone(),
            store: spec.store.clone(),
            jobs,
            net_fault: None,
        };
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            supervise(
                |restarts| {
                    let gen_spec = DaemonSpec {
                        socket: spec.socket.clone(),
                        store: spec.store.clone(),
                        jobs: spec.jobs,
                        net_fault: if restarts == 0 {
                            Some(format!("crash@{k}"))
                        } else {
                            None
                        },
                    };
                    gen_spec.command()
                },
                &sup_cfg,
                &cancel,
            )
        })
    };

    wait_pidfile(&spec, Duration::from_secs(30));
    let endpoint = Endpoint::Unix(spec.socket.clone());

    // The exchange that drives the daemon into its crash point. If the
    // crash lands after the reply (e.g. the EOF read), the first
    // attempt legitimately succeeds; otherwise the failure must be
    // retryable and converge across the restart.
    match client::query(&endpoint, &request(), Some(Duration::from_secs(120))) {
        Ok(resp) if !client::retryable(&resp) => {
            assert_eq!(ok_stdout(&resp, &what), reference, "{what}");
        }
        Ok(_) => converge(&endpoint, reference, &what),
        Err(e) => {
            assert!(
                client::transport_retryable(&e),
                "{what}: must be retryable: {e}"
            );
            converge(&endpoint, reference, &what);
        }
    }

    // Whatever the crash point, generation 0 aborts once the exchange
    // (or its EOF) reaches point K, so by now — possibly after a short
    // wait — the answering daemon is generation 1+ and says so.
    let policy = client::Backoff {
        initial: Duration::from_millis(25),
        factor: 2,
        cap: Duration::from_millis(500),
        attempts: 12,
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    let restarts_seen = loop {
        let mut stats_req = ServiceRequest::new(STATS_TARGET);
        stats_req.scale = "test".to_string();
        match client::query_with_backoff(
            &endpoint,
            &stats_req,
            Some(Duration::from_secs(30)),
            &policy,
        ) {
            Ok(ServiceResponse::Stats(s)) if s.supervisor_restarts >= 1 => {
                break s.supervisor_restarts;
            }
            Ok(_) | Err(_) => {
                assert!(
                    Instant::now() < deadline,
                    "{what}: generation 1 never reported supervisor-restarts >= 1"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    assert!(restarts_seen >= 1, "{what}");

    // A fresh client against the healed service still gets exact bytes.
    converge(&endpoint, reference, &format!("{what} (post-heal)"));

    // Stop: TERM the live generation; its clean exit ends supervision.
    let pid = read_pid(&spec);
    let _ = Command::new("kill").args(["-TERM", &pid.to_string()]).status();
    let code = sup.join().expect("supervisor thread");
    assert_eq!(code, 0, "{what}: supervisor must end 0 after a clean drain");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn supervised_crash_at_every_point_jobs1_cold() {
    explore_supervised_crashes(1, false);
}

#[test]
fn supervised_crash_at_every_point_jobs1_warm() {
    explore_supervised_crashes(1, true);
}

#[test]
fn supervised_crash_at_every_point_jobs8_cold() {
    explore_supervised_crashes(8, false);
}

#[test]
fn supervised_crash_at_every_point_jobs8_warm() {
    explore_supervised_crashes(8, true);
}
