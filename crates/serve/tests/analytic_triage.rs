//! Serve-side triage of the analytic fast lane, exercised directly
//! through `Server::handle_request` (no sockets):
//!
//! * a client whose tolerance admits the model's bound gets a
//!   microsecond `source=analytic` answer with full provenance (model
//!   version + bound), and the memoized prediction cache answers the
//!   repeat without recomputing;
//! * a client that opts out (`analytic_rel_permille: 0`), a target
//!   without a model, or a bound looser than the tolerance all fall
//!   back to real simulation — byte-identical to the CLI render;
//! * with the fast lane disabled (the default), responses are
//!   byte-identical to a no-fast-lane server's;
//! * the `stats` pseudo-target reports the triage counters.

use membw_core::fastpath;
use membw_core::service::{source, ServiceRequest, ServiceResponse, STATS_TARGET};
use membw_core::sweep::SweepMode;
use membw_core::targets;
use membw_core::workloads::Scale;
use membw_serve::{ResultStore, ServeConfig, Server};
use std::path::PathBuf;

const ANALYTIC_TARGET: &str = "fig4";
const SIMULATED_TARGET: &str = "table8"; // no analytic model: always simulates
/// Generous tolerance: every analytic render at test scale fits.
const WIDE_TOLERANCE: u32 = 100_000;

fn request(target: &str, tolerance: u32) -> ServiceRequest {
    let mut req = ServiceRequest::new(target);
    req.scale = "test".to_string();
    req.analytic_rel_permille = tolerance;
    req
}

fn server(tag: &str, analytic: bool) -> (Server, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "membw_triage_{tag}_{}_{}",
        if analytic { "on" } else { "off" },
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        analytic,
        ..ServeConfig::default()
    };
    let store = ResultStore::open(&dir).expect("open store");
    (Server::new(config, store), dir)
}

fn stats(server: &Server) -> membw_core::service::ServeStats {
    match server.handle_request(&ServiceRequest::new(STATS_TARGET)) {
        ServiceResponse::Stats(s) => s,
        other => panic!("stats request must get a stats response, got {other:?}"),
    }
}

#[test]
fn tolerant_clients_get_analytic_answers_with_provenance() {
    let (server, dir) = server("hit", true);
    let expected = fastpath::render_target_analytic(ANALYTIC_TARGET, Scale::Test)
        .expect("supported target")
        .rendered
        .stdout;

    for round in 0..2 {
        // Round 0 computes the prediction; round 1 must be served from
        // the memoized cache — same counters either way.
        match server.handle_request(&request(ANALYTIC_TARGET, WIDE_TOLERANCE)) {
            ServiceResponse::Ok {
                source: s,
                model,
                bound_rel_permille,
                stdout,
                jobs,
                ..
            } => {
                assert_eq!(s, source::ANALYTIC, "round {round}");
                assert_eq!(
                    model.as_deref(),
                    Some(membw_core::analytic::ecm::MODEL_VERSION),
                    "round {round}: analytic answer must name its model"
                );
                let bound = bound_rel_permille.expect("analytic answer must carry its bound");
                assert!(
                    0 < bound && bound <= u64::from(WIDE_TOLERANCE),
                    "round {round}: bound {bound} must fit the client tolerance"
                );
                assert_eq!(stdout, expected, "round {round}: analytic bytes");
                assert_eq!(jobs, 0, "round {round}: no simulation jobs ran");
            }
            other => panic!("round {round}: expected analytic ok, got {other:?}"),
        }
    }
    let s = stats(&server);
    assert_eq!((s.analytic, s.simulated), (2, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn opt_outs_loose_bounds_and_unmodelled_targets_simulate() {
    let (server, dir) = server("fallback", true);
    let reference = targets::render_target(ANALYTIC_TARGET, Scale::Test, SweepMode::Stack)
        .expect("reference render")
        .stdout;

    // analytic_rel_permille: 0 is an explicit opt-out.
    match server.handle_request(&request(ANALYTIC_TARGET, 0)) {
        ServiceResponse::Ok {
            source: s,
            model,
            stdout,
            ..
        } => {
            assert_eq!(s, source::COMPUTED);
            assert_eq!(model, None, "simulated answers carry no model");
            assert_eq!(
                stdout, reference,
                "simulation must be byte-identical to the CLI"
            );
        }
        other => panic!("expected simulated ok, got {other:?}"),
    }

    // A tolerance tighter than the model's bound forces simulation too
    // (every analytic render at test scale has a bound over 1 permille);
    // the store now answers this repeat — still a real result.
    match server.handle_request(&request(ANALYTIC_TARGET, 1)) {
        ServiceResponse::Ok { source: s, .. } => assert_eq!(s, source::STORE),
        other => panic!("expected store ok, got {other:?}"),
    }

    // No analytic model at all: simulate, whatever the tolerance says.
    match server.handle_request(&request(SIMULATED_TARGET, WIDE_TOLERANCE)) {
        ServiceResponse::Ok { source: s, .. } => assert_eq!(s, source::COMPUTED),
        other => panic!("expected simulated ok, got {other:?}"),
    }

    let s = stats(&server);
    assert_eq!(s.analytic, 0, "no analytic answers were admissible");
    assert_eq!(s.simulated, 2);
    assert_eq!(s.store, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_fast_lane_is_byte_identical_to_a_plain_server() {
    let (plain, plain_dir) = server("plain", false);
    let (disabled, disabled_dir) = server("disabled", false);
    for target in [ANALYTIC_TARGET, SIMULATED_TARGET] {
        let req = request(target, WIDE_TOLERANCE);
        let a = plain.handle_request(&req);
        let b = disabled.handle_request(&req);
        let (a, b) = (
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize"),
        );
        assert_eq!(
            a, b,
            "{target}: fast-lane-off servers must agree byte-for-byte"
        );
        assert!(
            a.contains("\"computed\""),
            "{target}: both must have simulated"
        );
    }
    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&disabled_dir);
}
