//! Coalescing proof: N concurrent identical requests trigger exactly
//! one simulation run and N byte-identical responses — at engine
//! `--jobs 1` and `--jobs 8`.
//!
//! The run engine's process-global job counter is the witness: a burst
//! of N identical requests must advance it by exactly the job count of
//! a *single* render, and a second burst (store now warm) must not
//! advance it at all.
//!
//! Determinism scheme: the server gets one dispatcher worker, and a
//! blocker request (whose first inner job is slowed via
//! `MEMBW_FAULT_SLOW`) occupies it while the burst arrives. Every
//! burst request therefore passes the dedupe map while the shared
//! computation is still queued, so coalescing is guaranteed rather
//! than raced for.

use membw_core::runner;
use membw_core::service::{source, ServiceRequest, ServiceResponse};
use membw_core::sweep::SweepMode;
use membw_core::targets;
use membw_core::workloads::Scale;
use membw_serve::{ResultStore, ServeConfig, Server};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const N: usize = 6;
const BURST_TARGET: &str = "table7";
const BLOCKER_TARGET: &str = "table8";

/// Jobs one solo render of `target` costs at the current ambient
/// `--jobs` setting (no store, no dispatcher — the reference cost).
fn solo_jobs(target: &str) -> (u64, String) {
    let before = runner::metrics();
    let rendered =
        targets::render_target(target, Scale::Test, SweepMode::Stack).expect("solo render");
    let delta = runner::metrics_delta(before, runner::metrics());
    (delta.jobs, rendered.stdout)
}

fn request(target: &str) -> ServiceRequest {
    let mut req = ServiceRequest::new(target);
    req.scale = "test".to_string();
    req
}

fn burst(server: &Arc<Server>, req: &ServiceRequest, n: usize) -> Vec<ServiceResponse> {
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let srv = Arc::clone(server);
            let req = req.clone();
            let gate = Arc::clone(&barrier);
            std::thread::spawn(move || {
                gate.wait();
                srv.handle_request(&req)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("burst thread"))
        .collect()
}

fn response_bytes(resp: &ServiceResponse) -> String {
    serde_json::to_string(resp).expect("serialize response")
}

fn assert_ok_with(resp: &ServiceResponse, want_source: &str, want_stdout: &str) {
    match resp {
        ServiceResponse::Ok {
            source: s, stdout, ..
        } => {
            assert_eq!(s, want_source, "unexpected source");
            assert_eq!(
                stdout, want_stdout,
                "stdout must be byte-identical to the CLI render"
            );
        }
        other => panic!("expected ok response, got {}", response_bytes(other)),
    }
}

/// One full phase at the current ambient `--jobs` setting.
fn run_phase(phase: &str) {
    let dir = std::env::temp_dir().join(format!("membw_dedupe_{}_{}", phase, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (jobs_blocker, blocker_stdout) = solo_jobs(BLOCKER_TARGET);
    let (jobs_burst, want_stdout) = solo_jobs(BURST_TARGET);
    assert!(jobs_burst > 0, "burst target must cost at least one job");

    let config = ServeConfig {
        max_inflight: 1, // single worker: the blocker serializes admission
        ..ServeConfig::default()
    };
    let store = ResultStore::open(&dir).expect("open store");
    let server = Arc::new(Server::new(config, store));

    // Occupy the lone worker: the blocker's first inner job sleeps (see
    // MEMBW_FAULT_SLOW below), so the burst's shared computation stays
    // queued while all N requests coalesce onto it.
    let before = runner::metrics();
    let blocker = {
        let srv = Arc::clone(&server);
        std::thread::spawn(move || srv.handle_request(&request(BLOCKER_TARGET)))
    };
    std::thread::sleep(Duration::from_millis(200));

    let responses = burst(&server, &request(BURST_TARGET), N);
    let blocker_resp = blocker.join().expect("blocker thread");
    let delta = runner::metrics_delta(before, runner::metrics());

    assert_ok_with(&blocker_resp, source::COMPUTED, &blocker_stdout);
    assert_eq!(
        delta.jobs,
        jobs_blocker + jobs_burst,
        "N={N} coalesced requests must cost exactly one render's jobs \
         (phase {phase}: blocker {jobs_blocker} + one burst render {jobs_burst})"
    );

    let first = response_bytes(&responses[0]);
    for (i, resp) in responses.iter().enumerate() {
        assert_ok_with(resp, source::COMPUTED, &want_stdout);
        assert_eq!(
            response_bytes(resp),
            first,
            "burst response {i} must be byte-identical to response 0 (phase {phase})"
        );
    }

    // Second burst: the store is warm, so zero jobs run and every
    // response is an identical store hit.
    let before = runner::metrics();
    let warm = burst(&server, &request(BURST_TARGET), N);
    let delta = runner::metrics_delta(before, runner::metrics());
    assert_eq!(
        delta.jobs, 0,
        "warm burst must not run any job (phase {phase})"
    );
    let first = response_bytes(&warm[0]);
    for resp in &warm {
        assert_ok_with(resp, source::STORE, &want_stdout);
        assert_eq!(response_bytes(resp), first);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_identical_requests_coalesce_at_jobs_1_and_8() {
    // The whole proof lives in one #[test]: the job counter is
    // process-global, so concurrent tests would pollute the deltas.
    std::env::set_var(runner::FAULT_SLOW_ENV, format!("{BLOCKER_TARGET}:0:700"));
    runner::set_jobs(1);
    run_phase("jobs1");
    runner::set_jobs(8);
    run_phase("jobs8");
    std::env::remove_var(runner::FAULT_SLOW_ENV);
}
