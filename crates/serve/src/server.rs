//! The resident daemon: admission control, dedupe, fault isolation,
//! and the serve loop.
//!
//! Request lifecycle:
//!
//! 1. **Validate** — bad JSON, unknown targets, or bad field values
//!    produce a structured `error` response; nothing is dispatched.
//! 2. **Result store** — a sealed, checksum-verified entry for the
//!    request's `(target, scale, sweep)` key answers immediately
//!    (`source: "store"`), including right after a crash-restart.
//! 3. **Coalesce** — an identical request already in flight joins that
//!    computation's [`JobHandle`] instead of submitting a duplicate;
//!    every coalesced client receives the *same* response object, so
//!    the reply bytes are identical by construction.
//! 4. **Admit** — otherwise the job enters the dispatcher: at most
//!    `--max-inflight` run concurrently (each one's inner job matrix
//!    still parallelizes under the engine's own `--jobs` pool and the
//!    shared memory governor), FIFO within priority beyond that, and a
//!    `busy` response past the queue bound.
//! 5. **Isolate** — a panicking or invariant-violating render resolves
//!    only its own handle; the worker, its siblings, and the daemon
//!    survive, and the client gets a structured error naming the
//!    auditor's cell when there is one.
//! 6. **Drain** — SIGTERM (or [`Server::drain`]) stops admission;
//!    queued jobs cancel, running jobs checkpoint through the engine's
//!    cooperative drain, new requests get `draining`.

use crate::net::{Listener, Stream};
use crate::store::ResultStore;
use membw_core::audit::{self, AuditLevel};
use membw_core::fastpath::{self, AnalyticRender};
use membw_core::runner::persist;
use membw_core::runner::{self, CancelToken, Dispatcher, JobHandle, JobOutcome, SubmitError};
use membw_core::service::{
    error_kind, source, ServeStats, ServiceRequest, ServiceResponse, STATS_TARGET,
};
use membw_core::sweep::SweepMode;
use membw_core::targets;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Daemon tuning knobs (all have CLI flags on `repro serve`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Requests rendering concurrently (dispatcher workers).
    pub max_inflight: usize,
    /// Requests allowed to wait past that before `busy`.
    pub queue_bound: usize,
    /// Concurrent client connections before `busy`-and-close.
    pub conn_limit: usize,
    /// Per-read and incomplete-frame deadline (slow-loris bound).
    pub read_timeout: Duration,
    /// Longest accepted request line in bytes.
    pub max_frame: usize,
    /// Enable the ECM analytic fast lane (`repro serve --analytic
    /// assist`). Off by default: a daemon without it answers byte-for-
    /// byte like the seed.
    pub analytic: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_inflight: 2,
            queue_bound: 16,
            conn_limit: 64,
            read_timeout: Duration::from_secs(10),
            max_frame: 64 * 1024,
            analytic: false,
        }
    }
}

type Dedupe = Mutex<HashMap<String, JobHandle<ServiceResponse>>>;

/// Removes this computation's dedupe entry however the job ends —
/// normal return, error, or panic unwind. Without the unwind arm, a
/// panicked render would pin its stale handle in the map and every
/// later identical request would replay the old panic forever.
struct DedupeGuard {
    map: Arc<Dedupe>,
    key: String,
}

impl Drop for DedupeGuard {
    fn drop(&mut self) {
        self.map.lock().expect("dedupe map").remove(&self.key);
    }
}

/// Triage counters behind the `stats` request, updated lock-free on
/// every answered or refused request.
#[derive(Default)]
struct Counters {
    analytic: AtomicU64,
    simulated: AtomicU64,
    store: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    // Wire-health counters (PR 10): how often the network edge, not
    // the compute path, ended an exchange.
    net_timeouts: AtomicU64,
    oversize_rejected: AtomicU64,
    malformed_rejected: AtomicU64,
    reply_aborted: AtomicU64,
    /// Restart generation under `--supervise` (0 unsupervised); set
    /// once at construction from [`crate::supervisor::RESTARTS_ENV`].
    supervisor_restarts: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            analytic: self.analytic.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
            store: self.store.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            // Durability counters live with the store module (they
            // move inside load/save/open, not the request path).
            quarantined: crate::store::quarantined(),
            retention_dropped: crate::store::retention_dropped(),
            save_failures: crate::store::save_failures(),
            net_timeouts: self.net_timeouts.load(Ordering::Relaxed),
            oversize_rejected: self.oversize_rejected.load(Ordering::Relaxed),
            malformed_rejected: self.malformed_rejected.load(Ordering::Relaxed),
            reply_aborted: self.reply_aborted.load(Ordering::Relaxed),
            supervisor_restarts: self.supervisor_restarts.load(Ordering::Relaxed),
        }
    }
}

/// See the [module docs](self).
pub struct Server {
    config: ServeConfig,
    dispatcher: Dispatcher<ServiceResponse>,
    store: Arc<ResultStore>,
    dedupe: Arc<Dedupe>,
    draining: AtomicBool,
    connections: Arc<AtomicUsize>,
    counters: Arc<Counters>,
    /// Memoized analytic renders keyed by `target|scale`: the first
    /// fast-lane answer for a key pays the signature computation, every
    /// later one is histogram arithmetic + a map lookup (microseconds).
    analytic_cache: Mutex<HashMap<String, Arc<AnalyticRender>>>,
}

impl Server {
    /// A server dispatching into `store`. The constructing thread's
    /// ambient engine configuration (jobs, retries, checkpoint root,
    /// memory governor) is captured for every request — a request
    /// behaves exactly like a CLI run configured the same way.
    pub fn new(config: ServeConfig, store: ResultStore) -> Self {
        let dispatcher = Dispatcher::new(config.max_inflight.max(1), config.queue_bound.max(1));
        let counters = Counters::default();
        // A garbage generation env is survivable noise (the supervisor
        // always writes a number); count it as generation 0.
        let restarts = crate::supervisor::restarts_from_env().unwrap_or(0);
        counters
            .supervisor_restarts
            .store(restarts, Ordering::Relaxed);
        Server {
            config,
            dispatcher,
            store: Arc::new(store),
            dedupe: Arc::new(Mutex::new(HashMap::new())),
            draining: AtomicBool::new(false),
            connections: Arc::new(AtomicUsize::new(0)),
            counters: Arc::new(counters),
            analytic_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Stop admission: queued jobs cancel (their waiters get a
    /// `cancelled` error), running jobs drain cooperatively through
    /// the engine (checkpointing completed inner jobs), new requests
    /// get `draining`.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.dispatcher.drain();
    }

    /// Block until in-flight work has retired (after [`Server::drain`]).
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        self.dispatcher.wait_idle(timeout)
    }

    fn ok_response(
        req: &ServiceRequest,
        src: &str,
        jobs: u64,
        resumed: u64,
        stdout: String,
    ) -> ServiceResponse {
        ServiceResponse::Ok {
            target: req.target.clone(),
            scale: req.scale.clone(),
            sweep: req.sweep.clone(),
            source: src.to_string(),
            fnv64: format!("{:016x}", persist::fnv64(&stdout)),
            jobs,
            resumed,
            model: None,
            bound_rel_permille: None,
            stdout,
        }
    }

    /// The analytic fast-lane answer for `req`, if the lane is enabled,
    /// the target is predictable, and the prediction's worst relative
    /// bound fits the client's tolerance. The render is memoized per
    /// `(target, scale)`: only the first answer for a key pays the
    /// signature pass.
    fn analytic_answer(&self, req: &ServiceRequest) -> Option<ServiceResponse> {
        if !self.config.analytic
            || req.analytic_rel_permille == 0
            || !fastpath::analytic_supported(&req.target)
        {
            return None;
        }
        let key = format!("{}|{}", req.target, req.scale);
        let render = {
            let mut cache = self.analytic_cache.lock().expect("analytic cache");
            match cache.get(&key) {
                Some(r) => Arc::clone(r),
                None => {
                    let scale = targets::parse_scale(&req.scale).expect("scale validated");
                    let r = Arc::new(fastpath::render_target_analytic(&req.target, scale)?);
                    cache.insert(key, Arc::clone(&r));
                    r
                }
            }
        };
        let bound_permille = (render.worst_rel * 1000.0).ceil() as u64;
        if bound_permille > u64::from(req.analytic_rel_permille) {
            return None; // too loose for this client: simulate instead
        }
        self.counters.analytic.fetch_add(1, Ordering::Relaxed);
        let stdout = render.rendered.stdout.clone();
        Some(ServiceResponse::Ok {
            target: req.target.clone(),
            scale: req.scale.clone(),
            sweep: req.sweep.clone(),
            source: source::ANALYTIC.to_string(),
            fnv64: format!("{:016x}", persist::fnv64(&stdout)),
            jobs: 0,
            resumed: 0,
            model: Some(render.model.to_string()),
            bound_rel_permille: Some(bound_permille),
            stdout,
        })
    }

    fn error(kind: &str, message: impl Into<String>) -> ServiceResponse {
        ServiceResponse::Error {
            kind: kind.to_string(),
            message: message.into(),
            cell: None,
            retry_after_ms: None,
        }
    }

    /// The compute job for one admitted request. Runs on a dispatcher
    /// worker under the request's audit level; persists a successful
    /// render to the store before anyone is answered, so a crash after
    /// the reply can never lose an answered result.
    fn make_job(
        &self,
        req: &ServiceRequest,
        key: String,
    ) -> impl FnOnce() -> ServiceResponse + Send + 'static {
        let store = Arc::clone(&self.store);
        let dedupe = Arc::clone(&self.dedupe);
        let counters = Arc::clone(&self.counters);
        let req = req.clone();
        move || {
            let _cleanup = DedupeGuard {
                map: dedupe,
                key: key.clone(),
            };
            // All three parses were validated before admission.
            let scale = targets::parse_scale(&req.scale).expect("scale validated");
            let sweep = SweepMode::parse(&req.sweep).expect("sweep validated");
            let level: AuditLevel = req.audit.parse().expect("audit validated");
            let before = runner::metrics();
            let result =
                audit::with_level(level, || targets::render_target(&req.target, scale, sweep));
            let delta = runner::metrics_delta(before, runner::metrics());
            match result {
                Ok(rendered) => {
                    counters.simulated.fetch_add(1, Ordering::Relaxed);
                    if let Err((step, path, e)) = store.save(&key, &rendered.stdout) {
                        // The client still gets its answer; only the
                        // warm-restart cache misses out.
                        crate::store::note_save_failure();
                        eprintln!(
                            "serve: warning: cannot {step} {}: {e} (result served, not persisted)",
                            path.display()
                        );
                    }
                    Self::ok_response(
                        &req,
                        source::COMPUTED,
                        delta.jobs,
                        delta.resumed,
                        rendered.stdout,
                    )
                }
                Err(e) => ServiceResponse::from_error(&e),
            }
        }
    }

    /// Serve one request to completion (or deadline). This is the
    /// whole protocol semantics in one function; connection handling
    /// is just framing around it.
    pub fn handle_request(&self, req: &ServiceRequest) -> ServiceResponse {
        // `stats` is answered from counters, never dispatched.
        if req.target == STATS_TARGET {
            return ServiceResponse::Stats(self.counters.snapshot());
        }
        if let Err(msg) = req.validate() {
            let kind = if targets::renderable(&req.target) {
                error_kind::BAD_REQUEST
            } else {
                error_kind::UNKNOWN_TARGET
            };
            return Self::error(kind, msg);
        }
        if self.draining.load(Ordering::SeqCst) {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return ServiceResponse::Draining;
        }
        let key = req.coalesce_key();
        // Triage order: exact stored bytes beat an analytic answer;
        // a tight-enough analytic answer beats queueing a simulation.
        if let Some(stdout) = self.store.load(&key) {
            self.counters.store.fetch_add(1, Ordering::Relaxed);
            return Self::ok_response(req, source::STORE, 0, 0, stdout);
        }
        if let Some(resp) = self.analytic_answer(req) {
            return resp;
        }
        let handle = {
            // Hold the dedupe lock across the submit so two identical
            // requests can never both miss the map and double-compute.
            let mut map = self.dedupe.lock().expect("dedupe map");
            match map.get(&key) {
                Some(h) => {
                    self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    h.clone()
                }
                None => match self
                    .dispatcher
                    .submit(req.priority, self.make_job(req, key.clone()))
                {
                    Ok(h) => {
                        map.insert(key, h.clone());
                        h
                    }
                    Err(SubmitError::QueueFull { bound }) => {
                        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                        return ServiceResponse::Busy {
                            queued: self.dispatcher.queued() as u64,
                            bound: bound as u64,
                        };
                    }
                    Err(SubmitError::Draining) => {
                        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                        return ServiceResponse::Draining;
                    }
                },
            }
        };
        let outcome = if req.deadline_ms == 0 {
            handle.wait()
        } else {
            match handle.wait_timeout(Duration::from_millis(req.deadline_ms)) {
                Some(o) => o,
                None => {
                    // Only the reply gives up; the computation keeps
                    // running and lands in the store for a retry.
                    return Self::error(
                        error_kind::DEADLINE,
                        format!(
                            "no result within deadline_ms={} (the computation continues; retry to hit the store)",
                            req.deadline_ms
                        ),
                    );
                }
            }
        };
        match outcome {
            JobOutcome::Completed(resp) => (*resp).clone(),
            JobOutcome::Panicked(msg) => Self::error(
                error_kind::PANIC,
                format!("render job panicked (the daemon is unaffected): {msg}"),
            ),
            JobOutcome::Cancelled(reason) => Self::error(
                error_kind::CANCELLED,
                format!("render job cancelled ({reason}); completed inner jobs are checkpointed"),
            ),
        }
    }

    /// Serve one connection: newline-framed requests in, one response
    /// line each, until EOF, an unparseable-frame bound, or a
    /// slow-loris timeout.
    ///
    /// Failure classification matters here: a client that vanishes
    /// mid-reply has *not* failed the job — the render completed, the
    /// result is in the store, and coalesced waiters each hold their
    /// own handle clone — so a write failure only bumps `reply-aborted`
    /// and ends this connection. The dedupe entry is owned by the job's
    /// [`DedupeGuard`], never by the connection, so a dying client
    /// cannot poison it for other waiters.
    fn handle_connection(&self, mut stream: Stream) {
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut frame_started: Option<Instant> = None;
        loop {
            while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = buf.drain(..=pos).collect();
                frame_started = None;
                let line = String::from_utf8_lossy(&line[..pos]).into_owned();
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let resp = match serde_json::from_str::<ServiceRequest>(line) {
                    Ok(req) => self.handle_request(&req),
                    Err(e) => {
                        self.counters.malformed_rejected.fetch_add(1, Ordering::Relaxed);
                        Self::error(error_kind::BAD_REQUEST, format!("unparseable request: {e}"))
                    }
                };
                if write_response(&mut stream, &resp).is_err() {
                    // Client went away mid-reply. The job is NOT failed:
                    // the result is persisted/coalesced independently of
                    // this connection; only the delivery was lost.
                    self.counters.reply_aborted.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            if buf.len() > self.config.max_frame {
                self.counters.oversize_rejected.fetch_add(1, Ordering::Relaxed);
                let resp = Self::error(
                    error_kind::FRAME_TOO_LONG,
                    format!("request line exceeds {} bytes", self.config.max_frame),
                );
                let _ = write_response(&mut stream, &resp);
                return;
            }
            // Slow-loris bound: a frame must complete within the read
            // timeout of its first byte, however slowly bytes drip in.
            if let Some(t0) = frame_started {
                if t0.elapsed() > self.config.read_timeout {
                    self.counters.net_timeouts.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => return, // EOF (a torn frame dies silently: nobody is listening)
                Ok(n) => {
                    if frame_started.is_none() {
                        frame_started = Some(Instant::now());
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Idle past the read timeout — only a half-sent
                    // frame counts as a wire timeout; a client holding
                    // an idle keepalive connection open is normal.
                    if frame_started.is_some() || !buf.is_empty() {
                        self.counters.net_timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

/// One admitted connection's slot in the `conn_limit` budget, released
/// by `Drop` — so *every* way a connection ends (EOF, oversized frame,
/// read timeout, write failure, injected wire fault, handler panic
/// unwinding the connection thread) gives the slot back. The previous
/// explicit `fetch_sub` after `handle_connection` leaked the slot on
/// any panicking path, wedging admission at `conn_limit` forever.
struct ConnSlot {
    active: Arc<AtomicUsize>,
}

impl ConnSlot {
    /// Try to take a slot; `None` when the daemon is at `conn_limit`.
    fn acquire(active: &Arc<AtomicUsize>, limit: usize) -> Option<ConnSlot> {
        if active.fetch_add(1, Ordering::SeqCst) >= limit {
            active.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(ConnSlot {
            active: Arc::clone(active),
        })
    }
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn write_response(stream: &mut Stream, resp: &ServiceResponse) -> std::io::Result<()> {
    let mut line = serde_json::to_string(resp)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// Run the accept loop until `cancel` fires, then drain: stop
/// admission, cancel queued and in-flight jobs (their completed inner
/// work is checkpointed), and wait for the pool to go idle. The caller
/// unlinks the Unix socket file afterwards. Returns the number of
/// connections served.
///
/// # Errors
///
/// Only setup errors (making the listener non-blocking); accept errors
/// are logged and survived — a misbehaving client must never stop the
/// daemon.
pub fn serve(
    server: &Arc<Server>,
    listener: Listener,
    cancel: &CancelToken,
) -> std::io::Result<u64> {
    listener.set_nonblocking(true)?;
    let mut served: u64 = 0;
    // Admission latency is part of the analytic fast lane's budget: a
    // coarse idle sleep would put a ~25 ms floor under every answer,
    // including the microsecond ones. Poll eagerly while traffic is
    // flowing (request trains, benchmark loops, bursts), and only doze
    // once the socket has stayed quiet.
    let mut last_activity = std::time::Instant::now();
    while !cancel.is_cancelled() {
        match listener.accept() {
            Ok(stream) => {
                last_activity = std::time::Instant::now();
                served += 1;
                let Some(slot) = ConnSlot::acquire(&server.connections, server.config.conn_limit)
                else {
                    let mut stream = stream;
                    let _ = write_response(
                        &mut stream,
                        &ServiceResponse::Busy {
                            queued: server.connections.load(Ordering::SeqCst) as u64,
                            bound: server.config.conn_limit as u64,
                        },
                    );
                    continue;
                };
                let srv = Arc::clone(server);
                std::thread::spawn(move || {
                    // The slot rides into the thread and is released by
                    // Drop on every exit path, unwinds included.
                    let _slot = slot;
                    srv.handle_connection(stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if last_activity.elapsed() < Duration::from_millis(2) {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("serve: accept error (continuing): {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    server.drain();
    if !server.wait_idle(Duration::from_secs(30)) {
        eprintln!("serve: drain timed out with jobs still running");
    }
    Ok(served)
}
