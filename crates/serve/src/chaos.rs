//! Protocol chaos hooks: adversarial clients for the soak test.
//!
//! `MEMBW_SERVE_FAULT` selects which misbehaviors the soak harness
//! throws at a daemon (comma-separated; unset means *all* of them):
//!
//! * `torn` — half a request frame, then hang up;
//! * `disconnect` — a full request, then hang up before the reply
//!   (the render still completes server-side and lands in the store);
//! * `slowloris` — drip bytes slower than any human typist until the
//!   server's frame deadline closes the connection;
//! * `dupburst[:N]` — N concurrent identical requests (default 8),
//!   which must coalesce onto one computation and produce N
//!   byte-identical response lines;
//! * `enospc` — while one full request runs, every durable write in
//!   the daemon's process fails with an injected ENOSPC
//!   ([`faultio`]); the render must still be served and the loss must
//!   surface as a `save_failures` stats counter, never a wrong byte;
//! * `fsyncfail` — same, but the injected failure is at fsync, the
//!   classic silently-swallowed error
//!   (satellite 6's regression trap).
//!
//! The first four are *client-side* faults: the daemon under test runs
//! completely unmodified, which is the point — the soak criterion is
//! that no client behavior, however broken, changes a well-formed
//! client's bytes or brings the process down. The last two are
//! *server-side* I/O faults, installed through the process-global
//! [`faultio`] plan (the soak daemon runs in-process) for the duration
//! of one exchange.

use crate::net::Endpoint;
use membw_core::runner::faultio;
use std::io::{BufRead, BufReader, Read, Write};
use std::time::Duration;

/// Environment variable selecting chaos modes for the soak harness.
pub const SERVE_FAULT_ENV: &str = "MEMBW_SERVE_FAULT";

/// One adversarial client behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Send half a frame, disconnect.
    Torn,
    /// Send a full request, disconnect before the reply.
    Disconnect,
    /// Drip bytes slower than the server's frame deadline.
    SlowLoris,
    /// N concurrent identical requests.
    DupBurst(usize),
    /// Every durable write in the daemon fails with injected ENOSPC
    /// for one exchange.
    Enospc,
    /// Every fsync in the daemon fails for one exchange.
    FsyncFail,
}

/// Every mode, at default intensities (the unset-env default).
pub const ALL_MODES: [FaultMode; 6] = [
    FaultMode::Torn,
    FaultMode::Disconnect,
    FaultMode::SlowLoris,
    FaultMode::DupBurst(8),
    FaultMode::Enospc,
    FaultMode::FsyncFail,
];

/// Strictly parse a [`SERVE_FAULT_ENV`] spec.
///
/// # Errors
///
/// Names the variable and the offending entry, like the engine's other
/// fault-env validators.
pub fn parse_spec(spec: &str) -> Result<Vec<FaultMode>, String> {
    let mut modes = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        let mode = match entry {
            "torn" => FaultMode::Torn,
            "disconnect" => FaultMode::Disconnect,
            "slowloris" => FaultMode::SlowLoris,
            "dupburst" => FaultMode::DupBurst(8),
            "enospc" => FaultMode::Enospc,
            "fsyncfail" => FaultMode::FsyncFail,
            _ => match entry.strip_prefix("dupburst:") {
                Some(n) => match n.parse::<usize>() {
                    Ok(n) if n > 0 => FaultMode::DupBurst(n),
                    _ => {
                        return Err(format!(
                            "invalid {SERVE_FAULT_ENV} entry {entry:?}: dupburst needs a positive count"
                        ))
                    }
                },
                None => {
                    return Err(format!(
                        "invalid {SERVE_FAULT_ENV} entry {entry:?} \
                         (expected torn|disconnect|slowloris|dupburst[:N]|enospc|fsyncfail)"
                    ))
                }
            },
        };
        modes.push(mode);
    }
    Ok(modes)
}

/// The chaos modes the environment selects: unset → [`ALL_MODES`].
///
/// # Errors
///
/// A malformed spec (strict, like every other fault env).
pub fn modes_from_env() -> Result<Vec<FaultMode>, String> {
    match std::env::var(SERVE_FAULT_ENV) {
        Ok(spec) => parse_spec(&spec),
        Err(_) => Ok(ALL_MODES.to_vec()),
    }
}

/// This layer's entry in the consolidated fault-env registry
/// ([`membw_core::runner::faultenv`]).
pub fn fault_var() -> membw_core::runner::faultenv::FaultVar {
    membw_core::runner::faultenv::FaultVar {
        name: SERVE_FAULT_ENV,
        grammar: "torn|disconnect|slowloris|dupburst[:N]|enospc|fsyncfail \
                  — soak-harness chaos modes",
        validate: |spec| parse_spec(spec).map(|_| ()),
    }
}

/// Validate every fault variable a serve-layer driver honors: the four
/// runner-layer hooks plus [`SERVE_FAULT_ENV`] and the wire-level
/// [`crate::netfault::NET_FAULT_ENV`].
///
/// # Errors
///
/// The first validator failure, naming the variable.
pub fn validate_env() -> Result<(), String> {
    let runner_vars = membw_core::runner::faultenv::vars();
    let mut all: Vec<membw_core::runner::faultenv::FaultVar> = runner_vars.to_vec();
    all.push(fault_var());
    all.push(crate::netfault::fault_var());
    membw_core::runner::faultenv::validate(&all)
}

/// Throw one chaos client at the daemon. Returns any response lines
/// received (`dupburst` returns one per burst client that got an
/// answer; the hang-up modes return none).
///
/// Never returns an error: a connection the daemon slams shut *is* the
/// expected outcome for several modes, so transport failures are
/// swallowed — the soak test's assertions live on the daemon side
/// (still alive, well-formed clients unaffected).
pub fn apply(endpoint: &Endpoint, mode: FaultMode, request_line: &str) -> Vec<String> {
    match mode {
        FaultMode::Torn => {
            if let Ok(mut s) = endpoint.connect() {
                let half = &request_line.as_bytes()[..request_line.len() / 2];
                let _ = s.write_all(half);
                let _ = s.flush();
            }
            Vec::new()
        }
        FaultMode::Disconnect => {
            if let Ok(mut s) = endpoint.connect() {
                let _ = s.write_all(request_line.as_bytes());
                let _ = s.write_all(b"\n");
                let _ = s.flush();
            }
            Vec::new()
        }
        FaultMode::SlowLoris => {
            if let Ok(mut s) = endpoint.connect() {
                let _ = s.set_read_timeout(Some(Duration::from_millis(100)));
                // Drip one byte at a time; stop when the server closes
                // on us (write error) or after bounded effort.
                for b in request_line.as_bytes().iter().take(32) {
                    if s.write_all(std::slice::from_ref(b)).is_err() {
                        break;
                    }
                    let _ = s.flush();
                    std::thread::sleep(Duration::from_millis(40));
                    // Probe for the server closing the connection.
                    let mut probe = [0u8; 1];
                    if let Ok(0) = s.read(&mut probe) {
                        break; // server hung up: defense worked
                    }
                }
            }
            Vec::new()
        }
        FaultMode::Enospc | FaultMode::FsyncFail => {
            let spec = match mode {
                FaultMode::Enospc => "enospc",
                _ => "fsyncfail",
            };
            let plan = faultio::FaultPlan::parse(spec).expect("built-in spec parses");
            faultio::set_plan(Some(plan));
            let mut lines = Vec::new();
            if let Ok(mut s) = endpoint.connect() {
                let _ = s.set_read_timeout(Some(Duration::from_secs(60)));
                if s.write_all(request_line.as_bytes()).is_ok()
                    && s.write_all(b"\n").is_ok()
                    && s.flush().is_ok()
                {
                    let mut reader = BufReader::new(s);
                    let mut reply = String::new();
                    if reader.read_line(&mut reply).is_ok() && !reply.is_empty() {
                        lines.push(reply.trim_end().to_string());
                    }
                }
            }
            faultio::set_plan(None);
            lines
        }
        FaultMode::DupBurst(n) => {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let ep = endpoint.clone();
                    let line = request_line.to_string();
                    std::thread::spawn(move || -> Option<String> {
                        let mut s = ep.connect().ok()?;
                        s.write_all(line.as_bytes()).ok()?;
                        s.write_all(b"\n").ok()?;
                        s.flush().ok()?;
                        let mut reader = BufReader::new(s);
                        let mut reply = String::new();
                        reader.read_line(&mut reply).ok()?;
                        (!reply.is_empty()).then(|| reply.trim_end().to_string())
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().ok().flatten())
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_strictly() {
        assert_eq!(
            parse_spec("torn,disconnect,slowloris,dupburst,enospc,fsyncfail").unwrap(),
            ALL_MODES.to_vec()
        );
        assert_eq!(
            parse_spec("dupburst:3").unwrap(),
            vec![FaultMode::DupBurst(3)]
        );
        for bad in [
            "",
            "tornn",
            "dupburst:0",
            "dupburst:x",
            "torn;disconnect",
            "enospc:3",
        ] {
            let e = parse_spec(bad).unwrap_err();
            assert!(e.contains(SERVE_FAULT_ENV), "{bad:?} -> {e}");
        }
    }

    #[test]
    fn serve_fault_var_keeps_the_registry_contract() {
        let var = fault_var();
        membw_core::runner::faultenv::assert_rejects_garbage(&var);
        (var.validate)("torn,dupburst:4,fsyncfail").expect("canonical spec passes");
    }
}
