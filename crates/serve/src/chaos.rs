//! Protocol chaos hooks: adversarial clients for the soak test.
//!
//! `MEMBW_SERVE_FAULT` selects which misbehaviors the soak harness
//! throws at a daemon (comma-separated; unset means *all* of them):
//!
//! * `torn` — half a request frame, then hang up;
//! * `disconnect` — a full request, then hang up before the reply
//!   (the render still completes server-side and lands in the store);
//! * `slowloris` — drip bytes slower than any human typist until the
//!   server's frame deadline closes the connection;
//! * `dupburst[:N]` — N concurrent identical requests (default 8),
//!   which must coalesce onto one computation and produce N
//!   byte-identical response lines.
//!
//! These are *client-side* faults: the daemon under test runs
//! completely unmodified, which is the point — the soak criterion is
//! that no client behavior, however broken, changes a well-formed
//! client's bytes or brings the process down.

use crate::net::Endpoint;
use std::io::{BufRead, BufReader, Read, Write};
use std::time::Duration;

/// Environment variable selecting chaos modes for the soak harness.
pub const SERVE_FAULT_ENV: &str = "MEMBW_SERVE_FAULT";

/// One adversarial client behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Send half a frame, disconnect.
    Torn,
    /// Send a full request, disconnect before the reply.
    Disconnect,
    /// Drip bytes slower than the server's frame deadline.
    SlowLoris,
    /// N concurrent identical requests.
    DupBurst(usize),
}

/// Every mode, at default intensities (the unset-env default).
pub const ALL_MODES: [FaultMode; 4] = [
    FaultMode::Torn,
    FaultMode::Disconnect,
    FaultMode::SlowLoris,
    FaultMode::DupBurst(8),
];

/// Strictly parse a [`SERVE_FAULT_ENV`] spec.
///
/// # Errors
///
/// Names the variable and the offending entry, like the engine's other
/// fault-env validators.
pub fn parse_spec(spec: &str) -> Result<Vec<FaultMode>, String> {
    let mut modes = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        let mode = match entry {
            "torn" => FaultMode::Torn,
            "disconnect" => FaultMode::Disconnect,
            "slowloris" => FaultMode::SlowLoris,
            "dupburst" => FaultMode::DupBurst(8),
            _ => match entry.strip_prefix("dupburst:") {
                Some(n) => match n.parse::<usize>() {
                    Ok(n) if n > 0 => FaultMode::DupBurst(n),
                    _ => {
                        return Err(format!(
                            "invalid {SERVE_FAULT_ENV} entry {entry:?}: dupburst needs a positive count"
                        ))
                    }
                },
                None => {
                    return Err(format!(
                        "invalid {SERVE_FAULT_ENV} entry {entry:?} \
                         (expected torn|disconnect|slowloris|dupburst[:N])"
                    ))
                }
            },
        };
        modes.push(mode);
    }
    Ok(modes)
}

/// The chaos modes the environment selects: unset → [`ALL_MODES`].
///
/// # Errors
///
/// A malformed spec (strict, like every other fault env).
pub fn modes_from_env() -> Result<Vec<FaultMode>, String> {
    match std::env::var(SERVE_FAULT_ENV) {
        Ok(spec) => parse_spec(&spec),
        Err(_) => Ok(ALL_MODES.to_vec()),
    }
}

/// Throw one chaos client at the daemon. Returns any response lines
/// received (`dupburst` returns one per burst client that got an
/// answer; the hang-up modes return none).
///
/// Never returns an error: a connection the daemon slams shut *is* the
/// expected outcome for several modes, so transport failures are
/// swallowed — the soak test's assertions live on the daemon side
/// (still alive, well-formed clients unaffected).
pub fn apply(endpoint: &Endpoint, mode: FaultMode, request_line: &str) -> Vec<String> {
    match mode {
        FaultMode::Torn => {
            if let Ok(mut s) = endpoint.connect() {
                let half = &request_line.as_bytes()[..request_line.len() / 2];
                let _ = s.write_all(half);
                let _ = s.flush();
            }
            Vec::new()
        }
        FaultMode::Disconnect => {
            if let Ok(mut s) = endpoint.connect() {
                let _ = s.write_all(request_line.as_bytes());
                let _ = s.write_all(b"\n");
                let _ = s.flush();
            }
            Vec::new()
        }
        FaultMode::SlowLoris => {
            if let Ok(mut s) = endpoint.connect() {
                let _ = s.set_read_timeout(Some(Duration::from_millis(100)));
                // Drip one byte at a time; stop when the server closes
                // on us (write error) or after bounded effort.
                for b in request_line.as_bytes().iter().take(32) {
                    if s.write_all(std::slice::from_ref(b)).is_err() {
                        break;
                    }
                    let _ = s.flush();
                    std::thread::sleep(Duration::from_millis(40));
                    // Probe for the server closing the connection.
                    let mut probe = [0u8; 1];
                    if let Ok(0) = s.read(&mut probe) {
                        break; // server hung up: defense worked
                    }
                }
            }
            Vec::new()
        }
        FaultMode::DupBurst(n) => {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let ep = endpoint.clone();
                    let line = request_line.to_string();
                    std::thread::spawn(move || -> Option<String> {
                        let mut s = ep.connect().ok()?;
                        s.write_all(line.as_bytes()).ok()?;
                        s.write_all(b"\n").ok()?;
                        s.flush().ok()?;
                        let mut reader = BufReader::new(s);
                        let mut reply = String::new();
                        reader.read_line(&mut reply).ok()?;
                        (!reply.is_empty()).then(|| reply.trim_end().to_string())
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().ok().flatten())
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_strictly() {
        assert_eq!(
            parse_spec("torn,disconnect,slowloris,dupburst").unwrap(),
            vec![
                FaultMode::Torn,
                FaultMode::Disconnect,
                FaultMode::SlowLoris,
                FaultMode::DupBurst(8)
            ]
        );
        assert_eq!(
            parse_spec("dupburst:3").unwrap(),
            vec![FaultMode::DupBurst(3)]
        );
        for bad in ["", "tornn", "dupburst:0", "dupburst:x", "torn;disconnect"] {
            let e = parse_spec(bad).unwrap_err();
            assert!(e.contains(SERVE_FAULT_ENV), "{bad:?} -> {e}");
        }
    }
}
