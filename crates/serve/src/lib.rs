//! `membw-serve`: the crash-safe, backpressure-aware resident
//! simulation service behind `repro serve` / `repro query`.
//!
//! The CLI answers one question per process; this crate keeps a warm
//! process answering many — the serving shape that makes the paper's
//! bandwidth wall a *service* problem. It composes the engine's
//! existing robustness pieces instead of reinventing them:
//!
//! | pillar | mechanism |
//! |--------|-----------|
//! | fault isolation | [`membw_core::runner::Dispatcher`] catch-unwind per request |
//! | backpressure | bounded queue, FIFO within priority, `busy` past the bound |
//! | dedupe | identical in-flight `(target, scale, sweep)` coalesce onto one [`membw_core::runner::JobHandle`] |
//! | crash safety | [`store::ResultStore`]: tmp→fsync→rename + FNV-sealed entries |
//! | graceful drain | SIGTERM → engine cancel tokens → checkpointed partial work |
//! | chaos | [`chaos`]: adversarial clients driven by `MEMBW_SERVE_FAULT` |
//! | wire faults | [`netfault`]: deterministic `MEMBW_NET_FAULT` plans under every socket op in [`net`] |
//! | self-healing | [`supervisor`]: `serve --supervise` restarts a crashed daemon with bounded backoff |
//!
//! Protocol types live in [`membw_core::service`]; rendering goes
//! through [`membw_core::targets::render_target`], the same function
//! the CLI prints from, which is what makes "a response is
//! byte-identical to the CLI run" checkable at all.

pub mod chaos;
pub mod client;
pub mod net;
pub mod netfault;
pub mod server;
pub mod store;
pub mod supervisor;

pub use net::{Endpoint, Listener, Stream};
pub use netfault::{NetFaultPlan, NET_FAULT_ENV};
pub use server::{serve, ServeConfig, Server};
pub use store::ResultStore;
pub use supervisor::{supervise, SupervisorConfig};
