//! Deterministic wire-level fault injection: the plan every socket
//! operation in this crate consults, and the one place the failure
//! surface of the *network* becomes injectable.
//!
//! PR 9 proved the persistence layer crash-consistent by enumerating
//! every I/O point and aborting at each one; this module does the same
//! for the daemon's network edge. Every socket operation performed
//! through [`crate::net`] — accept, raw read, raw write — is one **net
//! point**, numbered from 1 in process order under an active plan, so
//! `crates/serve/tests/wire_consistency.rs` can enumerate the fault
//! points of a whole request/reply exchange and then inject at each.
//!
//! # `MEMBW_NET_FAULT` grammar
//!
//! Comma-separated directives (strictly validated through the
//! [`membw_core::runner::faultenv`] registry: a typo is a
//! named-variable error and a refusal to start):
//!
//! * `acceptfail[:N]` — accepting a connection fails with an injected
//!   error; with `:N` only the N-th accept (1-based), without it every
//!   one. The serve loop must log and survive, never die.
//! * `tornframe@K` — the connection is shut down after exactly K bytes
//!   of reply have been written (mid-`write_all`), so the client sees a
//!   partial line then EOF: the torn frame a dying peer leaves behind.
//!   One-shot: the wire tore *once*, so a client's retry converges —
//!   which is precisely the transient-fault contract under proof.
//! * `stallwrite[:MS]` — every write stalls MS milliseconds (default
//!   [`DEFAULT_STALL_MS`]) before executing: a congested or malicious-
//!   slow peer on the reply path.
//! * `disconnect@K` — at net point K the peer "vanishes": the stream is
//!   shut down and the operation fails with `ConnectionReset` (reads)
//!   or `BrokenPipe` (writes).
//! * `crash@K` — the daemon hard-aborts (`std::process::abort`, no
//!   destructors, exit 134 like `MEMBW_IO_FAULT=crash@K`) immediately
//!   before executing net point K — with connections open.
//! * `count:PATH` — no faults; after every net point the running
//!   count, operation, and peer are appended to `PATH` so a harness can
//!   enumerate an exchange's fault surface before exploring it.
//!
//! While a crash or count plan is active, logical writes are split in
//! two (exactly like `faultio`'s stepped writes) so crash points land
//! *mid-reply* too, not only at frame boundaries.
//!
//! With `MEMBW_NET_FAULT` unset the facade is pass-through: one relaxed
//! atomic load per socket operation, no counting, no bookkeeping.
//!
//! # The contract the plan exists to prove
//!
//! Under any directive above, a client of `membw serve` must observe
//! either the correct reply bytes or a typed-transient failure (a
//! [`membw_core::service::error_kind::TRANSIENT`] response, or a
//! transport error [`crate::client::transport_retryable`] classifies as
//! retryable) whose bounded retry converges to bytes identical to a
//! fault-free run — never a wrong answer, never a hung admission slot.

use membw_core::runner::faultenv::FaultVar;
use membw_core::runner::faultio::Select;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Environment variable carrying the wire fault plan.
pub const NET_FAULT_ENV: &str = "MEMBW_NET_FAULT";

/// `stallwrite` without an explicit duration stalls this long.
pub const DEFAULT_STALL_MS: u64 = 50;

/// A parsed [`NET_FAULT_ENV`] plan. See the [module docs](self) for the
/// grammar.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetFaultPlan {
    acceptfail: Select,
    tornframe_at: Option<u64>,
    stall_ms: Option<u64>,
    disconnect_at: Option<u64>,
    crash_at: Option<u64>,
    count_to: Option<PathBuf>,
}

impl NetFaultPlan {
    /// Strictly parse a [`NET_FAULT_ENV`] spec.
    ///
    /// # Errors
    ///
    /// Names the variable and the offending entry, like every other
    /// fault-env validator in the workspace.
    pub fn parse(spec: &str) -> Result<NetFaultPlan, String> {
        let mut plan = NetFaultPlan::default();
        let bad = |entry: &str, why: &str| {
            format!(
                "invalid {NET_FAULT_ENV} entry {entry:?}: {why} (expected \
                 acceptfail[:N]|tornframe@K|stallwrite[:MS]|disconnect@K|crash@K|count:PATH)"
            )
        };
        let point = |entry: &str, arg: &str, what: &str| -> Result<u64, String> {
            match arg.parse::<u64>() {
                Ok(k) if k >= 1 => Ok(k),
                _ => Err(bad(entry, what)),
            }
        };
        for entry in spec.split(',') {
            let entry = entry.trim();
            match entry {
                "acceptfail" => plan.acceptfail = Select::All,
                "stallwrite" => plan.stall_ms = Some(DEFAULT_STALL_MS),
                _ => {
                    if let Some(n) = entry.strip_prefix("acceptfail:") {
                        plan.acceptfail = Select::Nth(point(
                            entry,
                            n,
                            "acceptfail:N needs a positive accept ordinal",
                        )?);
                    } else if let Some(k) = entry.strip_prefix("tornframe@") {
                        plan.tornframe_at =
                            Some(point(entry, k, "tornframe@K needs a positive byte offset")?);
                    } else if let Some(ms) = entry.strip_prefix("stallwrite:") {
                        match ms.parse::<u64>() {
                            Ok(ms) => plan.stall_ms = Some(ms),
                            Err(_) => {
                                return Err(bad(entry, "stallwrite:MS needs whole milliseconds"))
                            }
                        }
                    } else if let Some(k) = entry.strip_prefix("disconnect@") {
                        plan.disconnect_at =
                            Some(point(entry, k, "disconnect@K needs a positive net point")?);
                    } else if let Some(k) = entry.strip_prefix("crash@") {
                        plan.crash_at =
                            Some(point(entry, k, "crash@K needs a positive net point")?);
                    } else if let Some(path) = entry.strip_prefix("count:") {
                        if path.is_empty() {
                            return Err(bad(entry, "count: needs a file path"));
                        }
                        plan.count_to = Some(PathBuf::from(path));
                    } else {
                        return Err(bad(entry, "unknown directive"));
                    }
                }
            }
        }
        Ok(plan)
    }

    /// Every installed plan steps logical writes (splits them in two)
    /// — not just `crash@K`/`count:` — so the net-point numbering a
    /// `count:PATH` run enumerates is exactly the numbering
    /// `disconnect@K` and `crash@K` then fire on. Directive-specific
    /// stepping would renumber the points between enumeration and
    /// exploration.
    fn stepped(&self) -> bool {
        true
    }
}

/// Strictly validate a [`NET_FAULT_ENV`] spec without installing it.
///
/// # Errors
///
/// The named-variable parse error.
pub fn validate_spec(spec: &str) -> Result<(), String> {
    NetFaultPlan::parse(spec).map(|_| ())
}

/// This layer's entry in the consolidated fault-env registry — the
/// serve driver chains it with the runner-layer hooks and
/// [`crate::chaos::SERVE_FAULT_ENV`], so a garbage wire plan is the
/// same named-variable exit-2 as every other fault hook.
pub fn fault_var() -> FaultVar {
    FaultVar {
        name: NET_FAULT_ENV,
        grammar: "acceptfail[:N]|tornframe@K|stallwrite[:MS]|disconnect@K\
                  |crash@K|count:PATH — wire-level fault plan",
        validate: validate_spec,
    }
}

// ---------------------------------------------------------------------
// Plan installation and the net point counter (mirrors runner::faultio).

/// Fast-path gate: false means "no plan, no bookkeeping".
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<NetFaultPlan>>> = Mutex::new(None);
static ENV_READ: Once = Once::new();

static NET_POINTS: AtomicU64 = AtomicU64::new(0);
static ACCEPT_OPS: AtomicU64 = AtomicU64::new(0);
static REPLY_BYTES: AtomicU64 = AtomicU64::new(0);
static TORN_FIRED: AtomicBool = AtomicBool::new(false);

fn install(plan: Option<NetFaultPlan>) {
    let mut slot = PLAN.lock().expect("net fault plan");
    // Ordinals restart at plan installation, exactly like faultio:
    // `acceptfail:N` means the N-th accept under *this* plan.
    NET_POINTS.store(0, Ordering::SeqCst);
    ACCEPT_OPS.store(0, Ordering::SeqCst);
    REPLY_BYTES.store(0, Ordering::SeqCst);
    TORN_FIRED.store(false, Ordering::SeqCst);
    ACTIVE.store(plan.is_some(), Ordering::SeqCst);
    *slot = plan.map(Arc::new);
}

fn init_from_env() {
    ENV_READ.call_once(|| {
        if let Ok(spec) = std::env::var(NET_FAULT_ENV) {
            match NetFaultPlan::parse(&spec) {
                Ok(plan) => install(Some(plan)),
                Err(e) => {
                    // Same contract as faultio: refuse to run, never
                    // silently ignore an injection hook.
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
    });
}

/// Install (or with `None` clear) the process-wide wire fault plan,
/// overriding whatever [`NET_FAULT_ENV`] said. In-process test
/// harnesses use this; the daemon binary never calls it.
pub fn set_plan(plan: Option<NetFaultPlan>) {
    ENV_READ.call_once(|| {}); // disarm the env initializer
    install(plan);
}

/// The number of net points executed so far under an active plan
/// (always 0 when no plan is installed).
pub fn net_points() -> u64 {
    NET_POINTS.load(Ordering::SeqCst)
}

fn current() -> Option<Arc<NetFaultPlan>> {
    init_from_env();
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    PLAN.lock().expect("net fault plan").clone()
}

/// Count one net point; honour `count:` and `crash@K`.
fn net_point(plan: &NetFaultPlan, op: &str) -> u64 {
    let k = NET_POINTS.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(file) = &plan.count_to {
        // Plain fs on purpose: the bookkeeping file is not part of the
        // wire surface under test, and must not perturb faultio either.
        let _ = std::fs::write(file, format!("{k} {op}\n"));
    }
    if plan.crash_at == Some(k) {
        eprintln!("netfault: injected crash at net point {k} (before {op})");
        std::process::abort();
    }
    k
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected {what} ({NET_FAULT_ENV})"))
}

// ---------------------------------------------------------------------
// The hooks crate::net threads through its facade.

/// What a read/write hook tells the stream facade to do.
pub(crate) enum WireAction {
    /// No directive fired: perform the operation normally, writing at
    /// most `limit` bytes (stepped plans split logical writes).
    Proceed { limit: usize },
    /// Shut the stream down and return this error (`disconnect@K`,
    /// `tornframe@K` once the offset is crossed).
    Sever(io::Error),
}

/// Accept hook: one net point; `acceptfail` and `crash@K` inject here.
///
/// # Errors
///
/// The injected accept failure.
pub(crate) fn on_accept() -> io::Result<()> {
    let Some(plan) = current() else {
        return Ok(());
    };
    let nth = ACCEPT_OPS.fetch_add(1, Ordering::SeqCst) + 1;
    net_point(&plan, "accept");
    if plan.acceptfail.hits(nth) {
        return Err(injected("accept failure"));
    }
    Ok(())
}

/// Read hook: one net point; `disconnect@K` and `crash@K` inject here.
pub(crate) fn on_read() -> WireAction {
    let Some(plan) = current() else {
        return WireAction::Proceed { limit: usize::MAX };
    };
    let k = net_point(&plan, "read");
    if plan.disconnect_at == Some(k) {
        return WireAction::Sever(io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("injected disconnect at net point {k} ({NET_FAULT_ENV})"),
        ));
    }
    WireAction::Proceed { limit: usize::MAX }
}

/// Write hook for a buffer of `len` bytes: one net point; `stallwrite`,
/// `disconnect@K`, `tornframe@K`, and `crash@K` inject here.
pub(crate) fn on_write(len: usize) -> WireAction {
    let Some(plan) = current() else {
        return WireAction::Proceed { limit: usize::MAX };
    };
    if let Some(ms) = plan.stall_ms {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
    let k = net_point(&plan, "write");
    if plan.disconnect_at == Some(k) {
        return WireAction::Sever(io::Error::new(
            io::ErrorKind::BrokenPipe,
            format!("injected disconnect at net point {k} ({NET_FAULT_ENV})"),
        ));
    }
    let mut limit = if plan.stepped() && len >= 2 {
        // One mid-buffer boundary per logical write is enough to give
        // crash and count plans a mid-frame state to land on.
        len / 2
    } else {
        len
    };
    if let Some(offset) = plan.tornframe_at {
        if !TORN_FIRED.load(Ordering::SeqCst) {
            let written = REPLY_BYTES.load(Ordering::SeqCst);
            if written >= offset {
                // One-shot: this connection tears; the retry's writes
                // pass untouched so bounded backoff can converge.
                TORN_FIRED.store(true, Ordering::SeqCst);
                return WireAction::Sever(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    format!("injected torn frame after {written} reply byte(s) ({NET_FAULT_ENV})"),
                ));
            }
            // Cut exactly at the offset: write up to it, sever on the
            // next attempt — the peer sees a K-byte prefix then EOF.
            limit = limit.min((offset - written) as usize);
        }
    }
    WireAction::Proceed { limit }
}

/// Record `n` bytes actually written (drives the `tornframe@K` offset).
pub(crate) fn wrote(n: usize) {
    if ACTIVE.load(Ordering::Relaxed) {
        REPLY_BYTES.fetch_add(n as u64, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_strictly() {
        assert_eq!(
            NetFaultPlan::parse("acceptfail").unwrap().acceptfail,
            Select::All
        );
        assert_eq!(
            NetFaultPlan::parse("acceptfail:3").unwrap().acceptfail,
            Select::Nth(3)
        );
        assert_eq!(
            NetFaultPlan::parse("tornframe@17").unwrap().tornframe_at,
            Some(17)
        );
        assert_eq!(
            NetFaultPlan::parse("stallwrite").unwrap().stall_ms,
            Some(DEFAULT_STALL_MS)
        );
        assert_eq!(
            NetFaultPlan::parse("stallwrite:5").unwrap().stall_ms,
            Some(5)
        );
        assert_eq!(
            NetFaultPlan::parse("disconnect@2").unwrap().disconnect_at,
            Some(2)
        );
        assert_eq!(NetFaultPlan::parse("crash@9").unwrap().crash_at, Some(9));
        let combo = NetFaultPlan::parse("acceptfail:1, stallwrite:5, crash@4").unwrap();
        assert_eq!(combo.acceptfail, Select::Nth(1));
        assert_eq!(combo.stall_ms, Some(5));
        assert_eq!(combo.crash_at, Some(4));
        assert!(combo.stepped());
        assert_eq!(
            NetFaultPlan::parse("count:/tmp/netpoints").unwrap().count_to,
            Some(PathBuf::from("/tmp/netpoints"))
        );
        for bad in [
            "",
            "acceptfailx",
            "acceptfail:",
            "acceptfail:0",
            "tornframe@",
            "tornframe@0",
            "tornframe@x",
            "stallwrite:x",
            "disconnect@0",
            "crash@",
            "crash@0",
            "count:",
            "acceptfail;crash@1",
        ] {
            let e = NetFaultPlan::parse(bad).unwrap_err();
            assert!(e.contains(NET_FAULT_ENV), "{bad:?} -> {e}");
        }
    }

    #[test]
    fn net_fault_var_keeps_the_registry_contract() {
        let var = fault_var();
        membw_core::runner::faultenv::assert_rejects_garbage(&var);
        (var.validate)("acceptfail:2,tornframe@40,stallwrite:10").expect("canonical spec passes");
        assert!(!var.grammar.is_empty());
    }
}
