//! The crash-safe result store: completed renders survive daemon
//! death.
//!
//! One file per distinct request key (`v1|target|scale|sweep`), named
//! by the key's FNV-1a 64 hash, written through the same
//! tmp→fsync→rename + seal-header path the checkpoint store uses
//! ([`membw_runner::persist`]). A daemon killed with SIGKILL and
//! restarted serves every previously completed request from here —
//! checksum-verified — instead of recomputing; a torn or bit-flipped
//! entry fails the seal check, is quarantined to a `.corrupt`
//! generation for the next recompute to replace, and never reaches a
//! client.

use membw_core::runner::{faultio, persist};
use serde::json::Value;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Store entries quarantined by this process (seal/identity failures).
static QUARANTINED: AtomicU64 = AtomicU64::new(0);
/// Quarantined generations deleted by the retention sweep at open.
static RETENTION_DROPPED: AtomicU64 = AtomicU64::new(0);
/// Completed renders whose durable save failed (result still served).
static SAVE_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Store entries this process has quarantined instead of serving.
pub fn quarantined() -> u64 {
    QUARANTINED.load(Ordering::Relaxed)
}

/// Quarantine generations the retention sweep has deleted.
pub fn retention_dropped() -> u64 {
    RETENTION_DROPPED.load(Ordering::Relaxed)
}

/// Failed durable saves (recorded by the daemon's request path).
pub fn save_failures() -> u64 {
    SAVE_FAILURES.load(Ordering::Relaxed)
}

/// Record one failed durable save (the caller served the result
/// anyway; this keeps the loss visible in `stats`).
pub fn note_save_failure() {
    SAVE_FAILURES.fetch_add(1, Ordering::Relaxed);
}

/// See the [module docs](self).
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Open (creating if needed) the store at `dir`, sweeping orphaned
    /// `*.tmp` files from interrupted writes and bounding the
    /// `*.corrupt` quarantine backlog.
    ///
    /// # Errors
    ///
    /// Fails only if the directory cannot be created.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        faultio::create_dir_all(dir)?;
        persist::sweep_orphaned_tmp(dir);
        let dropped = persist::sweep_corrupt_retention(dir, persist::CORRUPT_KEEP_DEFAULT);
        RETENTION_DROPPED.fetch_add(dropped as u64, Ordering::Relaxed);
        Ok(ResultStore {
            dir: dir.to_path_buf(),
        })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", persist::fnv64(key)))
    }

    /// The verified stdout for `key`, if a sealed entry exists.
    ///
    /// A missing file is a plain miss. A file that fails the seal
    /// check, does not parse, or carries a *different* key (hash
    /// collision) is quarantined and reported as a miss — the caller
    /// recomputes and overwrites.
    pub fn load(&self, key: &str) -> Option<String> {
        let path = self.path_for(key);
        let text = std::fs::read_to_string(&path).ok()?;
        match Self::decode(&text, key) {
            Some(stdout) => Some(stdout),
            None => {
                let quarantine = persist::quarantine_path(&path);
                QUARANTINED.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "serve: store entry {} failed verification; quarantined to {}",
                    path.display(),
                    quarantine.display()
                );
                let _ = faultio::rename(&path, &quarantine);
                None
            }
        }
    }

    fn decode(text: &str, key: &str) -> Option<String> {
        let body = persist::unseal(text)?;
        let v: Value = serde_json::from_str(body).ok()?;
        if v.get("key")?.as_str()? != key {
            return None;
        }
        Some(v.get("stdout")?.as_str()?.to_string())
    }

    /// Durably persist `stdout` as the result for `key`
    /// (tmp→fsync→rename, FNV-sealed). Overwrites any previous entry.
    ///
    /// # Errors
    ///
    /// The failed filesystem step, its path, and the OS error.
    pub fn save(&self, key: &str, stdout: &str) -> Result<(), persist::PersistError> {
        let body = Value::Object(vec![
            ("key".to_string(), key.to_value()),
            ("stdout".to_string(), stdout.to_value()),
        ]);
        let json = serde_json::to_string(&body).expect("value tree serializes");
        let sealed = persist::seal(&json);
        persist::write_atomic(&self.path_for(key), sealed.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("membw_serve_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trips_across_reopen() {
        let dir = tmpdir("rt");
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.load("v1|table7|test|stack"), None);
        store
            .save("v1|table7|test|stack", "Table 7\n\"quoted\"\n")
            .unwrap();
        assert_eq!(
            store.load("v1|table7|test|stack").as_deref(),
            Some("Table 7\n\"quoted\"\n")
        );
        // A fresh handle (daemon restart) sees the same entry.
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(
            reopened.load("v1|table7|test|stack").as_deref(),
            Some("Table 7\n\"quoted\"\n")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_miss() {
        let dir = tmpdir("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        store.save("k", "payload\n").unwrap();
        let path = store.path_for("k");
        // Flip a payload byte under the seal.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("payload", "tampered");
        std::fs::write(&path, text).unwrap();
        assert_eq!(store.load("k"), None, "tampered entry must miss");
        assert!(!path.exists(), "entry was quarantined away");
        assert!(
            path.with_extension("json.corrupt").exists(),
            "quarantine file exists"
        );
        // Recompute path: save again, load works.
        store.save("k", "payload\n").unwrap();
        assert_eq!(store.load("k").as_deref(), Some("payload\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_is_a_miss_not_a_wrong_answer() {
        let dir = tmpdir("mismatch");
        let store = ResultStore::open(&dir).unwrap();
        store.save("key-a", "A\n").unwrap();
        // Simulate a hash collision: move key-a's file to key-b's slot.
        std::fs::rename(store.path_for("key-a"), store.path_for("key-b")).unwrap();
        assert_eq!(
            store.load("key-b"),
            None,
            "a sealed entry for a different key must never be served"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_orphaned_tmp_files() {
        let dir = tmpdir("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        let orphan = dir.join("0123456789abcdef.json.tmp");
        std::fs::write(&orphan, "torn write").unwrap();
        let _ = ResultStore::open(&dir).unwrap();
        assert!(!orphan.exists(), "orphaned tmp swept on open");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
