//! Transport: Unix-domain sockets (default) and TCP (`--listen
//! tcp:PORT`), behind one pair of enums so the protocol layer is
//! transport-blind. Also the daemon's pidfile, published beside a
//! Unix socket so operators (and the crash-consistency suite) can
//! tell a live daemon's files from a dead one's.
//!
//! Every socket operation here — accept, read, write — consults the
//! [`crate::netfault`] plan first, making this facade the single
//! injection surface for `MEMBW_NET_FAULT` exactly as
//! `runner::faultio` is for `MEMBW_IO_FAULT`. With the plan unset each
//! hook is one relaxed atomic load.

use crate::netfault::{self, WireAction};
use membw_core::runner::faultio;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Where the daemon listens / the client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP host:port.
    Tcp(String),
}

impl Endpoint {
    /// Parse an endpoint spec: `tcp:PORT`, `tcp:HOST:PORT`, or a Unix
    /// socket path (anything else).
    ///
    /// # Errors
    ///
    /// An empty spec, or a `tcp:` spec without a port.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec.is_empty() {
            return Err("empty endpoint spec".to_string());
        }
        match spec.strip_prefix("tcp:") {
            None => Ok(Endpoint::Unix(PathBuf::from(spec))),
            Some("") => Err("tcp endpoint needs a port: tcp:PORT or tcp:HOST:PORT".to_string()),
            Some(rest) => {
                let addr = if rest.contains(':') {
                    rest.to_string()
                } else {
                    rest.parse::<u16>().map_err(|_| {
                        format!("invalid tcp port '{rest}' (expected tcp:PORT or tcp:HOST:PORT)")
                    })?;
                    format!("127.0.0.1:{rest}")
                };
                Ok(Endpoint::Tcp(addr))
            }
        }
    }

    /// Connect as a client.
    ///
    /// # Errors
    ///
    /// The underlying socket error.
    pub fn connect(&self) -> std::io::Result<Stream> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp),
        }
    }

    /// Bind as a server. A stale Unix socket file (left by a killed
    /// daemon — exactly the crash-restart path the store exists for) is
    /// detected by probing it: if nothing answers, the file is removed
    /// and the address rebound; if a live daemon answers, binding fails.
    ///
    /// # Errors
    ///
    /// The underlying bind error, or "address in use" when a live
    /// daemon already answers on a Unix socket.
    pub fn listen(&self) -> std::io::Result<Listener> {
        match self {
            Endpoint::Unix(path) => match UnixListener::bind(path) {
                Ok(l) => Ok(Listener::Unix(l)),
                Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                    if UnixStream::connect(path).is_ok() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::AddrInUse,
                            format!("a daemon is already serving on {}", path.display()),
                        ));
                    }
                    faultio::remove_file(path)?;
                    UnixListener::bind(path).map(Listener::Unix)
                }
                Err(e) => Err(e),
            },
            Endpoint::Tcp(addr) => TcpListener::bind(addr.as_str()).map(Listener::Tcp),
        }
    }

    /// Human-readable address for log lines.
    pub fn display(&self) -> String {
        match self {
            Endpoint::Unix(path) => path.display().to_string(),
            Endpoint::Tcp(addr) => format!("tcp:{addr}"),
        }
    }

    /// The socket file to unlink on clean shutdown (Unix only).
    pub fn socket_path(&self) -> Option<&Path> {
        match self {
            Endpoint::Unix(path) => Some(path),
            Endpoint::Tcp(_) => None,
        }
    }
}

/// The pidfile published beside a Unix socket: `<socket>.pid`. TCP
/// endpoints have no natural directory, so they publish none.
pub fn pidfile_path(endpoint: &Endpoint) -> Option<PathBuf> {
    endpoint.socket_path().map(|p| {
        let mut os = p.as_os_str().to_os_string();
        os.push(".pid");
        PathBuf::from(os)
    })
}

/// Durably publish this process's PID beside the endpoint's socket
/// (tmp → write → fsync → rename, through the fault-injecting I/O
/// layer so `crash@K` exploration covers daemon startup too). The
/// rename makes publication atomic: a reader — in particular the
/// `--supervise` parent taking over after a crash, or an operator's
/// `kill $(cat sock.pid)` — sees either the previous complete pidfile
/// or this one, never a torn PID. Returns the written path, or `None`
/// for TCP endpoints.
///
/// # Errors
///
/// The failed I/O step. Callers treat this as a warning — a daemon
/// without a pidfile still serves.
pub fn write_pidfile(endpoint: &Endpoint) -> std::io::Result<Option<PathBuf>> {
    let Some(path) = pidfile_path(endpoint) else {
        return Ok(None);
    };
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    let tmp = PathBuf::from(os);
    let mut f = faultio::DurableFile::create(&tmp)?;
    f.write_all(format!("{}\n", std::process::id()).as_bytes())?;
    f.sync_all()?;
    drop(f);
    faultio::rename(&tmp, &path)?;
    Ok(Some(path))
}

/// Remove the endpoint's pidfile on clean shutdown (best-effort).
pub fn remove_pidfile(endpoint: &Endpoint) {
    if let Some(path) = pidfile_path(endpoint) {
        let _ = faultio::remove_file(&path);
    }
}

/// One accepted or dialed connection.
pub enum Stream {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    /// Bound every blocking read (slow-loris defense, client response
    /// waits).
    ///
    /// # Errors
    ///
    /// The underlying socket error.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(d),
            Stream::Tcp(s) => s.set_read_timeout(d),
        }
    }

    /// Shut both directions down (best-effort): how an injected
    /// `disconnect@K`/`tornframe@K` makes the peer see a vanished
    /// counterpart rather than a half-open socket.
    fn sever(&self) {
        match self {
            Stream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }

    fn raw_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }

    fn raw_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match netfault::on_read() {
            WireAction::Proceed { .. } => self.raw_read(buf),
            WireAction::Sever(e) => {
                self.sever();
                Err(e)
            }
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match netfault::on_write(buf.len()) {
            WireAction::Proceed { limit } => {
                let take = buf.len().min(limit.max(1));
                let n = self.raw_write(&buf[..take])?;
                netfault::wrote(n);
                Ok(n)
            }
            WireAction::Sever(e) => {
                self.sever();
                Err(e)
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// The daemon's listening socket.
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain listener.
    Unix(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Non-blocking accept so the serve loop can poll the drain token.
    ///
    /// # Errors
    ///
    /// The underlying socket error.
    pub fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }

    /// Accept one connection (the accepted stream is switched back to
    /// blocking; per-read timeouts bound it instead).
    ///
    /// The `MEMBW_NET_FAULT` hook fires *after* a connection actually
    /// arrived, never on an idle `WouldBlock` poll — so `acceptfail:N`
    /// and net-point ordinals count real connections and stay
    /// deterministic under the serve loop's eager polling. An injected
    /// failure drops the just-accepted stream (the peer sees EOF:
    /// exactly a daemon that died between `accept` and service).
    ///
    /// # Errors
    ///
    /// `WouldBlock` when non-blocking and idle; otherwise the socket
    /// error (or the injected accept failure).
    pub fn accept(&self) -> std::io::Result<Stream> {
        let stream = match self {
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
        };
        netfault::on_accept()?;
        match &stream {
            Stream::Unix(s) => s.set_nonblocking(false)?,
            Stream::Tcp(s) => s.set_nonblocking(false)?,
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_specs_parse() {
        assert_eq!(
            Endpoint::parse("/tmp/membw.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/membw.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp:7070").unwrap(),
            Endpoint::Tcp("127.0.0.1:7070".to_string())
        );
        assert_eq!(
            Endpoint::parse("tcp:0.0.0.0:7070").unwrap(),
            Endpoint::Tcp("0.0.0.0:7070".to_string())
        );
        assert!(Endpoint::parse("").is_err());
        assert!(Endpoint::parse("tcp:").is_err());
        assert!(Endpoint::parse("tcp:notaport").is_err());
    }

    #[test]
    fn stale_unix_socket_is_rebound() {
        let path =
            std::env::temp_dir().join(format!("membw_net_stale_{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ep = Endpoint::Unix(path.clone());
        // First bind, then drop the listener WITHOUT unlinking — the
        // socket file stays behind, as after SIGKILL.
        drop(ep.listen().unwrap());
        assert!(path.exists(), "stale socket file left behind");
        // Rebinding must probe, unlink, and succeed.
        let l2 = ep.listen().expect("stale socket rebinds");
        drop(l2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn live_unix_socket_refuses_second_daemon() {
        let path = std::env::temp_dir().join(format!("membw_net_live_{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ep = Endpoint::Unix(path.clone());
        let _live = ep.listen().unwrap();
        let err = ep.listen().expect_err("second daemon must be refused");
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        let _ = std::fs::remove_file(&path);
    }
    #[test]
    fn pidfile_round_trips_beside_a_unix_socket() {
        let sock = std::env::temp_dir().join(format!("membw_net_pid_{}.sock", std::process::id()));
        let ep = Endpoint::Unix(sock.clone());
        let path = write_pidfile(&ep).unwrap().expect("unix endpoints publish");
        assert_eq!(path, sock.with_extension("sock.pid"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.trim().parse::<u32>().unwrap(), std::process::id());
        remove_pidfile(&ep);
        assert!(!path.exists(), "pidfile removed on shutdown");
        // TCP endpoints publish nothing.
        assert_eq!(
            write_pidfile(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap(),
            None
        );
    }
}
