//! `membw serve --supervise`: a parent that keeps the daemon alive.
//!
//! The wire-consistency proof aborts the daemon mid-request
//! (`MEMBW_NET_FAULT=crash@K`, or an operator's stray SIGKILL); the
//! result store already guarantees no answer is lost or half-served
//! across that. What was missing is *who restarts the process*. This
//! supervisor is deliberately small and deterministic:
//!
//! ```text
//!            spawn child ──────────────► RUNNING
//!                ▲                          │ child exits
//!   backoff 50ms×2^n (cap 2s)              ▼
//!   RESTARTING ◄──── crash (134/killed/1) EXITED ── 0 ──► done (exit 0)
//!        │                                  │
//!        │ M fast crashes in a row          │ 2 (config error)
//!        ▼                                  ▼
//!   GIVE UP loudly (exit 1)           propagate exit 2 (no retry loop)
//! ```
//!
//! * **Bounded deterministic backoff** — restart `n` sleeps
//!   `initial × 2^(n-1)` capped at `backoff_cap`; no jitter, so the
//!   kill-loop smoke and the wire proof see the same schedule every
//!   run.
//! * **Crash-loop detection** — a child that dies before
//!   [`SupervisorConfig::healthy_after`] counts as a *fast* crash;
//!   [`SupervisorConfig::max_fast_crashes`] consecutive fast crashes
//!   make the supervisor give up loudly with a nonzero exit instead of
//!   flapping forever. A child that stayed up past the threshold
//!   resets the streak.
//! * **Atomic takeover** — the restarted child rebinds the stale Unix
//!   socket through [`crate::net::Endpoint::listen`]'s probe-and-unlink
//!   path and republishes the pidfile via tmp→fsync→rename
//!   ([`crate::net::write_pidfile`]), so `cat sock.pid` never observes
//!   a torn PID while generations change.
//! * **Restart counter on the wire** — each child is told its restart
//!   generation through [`RESTARTS_ENV`]; the server surfaces it as the
//!   `supervisor-restarts` field of the `stats` pseudo-target, so a
//!   client can ask the service itself how many times it has died.
//!
//! Exit-code contract (the driver documents this table): child exit 0 →
//! supervisor exit 0; child exit 2 (usage/config — restarting cannot
//! help) → supervisor exit 2 immediately; crash-loop give-up → exit 1;
//! SIGTERM/SIGINT to the supervisor → forward TERM to the child, reap
//! it, exit 130.

use membw_core::runner::CancelToken;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Environment variable telling a supervised child its restart
/// generation (0 for the first spawn). The server exports it as the
/// `supervisor-restarts` stats counter.
pub const RESTARTS_ENV: &str = "MEMBW_SUPERVISOR_RESTARTS";

/// Supervision policy. The defaults are what `repro serve --supervise`
/// runs with; tests tighten them to keep wall-clock down.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Give up after this many *consecutive* fast crashes.
    pub max_fast_crashes: u32,
    /// A child alive at least this long counts as having been healthy,
    /// resetting the fast-crash streak.
    pub healthy_after: Duration,
    /// First restart delay; doubles per consecutive fast crash.
    pub backoff_initial: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_fast_crashes: 5,
            healthy_after: Duration::from_secs(5),
            backoff_initial: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

impl SupervisorConfig {
    /// The deterministic delay before restart number `n` (1-based):
    /// `initial × 2^(n-1)`, saturating at [`Self::backoff_cap`].
    pub fn backoff(&self, n: u32) -> Duration {
        let doublings = n.saturating_sub(1).min(16);
        let delay = self
            .backoff_initial
            .saturating_mul(1u32 << doublings);
        delay.min(self.backoff_cap)
    }
}

/// How one child generation ended, as the supervisor classifies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChildEnd {
    /// Clean exit 0: the daemon finished (drained) on purpose.
    Clean,
    /// Exit 2: configuration/usage error — a restart would just repeat
    /// it, so the supervisor propagates instead of looping.
    Config,
    /// Anything else (SIGABRT 134, SIGKILL, panic exit 101, …).
    Crash(i32),
}

fn classify(code: Option<i32>) -> ChildEnd {
    match code {
        Some(0) => ChildEnd::Clean,
        Some(2) => ChildEnd::Config,
        // None = killed by signal with no exit code (SIGKILL/SIGABRT
        // reported signal-side); fold into the crash lane with the
        // shell convention placeholder.
        Some(c) => ChildEnd::Crash(c),
        None => ChildEnd::Crash(-1),
    }
}

/// Politely stop `child`: forward SIGTERM (via `kill`, the workspace
/// has no libc binding), then reap it. Falls back to a hard kill if
/// TERM could not be delivered.
fn terminate(child: &mut Child) -> Option<i32> {
    let delivered = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if !delivered {
        let _ = child.kill();
    }
    match child.wait() {
        Ok(status) => status.code(),
        Err(_) => None,
    }
}

/// Sleep `total` in cancel-aware slices; true if cancelled mid-sleep.
fn backoff_sleep(total: Duration, cancel: &CancelToken) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if cancel.is_cancelled() {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
    }
}

/// Run the supervision loop until the child exits cleanly, a config
/// error makes restarting pointless, the crash-loop detector trips, or
/// `cancel` fires (SIGTERM/SIGINT to the supervisor — forwarded to the
/// child so it drains through its own signal path).
///
/// `make_cmd` builds the child command for restart generation `n`
/// (0 = first spawn); the supervisor adds [`RESTARTS_ENV`] itself. A
/// closure (rather than a fixed `Command`) keeps the hook the wire
/// proof needs: its generation-0 child carries `MEMBW_NET_FAULT=crash@K`
/// while generation 1+ runs clean, which is exactly "the fault was
/// transient, the supervisor healed the service".
///
/// Returns the supervisor's exit code per the module-level table.
pub fn supervise(
    mut make_cmd: impl FnMut(u64) -> Command,
    cfg: &SupervisorConfig,
    cancel: &CancelToken,
) -> i32 {
    let mut restarts: u64 = 0;
    let mut fast_crashes: u32 = 0;
    loop {
        let mut cmd = make_cmd(restarts);
        cmd.env(RESTARTS_ENV, restarts.to_string());
        let mut child = match cmd.spawn() {
            Ok(child) => child,
            Err(e) => {
                eprintln!("supervisor: failed to spawn daemon: {e}");
                return 1;
            }
        };
        let born = Instant::now();
        eprintln!(
            "supervisor: daemon pid {} up (generation {restarts})",
            child.id()
        );

        // Wait for exit or cancellation, polling both every ~20ms.
        let code = loop {
            if cancel.is_cancelled() {
                eprintln!("supervisor: draining — forwarding SIGTERM to daemon");
                let code = terminate(&mut child);
                // The child drained through its own signal path; the
                // supervisor reports the interrupted-exit convention.
                let _ = code;
                return 130;
            }
            match child.try_wait() {
                Ok(Some(status)) => break status.code(),
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => {
                    eprintln!("supervisor: lost track of daemon: {e}");
                    break None;
                }
            }
        };

        match classify(code) {
            ChildEnd::Clean => {
                eprintln!("supervisor: daemon exited cleanly; done");
                return 0;
            }
            ChildEnd::Config => {
                eprintln!(
                    "supervisor: daemon exited with a configuration error (exit 2); \
                     restarting would repeat it — giving up"
                );
                return 2;
            }
            ChildEnd::Crash(c) => {
                let lifetime = born.elapsed();
                let fast = lifetime < cfg.healthy_after;
                if fast {
                    fast_crashes += 1;
                } else {
                    fast_crashes = 1; // this crash starts a new streak
                }
                let code_str = if c == -1 {
                    "killed by signal".to_string()
                } else {
                    format!("exit {c}")
                };
                if fast_crashes >= cfg.max_fast_crashes {
                    eprintln!(
                        "supervisor: daemon crashed ({code_str}) after {:.3}s — \
                         {fast_crashes} fast crashes in a row (limit {}); giving up",
                        lifetime.as_secs_f64(),
                        cfg.max_fast_crashes
                    );
                    return 1;
                }
                restarts += 1;
                let delay = cfg.backoff(fast_crashes);
                eprintln!(
                    "supervisor: daemon crashed ({code_str}) after {:.3}s — \
                     restart {restarts} in {}ms",
                    lifetime.as_secs_f64(),
                    delay.as_millis()
                );
                if backoff_sleep(delay, cancel) {
                    eprintln!("supervisor: drain requested during backoff; done");
                    return 130;
                }
            }
        }
    }
}

/// Read this process's restart generation from [`RESTARTS_ENV`]
/// (0 when unsupervised or first generation). Strict like every other
/// env knob: garbage is an error naming the variable.
///
/// # Errors
///
/// A non-numeric value.
pub fn restarts_from_env() -> Result<u64, String> {
    match std::env::var(RESTARTS_ENV) {
        Err(_) => Ok(0),
        Ok(v) => v.parse::<u64>().map_err(|_| {
            format!("invalid {RESTARTS_ENV}={v:?}: expected a non-negative integer")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            max_fast_crashes: 3,
            healthy_after: Duration::from_secs(3600), // everything is "fast"
            backoff_initial: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        }
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let cfg = SupervisorConfig::default();
        assert_eq!(cfg.backoff(1), Duration::from_millis(50));
        assert_eq!(cfg.backoff(2), Duration::from_millis(100));
        assert_eq!(cfg.backoff(3), Duration::from_millis(200));
        assert_eq!(cfg.backoff(6), Duration::from_millis(1600));
        assert_eq!(cfg.backoff(7), Duration::from_secs(2), "cap");
        assert_eq!(cfg.backoff(60), Duration::from_secs(2), "no overflow");
    }

    #[test]
    fn clean_exit_ends_supervision_with_zero() {
        let cancel = CancelToken::new();
        let code = supervise(
            |_| {
                let mut c = Command::new("true");
                c.stdout(std::process::Stdio::null());
                c
            },
            &cfg(),
            &cancel,
        );
        assert_eq!(code, 0);
    }

    #[test]
    fn config_error_propagates_without_looping() {
        let spawned = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen = spawned.clone();
        let cancel = CancelToken::new();
        let code = supervise(
            move |_| {
                seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let mut c = Command::new("sh");
                c.args(["-c", "exit 2"]);
                c
            },
            &cfg(),
            &cancel,
        );
        assert_eq!(code, 2);
        assert_eq!(
            spawned.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "exit 2 must not be retried"
        );
    }

    #[test]
    fn crash_loop_gives_up_after_m_fast_crashes() {
        let spawned = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen = spawned.clone();
        let cancel = CancelToken::new();
        let code = supervise(
            move |restarts| {
                seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                // The make_cmd hook sees monotonically increasing
                // generations.
                assert_eq!(
                    restarts,
                    seen.load(std::sync::atomic::Ordering::SeqCst) - 1
                );
                let mut c = Command::new("sh");
                c.args(["-c", "exit 7"]);
                c
            },
            &cfg(),
            &cancel,
        );
        assert_eq!(code, 1, "crash loop must give up loudly");
        assert_eq!(
            spawned.load(std::sync::atomic::Ordering::SeqCst),
            3,
            "exactly max_fast_crashes generations"
        );
    }

    #[test]
    fn transient_crash_is_healed() {
        // Generation 0 crashes; generation 1 exits cleanly. The
        // supervisor must end 0 with exactly two spawns — the shape the
        // wire proof relies on for crash@K-then-recover.
        let spawned = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen = spawned.clone();
        let cancel = CancelToken::new();
        let code = supervise(
            move |restarts| {
                seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let mut c = Command::new("sh");
                if restarts == 0 {
                    c.args(["-c", "exit 134"]);
                } else {
                    c.args(["-c", "exit 0"]);
                }
                c
            },
            &cfg(),
            &cancel,
        );
        assert_eq!(code, 0);
        assert_eq!(spawned.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn restarts_env_parses_strictly() {
        std::env::remove_var(RESTARTS_ENV);
        assert_eq!(restarts_from_env().unwrap(), 0);
        std::env::set_var(RESTARTS_ENV, "3");
        assert_eq!(restarts_from_env().unwrap(), 3);
        std::env::set_var(RESTARTS_ENV, "many");
        let e = restarts_from_env().unwrap_err();
        assert!(e.contains(RESTARTS_ENV), "{e}");
        std::env::remove_var(RESTARTS_ENV);
    }
}
