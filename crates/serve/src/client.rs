//! The `repro query` client: one request, one parsed response.

use crate::net::Endpoint;
use membw_core::service::{ServiceRequest, ServiceResponse};
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// Send `req` to the daemon at `endpoint` and wait for its response
/// line. `timeout` bounds each read on the reply (None = wait
/// indefinitely, e.g. for a long cold render).
///
/// # Errors
///
/// Connection/transport failures, a daemon that closed without
/// replying, or an unparseable response line.
pub fn query(
    endpoint: &Endpoint,
    req: &ServiceRequest,
    timeout: Option<Duration>,
) -> std::io::Result<ServiceResponse> {
    let mut stream = endpoint.connect()?;
    stream.set_read_timeout(timeout)?;
    let mut line = serde_json::to_string(req)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let n = reader.read_line(&mut reply)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without replying",
        ));
    }
    serde_json::from_str::<ServiceResponse>(reply.trim_end())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Wait until a daemon accepts connections at `endpoint` (startup
/// race in tests and CI), up to `timeout`.
pub fn wait_ready(endpoint: &Endpoint, timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if endpoint.connect().is_ok() {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}
