//! The `repro query` client: one request, one parsed response — plus
//! the bounded-exponential-backoff retry loop the retryable error
//! taxonomy exists for ([`query_with_backoff`]).

use crate::net::Endpoint;
use membw_core::service::{error_kind, ServiceRequest, ServiceResponse};
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// Send `req` to the daemon at `endpoint` and wait for its response
/// line. `timeout` bounds each read on the reply (None = wait
/// indefinitely, e.g. for a long cold render).
///
/// # Errors
///
/// Connection/transport failures, a daemon that closed without
/// replying, or an unparseable response line.
pub fn query(
    endpoint: &Endpoint,
    req: &ServiceRequest,
    timeout: Option<Duration>,
) -> std::io::Result<ServiceResponse> {
    let mut stream = endpoint.connect()?;
    stream.set_read_timeout(timeout)?;
    let mut line = serde_json::to_string(req)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    // Raw bytes first: frame *completeness* must be judged before
    // frame *validity*. `read_line` would conflate the two — a reply
    // torn mid-UTF-8-codepoint surfaces as InvalidData even though the
    // frame never finished — so UTF-8 is only required of a frame that
    // actually carried its terminator.
    let mut raw = Vec::new();
    let n = reader.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without replying",
        ));
    }
    if raw.last() != Some(&b'\n') {
        // Partial line then EOF: the daemon died (or was injected dead)
        // mid-reply. The frame is torn, not malformed — the answer
        // exists server-side, so this is a retryable transport outcome,
        // never InvalidData.
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!(
                "torn reply: connection ended after {} byte(s) of an unterminated frame",
                raw.len()
            ),
        ));
    }
    let reply = std::str::from_utf8(&raw).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("complete reply frame is not UTF-8: {e}"),
        )
    })?;
    serde_json::from_str::<ServiceResponse>(reply.trim_end())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Bounded exponential backoff for retryable daemon responses.
///
/// The schedule is `initial * factor^attempt`, capped at `cap`, for at
/// most `attempts` tries. A [`ServiceResponse::Error`] carrying a
/// `retry_after_ms` hint raises (never lowers) the computed delay, so
/// a daemon that knows its stall horizon wins over the client's guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First retry delay.
    pub initial: Duration,
    /// Multiplier between consecutive delays.
    pub factor: u32,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Total tries (the first attempt counts as one).
    pub attempts: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            initial: Duration::from_millis(50),
            factor: 2,
            cap: Duration::from_secs(2),
            attempts: 8,
        }
    }
}

impl Backoff {
    /// The delay before retry number `attempt` (0-based: the delay
    /// after the first failed try is `delay(0)`).
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = self.factor.max(1);
        let mut d = self.initial;
        for _ in 0..attempt {
            d = d.saturating_mul(factor);
            if d >= self.cap {
                return self.cap;
            }
        }
        d.min(self.cap)
    }
}

/// Whether `resp` is worth retrying under the error taxonomy:
/// [`ServiceResponse::Busy`] (queue at bound) and
/// [`error_kind::TRANSIENT`] errors are; everything else is final.
pub fn retryable(resp: &ServiceResponse) -> bool {
    match resp {
        ServiceResponse::Busy { .. } => true,
        ServiceResponse::Error { kind, .. } => kind == error_kind::TRANSIENT,
        _ => false,
    }
}

/// Whether a *transport* failure from [`query`] is worth retrying.
///
/// Torn replies and vanished daemons are transient by the wire
/// contract — the answer (or its recomputation) exists server-side,
/// and a supervised daemon comes back — so connection-lifecycle
/// failures retry. [`std::io::ErrorKind::InvalidData`] does not: it
/// means a *complete* reply line arrived and didn't parse, and
/// re-asking will reproduce it byte-for-byte.
pub fn transport_retryable(e: &std::io::Error) -> bool {
    use std::io::ErrorKind;
    matches!(
        e.kind(),
        ErrorKind::UnexpectedEof        // torn reply / closed unanswered
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionRefused // socket file exists, daemon restarting
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe     // daemon died while we wrote the request
            | ErrorKind::NotFound       // socket not republished yet mid-restart
            | ErrorKind::AddrNotAvailable
            | ErrorKind::TimedOut       // stalled write/read; the render continues
            | ErrorKind::WouldBlock     // read-timeout surface on some platforms
            | ErrorKind::Interrupted
    )
}

/// [`query`], retried with bounded exponential backoff on retryable
/// outcomes: retryable transport errors ([`transport_retryable`]:
/// torn replies, resets, a daemon mid-restart under `--supervise`),
/// [`ServiceResponse::Busy`], and [`error_kind::TRANSIENT`] errors.
/// Any other outcome — including non-retryable errors and
/// `InvalidData` transport failures — is returned immediately.
///
/// # Errors
///
/// A non-retryable transport failure (as `Err(message)`), or the last
/// failure once `policy.attempts` are exhausted, rendered with the
/// attempt count so operators can tell a dead daemon from a slow one.
pub fn query_with_backoff(
    endpoint: &Endpoint,
    req: &ServiceRequest,
    timeout: Option<Duration>,
    policy: &Backoff,
) -> Result<ServiceResponse, String> {
    let attempts = policy.attempts.max(1);
    let mut last = String::new();
    for attempt in 0..attempts {
        let (outcome, hint_ms) = match query(endpoint, req, timeout) {
            Ok(resp) if !retryable(&resp) => return Ok(resp),
            Ok(ServiceResponse::Busy { queued, bound }) => {
                (format!("busy (queued {queued} of bound {bound})"), None)
            }
            Ok(ServiceResponse::Error {
                message,
                retry_after_ms,
                ..
            }) => (format!("transient: {message}"), retry_after_ms),
            Ok(_) => unreachable!("retryable() covers every retried variant"),
            Err(e) if transport_retryable(&e) => (format!("transport: {e}"), None),
            Err(e) => return Err(format!("non-retryable transport failure: {e}")),
        };
        last = outcome;
        if attempt + 1 < attempts {
            let mut delay = policy.delay(attempt);
            if let Some(ms) = hint_ms {
                delay = delay.max(Duration::from_millis(ms));
            }
            std::thread::sleep(delay);
        }
    }
    Err(format!("gave up after {attempts} attempts; last: {last}"))
}

/// Wait until a daemon accepts connections at `endpoint` (startup
/// race in tests and CI), up to `timeout`.
pub fn wait_ready(endpoint: &Endpoint, timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if endpoint.connect().is_ok() {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let b = Backoff::default();
        assert_eq!(b.delay(0), Duration::from_millis(50));
        assert_eq!(b.delay(1), Duration::from_millis(100));
        assert_eq!(b.delay(2), Duration::from_millis(200));
        assert_eq!(b.delay(5), Duration::from_millis(1600));
        assert_eq!(b.delay(6), Duration::from_secs(2), "capped");
        assert_eq!(b.delay(30), Duration::from_secs(2), "no overflow past cap");
    }

    #[test]
    fn retryable_follows_the_taxonomy() {
        assert!(retryable(&ServiceResponse::Busy {
            queued: 3,
            bound: 3
        }));
        assert!(retryable(&ServiceResponse::Error {
            kind: error_kind::TRANSIENT.into(),
            message: "fsync stall".into(),
            cell: None,
            retry_after_ms: Some(250),
        }));
        assert!(!retryable(&ServiceResponse::Error {
            kind: error_kind::PANIC.into(),
            message: "boom".into(),
            cell: None,
            retry_after_ms: None,
        }));
        assert!(!retryable(&ServiceResponse::Draining));
    }

    #[test]
    fn transport_taxonomy_separates_torn_from_garbage() {
        use std::io::{Error, ErrorKind};
        // Torn replies, resets, and restart races converge on retry.
        for kind in [
            ErrorKind::UnexpectedEof,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionRefused,
            ErrorKind::BrokenPipe,
            ErrorKind::NotFound,
            ErrorKind::TimedOut,
            ErrorKind::WouldBlock,
        ] {
            assert!(transport_retryable(&Error::from(kind)), "{kind:?}");
        }
        // A complete-but-unparseable reply is deterministic: final.
        assert!(!transport_retryable(&Error::new(
            ErrorKind::InvalidData,
            "unknown response status"
        )));
        assert!(!transport_retryable(&Error::from(
            ErrorKind::PermissionDenied
        )));
    }

    #[test]
    fn torn_reply_classifies_as_retryable_eof() {
        // A fake daemon that writes half a reply line and hangs up.
        let path = std::env::temp_dir().join(format!("membw_torn_{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Drain the request line first so the client's write wins.
            let mut buf = [0u8; 1024];
            use std::io::Read;
            let _ = s.read(&mut buf);
            let _ = s.write_all(br#"{"status":"ok","target":"#);
            // Drop: EOF mid-frame.
        });
        let ep = Endpoint::Unix(path.clone());
        let err = query(&ep, &ServiceRequest::new("table7"), None).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
        assert!(err.to_string().contains("torn reply"), "{err}");
        assert!(transport_retryable(&err), "torn replies must retry");
        server.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhaustion_reports_attempts_and_last_failure() {
        // No daemon listens here: every try is a transport failure.
        let ep = Endpoint::Unix(
            std::env::temp_dir().join(format!("membw_backoff_nobody_{}.sock", std::process::id())),
        );
        let policy = Backoff {
            initial: Duration::from_millis(1),
            factor: 2,
            cap: Duration::from_millis(4),
            attempts: 3,
        };
        let req = ServiceRequest::new("table7");
        let err = query_with_backoff(&ep, &req, None, &policy).unwrap_err();
        assert!(err.contains("3 attempts"), "{err}");
        assert!(err.contains("transport:"), "{err}");
    }
}
