//! The `repro query` client: one request, one parsed response — plus
//! the bounded-exponential-backoff retry loop the retryable error
//! taxonomy exists for ([`query_with_backoff`]).

use crate::net::Endpoint;
use membw_core::service::{error_kind, ServiceRequest, ServiceResponse};
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// Send `req` to the daemon at `endpoint` and wait for its response
/// line. `timeout` bounds each read on the reply (None = wait
/// indefinitely, e.g. for a long cold render).
///
/// # Errors
///
/// Connection/transport failures, a daemon that closed without
/// replying, or an unparseable response line.
pub fn query(
    endpoint: &Endpoint,
    req: &ServiceRequest,
    timeout: Option<Duration>,
) -> std::io::Result<ServiceResponse> {
    let mut stream = endpoint.connect()?;
    stream.set_read_timeout(timeout)?;
    let mut line = serde_json::to_string(req)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let n = reader.read_line(&mut reply)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without replying",
        ));
    }
    serde_json::from_str::<ServiceResponse>(reply.trim_end())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Bounded exponential backoff for retryable daemon responses.
///
/// The schedule is `initial * factor^attempt`, capped at `cap`, for at
/// most `attempts` tries. A [`ServiceResponse::Error`] carrying a
/// `retry_after_ms` hint raises (never lowers) the computed delay, so
/// a daemon that knows its stall horizon wins over the client's guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First retry delay.
    pub initial: Duration,
    /// Multiplier between consecutive delays.
    pub factor: u32,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Total tries (the first attempt counts as one).
    pub attempts: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            initial: Duration::from_millis(50),
            factor: 2,
            cap: Duration::from_secs(2),
            attempts: 8,
        }
    }
}

impl Backoff {
    /// The delay before retry number `attempt` (0-based: the delay
    /// after the first failed try is `delay(0)`).
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = self.factor.max(1);
        let mut d = self.initial;
        for _ in 0..attempt {
            d = d.saturating_mul(factor);
            if d >= self.cap {
                return self.cap;
            }
        }
        d.min(self.cap)
    }
}

/// Whether `resp` is worth retrying under the error taxonomy:
/// [`ServiceResponse::Busy`] (queue at bound) and
/// [`error_kind::TRANSIENT`] errors are; everything else is final.
pub fn retryable(resp: &ServiceResponse) -> bool {
    match resp {
        ServiceResponse::Busy { .. } => true,
        ServiceResponse::Error { kind, .. } => kind == error_kind::TRANSIENT,
        _ => false,
    }
}

/// [`query`], retried with bounded exponential backoff on retryable
/// outcomes: transport errors (daemon restarting, socket not yet
/// bound), [`ServiceResponse::Busy`], and [`error_kind::TRANSIENT`]
/// errors. Any other response — including non-retryable errors — is
/// returned immediately.
///
/// # Errors
///
/// The last failure once `policy.attempts` are exhausted, rendered
/// with the attempt count so operators can tell a dead daemon from a
/// slow one.
pub fn query_with_backoff(
    endpoint: &Endpoint,
    req: &ServiceRequest,
    timeout: Option<Duration>,
    policy: &Backoff,
) -> Result<ServiceResponse, String> {
    let attempts = policy.attempts.max(1);
    let mut last = String::new();
    for attempt in 0..attempts {
        let (outcome, hint_ms) = match query(endpoint, req, timeout) {
            Ok(resp) if !retryable(&resp) => return Ok(resp),
            Ok(ServiceResponse::Busy { queued, bound }) => {
                (format!("busy (queued {queued} of bound {bound})"), None)
            }
            Ok(ServiceResponse::Error {
                message,
                retry_after_ms,
                ..
            }) => (format!("transient: {message}"), retry_after_ms),
            Ok(_) => unreachable!("retryable() covers every retried variant"),
            Err(e) => (format!("transport: {e}"), None),
        };
        last = outcome;
        if attempt + 1 < attempts {
            let mut delay = policy.delay(attempt);
            if let Some(ms) = hint_ms {
                delay = delay.max(Duration::from_millis(ms));
            }
            std::thread::sleep(delay);
        }
    }
    Err(format!("gave up after {attempts} attempts; last: {last}"))
}

/// Wait until a daemon accepts connections at `endpoint` (startup
/// race in tests and CI), up to `timeout`.
pub fn wait_ready(endpoint: &Endpoint, timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if endpoint.connect().is_ok() {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let b = Backoff::default();
        assert_eq!(b.delay(0), Duration::from_millis(50));
        assert_eq!(b.delay(1), Duration::from_millis(100));
        assert_eq!(b.delay(2), Duration::from_millis(200));
        assert_eq!(b.delay(5), Duration::from_millis(1600));
        assert_eq!(b.delay(6), Duration::from_secs(2), "capped");
        assert_eq!(b.delay(30), Duration::from_secs(2), "no overflow past cap");
    }

    #[test]
    fn retryable_follows_the_taxonomy() {
        assert!(retryable(&ServiceResponse::Busy {
            queued: 3,
            bound: 3
        }));
        assert!(retryable(&ServiceResponse::Error {
            kind: error_kind::TRANSIENT.into(),
            message: "fsync stall".into(),
            cell: None,
            retry_after_ms: Some(250),
        }));
        assert!(!retryable(&ServiceResponse::Error {
            kind: error_kind::PANIC.into(),
            message: "boom".into(),
            cell: None,
            retry_after_ms: None,
        }));
        assert!(!retryable(&ServiceResponse::Draining));
    }

    #[test]
    fn exhaustion_reports_attempts_and_last_failure() {
        // No daemon listens here: every try is a transport failure.
        let ep = Endpoint::Unix(
            std::env::temp_dir().join(format!("membw_backoff_nobody_{}.sock", std::process::id())),
        );
        let policy = Backoff {
            initial: Duration::from_millis(1),
            factor: 2,
            cap: Duration::from_millis(4),
            attempts: 3,
        };
        let req = ServiceRequest::new("table7");
        let err = query_with_backoff(&ep, &req, None, &policy).unwrap_err();
        assert!(err.contains("3 attempts"), "{err}");
        assert!(err.contains("transport:"), "{err}");
    }
}
