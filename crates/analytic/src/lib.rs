//! Analytic models and datasets from the paper's trend arguments.
//!
//! * [`pins`] — the Figure 1 dataset (pin counts, performance, package
//!   bandwidth for 18 microprocessors, 1978–1997) with log-linear trend
//!   fits;
//! * [`growth`] — the Table 2 I/O-complexity models (computation vs.
//!   minimal traffic as on-chip memory scales);
//! * [`qualitative`] — Table 1's direction-of-change predictions;
//! * [`extrapolate`] — the §4.3 ten-year package projection;
//! * [`epin`] — effective pin bandwidth (Eq. 5) and its traffic-
//!   inefficiency upper bound (Eq. 7);
//! * [`ecm`] — the ECM-style execution/traffic predictor with explicit
//!   error bounds (the PR 8 analytic fast path).
//!
//! # Example
//!
//! ```
//! use membw_analytic::pins::{dataset, fit_growth, Series};
//!
//! // The paper: "pin counts are increasing by about 16% per year".
//! let rate = fit_growth(&dataset(), Series::Pins);
//! assert!(rate > 0.08 && rate < 0.25, "annual growth {rate}");
//! ```

pub mod compression;
pub mod ecm;
pub mod epin;
pub mod extrapolate;
pub mod growth;
pub mod onchip;
pub mod pins;
pub mod qualitative;

pub use compression::CompressionScheme;
pub use ecm::{
    AnalyticMode, BlockReuse, EcmConfig, EcmPrediction, KernelSignature, TrafficGeometry,
    TrafficPrediction, MODEL_VERSION,
};
pub use epin::{effective_pin_bandwidth, upper_bound_epin};
pub use extrapolate::{project, Projection};
pub use growth::Algorithm;
pub use onchip::{ConventionalSystem, UnifiedModule};
pub use pins::{dataset, fit_growth, Processor, Series};
pub use qualitative::{table1, Direction, Table1Row};
