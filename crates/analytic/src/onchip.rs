//! §6 / Figure 5: unified processor/DRAM modules.
//!
//! The paper's long-term prediction: "off-chip communication is so
//! expensive that all of the system memory resides on the processor chip
//! (or module)… Off-chip accesses thus simply become communication with
//! another processor, and accesses to remote data have more in common
//! with a page fault than with a cache miss." This module provides the
//! simple average-access-cost algebra behind that argument, so the
//! `future_system` example and benches can locate the crossover where a
//! unified module beats a conventional processor + off-chip-DRAM system.

use serde::{Deserialize, Serialize};

/// A conventional system: on-chip cache in front of off-chip DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConventionalSystem {
    /// Cache hit time in ns.
    pub hit_ns: f64,
    /// Off-chip access latency in ns (pin crossing + DRAM).
    pub offchip_ns: f64,
    /// Pin bandwidth in bytes/ns (GB/s).
    pub pin_bw: f64,
    /// Cache line size in bytes (transfer unit).
    pub line_bytes: f64,
}

impl ConventionalSystem {
    /// Average access time for `miss_ratio`, including the transfer time
    /// a line occupies the pins (the bandwidth term the paper insists
    /// on).
    ///
    /// # Panics
    ///
    /// Panics if `miss_ratio` is outside `[0, 1]`.
    pub fn avg_access_ns(&self, miss_ratio: f64) -> f64 {
        assert!((0.0..=1.0).contains(&miss_ratio), "miss ratio in [0,1]");
        let transfer = self.line_bytes / self.pin_bw;
        self.hit_ns + miss_ratio * (self.offchip_ns + transfer)
    }

    /// The utilization-adjusted access time: queueing inflates the
    /// off-chip term as offered traffic approaches pin bandwidth
    /// (M/M/1-style `1/(1-ρ)` growth).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not within `[0, 1)`.
    pub fn avg_access_ns_at_load(&self, miss_ratio: f64, utilization: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&utilization),
            "utilization in [0,1) — at 1.0 the queue diverges"
        );
        let transfer = self.line_bytes / self.pin_bw / (1.0 - utilization);
        assert!((0.0..=1.0).contains(&miss_ratio), "miss ratio in [0,1]");
        self.hit_ns + miss_ratio * (self.offchip_ns + transfer)
    }
}

/// A unified processor/memory module (Figure 5): SRAM cache banks among
/// on-chip DRAM banks, with remote modules reachable over a board-level
/// interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnifiedModule {
    /// Cache (SRAM) hit time in ns.
    pub hit_ns: f64,
    /// On-chip DRAM access in ns (no pin crossing).
    pub onchip_dram_ns: f64,
    /// Remote-module access in ns ("more in common with a page fault").
    pub remote_ns: f64,
    /// Fraction of memory accesses whose data lives on this module.
    pub local_fraction: f64,
}

impl UnifiedModule {
    /// Average access time for `miss_ratio` misses out of the SRAM.
    ///
    /// # Panics
    ///
    /// Panics if `miss_ratio` or `local_fraction` is outside `[0, 1]`.
    pub fn avg_access_ns(&self, miss_ratio: f64) -> f64 {
        assert!((0.0..=1.0).contains(&miss_ratio), "miss ratio in [0,1]");
        assert!(
            (0.0..=1.0).contains(&self.local_fraction),
            "local fraction in [0,1]"
        );
        let miss_cost = self.local_fraction * self.onchip_dram_ns
            + (1.0 - self.local_fraction) * self.remote_ns;
        self.hit_ns + miss_ratio * miss_cost
    }

    /// Smallest local fraction at which this module beats `conventional`
    /// at the given load, or `None` if even 100 % locality loses.
    pub fn break_even_locality(
        &self,
        conventional: &ConventionalSystem,
        miss_ratio: f64,
        utilization: f64,
    ) -> Option<f64> {
        let target = conventional.avg_access_ns_at_load(miss_ratio, utilization);
        // avg = hit + m*(f*on + (1-f)*remote) <= target, solve for f.
        let m = miss_ratio;
        if m == 0.0 {
            return if self.hit_ns <= target {
                Some(0.0)
            } else {
                None
            };
        }
        let need = (target - self.hit_ns) / m; // allowed miss cost
        let span = self.remote_ns - self.onchip_dram_ns;
        if span <= 0.0 {
            return if self.onchip_dram_ns <= need {
                Some(0.0)
            } else {
                None
            };
        }
        let f = (self.remote_ns - need) / span;
        if f <= 0.0 {
            Some(0.0)
        } else if f <= 1.0 {
            Some(f)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conventional() -> ConventionalSystem {
        ConventionalSystem {
            hit_ns: 2.0,
            offchip_ns: 90.0,
            pin_bw: 0.8, // 800 MB/s
            line_bytes: 32.0,
        }
    }

    fn unified(local: f64) -> UnifiedModule {
        UnifiedModule {
            hit_ns: 2.0,
            onchip_dram_ns: 25.0,
            remote_ns: 400.0,
            local_fraction: local,
        }
    }

    #[test]
    fn fully_local_module_beats_conventional() {
        let c = conventional().avg_access_ns(0.05);
        let u = unified(1.0).avg_access_ns(0.05);
        assert!(u < c, "{u} vs {c}");
    }

    #[test]
    fn mostly_remote_module_loses() {
        let c = conventional().avg_access_ns(0.05);
        let u = unified(0.0).avg_access_ns(0.05);
        assert!(u > c, "{u} vs {c}");
    }

    #[test]
    fn queueing_inflates_the_conventional_system() {
        let c = conventional();
        let idle = c.avg_access_ns_at_load(0.05, 0.0);
        let busy = c.avg_access_ns_at_load(0.05, 0.9);
        assert!(busy > idle * 1.5, "{busy} vs {idle}");
        assert!((c.avg_access_ns(0.05) - idle).abs() < 1e-12);
    }

    #[test]
    fn break_even_locality_moves_with_load() {
        let u = unified(0.5);
        let relaxed = u
            .break_even_locality(&conventional(), 0.05, 0.0)
            .expect("beatable when idle");
        let stressed = u
            .break_even_locality(&conventional(), 0.05, 0.95)
            .expect("beatable under load");
        // The more the pins queue, the less locality the unified module
        // needs — the paper's argument for the design.
        assert!(stressed <= relaxed, "{stressed} vs {relaxed}");
        // Verify the break-even point actually breaks even.
        let mut at = u;
        at.local_fraction = relaxed;
        let c = conventional().avg_access_ns_at_load(0.05, 0.0);
        assert!((at.avg_access_ns(0.05) - c).abs() < 1e-6);
    }

    #[test]
    fn zero_miss_ratio_compares_hit_times() {
        let u = unified(0.0);
        assert_eq!(u.break_even_locality(&conventional(), 0.0, 0.0), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "miss ratio")]
    fn rejects_bad_miss_ratio() {
        let _ = conventional().avg_access_ns(1.5);
    }
}
