//! The Figure 1 dataset: pins, performance, and package bandwidth for
//! the 18 microprocessors the paper plots (1978–1997), plus log-linear
//! trend fitting.
//!
//! The paper compiled these numbers by hand from processor manuals and
//! *Microprocessor Report* back issues; we reconstruct them from public
//! sources. Absolute values are approximate — what the figure (and our
//! reproduction) establishes is the *growth rates*: pins at ≈16 %/year,
//! performance-per-pin and performance-per-package-bandwidth rising
//! steeply. Performance mixes VAX MIPS (early chips) with issue-width ×
//! clock (later chips), exactly as the paper's footnote concedes.

use serde::{Deserialize, Serialize};

/// One processor data point of Figure 1.
///
/// (`Serialize` only: the rows are a static compiled-in dataset with
/// `&'static str` names, never reloaded from an archive.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Processor {
    /// Marketing name as printed in the figure.
    pub name: &'static str,
    /// Year of introduction.
    pub year: u32,
    /// Package pin count.
    pub pins: u32,
    /// Performance in (VAX or issue×clock) MIPS.
    pub mips: f64,
    /// Peak package (bus) bandwidth in MB/s.
    pub package_mb_s: f64,
}

impl Processor {
    /// Figure 1b's y-value: MIPS per pin.
    pub fn mips_per_pin(&self) -> f64 {
        self.mips / f64::from(self.pins)
    }

    /// Figure 1c's y-value: MIPS per MB/s of package bandwidth.
    pub fn mips_per_bandwidth(&self) -> f64 {
        self.mips / self.package_mb_s
    }
}

/// The 18 processors named in Figure 1.
pub fn dataset() -> Vec<Processor> {
    vec![
        Processor {
            name: "8086",
            year: 1978,
            pins: 40,
            mips: 0.33,
            package_mb_s: 2.0,
        },
        Processor {
            name: "68000",
            year: 1979,
            pins: 64,
            mips: 0.7,
            package_mb_s: 4.0,
        },
        Processor {
            name: "80286",
            year: 1982,
            pins: 68,
            mips: 1.2,
            package_mb_s: 8.0,
        },
        Processor {
            name: "68020",
            year: 1984,
            pins: 114,
            mips: 2.0,
            package_mb_s: 16.0,
        },
        Processor {
            name: "80386",
            year: 1985,
            pins: 132,
            mips: 4.0,
            package_mb_s: 32.0,
        },
        Processor {
            name: "68030",
            year: 1987,
            pins: 128,
            mips: 6.0,
            package_mb_s: 50.0,
        },
        Processor {
            name: "R3000",
            year: 1988,
            pins: 144,
            mips: 20.0,
            package_mb_s: 100.0,
        },
        Processor {
            name: "80486",
            year: 1989,
            pins: 168,
            mips: 15.0,
            package_mb_s: 100.0,
        },
        Processor {
            name: "68040",
            year: 1990,
            pins: 179,
            mips: 20.0,
            package_mb_s: 100.0,
        },
        Processor {
            name: "Pentium",
            year: 1993,
            pins: 273,
            mips: 132.0,
            package_mb_s: 528.0,
        },
        Processor {
            name: "Harp1",
            year: 1993,
            pins: 500,
            mips: 120.0,
            package_mb_s: 400.0,
        },
        Processor {
            name: "SSparc2",
            year: 1994,
            pins: 293,
            mips: 270.0,
            package_mb_s: 400.0,
        },
        Processor {
            name: "68060",
            year: 1994,
            pins: 223,
            mips: 100.0,
            package_mb_s: 200.0,
        },
        Processor {
            name: "P6",
            year: 1995,
            pins: 387,
            mips: 600.0,
            package_mb_s: 528.0,
        },
        Processor {
            name: "UltraSparc",
            year: 1995,
            pins: 521,
            mips: 668.0,
            package_mb_s: 1328.0,
        },
        Processor {
            name: "21164",
            year: 1995,
            pins: 499,
            mips: 1200.0,
            package_mb_s: 1200.0,
        },
        Processor {
            name: "R10000",
            year: 1996,
            pins: 599,
            mips: 800.0,
            package_mb_s: 800.0,
        },
        Processor {
            name: "PA8000",
            year: 1996,
            pins: 1085,
            mips: 720.0,
            package_mb_s: 768.0,
        },
    ]
}

/// Which quantity of Figure 1 to fit or plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Series {
    /// Figure 1a: pin count.
    Pins,
    /// Figure 1b: MIPS per pin.
    MipsPerPin,
    /// Figure 1c: MIPS per MB/s of package bandwidth.
    MipsPerBandwidth,
}

impl Series {
    /// Extract this series' y-value from a processor.
    pub fn value(&self, p: &Processor) -> f64 {
        match self {
            Series::Pins => f64::from(p.pins),
            Series::MipsPerPin => p.mips_per_pin(),
            Series::MipsPerBandwidth => p.mips_per_bandwidth(),
        }
    }
}

/// Fit `ln(y) = a + b·year` by least squares and return the implied
/// annual growth rate `e^b − 1` (0.16 = 16 %/year).
///
/// # Panics
///
/// Panics if `data` has fewer than two points or any non-positive value.
pub fn fit_growth(data: &[Processor], series: Series) -> f64 {
    assert!(data.len() >= 2, "need at least two points to fit");
    let pts: Vec<(f64, f64)> = data
        .iter()
        .map(|p| {
            let y = series.value(p);
            assert!(y > 0.0, "log fit needs positive values");
            (f64::from(p.year), y.ln())
        })
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    b.exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_the_18_figure_processors() {
        let d = dataset();
        assert_eq!(d.len(), 18);
        let names: std::collections::HashSet<_> = d.iter().map(|p| p.name).collect();
        for expected in ["8086", "PA8000", "21164", "R10000", "UltraSparc", "Harp1"] {
            assert!(names.contains(expected), "missing {expected}");
        }
    }

    #[test]
    fn years_span_the_figure_range() {
        let d = dataset();
        assert_eq!(d.iter().map(|p| p.year).min(), Some(1978));
        assert_eq!(d.iter().map(|p| p.year).max(), Some(1996));
    }

    #[test]
    fn pin_growth_is_about_16_percent() {
        let rate = fit_growth(&dataset(), Series::Pins);
        assert!(
            (0.10..0.22).contains(&rate),
            "paper says ~16 %/yr, fit gave {rate}"
        );
    }

    #[test]
    fn performance_per_pin_explodes() {
        let rate = fit_growth(&dataset(), Series::MipsPerPin);
        assert!(rate > 0.25, "Figure 1b shows steep growth, got {rate}");
    }

    #[test]
    fn performance_outpaces_package_bandwidth() {
        let rate = fit_growth(&dataset(), Series::MipsPerBandwidth);
        assert!(rate > 0.05, "Figure 1c rises, got {rate}");
        // The PA-8000 aberration: cacheless design with a huge package.
        let d = dataset();
        let pa = d.iter().find(|p| p.name == "PA8000").unwrap();
        assert!(pa.pins > 1000);
    }

    #[test]
    fn fit_recovers_exact_exponentials() {
        let synthetic: Vec<Processor> = (0..10)
            .map(|i| Processor {
                name: "x",
                year: 1980 + i,
                pins: (100.0 * 1.16f64.powi(i as i32)).round() as u32,
                mips: 1.0,
                package_mb_s: 1.0,
            })
            .collect();
        let rate = fit_growth(&synthetic, Series::Pins);
        assert!((rate - 0.16).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn fit_rejects_single_point() {
        let d = vec![dataset()[0]];
        let _ = fit_growth(&d, Series::Pins);
    }
}
