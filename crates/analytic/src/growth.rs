//! Table 2: application growth rates under the Hong–Kung I/O model.
//!
//! For each algorithm the paper tabulates total memory, computation `C`,
//! minimal off-chip traffic `D` as a function of problem size `N` and
//! on-chip memory `S`, and how the computation-to-traffic ratio `C/D`
//! improves when `S` grows by a factor `k`. The punchline (§2.4): as
//! long as processing speed grows at least as fast as `C/D`, growing
//! on-chip memory keeps the processor/bandwidth balance — e.g. quadruple
//! the memory and TMM needs only 2× the processing speed.

use serde::{Deserialize, Serialize};

/// The four Table 2 algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Tiled matrix multiply (`N × N`).
    Tmm,
    /// Iterated stencil over an `N × N` matrix (time-tiled).
    Stencil,
    /// `N`-point FFT.
    Fft,
    /// Merge sort of `N` keys.
    Sort,
}

impl Algorithm {
    /// All four, in the table's order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Tmm,
        Algorithm::Stencil,
        Algorithm::Fft,
        Algorithm::Sort,
    ];

    /// Name as printed in Table 2.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Tmm => "TMM",
            Algorithm::Stencil => "Stencil",
            Algorithm::Fft => "FFT",
            Algorithm::Sort => "Sort",
        }
    }

    /// Total memory requirement (Table 2 "Memory" column), in elements.
    pub fn memory(&self, n: f64) -> f64 {
        match self {
            Algorithm::Tmm | Algorithm::Stencil => n * n,
            Algorithm::Fft | Algorithm::Sort => n,
        }
    }

    /// Computation `C` (Table 2), in operations.
    pub fn computation(&self, n: f64) -> f64 {
        match self {
            Algorithm::Tmm => n * n * n,
            Algorithm::Stencil => n * n,
            Algorithm::Fft | Algorithm::Sort => n * n.log2(),
        }
    }

    /// Minimal off-chip traffic `D` for on-chip memory `S` (Table 2), in
    /// elements. (TMM: `2N³/√S`, per the §2.4 tiling derivation; the
    /// constant is kept so the empirical benches can compare shapes.)
    ///
    /// # Panics
    ///
    /// Panics if `s < 2` (the log-law algorithms need `log₂ S > 0`).
    pub fn traffic(&self, n: f64, s: f64) -> f64 {
        assert!(s >= 2.0, "on-chip memory must be at least 2 elements");
        match self {
            Algorithm::Tmm => 2.0 * n * n * n / s.sqrt() + n * n,
            Algorithm::Stencil => n * n / s.sqrt(),
            Algorithm::Fft | Algorithm::Sort => n * n.log2() / s.log2(),
        }
    }

    /// `C/D` for the given `n`, `s`.
    pub fn cd_ratio(&self, n: f64, s: f64) -> f64 {
        self.computation(n) / self.traffic(n, s)
    }

    /// Multiplicative gain in `C/D` when `S` grows by factor `k`
    /// (Table 2's right-most column: `√k` for TMM/Stencil, `log₂`-law for
    /// FFT/Sort).
    pub fn cd_gain(&self, n: f64, s: f64, k: f64) -> f64 {
        self.cd_ratio(n, s * k) / self.cd_ratio(n, s)
    }

    /// Table 2's symbolic label for the `C/D` change.
    pub fn gain_label(&self) -> &'static str {
        match self {
            Algorithm::Tmm | Algorithm::Stencil => "√k",
            Algorithm::Fft | Algorithm::Sort => "log₂k",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_gain_is_exactly_sqrt_k() {
        let g = Algorithm::Stencil.cd_gain(4096.0, 16384.0, 4.0);
        assert!((g - 2.0).abs() < 1e-9, "sqrt(4) = 2, got {g}");
        let g9 = Algorithm::Stencil.cd_gain(4096.0, 16384.0, 9.0);
        assert!((g9 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tmm_gain_approaches_sqrt_k_for_large_n() {
        // The +N^2 compulsory term dilutes the gain slightly; with N large
        // relative to sqrt(S) the sqrt(k) law dominates.
        let g = Algorithm::Tmm.cd_gain(1_000_000.0, 16384.0, 4.0);
        assert!((g - 2.0).abs() < 0.05, "got {g}");
    }

    #[test]
    fn quadrupling_memory_needs_doubling_speed() {
        // The section-2.4 argument: 4x gates -> 4x memory -> traffic
        // halves -> 2x processing speed keeps f_P / f_B balanced.
        let before = Algorithm::Tmm.cd_ratio(1_000_000.0, 65536.0);
        let after = Algorithm::Tmm.cd_ratio(1_000_000.0, 4.0 * 65536.0);
        assert!((after / before - 2.0).abs() < 0.05);
    }

    #[test]
    fn fft_and_sort_gain_is_logarithmic() {
        for alg in [Algorithm::Fft, Algorithm::Sort] {
            // C/D = log2(S): growing S by k multiplies C/D by
            // log2(kS)/log2(S).
            let g = alg.cd_gain(1_048_576.0, 1024.0, 4.0);
            let expected = (4.0f64 * 1024.0).log2() / 1024.0f64.log2();
            assert!(
                (g - expected).abs() < 1e-9,
                "{}: {g} vs {expected}",
                alg.name()
            );
            assert!(g < 1.5, "log-law algorithms gain little");
        }
    }

    #[test]
    fn memory_and_computation_columns() {
        assert_eq!(Algorithm::Tmm.memory(100.0), 10_000.0);
        assert_eq!(Algorithm::Tmm.computation(100.0), 1_000_000.0);
        assert_eq!(Algorithm::Fft.memory(1024.0), 1024.0);
        assert!((Algorithm::Sort.computation(1024.0) - 1024.0 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn gain_labels_match_table_2() {
        assert_eq!(Algorithm::Tmm.gain_label(), "√k");
        assert_eq!(Algorithm::Stencil.gain_label(), "√k");
        assert_eq!(Algorithm::Fft.gain_label(), "log₂k");
        assert_eq!(Algorithm::Sort.gain_label(), "log₂k");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn traffic_rejects_degenerate_memory() {
        let _ = Algorithm::Fft.traffic(1024.0, 1.0);
    }
}
