//! ECM-style analytic execution predictor (the PR 8 fast path).
//!
//! The paper's Eq. 1–6 already describe execution time as the sum of a
//! processor term, a latency term, and a bandwidth term; Treibig &
//! Hager's Execution-Cache-Memory model shows the same decomposition
//! can be *predicted* from per-level transfer volumes alone. This
//! module does exactly that for the repro's synthetic kernels: given a
//! compact per-(benchmark, scale) [`KernelSignature`] — a log₂-bucketed
//! reuse-distance histogram per block size plus an instruction-mix
//! summary — and a machine configuration, it predicts
//!
//! * total execution cycles split into `T_P`/`T_L`/`T_B`
//!   ([`predict_time`]), and
//! * cache traffic in bytes for an arbitrary (block, capacity,
//!   geometry) point ([`predict_traffic`]),
//!
//! each in **microseconds of arithmetic** (a handful of histogram
//! suffix sums — no trace is touched) and each with an **explicit
//! error bound**.
//!
//! # Where the bounds come from
//!
//! The histogram is exact for fully-associative LRU at any
//! power-of-two capacity (Mattson stack distances, log₂ buckets align
//! with power-of-two capacities), so the modelling error is
//! structural: set-associative conflict misses, replacement policy,
//! and overlap between computation and memory time. The two
//! predictions bound those errors differently:
//!
//! * **Traffic** bounds are an *envelope*, sound by construction: any
//!   demand cache moves at least its compulsory traffic and at most
//!   one block per access plus one writeback per store. Conflict
//!   misses — invisible to a stack-distance model and worth an order
//!   of magnitude in small low-associativity caches — sit inside the
//!   envelope at every scale; no fitted constant can drift out from
//!   under them.
//! * **Time** bounds are *calibrated*: per-machine-class constants in
//!   [`calib`], fitted once against the cycle-level simulator at test
//!   scale and frozen under [`MODEL_VERSION`], with margin over the
//!   worst relative error observed during calibration.
//!
//! Both are *asserted*, not assumed: the `analytic-bound` auditor
//! invariant re-validates |prediction − simulation| ≤ bound on every
//! simulated cell, so a drifting model fails loudly under
//! `--audit strict` instead of silently mispredicting.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Version tag carried by every prediction (provenance in serve
/// responses, audited against at calibration time). Bump whenever the
/// model equations or the [`calib`] constants change.
pub const MODEL_VERSION: &str = "ecm-1";

/// Serve-triage tightness threshold: the fast lane answers a request
/// analytically only when the worst relative bound across the
/// rendered cells is at most this. Coarser predictions (e.g. the
/// out-of-order time model) fall through to real simulation.
pub const TRIAGE_MAX_REL: f64 = 0.60;

// ---------------------------------------------------------------------------
// Analytic mode (off | assist | only), ambient like the audit level.
// ---------------------------------------------------------------------------

/// How the analytic predictor participates in a run
/// (`repro --analytic off|assist|only`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyticMode {
    /// Predictor disabled; output byte-identical to the seed.
    #[default]
    Off,
    /// Simulate as usual, and additionally check every simulated cell
    /// against the predictor through the `analytic-bound` invariant.
    Assist,
    /// Answer from the predictor alone (supported targets only); no
    /// simulation, no trace arena.
    Only,
}

impl AnalyticMode {
    /// The CLI spelling (`off` / `assist` / `only`).
    pub fn as_str(self) -> &'static str {
        match self {
            AnalyticMode::Off => "off",
            AnalyticMode::Assist => "assist",
            AnalyticMode::Only => "only",
        }
    }
}

impl std::str::FromStr for AnalyticMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(AnalyticMode::Off),
            "assist" => Ok(AnalyticMode::Assist),
            "only" => Ok(AnalyticMode::Only),
            other => Err(format!(
                "unknown analytic mode '{other}' (expected off|assist|only)"
            )),
        }
    }
}

/// Process-wide mode set by `repro --analytic` (0 = Off, 1 = Assist,
/// 2 = Only).
static GLOBAL_MODE: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Thread-local override installed by [`with_mode`] (tests compare
    /// modes side by side without touching process state).
    static TL_MODE: Cell<Option<AnalyticMode>> = const { Cell::new(None) };
}

fn encode(mode: AnalyticMode) -> u8 {
    match mode {
        AnalyticMode::Off => 0,
        AnalyticMode::Assist => 1,
        AnalyticMode::Only => 2,
    }
}

fn decode(v: u8) -> AnalyticMode {
    match v {
        1 => AnalyticMode::Assist,
        2 => AnalyticMode::Only,
        _ => AnalyticMode::Off,
    }
}

/// Set the process-wide analytic mode (`repro --analytic MODE`).
pub fn set_mode(mode: AnalyticMode) {
    GLOBAL_MODE.store(encode(mode), Ordering::SeqCst);
}

/// The effective analytic mode on this thread.
pub fn configured_mode() -> AnalyticMode {
    TL_MODE
        .with(Cell::get)
        .unwrap_or_else(|| decode(GLOBAL_MODE.load(Ordering::SeqCst)))
}

/// Run `f` with the analytic mode forced to `mode` on this thread,
/// restoring the previous override afterwards.
pub fn with_mode<R>(mode: AnalyticMode, f: impl FnOnce() -> R) -> R {
    let prev = TL_MODE.with(|c| c.replace(Some(mode)));
    struct Restore(Option<AnalyticMode>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_MODE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// Signature data model.
// ---------------------------------------------------------------------------

/// Log₂-bucketed reuse-distance histogram at one block granularity.
///
/// Bucket 0 counts accesses with stack distance exactly 0 (immediate
/// block reuse); bucket `k ≥ 1` counts distances in `[2^(k−1), 2^k)`.
/// Because every capacity the repro sweeps is a power of two (in
/// blocks), this bucketing loses nothing: fully-associative LRU misses
/// at capacity `2^m` blocks are exactly `cold + Σ buckets[m+1..]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockReuse {
    /// Block granularity in bytes (power of two).
    pub block_size: u64,
    /// Total accesses in the trace at this granularity.
    pub accesses: u64,
    /// Accesses to never-before-seen blocks (= distinct blocks).
    pub cold: u64,
    /// Distinct blocks that are ever written (bounds writebacks).
    pub dirty_blocks: u64,
    /// `buckets[0]` = distance-0 count; `buckets[k]` = count of
    /// distances in `[2^(k−1), 2^k)`.
    pub buckets: Vec<u64>,
}

impl BlockReuse {
    /// Misses of a fully-associative LRU cache of `capacity_blocks`.
    ///
    /// Exact when `capacity_blocks` is a power of two; for other
    /// capacities the straddling bucket is counted as missing, making
    /// this an upper bound. Zero capacity misses everything.
    pub fn lru_misses(&self, capacity_blocks: u64) -> u64 {
        if capacity_blocks == 0 {
            return self.accesses;
        }
        // Miss ⇔ distance ≥ capacity. Bucket k ≥ 1 spans [2^(k−1), 2^k),
        // so for capacity 2^m every bucket with k ≥ m+1 misses in full.
        let m = capacity_blocks.ilog2() as usize;
        let first_missing = m + 1;
        let reuse_misses: u64 = self.buckets.iter().skip(first_missing).sum();
        self.cold + reuse_misses
    }

    /// Expected writebacks from a write-back cache with `misses`
    /// fetches: each eviction is dirty with roughly the probability
    /// that a block is ever written, and a dirty eviction needs at
    /// least one write since its fetch, so `stores` caps the count.
    pub fn writeback_estimate(&self, misses: u64, stores: u64) -> f64 {
        if self.cold == 0 {
            return 0.0;
        }
        let dirty_frac = self.dirty_blocks as f64 / self.cold as f64;
        (misses as f64 * dirty_frac).min(stores as f64)
    }
}

/// Per-class uop counts, indexed by [`MIX_CLASSES`] order.
pub const MIX_CLASSES: [&str; 8] = [
    "int-alu", "int-mul", "fp-add", "fp-mul", "fp-div", "load", "store", "branch",
];

/// Compact per-(benchmark, scale) summary a prediction needs: a few KB
/// replacing a multi-MB trace arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSignature {
    /// Total micro-ops in the trace.
    pub uops: u64,
    /// Data-memory references (loads + stores).
    pub mem_refs: u64,
    /// Store references.
    pub stores: u64,
    /// Total bytes requested by the program (Σ access sizes; the
    /// denominator of the paper's traffic ratio R, Eq. 5).
    pub request_bytes: u64,
    /// Σ per-class functional-unit latencies (serial execution cycles).
    pub op_cycles: u64,
    /// Register-dependency critical path in cycles (1-cycle memory).
    pub crit_path: u64,
    /// Conditional branches, and how many were taken.
    pub branches: u64,
    /// Taken-branch count.
    pub taken_branches: u64,
    /// Per-PC branch direction flips (a branch whose outcome differs
    /// from its own previous outcome). This is exactly the mispredict
    /// count of an ideal per-PC last-direction predictor, and a close
    /// proxy for the simulator's small two-level predictor.
    pub dir_flips: u64,
    /// Uop counts per class, in [`MIX_CLASSES`] order.
    pub class_counts: Vec<u64>,
    /// Reuse histograms, one per signature block size, ascending.
    pub reuse: Vec<BlockReuse>,
}

impl KernelSignature {
    /// The reuse histogram measured at `block_size`, if recorded.
    pub fn reuse_at(&self, block_size: u64) -> Option<&BlockReuse> {
        self.reuse.iter().find(|r| r.block_size == block_size)
    }
}

// ---------------------------------------------------------------------------
// Machine configuration seen by the model.
// ---------------------------------------------------------------------------

/// The slice of a machine specification the ECM model consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcmConfig {
    /// `true` for the in-order core (experiments A–C).
    pub in_order: bool,
    /// `true` for a blocking L1 (misses serialize).
    pub blocking: bool,
    /// Tagged sequential prefetch in the L1 (experiments E–F).
    pub tagged_prefetch: bool,
    /// Issue width in uops/cycle.
    pub issue_width: u64,
    /// Branch mispredict penalty in cycles (0 = perfect front end).
    pub mispredict_penalty: u64,
    /// L1 capacity and block size in bytes.
    pub l1_bytes: u64,
    /// L1 block size in bytes.
    pub l1_block: u64,
    /// L2 capacity and block size in bytes.
    pub l2_bytes: u64,
    /// L2 block size in bytes.
    pub l2_block: u64,
    /// L2 access latency in CPU cycles.
    pub l2_latency: u64,
    /// Main-memory access latency in CPU cycles.
    pub mem_latency: u64,
    /// L1/L2 bus bandwidth in bytes per CPU cycle.
    pub bus1_bytes_per_cycle: f64,
    /// L2/memory bus bandwidth in bytes per CPU cycle.
    pub bus2_bytes_per_cycle: f64,
}

/// The four machine classes the time model calibrates separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimeClass {
    InOrderBlocking,
    InOrderLockupFree,
    OutOfOrder,
    OutOfOrderPrefetch,
}

impl TimeClass {
    fn of(cfg: &EcmConfig) -> Self {
        match (cfg.in_order, cfg.tagged_prefetch) {
            (true, _) if cfg.blocking => TimeClass::InOrderBlocking,
            (true, _) => TimeClass::InOrderLockupFree,
            (false, false) => TimeClass::OutOfOrder,
            (false, true) => TimeClass::OutOfOrderPrefetch,
        }
    }
}

/// Cache geometry of a traffic prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficGeometry {
    /// Set-associative LRU with the given way count (1 = direct-mapped).
    Assoc {
        /// Ways per set.
        ways: u32,
    },
    /// Minimal-traffic cache, write-allocate policy.
    MtcAllocate,
    /// Minimal-traffic cache, write-validate policy.
    MtcValidate,
}

// ---------------------------------------------------------------------------
// Calibration constants, frozen under MODEL_VERSION.
// ---------------------------------------------------------------------------

/// Constants fitted against the cycle-level simulator at test scale
/// (`MEMBW_ANALYTIC_CALIBRATE=1` prints the per-cell data they are
/// fitted from). Every relative bound is at least 2× the worst
/// calibration-time error; changing any value is a model change and
/// must bump [`MODEL_VERSION`].
mod calib {
    /// Overlap/structural multiplier κ on the raw `comp + lat + bus`
    /// sum, per machine class (in-order blocking, in-order
    /// lockup-free, out-of-order, out-of-order + prefetch). Fitted as
    /// the midpoint of the per-class `sim / raw` ratio range over
    /// every Figure 3 cell at test scale.
    pub const TIME_KAPPA: [f64; 4] = [1.73, 1.23, 1.03, 0.95];
    /// Relative error bound on predicted total cycles, per class:
    /// ≥ 1.25× the worst calibration-time relative error.
    pub const TIME_REL: [f64; 4] = [0.95, 0.90, 0.95, 0.98];
    /// Absolute slack on every time bound, in cycles (hides the
    /// startup transient of very short kernels).
    pub const TIME_ABS_SLACK: f64 = 256.0;

    /// Conflict-miss inflation for set-associative geometry:
    /// `misses ≈ FA misses × (1 + DM_CONFLICT / ways)`.
    pub const DM_CONFLICT: f64 = 0.30;
    /// Absolute traffic slack in bytes (one straddling block per
    /// power-of-two boundary, rounding).
    pub const TRAFFIC_ABS_SLACK: f64 = 4096.0;

    /// MTC traffic scale vs the FA-LRU fetch+writeback estimate, per
    /// policy ([allocate, validate]): the MTC is a *minimal* policy,
    /// so it moves fewer bytes than a same-capacity LRU.
    pub const MTC_SCALE: [f64; 2] = [0.74, 0.57];

    /// Above this many blocks of capacity, set-conflict effects were
    /// small enough at calibration time to also offer a *tight*
    /// relative bound (taken as `min` with the sound envelope).
    pub const TRAFFIC_CALIB_MIN_BLOCKS: u64 = 4096;
    /// Calibrated relative traffic bound for [direct-mapped, ≥ 2-way]
    /// caches at ≥ [`TRAFFIC_CALIB_MIN_BLOCKS`]: ≥ 1.5× the worst
    /// calibration-time relative error in that capacity region.
    pub const TRAFFIC_CALIB_REL: [f64; 2] = [0.50, 0.35];
    /// Capacity gate (in blocks) for the calibrated MTC bound.
    pub const MTC_CALIB_MIN_BLOCKS: u64 = 64;
    /// Calibrated relative MTC traffic bound per policy
    /// ([allocate, validate]), with ≥ 1.4× margin.
    pub const MTC_CALIB_REL: [f64; 2] = [0.55, 0.50];
}

// ---------------------------------------------------------------------------
// Predictions.
// ---------------------------------------------------------------------------

/// A predicted execution-time decomposition with its error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcmPrediction {
    /// Predicted processor cycles (Eq. 2's `T_P` share).
    pub t_p: f64,
    /// Predicted latency-stall cycles (`T_L` share).
    pub t_l: f64,
    /// Predicted bandwidth-stall cycles (`T_B` share).
    pub t_b: f64,
    /// Predicted total cycles (`t_p + t_l + t_b`).
    pub cycles: f64,
    /// Absolute error bound: |prediction − simulation| ≤ `bound`.
    pub bound: f64,
    /// Model version that produced this prediction.
    pub model: &'static str,
}

impl EcmPrediction {
    /// The bound relative to the prediction (∞ for a zero prediction).
    pub fn rel_bound(&self) -> f64 {
        if self.cycles > 0.0 {
            self.bound / self.cycles
        } else {
            f64::INFINITY
        }
    }
}

/// A predicted traffic volume with its error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficPrediction {
    /// Predicted bytes moved below the cache.
    pub bytes: f64,
    /// Absolute error bound in bytes.
    pub bound: f64,
    /// Model version that produced this prediction.
    pub model: &'static str,
}

impl TrafficPrediction {
    /// The bound relative to the prediction (∞ for a zero prediction).
    pub fn rel_bound(&self) -> f64 {
        if self.bytes > 0.0 {
            self.bound / self.bytes
        } else {
            f64::INFINITY
        }
    }

    /// The prediction as a traffic ratio R = bytes / request_bytes
    /// (Eq. 5), with the bound scaled alike.
    pub fn ratio(&self, request_bytes: u64) -> Option<(f64, f64)> {
        if request_bytes == 0 {
            return None;
        }
        let rb = request_bytes as f64;
        Some((self.bytes / rb, self.bound / rb))
    }
}

/// Predict the execution-time decomposition of `sig` on `cfg`.
///
/// Returns `None` when the signature lacks a reuse histogram for the
/// configured L1 or L2 block size (the caller falls back to
/// simulation; no guess is ever emitted without a bound).
pub fn predict_time(sig: &KernelSignature, cfg: &EcmConfig) -> Option<EcmPrediction> {
    let br1 = sig.reuse_at(cfg.l1_block)?;
    let br2 = sig.reuse_at(cfg.l2_block)?;
    let l1_blocks = cfg.l1_bytes / cfg.l1_block.max(1);
    let l2_blocks = cfg.l2_bytes / cfg.l2_block.max(1);

    // T_P: issue-width-limited throughput vs the dependency chain,
    // plus the front-end cost of hard-to-predict branches (per-PC
    // direction flips ≈ mispredicts of the simulator's predictor).
    let comp = (sig.uops as f64 / cfg.issue_width.max(1) as f64).max(sig.crit_path as f64)
        + sig.dir_flips as f64 * cfg.mispredict_penalty as f64;

    // T_L: each level's misses pay that level's latency (FA-LRU miss
    // counts are exact from the histogram; conflict effects land in κ).
    let m1 = br1.lru_misses(l1_blocks) as f64;
    let m2 = br2.lru_misses(l2_blocks) as f64;
    let lat = m1 * cfg.l2_latency as f64 + m2 * cfg.mem_latency as f64;

    // T_B: bus occupancy of fetches + writebacks at each level.
    let wb1 = br1.writeback_estimate(m1 as u64, sig.stores);
    let wb2 = br2.writeback_estimate(m2 as u64, sig.stores);
    let bytes1 = (m1 + wb1) * cfg.l1_block as f64;
    let bytes2 = (m2 + wb2) * cfg.l2_block as f64;
    let bus =
        bytes1 / cfg.bus1_bytes_per_cycle.max(1e-9) + bytes2 / cfg.bus2_bytes_per_cycle.max(1e-9);

    let class = TimeClass::of(cfg) as usize;
    let kappa = calib::TIME_KAPPA[class];
    let cycles = kappa * (comp + lat + bus);
    let bound = cycles * calib::TIME_REL[class] + calib::TIME_ABS_SLACK;
    Some(EcmPrediction {
        t_p: kappa * comp,
        t_l: kappa * lat,
        t_b: kappa * bus,
        cycles,
        bound,
        model: MODEL_VERSION,
    })
}

/// Predict bytes moved below a cache of `capacity_bytes` built from
/// `block_size` blocks with geometry `geom`.
///
/// Returns `None` when the signature has no histogram at `block_size`
/// or the geometry is degenerate (zero-block capacity).
pub fn predict_traffic(
    sig: &KernelSignature,
    block_size: u64,
    capacity_bytes: u64,
    geom: TrafficGeometry,
) -> Option<TrafficPrediction> {
    let br = sig.reuse_at(block_size)?;
    if block_size == 0 || capacity_bytes < block_size {
        return None;
    }
    let cap_blocks = capacity_bytes / block_size;
    let m_fa = br.lru_misses(cap_blocks) as f64;
    let wb = br.writeback_estimate(br.lru_misses(cap_blocks), sig.stores);
    let block = block_size as f64;
    let base = (m_fa + wb) * block;

    // Each geometry's point estimate, sound traffic envelope
    // [`lower`, `upper_units` × block], and (where the capacity gate
    // admits one) calibrated relative bound.
    //
    // The envelope makes the bound sound by construction at every
    // scale: set-conflict misses — invisible to a stack-distance model
    // and worth an order of magnitude in small low-associativity
    // caches — always land inside it. For a W-way LRU cache, a
    // set-local stack distance never exceeds the global one, so misses
    // are at most the FA-LRU misses at a capacity of W blocks; adding
    // one writeback per store (a dirty eviction needs a store during
    // that residency, and never more writebacks than fetches) tops out
    // the byte count. The minimal-traffic policies must still fetch
    // what they cannot synthesize and write back what they dirtied.
    let (bytes, lower, upper_units, cal_rel) = match geom {
        TrafficGeometry::Assoc { ways } => {
            let ways = ways.max(1);
            let infl = 1.0 + calib::DM_CONFLICT / ways as f64;
            let m_up = br.lru_misses(u64::from(ways)) as f64;
            let rel = if cap_blocks >= calib::TRAFFIC_CALIB_MIN_BLOCKS {
                calib::TRAFFIC_CALIB_REL[usize::from(ways > 1)]
            } else {
                f64::INFINITY
            };
            (
                (m_fa * infl + wb) * block,
                // Write-allocate LRU fetches every distinct block.
                br.cold as f64 * block,
                m_up + (sig.stores as f64).min(m_up),
                rel,
            )
        }
        TrafficGeometry::MtcAllocate | TrafficGeometry::MtcValidate => {
            let validate = geom == TrafficGeometry::MtcValidate;
            let i = usize::from(validate);
            let lower = if validate {
                // Write-validate skips fetches of write-only blocks,
                // but read-only blocks must still come from memory.
                br.cold.saturating_sub(br.dirty_blocks) as f64 * block
            } else {
                // Write-allocate still fetches every distinct block.
                br.cold as f64 * block
            };
            let rel = if cap_blocks >= calib::MTC_CALIB_MIN_BLOCKS {
                calib::MTC_CALIB_REL[i]
            } else {
                f64::INFINITY
            };
            (
                base * calib::MTC_SCALE[i],
                lower,
                (br.accesses + sig.stores) as f64,
                rel,
            )
        }
    };
    // `2 × request_bytes` absorbs references straddling block
    // boundaries on both the fetch and writeback sides.
    let upper = upper_units * block + 2.0 * sig.request_bytes as f64;
    let envelope = (bytes - lower).max(upper - bytes).max(0.0);
    let bound = envelope.min(bytes * cal_rel) + calib::TRAFFIC_ABS_SLACK;
    Some(TrafficPrediction {
        bytes,
        bound,
        model: MODEL_VERSION,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_reuse() -> BlockReuse {
        // 100 accesses: 10 cold, distances 0×40, [1,2)×20, [2,4)×15,
        // [4,8)×10, [8,16)×5.
        BlockReuse {
            block_size: 32,
            accesses: 100,
            cold: 10,
            dirty_blocks: 5,
            buckets: vec![40, 20, 15, 10, 5],
        }
    }

    fn toy_signature() -> KernelSignature {
        KernelSignature {
            uops: 1000,
            mem_refs: 100,
            stores: 30,
            request_bytes: 400,
            op_cycles: 1200,
            crit_path: 90,
            branches: 50,
            taken_branches: 25,
            dir_flips: 8,
            class_counts: vec![700, 0, 100, 50, 0, 70, 30, 50],
            reuse: vec![
                BlockReuse {
                    block_size: 64,
                    ..toy_reuse()
                },
                toy_reuse(),
            ],
        }
    }

    fn toy_config() -> EcmConfig {
        EcmConfig {
            in_order: true,
            blocking: true,
            tagged_prefetch: false,
            issue_width: 4,
            mispredict_penalty: 3,
            l1_bytes: 1024,
            l1_block: 32,
            l2_bytes: 4096,
            l2_block: 64,
            l2_latency: 9,
            mem_latency: 27,
            bus1_bytes_per_cycle: 16.0 / 3.0,
            bus2_bytes_per_cycle: 8.0 / 3.0,
        }
    }

    #[test]
    fn bucketed_misses_match_direct_computation_at_powers_of_two() {
        let r = toy_reuse();
        // Direct per-distance recomputation of the bucketed histogram:
        // distances 0(×40), 1(×20 at bucket 1), 2..4(×15), 4..8(×10),
        // 8..16(×5). At capacity 2^m every bucket ≥ m+1 misses.
        assert_eq!(r.lru_misses(1), 10 + 20 + 15 + 10 + 5); // only d=0 hits
        assert_eq!(r.lru_misses(2), 10 + 15 + 10 + 5);
        assert_eq!(r.lru_misses(4), 10 + 10 + 5);
        assert_eq!(r.lru_misses(8), 10 + 5);
        assert_eq!(r.lru_misses(16), 10);
        assert_eq!(r.lru_misses(1024), 10); // only cold left
        assert_eq!(r.lru_misses(0), 100); // zero capacity misses all
    }

    #[test]
    fn misses_are_monotone_in_capacity() {
        let r = toy_reuse();
        let mut prev = r.lru_misses(1);
        for m in 1..12 {
            let cur = r.lru_misses(1 << m);
            assert!(cur <= prev, "misses must not grow with capacity");
            prev = cur;
        }
    }

    #[test]
    fn predictions_are_deterministic() {
        let sig = toy_signature();
        let cfg = toy_config();
        let a = predict_time(&sig, &cfg).unwrap();
        let b = predict_time(&sig, &cfg).unwrap();
        assert_eq!(a, b);
        let t1 = predict_traffic(&sig, 32, 1024, TrafficGeometry::Assoc { ways: 1 }).unwrap();
        let t2 = predict_traffic(&sig, 32, 1024, TrafficGeometry::Assoc { ways: 1 }).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn time_prediction_is_positive_with_positive_bound() {
        let p = predict_time(&toy_signature(), &toy_config()).unwrap();
        assert!(p.cycles > 0.0);
        assert!(p.bound > 0.0);
        assert!(p.t_p > 0.0);
        assert!((p.t_p + p.t_l + p.t_b - p.cycles).abs() < 1e-9);
        assert_eq!(p.model, MODEL_VERSION);
        assert!(p.rel_bound() > 0.0 && p.rel_bound().is_finite());
    }

    #[test]
    fn missing_block_size_yields_no_prediction() {
        let sig = toy_signature();
        let mut cfg = toy_config();
        cfg.l1_block = 16; // not in the signature
        assert_eq!(predict_time(&sig, &cfg), None);
        assert!(predict_traffic(&sig, 16, 1024, TrafficGeometry::Assoc { ways: 1 }).is_none());
        // Degenerate capacity.
        assert!(predict_traffic(&sig, 32, 16, TrafficGeometry::Assoc { ways: 1 }).is_none());
    }

    #[test]
    fn mtc_prediction_stays_below_lru_prediction() {
        let sig = toy_signature();
        let lru = predict_traffic(&sig, 32, 1024, TrafficGeometry::Assoc { ways: 4 }).unwrap();
        let mtc = predict_traffic(&sig, 32, 1024, TrafficGeometry::MtcAllocate).unwrap();
        let wv = predict_traffic(&sig, 32, 1024, TrafficGeometry::MtcValidate).unwrap();
        assert!(mtc.bytes <= lru.bytes, "MTC is a minimal policy");
        assert!(wv.bytes <= mtc.bytes, "write-validate skips write fetches");
    }

    #[test]
    fn traffic_bound_covers_the_sound_envelope() {
        // At 1024 B / 32 B blocks = 32 blocks the capacity gates keep
        // the calibrated relative term out, so the bound must cover
        // the full sound envelope on both edges.
        let sig = toy_signature();
        let br = sig.reuse_at(32).unwrap();
        let req = 2.0 * sig.request_bytes as f64;
        for ways in [1u32, 2, 4] {
            let t = predict_traffic(&sig, 32, 1024, TrafficGeometry::Assoc { ways }).unwrap();
            let lower = br.cold as f64 * 32.0;
            let m_up = br.lru_misses(u64::from(ways)) as f64;
            let upper = (m_up + (sig.stores as f64).min(m_up)) * 32.0 + req;
            // Any simulated value inside the envelope is within bound.
            assert!(t.bytes - t.bound <= lower, "ways {ways}: lower edge");
            assert!(t.bytes + t.bound >= upper, "ways {ways}: upper edge");
        }
        let upper = (br.accesses + sig.stores) as f64 * 32.0 + req;
        for geom in [TrafficGeometry::MtcAllocate, TrafficGeometry::MtcValidate] {
            let t = predict_traffic(&sig, 32, 1024, geom).unwrap();
            let lower = match geom {
                TrafficGeometry::MtcValidate => br.cold - br.dirty_blocks,
                _ => br.cold,
            } as f64
                * 32.0;
            assert!(t.bytes - t.bound <= lower, "{geom:?}: lower edge");
            assert!(t.bytes + t.bound >= upper, "{geom:?}: upper edge");
        }
    }

    #[test]
    fn large_caches_get_the_tight_calibrated_bound() {
        // 4096 blocks × 32 B = 128 KiB crosses TRAFFIC_CALIB_MIN_BLOCKS;
        // there the bound narrows to the calibrated relative term. The
        // toy kernel's prediction is identical at 2048 and 4096 blocks
        // (only cold misses remain), so the gate is the only delta.
        let sig = toy_signature();
        let big = predict_traffic(&sig, 32, 4096 * 32, TrafficGeometry::Assoc { ways: 4 }).unwrap();
        let small =
            predict_traffic(&sig, 32, 2048 * 32, TrafficGeometry::Assoc { ways: 4 }).unwrap();
        assert_eq!(big.bytes, small.bytes);
        assert!(
            big.bound < small.bound,
            "calibrated region should tighten the bound: {} vs {}",
            big.bound,
            small.bound
        );
    }

    #[test]
    fn branch_flips_add_mispredict_cycles_to_the_processor_term() {
        let sig = toy_signature();
        let cfg = toy_config();
        let mut flippy = sig.clone();
        flippy.dir_flips += 100;
        let base = predict_time(&sig, &cfg).unwrap();
        let flip = predict_time(&flippy, &cfg).unwrap();
        assert!(flip.t_p > base.t_p, "flips land in T_P");
        assert!((flip.t_l - base.t_l).abs() < 1e-9);
        assert!((flip.t_b - base.t_b).abs() < 1e-9);
        // The delta is κ × flips × penalty.
        let per_flip = (flip.cycles - base.cycles) / 100.0;
        let expect = calib::TIME_KAPPA[0] * cfg.mispredict_penalty as f64;
        assert!((per_flip - expect).abs() < 1e-9, "{per_flip} vs {expect}");
    }

    #[test]
    fn traffic_ratio_scales_bound() {
        let sig = toy_signature();
        let t = predict_traffic(&sig, 32, 1024, TrafficGeometry::Assoc { ways: 1 }).unwrap();
        let (r, rb) = t.ratio(400).unwrap();
        assert!((r - t.bytes / 400.0).abs() < 1e-12);
        assert!((rb - t.bound / 400.0).abs() < 1e-12);
        assert_eq!(t.ratio(0), None);
    }

    #[test]
    fn mode_parses_and_roundtrips() {
        for m in [AnalyticMode::Off, AnalyticMode::Assist, AnalyticMode::Only] {
            assert_eq!(m.as_str().parse::<AnalyticMode>().unwrap(), m);
        }
        assert!("auto".parse::<AnalyticMode>().is_err());
    }

    #[test]
    fn with_mode_overrides_and_restores() {
        let base = configured_mode();
        let inside = with_mode(AnalyticMode::Only, configured_mode);
        assert_eq!(inside, AnalyticMode::Only);
        assert_eq!(configured_mode(), base);
    }

    #[test]
    fn signature_serde_round_trips() {
        let sig = toy_signature();
        let v = sig.to_value();
        let back = KernelSignature::from_value(&v).expect("round trip");
        assert_eq!(back, sig);
    }
}
