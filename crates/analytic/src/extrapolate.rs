//! §4.3: extrapolating pin and performance growth a decade out.
//!
//! "If we conservatively assume a growth rate of 60% in sustained
//! microprocessor performance … and that pin counts keep growing at 16%
//! per year … in a decade the processor of 2006 will have a package with
//! two or three thousand pins. Even with this large package, the
//! bandwidth requirements *per pin* will be a factor of 25 greater than
//! those of today."

use serde::{Deserialize, Serialize};

/// Result of projecting the trends `years` ahead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    /// Years projected forward.
    pub years: u32,
    /// Projected pin count.
    pub pins: f64,
    /// Performance multiple relative to the base year.
    pub performance_multiple: f64,
    /// Required bandwidth-per-pin multiple relative to the base year
    /// (assuming traffic ratios stay constant).
    pub per_pin_bandwidth_multiple: f64,
}

/// Project `base_pins` and performance forward under the paper's rates.
///
/// `pin_growth` and `perf_growth` are annual fractions (0.16, 0.60).
///
/// # Panics
///
/// Panics if growth rates are not positive or `base_pins` is zero.
pub fn project(base_pins: f64, pin_growth: f64, perf_growth: f64, years: u32) -> Projection {
    assert!(base_pins > 0.0, "need a positive base pin count");
    assert!(
        pin_growth > 0.0 && perf_growth > 0.0,
        "growth rates must be positive"
    );
    let pins = base_pins * (1.0 + pin_growth).powi(years as i32);
    let perf = (1.0 + perf_growth).powi(years as i32);
    Projection {
        years,
        pins,
        performance_multiple: perf,
        per_pin_bandwidth_multiple: perf / (pins / base_pins),
    }
}

/// The paper's 2006 projection from a 1996 base: 16 %/yr pins from a
/// ~600-pin 1996 package, 60 %/yr performance, ten years.
pub fn paper_projection() -> Projection {
    project(600.0, 0.16, 0.60, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_2006_package_has_two_to_three_thousand_pins() {
        let p = paper_projection();
        assert!((2000.0..3500.0).contains(&p.pins), "pins = {}", p.pins);
    }

    #[test]
    fn per_pin_bandwidth_demand_grows_about_25x() {
        let p = paper_projection();
        assert!(
            (20.0..30.0).contains(&p.per_pin_bandwidth_multiple),
            "got {}",
            p.per_pin_bandwidth_multiple
        );
    }

    #[test]
    fn performance_multiple_is_about_110() {
        let p = paper_projection();
        assert!((90.0..130.0).contains(&p.performance_multiple));
    }

    #[test]
    fn zero_years_is_identity() {
        let p = project(500.0, 0.16, 0.6, 0);
        assert_eq!(p.pins, 500.0);
        assert_eq!(p.performance_multiple, 1.0);
        assert_eq!(p.per_pin_bandwidth_multiple, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_growth() {
        let _ = project(500.0, 0.0, 0.6, 10);
    }
}
