//! §6's compression option: trading CPU-side hardware for effective
//! off-chip bandwidth.
//!
//! "Researchers have proposed and/or implemented schemes to use
//! compression for data \[9\], addresses \[12\], and code \[10\]. All of
//! these schemes increase effective bandwidth to memory at the expense of
//! some extra hardware." This module provides the Amdahl-style algebra:
//! only a fraction of traffic compresses, and it compresses by a finite
//! ratio, so the effective-bandwidth gain saturates.

use serde::{Deserialize, Serialize};

/// A link-compression scheme: what fraction of bytes it applies to and
/// how hard it squeezes them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionScheme {
    /// Fraction of traffic the scheme applies to (`0..=1`).
    pub coverage: f64,
    /// Compressed-size ratio on covered bytes (`0 < ratio <= 1`; 0.5
    /// means 2:1 compression).
    pub ratio: f64,
}

impl CompressionScheme {
    /// Validate and build.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `[0, 1]` or `ratio` outside
    /// `(0, 1]`.
    pub fn new(coverage: f64, ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&coverage), "coverage in [0,1]");
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio in (0,1]");
        Self { coverage, ratio }
    }

    /// Bytes on the wire per uncompressed byte.
    pub fn wire_fraction(&self) -> f64 {
        (1.0 - self.coverage) + self.coverage * self.ratio
    }

    /// Effective bandwidth multiplier (`>= 1`).
    pub fn bandwidth_gain(&self) -> f64 {
        1.0 / self.wire_fraction()
    }

    /// Effective pin bandwidth for a `b_pin` MB/s package.
    pub fn effective_bandwidth(&self, b_pin: f64) -> f64 {
        b_pin * self.bandwidth_gain()
    }

    /// Compose with a second scheme applied to the residual stream
    /// (e.g. address compression on top of data compression).
    pub fn and_then(&self, other: &CompressionScheme) -> CompressionScheme {
        CompressionScheme {
            coverage: 1.0,
            ratio: self.wire_fraction() * other.wire_fraction(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_coverage_two_to_one_doubles_bandwidth() {
        let s = CompressionScheme::new(1.0, 0.5);
        assert!((s.bandwidth_gain() - 2.0).abs() < 1e-12);
        assert!((s.effective_bandwidth(800.0) - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_limit_binds_partial_coverage() {
        // Half the traffic compresses infinitely well -> at most 2x.
        let s = CompressionScheme::new(0.5, 0.01);
        assert!(s.bandwidth_gain() < 2.0);
        assert!(s.bandwidth_gain() > 1.9);
    }

    #[test]
    fn no_compression_is_identity() {
        let s = CompressionScheme::new(0.0, 0.5);
        assert_eq!(s.bandwidth_gain(), 1.0);
        let t = CompressionScheme::new(1.0, 1.0);
        assert_eq!(t.bandwidth_gain(), 1.0);
    }

    #[test]
    fn composition_multiplies_wire_fractions() {
        let data = CompressionScheme::new(0.8, 0.5);
        let addr = CompressionScheme::new(0.2, 0.25);
        let both = data.and_then(&addr);
        let expect = data.wire_fraction() * addr.wire_fraction();
        assert!((both.wire_fraction() - expect).abs() < 1e-12);
        assert!(both.bandwidth_gain() > data.bandwidth_gain());
    }

    #[test]
    #[should_panic(expected = "ratio in (0,1]")]
    fn rejects_expansion() {
        let _ = CompressionScheme::new(1.0, 1.5);
    }
}
