//! Table 1: estimated effects of techniques and trends on the execution
//! -time split.

use serde::{Deserialize, Serialize};

/// Direction of change of a fraction (`↑`, `↓`, `?`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The fraction increases.
    Up,
    /// The fraction decreases.
    Down,
    /// The paper marks the effect uncertain.
    Unknown,
}

impl Direction {
    /// The table's glyph.
    pub fn glyph(&self) -> &'static str {
        match self {
            Direction::Up => "↑",
            Direction::Down => "↓",
            Direction::Unknown => "?",
        }
    }
}

/// The table's three sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Table1Section {
    /// A. Latency-reduction techniques.
    LatencyReduction,
    /// B. Processor trends.
    ProcessorTrends,
    /// C. Physical trends.
    PhysicalTrends,
}

/// One row of Table 1.
///
/// (`Serialize` only: the rows are a static compiled-in dataset with
/// `&'static str` names, never reloaded from an archive.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Table1Row {
    /// Technique or trend name.
    pub name: &'static str,
    /// Which section it belongs to.
    pub section: Table1Section,
    /// Effect on `f_P`.
    pub f_p: Direction,
    /// Effect on `f_L`.
    pub f_l: Direction,
    /// Effect on `f_B`.
    pub f_b: Direction,
}

/// The full Table 1.
pub fn table1() -> Vec<Table1Row> {
    use Direction::{Down, Unknown, Up};
    use Table1Section::{LatencyReduction, PhysicalTrends, ProcessorTrends};
    vec![
        Table1Row {
            name: "Lockup-free caches",
            section: LatencyReduction,
            f_p: Unknown,
            f_l: Down,
            f_b: Up,
        },
        Table1Row {
            name: "Intelligent load scheduling",
            section: LatencyReduction,
            f_p: Up,
            f_l: Down,
            f_b: Up,
        },
        Table1Row {
            name: "Hardware prefetching",
            section: LatencyReduction,
            f_p: Unknown,
            f_l: Down,
            f_b: Up,
        },
        Table1Row {
            name: "Software prefetching",
            section: LatencyReduction,
            f_p: Up,
            f_l: Down,
            f_b: Up,
        },
        Table1Row {
            name: "Speculative loads",
            section: LatencyReduction,
            f_p: Up,
            f_l: Down,
            f_b: Up,
        },
        Table1Row {
            name: "Multithreading",
            section: LatencyReduction,
            f_p: Unknown,
            f_l: Down,
            f_b: Up,
        },
        Table1Row {
            name: "Larger cache blocks",
            section: LatencyReduction,
            f_p: Unknown,
            f_l: Down,
            f_b: Up,
        },
        Table1Row {
            name: "Faster clock speed",
            section: ProcessorTrends,
            f_p: Down,
            f_l: Up,
            f_b: Up,
        },
        Table1Row {
            name: "Wider-issue",
            section: ProcessorTrends,
            f_p: Down,
            f_l: Unknown,
            f_b: Up,
        },
        Table1Row {
            name: "Speculative (Multiscalar)",
            section: ProcessorTrends,
            f_p: Down,
            f_l: Unknown,
            f_b: Up,
        },
        Table1Row {
            name: "Multiprocessors/chip",
            section: ProcessorTrends,
            f_p: Down,
            f_l: Up,
            f_b: Up,
        },
        Table1Row {
            name: "Better packaging technology",
            section: PhysicalTrends,
            f_p: Up,
            f_l: Down,
            f_b: Down,
        },
        Table1Row {
            name: "Larger on-chip memories",
            section: PhysicalTrends,
            f_p: Up,
            f_l: Down,
            f_b: Down,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_a_and_b_row_raises_bandwidth_stalls() {
        // The paper: "In every row of Tables 1A and 1B, we see that the
        // normalized fraction of bandwidth stalls is increasing."
        for row in table1() {
            match row.section {
                Table1Section::LatencyReduction | Table1Section::ProcessorTrends => {
                    assert_eq!(row.f_b, Direction::Up, "{}", row.name);
                }
                Table1Section::PhysicalTrends => {
                    assert_eq!(row.f_b, Direction::Down, "{}", row.name);
                }
            }
        }
    }

    #[test]
    fn sections_have_the_paper_row_counts() {
        let t = table1();
        let count = |s| t.iter().filter(|r| r.section == s).count();
        assert_eq!(count(Table1Section::LatencyReduction), 7);
        assert_eq!(count(Table1Section::ProcessorTrends), 4);
        assert_eq!(count(Table1Section::PhysicalTrends), 2);
    }

    #[test]
    fn glyphs_render() {
        assert_eq!(Direction::Up.glyph(), "↑");
        assert_eq!(Direction::Down.glyph(), "↓");
        assert_eq!(Direction::Unknown.glyph(), "?");
    }
}
