//! Effective pin bandwidth (Eq. 5) and its upper bound (Eq. 7).

/// Effective pin bandwidth `E_pin = B_pin / Π R_i` (Eq. 5), where `R_i`
/// are the traffic ratios of the on-chip cache levels.
///
/// A traffic ratio below 1 means the cache *filters* traffic, so the
/// processor sees more usable bandwidth than the package provides.
///
/// # Panics
///
/// Panics if any ratio is non-positive or `b_pin` is not positive.
///
/// # Example
///
/// ```
/// use membw_analytic::effective_pin_bandwidth;
///
/// // A single cache level that halves traffic doubles effective pin
/// // bandwidth.
/// let e = effective_pin_bandwidth(800.0, &[0.5]);
/// assert_eq!(e, 1600.0);
/// ```
pub fn effective_pin_bandwidth(b_pin: f64, ratios: &[f64]) -> f64 {
    assert!(b_pin > 0.0, "pin bandwidth must be positive");
    let product: f64 = ratios
        .iter()
        .map(|&r| {
            assert!(r > 0.0, "traffic ratios must be positive");
            r
        })
        .product();
    b_pin / product
}

/// Upper bound on effective pin bandwidth,
/// `OE_pin = B_pin · Π G_i / Π R_i` (Eq. 7): what Eq. 5 would give if
/// every cache level were replaced by its minimal-traffic equivalent.
///
/// # Panics
///
/// Panics if the slices differ in length, any value is non-positive, or
/// any `G < 1` (an MTC cannot generate more traffic than the cache it
/// bounds).
pub fn upper_bound_epin(b_pin: f64, ratios: &[f64], inefficiencies: &[f64]) -> f64 {
    assert_eq!(
        ratios.len(),
        inefficiencies.len(),
        "need one inefficiency per cache level"
    );
    let g: f64 = inefficiencies
        .iter()
        .map(|&g| {
            assert!(g >= 1.0, "traffic inefficiency is at least 1, got {g}");
            g
        })
        .product();
    effective_pin_bandwidth(b_pin, ratios) * g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_level_ratios_multiply() {
        // Two levels at R = 0.5 each: 4x effective bandwidth.
        let e = effective_pin_bandwidth(100.0, &[0.5, 0.5]);
        assert!((e - 400.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_above_one_shrinks_effective_bandwidth() {
        // The paper's small-cache pathology: R > 1 makes things worse
        // than no cache.
        let e = effective_pin_bandwidth(100.0, &[2.0]);
        assert!((e - 50.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bound_scales_with_g() {
        // Table 8's headline: G up to ~100 → two orders of magnitude of
        // headroom.
        let oe = upper_bound_epin(100.0, &[0.5], &[100.0]);
        assert!((oe - 20_000.0).abs() < 1e-6);
        let base = effective_pin_bandwidth(100.0, &[0.5]);
        assert!(oe / base >= 100.0 - 1e-9);
    }

    #[test]
    fn g_of_one_means_no_headroom() {
        let oe = upper_bound_epin(100.0, &[0.7], &[1.0]);
        let e = effective_pin_bandwidth(100.0, &[0.7]);
        assert!((oe - e).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_g_below_one() {
        let _ = upper_bound_epin(100.0, &[0.5], &[0.9]);
    }

    #[test]
    #[should_panic(expected = "one inefficiency per cache level")]
    fn rejects_mismatched_levels() {
        let _ = upper_bound_epin(100.0, &[0.5, 0.5], &[2.0]);
    }
}
