//! Record/replay round-trip: for every suite workload, a recorded
//! trace must replay the exact uop and memory-reference streams the
//! generator produces, and replaying must be repeatable.

use membw_trace::{CollectSink, MemRef, RecordingSink, Workload};
use membw_workloads::{suite92, suite95, Scale};

fn mem_refs(w: &(impl Workload + ?Sized)) -> Vec<MemRef> {
    let mut refs = Vec::new();
    w.for_each_mem_ref(&mut |r| refs.push(r));
    refs
}

#[test]
fn every_suite_workload_replays_its_direct_generation_exactly() {
    let benchmarks: Vec<_> = suite92(Scale::Test)
        .into_iter()
        .chain(suite95(Scale::Test))
        .collect();
    assert!(benchmarks.len() >= 10, "both suites should be covered");

    for b in &benchmarks {
        // Direct generation: the ground truth.
        let mut direct = CollectSink::new();
        b.workload().generate(&mut direct);
        let direct = direct.into_uops();

        // Record once...
        let mut rec = RecordingSink::new(b.name());
        b.workload().generate(&mut rec);
        let trace = rec.finish();
        assert_eq!(trace.len(), direct.len(), "{}", b.name());

        // ...replay must equal direct generation, uop for uop.
        let mut replayed = CollectSink::new();
        trace.generate(&mut replayed);
        assert_eq!(replayed.uops(), direct.as_slice(), "{}", b.name());

        // Replaying twice must be identical (the arena is immutable).
        let mut again = CollectSink::new();
        trace.generate(&mut again);
        assert_eq!(again.uops(), direct.as_slice(), "{}", b.name());

        // The fast memory-reference walk must agree with the uop
        // stream's references, and with the generator's own walk.
        assert_eq!(mem_refs(&trace), mem_refs(b.workload()), "{}", b.name());
    }
}

#[test]
fn cached_replayable_matches_direct_generation() {
    for b in suite92(Scale::Test)
        .iter()
        .chain(suite95(Scale::Test).iter())
    {
        let mut direct = CollectSink::new();
        b.workload().generate(&mut direct);

        let mut via_cache = CollectSink::new();
        b.replayable().generate(&mut via_cache);

        assert_eq!(via_cache.uops(), direct.uops(), "{}", b.name());
    }
}
