//! Benchmark suites: the SPEC92/SPEC95 selections of the paper's
//! Table 3, with scaled data sets.

use crate::{
    Applu, Compress, Dnasa2, Eqntott, Espresso, Hydro2d, Li, Perl, Su2cor, Swm, Tomcatv, Vortex,
};
use membw_trace::replay::{RecordedTrace, TraceCache};
use membw_trace::{MemRef, SignatureCache, TraceSink, Workload};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC92 selection (seven benchmarks).
    Spec92,
    /// SPEC95 selection (seven benchmarks).
    Spec95,
}

/// Data-set scaling.
///
/// The paper's trace lengths (Table 3: 22–1281 M references) are far
/// beyond what a unit-test budget wants; these scales keep every
/// benchmark's *relative* footprint class (≪ cache, ≈ cache, ≫ cache)
/// while bounding reference counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny inputs for unit tests (≈ 10⁴–10⁵ references each).
    Test,
    /// Default experiment scale (≈ 10⁶ references each).
    Small,
    /// Larger runs for final numbers (≈ 10⁷ references each).
    Full,
}

/// A named benchmark: the workload plus its Table 3 bookkeeping.
pub struct Benchmark {
    name: &'static str,
    suite: Suite,
    scale: Scale,
    workload: Box<dyn Workload + Send + Sync>,
    /// References traced by the paper, in millions (Table 3).
    pub paper_refs_millions: f64,
    /// Paper's data-set size in MB (Table 3).
    pub paper_dataset_mb: f64,
    /// Paper's input description (Table 3).
    pub paper_input: &'static str,
    /// This instance's declared footprint in bytes.
    pub footprint_bytes: u64,
}

impl Benchmark {
    /// Benchmark name (matches the workload's name).
    pub fn name(&self) -> &str {
        self.name
    }

    /// Which suite it belongs to.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// The scale this instance was built at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The workload (always regenerates from the synthetic generator).
    pub fn workload(&self) -> &(dyn Workload + Send + Sync) {
        self.workload.as_ref()
    }

    /// The workload, routed through the process-wide [`TraceCache`]:
    /// the first caller records the stream once, and every later caller
    /// — other decomposition runs, other experiments, other runner
    /// threads — replays the shared arena. Falls back to direct
    /// regeneration when caching is disabled (`MEMBW_TRACE_CACHE_MB=0`);
    /// both paths emit the identical stream.
    pub fn replayable(&self) -> BenchWorkload<'_> {
        match TraceCache::global().get_or_record(self.name, self.variant(), self.workload.as_ref())
        {
            Some(trace) => BenchWorkload::Recorded(trace),
            None => BenchWorkload::Direct(self.workload.as_ref()),
        }
    }

    /// The scale's stable variant label (the trace-cache and
    /// signature-store key component).
    pub fn variant(&self) -> &'static str {
        match self.scale {
            Scale::Test => "Test",
            Scale::Small => "Small",
            Scale::Full => "Full",
        }
    }

    /// This benchmark's trace signature, via the process-wide
    /// [`SignatureCache`]: loaded from the sealed store when present,
    /// computed once from the recorded trace otherwise. The analytic
    /// fast path reads only this — never the trace arena.
    pub fn signature(&self) -> Arc<membw_trace::TraceSignature> {
        SignatureCache::global().get_or_compute(self.name, self.variant(), &self.replayable())
    }
}

/// A benchmark's stream source: a shared recorded trace, or the live
/// generator when the trace cache is disabled.
pub enum BenchWorkload<'a> {
    /// Replays a shared recording.
    Recorded(Arc<RecordedTrace>),
    /// Streams straight from the synthetic generator.
    Direct(&'a (dyn Workload + Send + Sync)),
}

impl Workload for BenchWorkload<'_> {
    fn name(&self) -> &str {
        match self {
            BenchWorkload::Recorded(t) => t.name(),
            BenchWorkload::Direct(w) => w.name(),
        }
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        match self {
            BenchWorkload::Recorded(t) => t.generate(sink),
            BenchWorkload::Direct(w) => w.generate(sink),
        }
    }

    fn for_each_mem_ref(&self, f: &mut dyn FnMut(MemRef)) {
        match self {
            BenchWorkload::Recorded(t) => t.for_each_mem_ref(f),
            BenchWorkload::Direct(w) => w.for_each_mem_ref(f),
        }
    }
}

impl std::fmt::Debug for BenchWorkload<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchWorkload::Recorded(t) => f.debug_tuple("Recorded").field(&t.name()).finish(),
            BenchWorkload::Direct(w) => f.debug_tuple("Direct").field(&w.name()).finish(),
        }
    }
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("footprint_bytes", &self.footprint_bytes)
            .finish()
    }
}

#[allow(clippy::too_many_arguments)] // registry rows, one argument per column
fn bench(
    name: &'static str,
    suite: Suite,
    scale: Scale,
    refs_m: f64,
    dataset_mb: f64,
    input: &'static str,
    footprint: u64,
    w: Box<dyn Workload + Send + Sync>,
) -> Benchmark {
    debug_assert_eq!(w.name(), name, "registry name must match workload name");
    Benchmark {
        name,
        suite,
        scale,
        workload: w,
        paper_refs_millions: refs_m,
        paper_dataset_mb: dataset_mb,
        paper_input: input,
        footprint_bytes: footprint,
    }
}

/// The SPEC92 selection at `scale` (paper Table 3, upper half).
pub fn suite92(scale: Scale) -> Vec<Benchmark> {
    // (input_div) scales data sizes; iteration counts keep refs bounded.
    let s = match scale {
        Scale::Test => 8,
        Scale::Small => 1,
        Scale::Full => 1,
    };
    let iter_mul = match scale {
        Scale::Test => 1,
        Scale::Small => 1,
        Scale::Full => 4,
    };
    vec![
        {
            let w = Compress::new(160_000 / s * iter_mul, 1 << 15, 92);
            let fp = w.footprint_bytes();
            bench(
                "compress",
                Suite::Spec92,
                scale,
                21.9,
                0.41,
                "1000000 byte file",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Dnasa2::new(
                match scale {
                    Scale::Test => 9,
                    Scale::Small => 13,
                    Scale::Full => 15,
                },
                64 / s.min(4),
                64 / s.min(4),
            );
            let fp = w.footprint_bytes();
            bench(
                "dnasa2",
                Suite::Spec92,
                scale,
                181.0,
                0.18,
                "FFT, MxM=128x64x64",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Eqntott::new(4096 / s, 92);
            let fp = w.footprint_bytes();
            bench(
                "eqntott",
                Suite::Spec92,
                scale,
                221.1,
                1.63,
                "int_pri_3.eqn",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Espresso::new(1200 / s, 8, 8 * iter_mul, 92);
            let fp = w.footprint_bytes();
            bench(
                "espresso",
                Suite::Spec92,
                scale,
                22.3,
                0.04,
                "mlp4 only",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Su2cor::new(65_536 / s, 4, 2 * iter_mul);
            let fp = w.footprint_bytes();
            bench(
                "su2cor",
                Suite::Spec92,
                scale,
                163.4,
                1.53,
                "in.short",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Swm::new(180 / s.min(4), 180 / s.min(4), 2 * iter_mul);
            let fp = w.footprint_bytes();
            bench(
                "swm",
                Suite::Spec92,
                scale,
                50.6,
                0.93,
                "180x180, 50 iter.",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Tomcatv::new(256 / s.min(4), iter_mul.max(1));
            let fp = w.footprint_bytes();
            bench(
                "tomcatv",
                Suite::Spec92,
                scale,
                104.2,
                3.67,
                "256x256, 10 iter",
                fp,
                Box::new(w),
            )
        },
    ]
}

/// The SPEC95 selection at `scale` (paper Table 3, lower half).
pub fn suite95(scale: Scale) -> Vec<Benchmark> {
    let s = match scale {
        Scale::Test => 8,
        Scale::Small => 1,
        Scale::Full => 1,
    };
    let iter_mul = match scale {
        Scale::Test => 1,
        Scale::Small => 1,
        Scale::Full => 4,
    };
    vec![
        {
            let w = Applu::new(
                match scale {
                    Scale::Test => 10,
                    Scale::Small => 33,
                    Scale::Full => 41,
                },
                2,
            );
            let fp = w.footprint_bytes();
            bench(
                "applu",
                Suite::Spec95,
                scale,
                383.7,
                32.38,
                "33x33x33 grid, 2 iter.",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Hydro2d::new(320 / s.min(4), 256 / s.min(4), iter_mul.max(1));
            let fp = w.footprint_bytes();
            bench(
                "hydro2d",
                Suite::Spec95,
                scale,
                263.7,
                8.71,
                "test data set, 1 iter.",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Li::new(15_360 / s, 1200 / s * iter_mul, 95);
            let fp = w.footprint_bytes();
            bench(
                "li",
                Suite::Spec95,
                scale,
                471.3,
                0.12,
                "test.lsp",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Perl::new(32_768 / s, 1 << 18, 60_000 / s * iter_mul, 95);
            let fp = w.footprint_bytes();
            bench(
                "perl",
                Suite::Spec95,
                scale,
                1280.8,
                25.70,
                "jumble.pl",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Su2cor::spec95(262_144 / s, 4, iter_mul.max(1));
            let fp = w.footprint_bytes();
            bench(
                "su2cor95",
                Suite::Spec95,
                scale,
                533.8,
                22.53,
                "test data set",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Swm::spec95(256 / s.min(4), 256 / s.min(4), iter_mul.max(1));
            let fp = w.footprint_bytes();
            bench(
                "swim",
                Suite::Spec95,
                scale,
                267.4,
                14.46,
                "test data set",
                fp,
                Box::new(w),
            )
        },
        {
            let w = Vortex::new(32_768 / s, 30_000 / s * iter_mul, 95);
            let fp = w.footprint_bytes();
            bench(
                "vortex",
                Suite::Spec95,
                scale,
                1180.3,
                19.87,
                "test data set",
                fp,
                Box::new(w),
            )
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::sink::CountSink;

    #[test]
    fn suites_have_seven_benchmarks_each() {
        assert_eq!(suite92(Scale::Test).len(), 7);
        assert_eq!(suite95(Scale::Test).len(), 7);
    }

    #[test]
    fn names_are_unique_across_both_suites() {
        let mut names: Vec<&str> = suite92(Scale::Test)
            .iter()
            .chain(suite95(Scale::Test).iter())
            .map(|b| b.name)
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn registry_names_match_workloads() {
        for b in suite92(Scale::Test)
            .iter()
            .chain(suite95(Scale::Test).iter())
        {
            assert_eq!(b.name(), b.workload().name());
        }
    }

    #[test]
    fn test_scale_traces_are_bounded() {
        for b in suite92(Scale::Test)
            .iter()
            .chain(suite95(Scale::Test).iter())
        {
            let mut c = CountSink::new();
            b.workload().generate(&mut c);
            assert!(
                c.uops > 5_000 && c.uops < 6_000_000,
                "{}: {} uops",
                b.name(),
                c.uops
            );
        }
    }

    #[test]
    fn footprint_classes_are_preserved() {
        // espresso and li must stay small (run out of modest caches);
        // applu/su2cor95 must stay multi-megabyte.
        let s92 = suite92(Scale::Small);
        let espresso = s92.iter().find(|b| b.name == "espresso").unwrap();
        assert!(espresso.footprint_bytes < 64 * 1024);
        let s95 = suite95(Scale::Small);
        let li = s95.iter().find(|b| b.name == "li").unwrap();
        assert!(li.footprint_bytes < 256 * 1024);
        let su = s95.iter().find(|b| b.name == "su2cor95").unwrap();
        assert!(su.footprint_bytes > 2 * 1024 * 1024);
    }
}
