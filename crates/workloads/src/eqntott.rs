//! `eqntott`: quicksort over PTERM-like bit-vector records.
//!
//! SPEC92's 023.eqntott converts boolean equations to truth tables; its
//! hot loop is `qsort` over arrays of product-term records compared by a
//! word-wise `cmppt`. The pattern: record-granular jumps (partition
//! pointers move from both ends), short sequential runs inside each
//! record, and bulk record swaps — plus a write-heavy initialization.

use crate::emit::{mix64, Emit};
use membw_trace::{TraceSink, Workload};

const ARRAY_BASE: u64 = 0x4000_0000;
/// Bytes per record (8 words, like a small PTERM).
const RECORD_BYTES: u64 = 32;
const RECORD_WORDS: u64 = RECORD_BYTES / 4;

/// The quicksort kernel. See the module-level documentation.
#[derive(Debug, Clone)]
pub struct Eqntott {
    records: u64,
    seed: u64,
}

impl Eqntott {
    /// Sort `records` 32-byte records.
    ///
    /// # Panics
    ///
    /// Panics if `records < 2`.
    pub fn new(records: u64, seed: u64) -> Self {
        assert!(records >= 2, "need at least two records to sort");
        Self { records, seed }
    }

    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.records * RECORD_BYTES
    }

    fn addr(i: u64) -> u64 {
        ARRAY_BASE + i * RECORD_BYTES
    }
}

/// Compare two records: load words until they differ (the simulator keys
/// decide where), like `cmppt`.
fn compare(e: &mut Emit<'_>, keys: &[u64], i: usize, j: usize) -> std::cmp::Ordering {
    let a = Eqntott::addr(i as u64);
    let b = Eqntott::addr(j as u64);
    // Word-wise compare: keys differ in some word 0..8 decided by the
    // key difference.
    let diff_word = if keys[i] == keys[j] {
        RECORD_WORDS - 1
    } else {
        (keys[i] ^ keys[j]).leading_zeros() as u64 % RECORD_WORDS
    };
    for w in 0..=diff_word {
        let x = e.load(a + w * 4);
        let y = e.load(b + w * 4);
        let c = e.int_op(Some(x), Some(y));
        e.branch(0x200 + w * 4, w == diff_word, Some(c));
    }
    keys[i].cmp(&keys[j])
}

/// Swap two records: 8 loads + 8 stores each way.
fn swap(e: &mut Emit<'_>, keys: &mut [u64], i: usize, j: usize) {
    if i == j {
        return;
    }
    let a = Eqntott::addr(i as u64);
    let b = Eqntott::addr(j as u64);
    for w in 0..RECORD_WORDS {
        let x = e.load(a + w * 4);
        let y = e.load(b + w * 4);
        e.store(a + w * 4, y);
        e.store(b + w * 4, x);
    }
    keys.swap(i, j);
}

impl Workload for Eqntott {
    fn name(&self) -> &str {
        "eqntott"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        let n = self.records as usize;
        // Initialization: write every record sequentially.
        let mut keys: Vec<u64> = Vec::with_capacity(n);
        for i in 0..self.records {
            keys.push(mix64(self.seed ^ i));
            for w in 0..RECORD_WORDS {
                e.store_imm(Self::addr(i) + w * 4);
            }
            e.loop_back(0x300, i + 1 < self.records);
        }
        // Iterative quicksort (median-of-ends pivot).
        let mut stack: Vec<(usize, usize)> = vec![(0, n - 1)];
        while let Some((lo, hi)) = stack.pop() {
            if lo >= hi {
                continue;
            }
            let pivot = (lo + hi) / 2;
            swap(&mut e, &mut keys, pivot, hi);
            let mut store = lo;
            for idx in lo..hi {
                let ord = compare(&mut e, &keys, idx, hi);
                if ord == std::cmp::Ordering::Less {
                    swap(&mut e, &mut keys, idx, store);
                    store += 1;
                }
            }
            swap(&mut e, &mut keys, store, hi);
            e.loop_back(0x380, !stack.is_empty());
            if store > 0 && store - 1 > lo {
                stack.push((lo, store - 1));
            }
            if store + 1 < hi {
                stack.push((store + 1, hi));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::stats::TraceStats;

    #[test]
    fn deterministic() {
        let a = Eqntott::new(200, 7).collect_mem_refs();
        let b = Eqntott::new(200, 7).collect_mem_refs();
        assert_eq!(a, b);
    }

    #[test]
    fn footprint_matches_record_array() {
        let w = Eqntott::new(500, 7);
        let s = TraceStats::of(&w);
        assert_eq!(s.footprint_bytes(4), w.footprint_bytes());
    }

    #[test]
    fn sort_actually_sorts_the_shadow_keys() {
        // The partition logic must be a real quicksort — verify by
        // re-running it on plain data.
        let w = Eqntott::new(300, 9);
        let mut keys: Vec<u64> = (0..300u64).map(|i| mix64(9 ^ i)).collect();
        // Run generate (which sorts its internal copy) then check the
        // trace references both halves of the array heavily.
        let refs = w.collect_mem_refs();
        keys.sort_unstable();
        assert!(refs.len() as u64 > 300 * 8 * 2, "compares + swaps dominate");
    }

    #[test]
    fn work_scales_superlinearly_near_n_log_n() {
        let small = Eqntott::new(128, 3).collect_mem_refs().len() as f64;
        let big = Eqntott::new(1024, 3).collect_mem_refs().len() as f64;
        let ratio = big / small;
        assert!(
            ratio > 6.0 && ratio < 24.0,
            "8x records should cost ~8-12x work, got {ratio}"
        );
    }
}
