//! Interpreter-style integer codes: `li` and `perl`.
//!
//! SPEC's 130.li is a Lisp interpreter whose data is a small cons-cell
//! heap walked by pointer chasing with heavy reuse (0.12 MB data set in
//! Table 3); 134.perl (the `jumble.pl` input) scans a large dictionary
//! and probes associative arrays — a big-footprint mix of sequential
//! string reads and scattered hash probes.

use crate::emit::{mix64, Emit};
use membw_trace::{TraceSink, Workload};

const HEAP_BASE: u64 = 0x60_0000_0000;
/// Cons cell: car word + cdr word.
const CELL_BYTES: u64 = 8;

/// The Lisp-interpreter kernel (`li`). See the module-level documentation.
#[derive(Debug, Clone)]
pub struct Li {
    cells: u64,
    evals: u64,
    seed: u64,
}

impl Li {
    /// A heap of `cells` cons cells evaluated for `evals` list walks.
    ///
    /// # Panics
    ///
    /// Panics if `cells < 16` or `evals` is zero.
    pub fn new(cells: u64, evals: u64, seed: u64) -> Self {
        assert!(cells >= 16 && evals > 0);
        Self { cells, evals, seed }
    }

    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.cells * CELL_BYTES
    }

    fn cell_addr(cell: u64) -> u64 {
        HEAP_BASE + cell * CELL_BYTES
    }
}

impl Workload for Li {
    fn name(&self) -> &str {
        "li"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        // Build a heap of lists: cell i's cdr points to a nearby cell
        // (allocation locality), cars point at atoms/subexpressions.
        let cdr: Vec<u64> = (0..self.cells)
            .map(|i| {
                let jump = mix64(self.seed ^ i) % 8;
                (i + 1 + jump) % self.cells
            })
            .collect();
        for i in 0..self.cells {
            e.store_imm(Li::cell_addr(i)); // car
            e.store_imm(Li::cell_addr(i) + 4); // cdr
        }
        // Eval loop: walk lists, apply, occasionally allocate; a sweep
        // "GC" pass runs every 64 evals (xlisp's mark-and-sweep).
        let mut free = 0u64;
        for ev in 0..self.evals {
            let mut cur = mix64(self.seed ^ 0x1111 ^ ev) % self.cells;
            let len = 4 + mix64(ev) % 24;
            let mut val = None;
            for step in 0..len {
                let car = e.load(Li::cell_addr(cur));
                let nxt = e.load_dep(Li::cell_addr(cur) + 4, car);
                val = Some(e.int_op(Some(car), val));
                e.branch(0xe00, step + 1 < len, Some(nxt));
                cur = cdr[cur as usize];
            }
            // cons the result.
            e.store(Li::cell_addr(free), val.expect("walked at least one cell"));
            e.store_imm(Li::cell_addr(free) + 4);
            free = (free + 1) % self.cells;
            if ev % 64 == 63 {
                // Sweep: sequential pass over the whole heap.
                for i in 0..self.cells {
                    let m = e.load(Li::cell_addr(i));
                    e.branch(0xe40, mix64(i).is_multiple_of(4), Some(m));
                    e.loop_back(0xe80, i + 1 < self.cells);
                }
            }
            e.loop_back(0xec0, ev + 1 < self.evals);
        }
    }
}

const DICT_BASE: u64 = 0x70_0000_0000;
const HASH_BASE: u64 = 0x71_0000_0000;
/// Hash-table entry: key pointer + value (2 words).
const HENTRY_BYTES: u64 = 8;

/// The Perl/associative-array kernel (`perl`). See the
/// module-level documentation.
#[derive(Debug, Clone)]
pub struct Perl {
    dict_words: u64,
    table_entries: u64,
    lookups: u64,
    seed: u64,
}

impl Perl {
    /// Scan a dictionary of `dict_words` 16-byte words, probing a hash
    /// table of `table_entries` slots, `lookups` times.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a power of two or anything is
    /// zero.
    pub fn new(dict_words: u64, table_entries: u64, lookups: u64, seed: u64) -> Self {
        assert!(table_entries.is_power_of_two());
        assert!(dict_words > 0 && lookups > 0);
        Self {
            dict_words,
            table_entries,
            lookups,
            seed,
        }
    }

    /// Footprint in bytes: the dictionary plus the table slots the
    /// probe pattern can reach (each dictionary word probes at most
    /// three slots, so a sparse run touches far less than the whole
    /// table).
    pub fn footprint_bytes(&self) -> u64 {
        let reachable_slots = self.table_entries.min(self.dict_words * 3);
        self.dict_words * 16 + reachable_slots * HENTRY_BYTES
    }
}

impl Workload for Perl {
    fn name(&self) -> &str {
        "perl"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        let mask = self.table_entries - 1;
        for l in 0..self.lookups {
            // Pick the next dictionary word (sequential scan with restarts,
            // like jumble's per-anagram pass).
            let word = l % self.dict_words;
            let waddr = DICT_BASE + word * 16;
            // Read the word: 4 sequential word loads + hash arithmetic.
            let mut h = None;
            for w in 0..4 {
                let c = e.load(waddr + w * 4);
                let m = e.int_mul(Some(c), h);
                h = Some(e.int_op(Some(m), None));
            }
            // Probe the table: 1–3 scattered probes.
            let probes = 1 + mix64(self.seed ^ l) % 3;
            for p in 0..probes {
                let slot = mix64(self.seed ^ word << 8 ^ p) & mask;
                let entry = HASH_BASE + slot * HENTRY_BYTES;
                let k = e.load(entry);
                e.branch(0xf00, p + 1 == probes, Some(k));
            }
            // Hit: update the value; miss on ~1/4: insert.
            let final_slot = mix64(self.seed ^ word << 8 ^ (probes - 1)) & mask;
            let entry = HASH_BASE + final_slot * HENTRY_BYTES;
            if mix64(l ^ 0x2222).is_multiple_of(4) {
                e.store(entry, h.expect("hash computed"));
            }
            let v = e.load(entry + 4);
            let upd = e.int_op(Some(v), h);
            e.store(entry + 4, upd);
            e.loop_back(0xf40, l + 1 < self.lookups);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::reuse::ReuseProfile;
    use membw_trace::stats::TraceStats;

    #[test]
    fn li_deterministic_small_footprint() {
        let w = Li::new(2048, 200, 5);
        assert_eq!(w.collect_mem_refs(), w.collect_mem_refs());
        let s = TraceStats::of(&w);
        assert_eq!(s.footprint_bytes(4), w.footprint_bytes());
        assert!(w.footprint_bytes() < 32 * 1024, "li's heap is small");
    }

    #[test]
    fn li_reuses_the_heap_heavily() {
        let w = Li::new(2048, 400, 5);
        let p = ReuseProfile::measure(&w, 32);
        let blocks = w.footprint_bytes() / 32;
        assert!(p.lru_miss_ratio(blocks) < 0.05);
    }

    #[test]
    fn perl_touches_a_large_table() {
        let w = Perl::new(4096, 1 << 16, 20_000, 9);
        let s = TraceStats::of(&w);
        assert!(
            s.footprint_bytes(4) > 100 * 1024,
            "fp = {}",
            s.footprint_bytes(4)
        );
        assert!(s.writes > 0);
    }

    #[test]
    fn perl_deterministic() {
        let a = Perl::new(512, 1 << 12, 2000, 3).collect_mem_refs();
        let b = Perl::new(512, 1 << 12, 2000, 3).collect_mem_refs();
        assert_eq!(a, b);
    }

    #[test]
    fn perl_dictionary_scan_has_spatial_locality() {
        // Dictionary reads are 4 consecutive words: 32-byte blocks halve
        // (at least) the distinct-block count relative to 4-byte blocks
        // for the dictionary region.
        let w = Perl::new(1024, 1 << 12, 4096, 3);
        let refs = w.collect_mem_refs();
        let dict_refs: Vec<_> = refs.iter().filter(|r| r.addr < HASH_BASE).collect();
        let words: std::collections::HashSet<u64> = dict_refs.iter().map(|r| r.addr / 4).collect();
        let blocks: std::collections::HashSet<u64> =
            dict_refs.iter().map(|r| r.addr / 32).collect();
        assert!(words.len() >= blocks.len() * 2);
    }
}
