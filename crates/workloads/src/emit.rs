//! Micro-op emission helper shared by the workload kernels.
//!
//! Wraps a [`TraceSink`] with an instruction-mix-aware interface: loads
//! return the register they produce, compute ops consume registers, loop
//! branches carry stable PCs and real outcomes. Registers are allocated
//! round-robin from a scratch pool so that dependent chains form
//! naturally (a load's consumer names the load's destination) without the
//! kernels doing register allocation by hand.

use membw_trace::{MemRef, OpClass, Reg, TraceSink, Uop};

/// First register of the rotating scratch pool (0–15 are reserved for
/// kernel-managed long-lived values such as induction variables).
const SCRATCH_BASE: u8 = 16;
/// Size of the rotating scratch pool.
const SCRATCH_COUNT: u8 = 40;

/// Emission context handed to kernels.
pub struct Emit<'a> {
    sink: &'a mut dyn TraceSink,
    next_scratch: u8,
    uops: u64,
}

impl<'a> Emit<'a> {
    /// Wrap a sink.
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        Self {
            sink,
            next_scratch: 0,
            uops: 0,
        }
    }

    /// Micro-ops emitted so far.
    pub fn uops(&self) -> u64 {
        self.uops
    }

    fn scratch(&mut self) -> Reg {
        let r = SCRATCH_BASE + self.next_scratch;
        self.next_scratch = (self.next_scratch + 1) % SCRATCH_COUNT;
        r
    }

    fn push(&mut self, uop: Uop) {
        self.uops += 1;
        self.sink.uop(uop);
    }

    /// A 4-byte load; returns the destination register.
    pub fn load(&mut self, addr: u64) -> Reg {
        let dest = self.scratch();
        self.push(Uop::load(MemRef::read(addr, 4), Some(dest), [None, None]));
        dest
    }

    /// A 4-byte load whose address depends on `addr_reg` (pointer chase).
    pub fn load_dep(&mut self, addr: u64, addr_reg: Reg) -> Reg {
        let dest = self.scratch();
        self.push(Uop::load(
            MemRef::read(addr, 4),
            Some(dest),
            [Some(addr_reg), None],
        ));
        dest
    }

    /// A 4-byte store of `src`.
    pub fn store(&mut self, addr: u64, src: Reg) {
        self.push(Uop::store(MemRef::write(addr, 4), [Some(src), None]));
    }

    /// A 4-byte store with no register dependency (constant data).
    pub fn store_imm(&mut self, addr: u64) {
        self.push(Uop::store(MemRef::write(addr, 4), [None, None]));
    }

    /// Integer ALU op over up to two sources; returns its destination.
    pub fn int_op(&mut self, a: Option<Reg>, b: Option<Reg>) -> Reg {
        let dest = self.scratch();
        self.push(Uop::compute(OpClass::IntAlu, Some(dest), [a, b]));
        dest
    }

    /// Integer ALU op writing a kernel-managed register (e.g. an
    /// induction variable in 0–15).
    pub fn int_op_into(&mut self, dest: Reg, a: Option<Reg>, b: Option<Reg>) {
        self.push(Uop::compute(OpClass::IntAlu, Some(dest), [a, b]));
    }

    /// Floating-point add; returns its destination.
    pub fn fp_add(&mut self, a: Option<Reg>, b: Option<Reg>) -> Reg {
        let dest = self.scratch();
        self.push(Uop::compute(OpClass::FpAdd, Some(dest), [a, b]));
        dest
    }

    /// Floating-point multiply; returns its destination.
    pub fn fp_mul(&mut self, a: Option<Reg>, b: Option<Reg>) -> Reg {
        let dest = self.scratch();
        self.push(Uop::compute(OpClass::FpMul, Some(dest), [a, b]));
        dest
    }

    /// Floating-point divide; returns its destination.
    pub fn fp_div(&mut self, a: Option<Reg>, b: Option<Reg>) -> Reg {
        let dest = self.scratch();
        self.push(Uop::compute(OpClass::FpDiv, Some(dest), [a, b]));
        dest
    }

    /// Integer multiply; returns its destination.
    pub fn int_mul(&mut self, a: Option<Reg>, b: Option<Reg>) -> Reg {
        let dest = self.scratch();
        self.push(Uop::compute(OpClass::IntMul, Some(dest), [a, b]));
        dest
    }

    /// A conditional branch at `pc` with outcome `taken`, reading `cond`.
    pub fn branch(&mut self, pc: u64, taken: bool, cond: Option<Reg>) {
        self.push(Uop::branch(pc, taken, [cond, None]));
    }

    /// The back-edge of a counted loop: taken while the loop continues.
    /// `pc` should be stable per loop site so the predictor can learn it.
    pub fn loop_back(&mut self, pc: u64, continues: bool) {
        self.push(Uop::branch(pc, continues, [Some(0), None]));
    }
}

impl std::fmt::Debug for Emit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Emit").field("uops", &self.uops).finish()
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer) used by kernels that
/// need pseudo-random but replayable values without carrying an RNG.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::CollectSink;

    #[test]
    fn load_feeds_consumer() {
        let mut sink = CollectSink::new();
        let mut e = Emit::new(&mut sink);
        let v = e.load(0x100);
        let _ = e.fp_add(Some(v), None);
        let uops = sink.into_uops();
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[1].srcs[0], uops[0].dest);
    }

    #[test]
    fn scratch_registers_rotate_and_avoid_reserved() {
        let mut sink = CollectSink::new();
        let mut e = Emit::new(&mut sink);
        let regs: Vec<Reg> = (0..100).map(|i| e.load(i * 4)).collect();
        assert!(regs.iter().all(|&r| (16..56).contains(&r)));
        assert_eq!(regs[0], regs[40], "pool wraps after 40 allocations");
        assert_ne!(regs[0], regs[1]);
    }

    #[test]
    fn uop_counter_tracks_everything() {
        let mut sink = CollectSink::new();
        let mut e = Emit::new(&mut sink);
        e.store_imm(0);
        e.loop_back(0x40, true);
        let r = e.int_op(None, None);
        e.store(4, r);
        assert_eq!(e.uops(), 4);
        assert_eq!(sink.uops().len(), 4);
    }

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Low bits vary across consecutive inputs.
        let low: std::collections::HashSet<u64> = (0..64).map(|i| mix64(i) % 64).collect();
        assert!(low.len() > 32);
    }
}
