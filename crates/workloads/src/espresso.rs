//! `espresso`: two-level logic minimization over cube lists.
//!
//! SPEC92's 008.espresso manipulates covers — lists of cubes (bit
//! vectors) — with pairwise containment/consensus checks. The working
//! set is tiny (the paper's input is 0.04 MB) and intensely reused, so
//! the benchmark runs out of even small caches: Table 7 marks espresso
//! `<<<` from 64 KiB up.

use crate::emit::{mix64, Emit};
use membw_trace::{TraceSink, Workload};

const CUBES_BASE: u64 = 0x5000_0000;

/// The cube-list kernel. See the module-level documentation.
#[derive(Debug, Clone)]
pub struct Espresso {
    cubes: u64,
    words_per_cube: u64,
    passes: u64,
    seed: u64,
}

impl Espresso {
    /// Minimize a cover of `cubes` cubes of `words_per_cube` 4-byte words
    /// for `passes` reduction passes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(cubes: u64, words_per_cube: u64, passes: u64, seed: u64) -> Self {
        assert!(cubes > 0 && words_per_cube > 0 && passes > 0);
        Self {
            cubes,
            words_per_cube,
            passes,
            seed,
        }
    }

    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.cubes * self.words_per_cube * 4
    }

    fn addr(&self, cube: u64, word: u64) -> u64 {
        CUBES_BASE + (cube * self.words_per_cube + word) * 4
    }
}

impl Workload for Espresso {
    fn name(&self) -> &str {
        "espresso"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        // Cover setup.
        for c in 0..self.cubes {
            for w in 0..self.words_per_cube {
                e.store_imm(self.addr(c, w));
            }
        }
        // Reduction passes: each cube is checked against partners drawn
        // from the *entire* cover (real espresso's sharp/consensus loops
        // scan whole covers), with distance-based early exit. Reuse
        // distances therefore span the full cube list.
        for p in 0..self.passes {
            for c in 0..self.cubes {
                for k in 0..8u64 {
                    let other = mix64(self.seed ^ (p << 40) ^ (c << 8) ^ k) % self.cubes;
                    if other == c {
                        continue;
                    }
                    // Early exit once the cubes' distance exceeds 2 —
                    // usually within a few words.
                    let depth = 1 + mix64(self.seed ^ c ^ (other << 16)) % self.words_per_cube;
                    let mut acc = None;
                    for w in 0..depth {
                        let a = e.load(self.addr(c, w));
                        let b = e.load(self.addr(other, w));
                        acc = Some(e.int_op(Some(a), Some(b)));
                        e.branch(0x400, w + 1 < depth, acc);
                    }
                    let covered = mix64(self.seed ^ c ^ other ^ p).is_multiple_of(24);
                    e.branch(0x420, covered, acc);
                    if covered {
                        // Raise: rewrite the covering cube.
                        for w in 0..self.words_per_cube {
                            let v = e.load(self.addr(other, w));
                            e.store(self.addr(c, w), v);
                        }
                    }
                }
                e.loop_back(0x440, c + 1 < self.cubes);
            }
            e.loop_back(0x480, p + 1 < self.passes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::reuse::ReuseProfile;
    use membw_trace::stats::TraceStats;

    fn small() -> Espresso {
        Espresso::new(128, 8, 4, 11)
    }

    #[test]
    fn deterministic() {
        assert_eq!(small().collect_mem_refs(), small().collect_mem_refs());
    }

    #[test]
    fn footprint_is_small_and_exact() {
        let w = small();
        let s = TraceStats::of(&w);
        assert_eq!(s.footprint_bytes(4), w.footprint_bytes());
        assert_eq!(w.footprint_bytes(), 128 * 8 * 4);
    }

    #[test]
    fn working_set_fits_small_caches() {
        // An LRU cache of the footprint's size has a tiny miss ratio —
        // espresso's signature.
        let w = small();
        let p = ReuseProfile::measure(&w, 32);
        let blocks = w.footprint_bytes() / 32;
        assert!(
            p.lru_miss_ratio(blocks) < 0.02,
            "miss ratio = {}",
            p.lru_miss_ratio(blocks)
        );
    }

    #[test]
    fn reuse_dominates_cold_misses() {
        let w = small();
        let p = ReuseProfile::measure(&w, 32);
        assert!(p.cold_misses() * 20 < p.total(), "heavy temporal reuse");
    }
}
