//! `vortex`: an object-oriented database.
//!
//! SPEC95's 147.vortex builds and queries an in-memory OO database:
//! lookups descend index trees (pointer chases over a medium working
//! set), then read the target object's fields (a short sequential
//! burst); a fraction of transactions update objects. Footprint ~20 MB
//! in the paper, scaled here.

use crate::emit::{mix64, Emit};
use membw_trace::{TraceSink, Workload};

const INDEX_BASE: u64 = 0x80_0000_0000;
const OBJ_BASE: u64 = 0x81_0000_0000;
/// Index node: 8 words (keys + children).
const NODE_BYTES: u64 = 32;
/// Object: 16 words of fields.
const OBJ_BYTES: u64 = 64;
const TREE_FANOUT: u64 = 8;

/// The object-database kernel. See the module-level documentation.
#[derive(Debug, Clone)]
pub struct Vortex {
    objects: u64,
    transactions: u64,
    seed: u64,
}

impl Vortex {
    /// A database of `objects` objects queried by `transactions`
    /// transactions (10 % updates).
    ///
    /// # Panics
    ///
    /// Panics if `objects < TREE_FANOUT` or `transactions` is zero.
    pub fn new(objects: u64, transactions: u64, seed: u64) -> Self {
        assert!(objects >= TREE_FANOUT && transactions > 0);
        Self {
            objects,
            transactions,
            seed,
        }
    }

    /// Number of index levels for the object count.
    fn levels(&self) -> u32 {
        let mut lv = 1;
        let mut span = TREE_FANOUT;
        while span < self.objects {
            span *= TREE_FANOUT;
            lv += 1;
        }
        lv
    }

    /// Total index nodes (a full `TREE_FANOUT`-ary tree above the
    /// objects).
    fn index_nodes(&self) -> u64 {
        let mut total = 0;
        let mut level_nodes = 1u64;
        for _ in 0..self.levels() {
            total += level_nodes;
            level_nodes *= TREE_FANOUT;
        }
        total
    }

    /// Footprint in bytes (index + objects).
    pub fn footprint_bytes(&self) -> u64 {
        self.index_nodes() * NODE_BYTES + self.objects * OBJ_BYTES
    }
}

impl Workload for Vortex {
    fn name(&self) -> &str {
        "vortex"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        let levels = self.levels();
        // Populate: write every object sequentially (db load phase).
        for o in 0..self.objects {
            for w in 0..OBJ_BYTES / 4 {
                e.store_imm(OBJ_BASE + o * OBJ_BYTES + w * 4);
            }
            e.loop_back(0x1000, o + 1 < self.objects);
        }
        // Transactions.
        for t in 0..self.transactions {
            let key = mix64(self.seed ^ t) % self.objects;
            // Descend the index: one node per level; each visit reads a
            // couple of key words and the child pointer.
            let mut node_index = 0u64; // breadth-first numbering
            let mut level_base = 0u64;
            let mut level_nodes = 1u64;
            let mut ptr = None;
            for lv in 0..levels {
                let addr = INDEX_BASE + (level_base + node_index) * NODE_BYTES;
                let k0 = e.load(addr);
                let k1 = e.load(addr + 4);
                let cmp = e.int_op(Some(k0), Some(k1));
                e.branch(0x1040, lv + 1 < levels, Some(cmp));
                ptr = Some(e.load_dep(addr + 8, cmp));
                // Child selection follows the key digits.
                let digit = (key / TREE_FANOUT.pow(levels - 1 - lv)) % TREE_FANOUT;
                level_base += level_nodes;
                level_nodes *= TREE_FANOUT;
                node_index = node_index * TREE_FANOUT + digit;
            }
            // Object access: read all fields.
            let oaddr = OBJ_BASE + key * OBJ_BYTES;
            let mut acc = ptr;
            for w in 0..OBJ_BYTES / 4 {
                let f = e.load(oaddr + w * 4);
                acc = Some(e.int_op(Some(f), acc));
            }
            // 10% of transactions update a few fields.
            if mix64(t ^ 0x3333).is_multiple_of(10) {
                for w in 0..4 {
                    e.store(oaddr + w * 4, acc.expect("fields read"));
                }
            }
            e.loop_back(0x1080, t + 1 < self.transactions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::reuse::ReuseProfile;
    use membw_trace::stats::TraceStats;

    fn small() -> Vortex {
        Vortex::new(4096, 8000, 13)
    }

    #[test]
    fn deterministic() {
        assert_eq!(small().collect_mem_refs(), small().collect_mem_refs());
    }

    #[test]
    fn footprint_includes_index_and_objects() {
        let w = small();
        let s = TraceStats::of(&w);
        assert!(s.footprint_bytes(4) > 4096 * 64 / 2);
        assert!(s.footprint_bytes(4) <= w.footprint_bytes());
    }

    #[test]
    fn upper_index_levels_are_hot() {
        // The root and level-1 nodes are touched by every transaction, so
        // a small cache still gets a meaningful hit rate (vortex's mixed
        // locality).
        let w = small();
        let p = ReuseProfile::measure(&w, 32);
        let small_cache = p.lru_miss_ratio(256); // 8 KiB
        let big_cache = p.lru_miss_ratio(1 << 14); // 512 KiB
        assert!(small_cache < 0.9, "index hits exist: {small_cache}");
        assert!(big_cache < small_cache);
    }

    #[test]
    fn object_reads_are_sequential_bursts() {
        let w = Vortex::new(512, 400, 3);
        let refs = w.collect_mem_refs();
        let obj_reads: Vec<_> = refs
            .iter()
            .filter(|r| r.addr >= OBJ_BASE && r.kind.is_read())
            .collect();
        // Consecutive object reads are mostly 4 bytes apart.
        let sequential = obj_reads
            .windows(2)
            .filter(|w| w[1].addr == w[0].addr + 4)
            .count();
        assert!(sequential * 2 > obj_reads.len(), "bursty field reads");
    }

    #[test]
    fn writes_are_minority() {
        let s = TraceStats::of(&small());
        assert!(s.write_fraction() < 0.5);
    }
}
