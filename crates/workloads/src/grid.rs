//! Grid and kernel codes: `swm`, `tomcatv`, `applu`, `hydro2d`, `dnasa2`.
//!
//! The floating-point SPEC codes the paper traces are stencil sweeps and
//! dense kernels over arrays that dwarf the caches: streaming access with
//! spatial but little cross-iteration temporal locality (the paper: "Swm
//! iterates over large arrays, with a reference pattern that contains
//! little locality and no small working sets"). Each type here executes
//! the real loop nest of its namesake's dominant phase.

use crate::emit::Emit;
use membw_trace::{Reg, TraceSink, Workload};

/// A named 2-D array of 4-byte elements at a fixed base.
#[derive(Debug, Clone, Copy)]
struct Grid2 {
    base: u64,
    nx: u64,
}

impl Grid2 {
    fn at(&self, i: u64, j: u64) -> u64 {
        self.base + (i * self.nx + j) * 4
    }
}

fn grids(base: u64, count: u64, nx: u64, ny: u64) -> Vec<Grid2> {
    // Pad each array to a non-power-of-two pitch so the layout does not
    // produce su2cor-style pathological conflicts.
    let bytes = (nx * ny * 4 + 4096) / 4096 * 4096 + 4096;
    (0..count)
        .map(|k| Grid2 {
            base: base + k * bytes,
            nx,
        })
        .collect()
}

/// `swm` / `swim`: shallow-water model, 13 arrays, 9-point updates.
///
/// The SPEC92 (`swm`, 180×180) and SPEC95 (`swim`, bigger grid) versions
/// differ only in size; use [`Swm::spec95`] for the latter's name.
#[derive(Debug, Clone)]
pub struct Swm {
    nx: u64,
    ny: u64,
    timesteps: u64,
    name: &'static str,
}

impl Swm {
    /// A `nx × ny` grid run for `timesteps` steps.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 3×3 or `timesteps` is zero.
    pub fn new(nx: u64, ny: u64, timesteps: u64) -> Self {
        assert!(nx >= 3 && ny >= 3 && timesteps > 0);
        Self {
            nx,
            ny,
            timesteps,
            name: "swm",
        }
    }

    /// The SPEC95 variant (`swim`).
    pub fn spec95(nx: u64, ny: u64, timesteps: u64) -> Self {
        let mut s = Self::new(nx, ny, timesteps);
        s.name = "swim";
        s
    }

    /// Footprint in bytes (13 arrays).
    pub fn footprint_bytes(&self) -> u64 {
        13 * self.nx * self.ny * 4
    }
}

impl Workload for Swm {
    fn name(&self) -> &str {
        self.name
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        let a = grids(0x10_0000_0000, 13, self.nx, self.ny);
        let (u, v, p, unew, vnew, pnew, cu, cv, z, h) =
            (a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7], a[8], a[9]);
        for t in 0..self.timesteps {
            // calc1: cu, cv, z, h from u, v, p — the real loop reads
            // nine neighbouring values per point and writes four.
            for i in 1..self.ny - 1 {
                for j in 1..self.nx - 1 {
                    let u0 = e.load(u.at(i, j));
                    let u1 = e.load(u.at(i, j - 1));
                    let u2 = e.load(u.at(i + 1, j));
                    let v0 = e.load(v.at(i, j));
                    let v1 = e.load(v.at(i - 1, j));
                    let v2 = e.load(v.at(i, j + 1));
                    let p0 = e.load(p.at(i, j));
                    let p1 = e.load(p.at(i, j - 1));
                    let p2 = e.load(p.at(i - 1, j));
                    let m1 = e.fp_mul(Some(u0), Some(p0));
                    let m2 = e.fp_mul(Some(v0), Some(p1));
                    let m3 = e.fp_mul(Some(u2), Some(p2));
                    let s1 = e.fp_add(Some(m1), Some(u1));
                    let s2 = e.fp_add(Some(m2), Some(v1));
                    let s3 = e.fp_add(Some(m3), Some(v2));
                    e.store(cu.at(i, j), s1);
                    e.store(cv.at(i, j), s2);
                    let zz = e.fp_add(Some(s1), Some(s2));
                    e.store(z.at(i, j), zz);
                    let hh = e.fp_add(Some(zz), Some(s3));
                    e.store(h.at(i, j), hh);
                    e.loop_back(0x600, j + 2 < self.nx);
                }
                e.loop_back(0x640, i + 2 < self.ny);
            }
            // calc2: unew, vnew, pnew from cu, cv, z, h — nine reads,
            // three writes.
            for i in 1..self.ny - 1 {
                for j in 1..self.nx - 1 {
                    let c0 = e.load(cu.at(i, j));
                    let c1 = e.load(cu.at(i, j - 1));
                    let c2 = e.load(cv.at(i, j));
                    let c3 = e.load(cv.at(i - 1, j));
                    let z0 = e.load(z.at(i, j));
                    let z1 = e.load(z.at(i + 1, j));
                    let h0 = e.load(h.at(i, j));
                    let h1 = e.load(h.at(i, j - 1));
                    let h2 = e.load(h.at(i - 1, j));
                    let m = e.fp_mul(Some(z0), Some(c0));
                    let m2 = e.fp_mul(Some(z1), Some(c1));
                    let s = e.fp_add(Some(m), Some(c2));
                    let s2 = e.fp_add(Some(m2), Some(c3));
                    let w1 = e.fp_add(Some(s), Some(h0));
                    let w2 = e.fp_add(Some(s2), Some(h1));
                    let w3 = e.fp_add(Some(w1), Some(h2));
                    e.store(unew.at(i, j), w1);
                    e.store(vnew.at(i, j), w2);
                    e.store(pnew.at(i, j), w3);
                    e.loop_back(0x680, j + 2 < self.nx);
                }
                e.loop_back(0x6c0, i + 2 < self.ny);
            }
            e.loop_back(0x700, t + 1 < self.timesteps);
        }
    }
}

/// `tomcatv`: vectorized mesh generation, 7 arrays, row sweeps with
/// neighbour reads and a residual reduction.
#[derive(Debug, Clone)]
pub struct Tomcatv {
    n: u64,
    iterations: u64,
}

impl Tomcatv {
    /// An `n × n` mesh for `iterations` relaxation steps.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `iterations` is zero.
    pub fn new(n: u64, iterations: u64) -> Self {
        assert!(n >= 3 && iterations > 0);
        Self { n, iterations }
    }

    /// Footprint in bytes (7 arrays).
    pub fn footprint_bytes(&self) -> u64 {
        7 * self.n * self.n * 4
    }
}

impl Workload for Tomcatv {
    fn name(&self) -> &str {
        "tomcatv"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        let a = grids(0x20_0000_0000, 7, self.n, self.n);
        let (x, y, rx, ry, aa, dd, d) = (a[0], a[1], a[2], a[3], a[4], a[5], a[6]);
        for it in 0..self.iterations {
            // Residual computation: the real loop reads both the x and y
            // meshes' full 5-point neighbourhoods (ten loads per point).
            for i in 1..self.n - 1 {
                for j in 1..self.n - 1 {
                    let x0 = e.load(x.at(i, j - 1));
                    let x1 = e.load(x.at(i, j + 1));
                    let x2 = e.load(x.at(i - 1, j));
                    let x3 = e.load(x.at(i + 1, j));
                    let x4 = e.load(x.at(i, j));
                    let y0 = e.load(y.at(i, j - 1));
                    let y1 = e.load(y.at(i, j + 1));
                    let y2 = e.load(y.at(i - 1, j));
                    let y3 = e.load(y.at(i + 1, j));
                    let y4 = e.load(y.at(i, j));
                    let s1 = e.fp_add(Some(x0), Some(x1));
                    let s2 = e.fp_add(Some(x2), Some(x3));
                    let s3 = e.fp_add(Some(y0), Some(y1));
                    let s4 = e.fp_add(Some(y2), Some(y3));
                    let m = e.fp_mul(Some(s1), Some(y4));
                    let m2 = e.fp_mul(Some(s3), Some(x4));
                    let r = e.fp_add(Some(m), Some(s2));
                    let r2 = e.fp_add(Some(m2), Some(s4));
                    e.store(rx.at(i, j), r);
                    e.store(ry.at(i, j), r2);
                    e.store(aa.at(i, j), s1);
                    e.store(dd.at(i, j), s2);
                    e.loop_back(0x740, j + 2 < self.n);
                }
                e.loop_back(0x780, i + 2 < self.n);
            }
            // Tridiagonal solve along rows (forward + back substitution).
            for i in 1..self.n - 1 {
                for j in 1..self.n - 1 {
                    let a0 = e.load(aa.at(i, j));
                    let d0 = e.load(dd.at(i, j - 1));
                    let q = e.fp_div(Some(a0), Some(d0));
                    e.store(d.at(i, j), q);
                    e.loop_back(0x7c0, j + 2 < self.n);
                }
                for j in (1..self.n - 1).rev() {
                    let d0 = e.load(d.at(i, j));
                    let r0 = e.load(rx.at(i, j));
                    let upd = e.fp_add(Some(d0), Some(r0));
                    e.store(x.at(i, j), upd);
                    e.loop_back(0x800, j > 1);
                }
                e.loop_back(0x840, i + 2 < self.n);
            }
            e.loop_back(0x880, it + 1 < self.iterations);
        }
    }
}

/// `applu`: SSOR sweeps over a 3-D grid with 5 variables per point.
#[derive(Debug, Clone)]
pub struct Applu {
    n: u64,
    iterations: u64,
}

impl Applu {
    /// An `n × n × n` grid (5 variables per point) for `iterations`
    /// SSOR iterations.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `iterations` is zero.
    pub fn new(n: u64, iterations: u64) -> Self {
        assert!(n >= 3 && iterations > 0);
        Self { n, iterations }
    }

    /// Footprint in bytes (5 variables + RHS per point).
    pub fn footprint_bytes(&self) -> u64 {
        6 * 5 * self.n * self.n * self.n * 4
    }

    fn at(&self, field: u64, k: u64, j: u64, i: u64, v: u64) -> u64 {
        let pitch = self.n * self.n * self.n * 5 * 4 + 8192;
        0x30_0000_0000 + field * pitch + (((k * self.n + j) * self.n + i) * 5 + v) * 4
    }
}

impl Workload for Applu {
    fn name(&self) -> &str {
        "applu"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        for it in 0..self.iterations {
            // Lower-triangular sweep (jacl/blts flavour): each point reads
            // its own 5 variables plus the k-1/j-1/i-1 neighbours' first
            // variable, writes its 5.
            for k in 1..self.n - 1 {
                for j in 1..self.n - 1 {
                    for i in 1..self.n - 1 {
                        let mut acc: Option<Reg> = None;
                        for v in 0..5 {
                            let x = e.load(self.at(0, k, j, i, v));
                            let m = e.fp_mul(Some(x), acc);
                            acc = Some(m);
                        }
                        let nk = e.load(self.at(1, k - 1, j, i, 0));
                        let nj = e.load(self.at(1, k, j - 1, i, 0));
                        let ni = e.load(self.at(1, k, j, i - 1, 0));
                        let s1 = e.fp_add(Some(nk), Some(nj));
                        let s2 = e.fp_add(Some(ni), acc);
                        let r = e.fp_add(Some(s1), Some(s2));
                        for v in 0..5 {
                            e.store(self.at(1, k, j, i, v), r);
                        }
                        e.loop_back(0x900, i + 2 < self.n);
                    }
                    e.loop_back(0x940, j + 2 < self.n);
                }
                e.loop_back(0x980, k + 2 < self.n);
            }
            e.loop_back(0x9c0, it + 1 < self.iterations);
        }
    }
}

/// `hydro2d`: Navier–Stokes hydrodynamics, row-wise passes over many
/// arrays.
#[derive(Debug, Clone)]
pub struct Hydro2d {
    nx: u64,
    ny: u64,
    timesteps: u64,
}

impl Hydro2d {
    /// A `nx × ny` grid for `timesteps` steps.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 3×3 or `timesteps` is zero.
    pub fn new(nx: u64, ny: u64, timesteps: u64) -> Self {
        assert!(nx >= 3 && ny >= 3 && timesteps > 0);
        Self { nx, ny, timesteps }
    }

    /// Footprint in bytes (9 arrays).
    pub fn footprint_bytes(&self) -> u64 {
        9 * self.nx * self.ny * 4
    }
}

impl Workload for Hydro2d {
    fn name(&self) -> &str {
        "hydro2d"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        let a = grids(0x40_0000_0000, 9, self.nx, self.ny);
        for t in 0..self.timesteps {
            // Pass 1: advection in x — reads 3 arrays at j-1/j/j+1.
            for i in 0..self.ny {
                for j in 1..self.nx - 1 {
                    let r0 = e.load(a[0].at(i, j - 1));
                    let r1 = e.load(a[0].at(i, j + 1));
                    let u0 = e.load(a[1].at(i, j));
                    let m = e.fp_mul(Some(r1), Some(u0));
                    let s = e.fp_add(Some(m), Some(r0));
                    e.store(a[2].at(i, j), s);
                    e.loop_back(0xa00, j + 2 < self.nx);
                }
                e.loop_back(0xa40, i + 1 < self.ny);
            }
            // Pass 2: advection in y — column-neighbour reads.
            for i in 1..self.ny - 1 {
                for j in 0..self.nx {
                    let r0 = e.load(a[2].at(i - 1, j));
                    let r1 = e.load(a[2].at(i + 1, j));
                    let v0 = e.load(a[3].at(i, j));
                    let m = e.fp_mul(Some(r1), Some(v0));
                    let s = e.fp_add(Some(m), Some(r0));
                    e.store(a[4].at(i, j), s);
                    e.loop_back(0xa80, j + 1 < self.nx);
                }
                e.loop_back(0xac0, i + 2 < self.ny);
            }
            // Pass 3: pressure/energy update over 4 more arrays.
            for i in 0..self.ny {
                for j in 0..self.nx {
                    let p = e.load(a[5].at(i, j));
                    let q = e.load(a[6].at(i, j));
                    let d = e.fp_div(Some(p), Some(q));
                    e.store(a[7].at(i, j), d);
                    e.store(a[8].at(i, j), d);
                    e.loop_back(0xb00, j + 1 < self.nx);
                }
                e.loop_back(0xb40, i + 1 < self.ny);
            }
            e.loop_back(0xb80, t + 1 < self.timesteps);
        }
    }
}

/// `dnasa2`: the two NASA7 kernels the paper uses — a 2-D complex FFT
/// and a 4-way-unrolled matrix multiply.
#[derive(Debug, Clone)]
pub struct Dnasa2 {
    fft_log2: u32,
    mm_n: u64,
    mm_k: u64,
}

impl Dnasa2 {
    /// A `2^fft_log2`-point FFT (run over `2^(fft_log2/2)` rows) plus an
    /// `mm_n × mm_k` by `mm_k × mm_n` matrix multiply.
    ///
    /// # Panics
    ///
    /// Panics if `fft_log2 < 4` or the matrix dimensions are zero.
    pub fn new(fft_log2: u32, mm_n: u64, mm_k: u64) -> Self {
        assert!(fft_log2 >= 4, "FFT needs at least 16 points");
        assert!(mm_n > 0 && mm_k > 0);
        Self {
            fft_log2,
            mm_n,
            mm_k,
        }
    }

    /// Footprint in bytes (complex FFT array + three matrices).
    pub fn footprint_bytes(&self) -> u64 {
        (2u64 << self.fft_log2) * 4 + (2 * self.mm_n * self.mm_k + self.mm_n * self.mm_n) * 4
    }
}

const FFT_BASE: u64 = 0x50_0000_0000;
const MM_BASE: u64 = 0x51_0000_0000;

impl Workload for Dnasa2 {
    fn name(&self) -> &str {
        "dnasa2"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        let n = 1u64 << self.fft_log2;
        // --- FFT: radix-2 DIT stages over interleaved re/im words.
        let at = |idx: u64, im: u64| FFT_BASE + (idx * 2 + im) * 4;
        for s in 0..self.fft_log2 {
            let half = 1u64 << s;
            let step = half * 2;
            let mut base = 0;
            while base < n {
                for k in 0..half {
                    let i0 = base + k;
                    let i1 = base + k + half;
                    let ar = e.load(at(i0, 0));
                    let ai = e.load(at(i0, 1));
                    let br = e.load(at(i1, 0));
                    let bi = e.load(at(i1, 1));
                    let tr = e.fp_mul(Some(br), Some(ai));
                    let ti = e.fp_mul(Some(bi), Some(ar));
                    let s0 = e.fp_add(Some(ar), Some(tr));
                    let s1 = e.fp_add(Some(ai), Some(ti));
                    e.store(at(i0, 0), s0);
                    e.store(at(i0, 1), s1);
                    let d0 = e.fp_add(Some(ar), Some(tr));
                    let d1 = e.fp_add(Some(ai), Some(ti));
                    e.store(at(i1, 0), d0);
                    e.store(at(i1, 1), d1);
                    e.loop_back(0xc00, k + 1 < half);
                }
                base += step;
                e.loop_back(0xc40, base < n);
            }
            e.loop_back(0xc80, s + 1 < self.fft_log2);
        }
        // --- Matrix multiply, 4-way unrolled over j: C[n×n] = A[n×k] B[k×n].
        let a_at = |i: u64, kk: u64| MM_BASE + (i * self.mm_k + kk) * 4;
        let b_at = |kk: u64, j: u64| MM_BASE + 0x100_0000 + (kk * self.mm_n + j) * 4;
        let c_at = |i: u64, j: u64| MM_BASE + 0x200_0000 + (i * self.mm_n + j) * 4;
        for i in 0..self.mm_n {
            let mut j = 0;
            while j < self.mm_n {
                let lanes = (self.mm_n - j).min(4);
                let mut accs: Vec<Reg> = Vec::new();
                for _ in 0..lanes {
                    accs.push(e.fp_add(None, None));
                }
                for kk in 0..self.mm_k {
                    let av = e.load(a_at(i, kk));
                    for (l, acc) in accs.iter_mut().enumerate() {
                        let bv = e.load(b_at(kk, j + l as u64));
                        let m = e.fp_mul(Some(av), Some(bv));
                        *acc = e.fp_add(Some(m), Some(*acc));
                    }
                    e.loop_back(0xd00, kk + 1 < self.mm_k);
                }
                for (l, acc) in accs.iter().enumerate() {
                    e.store(c_at(i, j + l as u64), *acc);
                }
                j += lanes;
                e.loop_back(0xd40, j < self.mm_n);
            }
            e.loop_back(0xd80, i + 1 < self.mm_n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::reuse::ReuseProfile;
    use membw_trace::stats::TraceStats;

    #[test]
    fn all_grid_kernels_are_deterministic() {
        let swm = Swm::new(20, 20, 2);
        assert_eq!(swm.collect_mem_refs(), swm.collect_mem_refs());
        let tom = Tomcatv::new(16, 2);
        assert_eq!(tom.collect_mem_refs(), tom.collect_mem_refs());
        let ap = Applu::new(8, 1);
        assert_eq!(ap.collect_mem_refs(), ap.collect_mem_refs());
        let hy = Hydro2d::new(16, 16, 1);
        assert_eq!(hy.collect_mem_refs(), hy.collect_mem_refs());
        let dn = Dnasa2::new(6, 8, 8);
        assert_eq!(dn.collect_mem_refs(), dn.collect_mem_refs());
    }

    #[test]
    fn swm_footprint_tracks_grid() {
        let w = Swm::new(32, 32, 1);
        let s = TraceStats::of(&w);
        // Boundary rows are never touched, so measured < declared.
        assert!(s.footprint_bytes(4) <= w.footprint_bytes());
        assert!(s.footprint_bytes(4) > w.footprint_bytes() / 3);
    }

    #[test]
    fn swm_has_spatial_but_little_cross_iteration_temporal_locality() {
        let w = Swm::new(48, 48, 2);
        let p = ReuseProfile::measure(&w, 32);
        // Small cache (64 blocks = 2 KiB): high miss ratio (streams).
        // Cache holding the full footprint: low miss ratio.
        let small = p.lru_miss_ratio(64);
        let big = p.lru_miss_ratio(1 << 14);
        assert!(small > 0.05, "small = {small}");
        // The big-cache ratio is dominated by compulsory misses.
        assert!(big < 0.06, "big = {big}");
        assert!(big * 2.0 < small, "capacity must matter: {big} vs {small}");
    }

    #[test]
    fn applu_scales_cubically() {
        let small = Applu::new(6, 1).collect_mem_refs().len() as f64;
        let big = Applu::new(12, 1).collect_mem_refs().len() as f64;
        // Interior scales as (n-2)^3: (10/4)^3 ≈ 15.6.
        let ratio = big / small;
        assert!(ratio > 10.0 && ratio < 20.0, "ratio = {ratio}");
    }

    #[test]
    fn dnasa2_fft_work_is_n_log_n() {
        let small = Dnasa2::new(8, 1, 1).collect_mem_refs().len() as f64;
        let big = Dnasa2::new(10, 1, 1).collect_mem_refs().len() as f64;
        // n log n: (1024*10)/(256*8) = 5.0.
        let ratio = big / small;
        assert!(ratio > 4.0 && ratio < 6.5, "ratio = {ratio}");
    }

    #[test]
    fn dnasa2_mm_reuses_b_columns() {
        // The MM phase re-reads B heavily: a cache holding B turns those
        // into hits, so the reuse profile must show strong temporal reuse.
        let w = Dnasa2::new(4, 16, 16);
        let p = ReuseProfile::measure(&w, 32);
        assert!(p.cold_misses() * 4 < p.total());
    }

    #[test]
    fn tomcatv_write_fraction_is_moderate() {
        let s = TraceStats::of(&Tomcatv::new(20, 2));
        let f = s.write_fraction();
        assert!(f > 0.2 && f < 0.5, "write fraction = {f}");
    }

    #[test]
    fn hydro2d_streams_many_arrays() {
        let w = Hydro2d::new(24, 24, 1);
        let s = TraceStats::of(&w);
        assert!(s.footprint_bytes(4) > 9 * 20 * 20 * 4 / 2);
    }
}
