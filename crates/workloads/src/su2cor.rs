//! `su2cor`: lattice-QCD-style sweeps over conflicting large arrays.
//!
//! SPEC92/95's su2cor iterates over several large arrays whose base
//! addresses conflict heavily in its main routine — the paper notes the
//! conflicts persist "until the cache size reaches 64KB" (§4.2). This
//! kernel sweeps `num_arrays` arrays at the *same index* each iteration,
//! with bases spaced a large power of two apart so that direct-mapped
//! caches of any smaller size see all arrays land in the same sets.

use crate::emit::Emit;
use membw_trace::{TraceSink, Workload};

const BASE: u64 = 0x8000_0000;
/// Offset quantum for the congruence schedule below.
const SPACING_QUANTUM: u64 = 16 * 1024;
/// Per-array offsets in quanta. Chosen so conflicts *taper* with cache
/// size the way the paper describes for su2cor (§4.2, Table 9): all
/// four arrays congruent at ≤ 16 KiB (full thrash), three at 32 KiB,
/// one pair still colliding at 64 KiB (the paper's Table 9 measures an
/// 8.4 associativity factor there), fully resolved at 128 KiB.
const OFFSET_QUANTA: [u64; 8] = [0, 1, 2, 4, 3, 5, 6, 7];

/// The conflicting-array sweep kernel. See the module-level documentation.
#[derive(Debug, Clone)]
pub struct Su2cor {
    words_per_array: u64,
    num_arrays: u64,
    iterations: u64,
    name: &'static str,
}

impl Su2cor {
    /// SPEC92-flavoured instance.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or more than 8 arrays are asked
    /// for.
    pub fn new(words_per_array: u64, num_arrays: u64, iterations: u64) -> Self {
        Self::with_name("su2cor", words_per_array, num_arrays, iterations)
    }

    /// SPEC95-flavoured instance (same kernel, bigger data; listed
    /// separately in Table 3).
    pub fn spec95(words_per_array: u64, num_arrays: u64, iterations: u64) -> Self {
        Self::with_name("su2cor95", words_per_array, num_arrays, iterations)
    }

    fn with_name(
        name: &'static str,
        words_per_array: u64,
        num_arrays: u64,
        iterations: u64,
    ) -> Self {
        assert!(words_per_array > 0 && num_arrays > 1 && iterations > 0);
        assert!(num_arrays <= 8, "at most 8 lattice arrays");
        Self {
            words_per_array,
            num_arrays,
            iterations,
            name,
        }
    }

    /// Footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.num_arrays * self.words_per_array * 4
    }

    /// Per-array region stride: a multiple of 128 KiB holding one array
    /// plus the largest offset, so [`OFFSET_QUANTA`] alone controls the
    /// congruence classes at every cache size up to 128 KiB.
    fn region(&self) -> u64 {
        (self.words_per_array * 4 + 8 * SPACING_QUANTUM).div_ceil(128 * 1024) * 128 * 1024
    }

    fn addr(&self, array: u64, word: u64) -> u64 {
        BASE + array * self.region() + OFFSET_QUANTA[array as usize] * SPACING_QUANTUM + word * 4
    }
}

impl Workload for Su2cor {
    fn name(&self) -> &str {
        self.name
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        // Gauge-field update: out[i] = f(in_k[i] ...) — all arrays read
        // at the same index, last array written.
        let out = self.num_arrays - 1;
        for it in 0..self.iterations {
            for i in 0..self.words_per_array {
                let mut acc = None;
                for a in 0..self.num_arrays - 1 {
                    let v = e.load(self.addr(a, i));
                    let m = e.fp_mul(Some(v), acc);
                    acc = Some(e.fp_add(Some(m), acc));
                }
                let r = e.fp_add(acc, None);
                e.store(self.addr(out, i), r);
                e.int_op_into(0, Some(0), None); // induction update
                e.loop_back(0x500, i + 1 < self.words_per_array);
            }
            e.loop_back(0x540, it + 1 < self.iterations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_cache::{Associativity, Cache, CacheConfig};
    use membw_trace::stats::TraceStats;

    fn small() -> Su2cor {
        Su2cor::new(2048, 4, 2)
    }

    #[test]
    fn deterministic_and_exact_footprint() {
        let w = small();
        assert_eq!(w.collect_mem_refs(), w.collect_mem_refs());
        let s = TraceStats::of(&w);
        assert_eq!(s.footprint_bytes(4), w.footprint_bytes());
    }

    #[test]
    fn conflicts_punish_small_direct_mapped_caches() {
        // At 16 KiB the four arrays' same-index words collide every
        // access in a direct-mapped cache; 4-way absorbs them.
        let w = small();
        let run = |size, assoc| {
            let cfg = CacheConfig::builder(size, 32)
                .associativity(assoc)
                .build()
                .unwrap();
            let mut c = Cache::new(cfg);
            w.for_each_mem_ref(&mut |r| {
                c.access(r);
            });
            c.flush().demand_misses()
        };
        let dm = run(16 * 1024, Associativity::Ways(1));
        let ways4 = run(16 * 1024, Associativity::Ways(4));
        assert!(dm > ways4 * 3, "direct-mapped must thrash: {dm} vs {ways4}");
        // Conflicts taper: at 64 KiB only one pair still collides, and
        // 128 KiB resolves everything (the paper's §4.2 progression).
        let dm64 = run(64 * 1024, Associativity::Ways(1));
        assert!(
            dm64 * 3 < dm * 2,
            "64 KiB keeps only one colliding pair: {dm64} vs {dm}"
        );
        let dm128 = run(128 * 1024, Associativity::Ways(1));
        assert!(
            dm128 * 5 < dm,
            "128 KiB resolves all conflicts: {dm128} vs {dm}"
        );
    }

    #[test]
    fn spec95_variant_has_its_own_name() {
        assert_eq!(Su2cor::spec95(1024, 4, 1).name(), "su2cor95");
        assert_eq!(small().name(), "su2cor");
    }

    #[test]
    fn writes_are_one_array_of_n() {
        let s = TraceStats::of(&small());
        let frac = s.writes as f64 / s.refs as f64;
        assert!(frac > 0.15 && frac < 0.40, "write fraction = {frac}");
    }
}
