//! Synthetic SPEC-like workload kernels for the `membw` simulators.
//!
//! The paper traces seven SPEC92 and seven SPEC95 programs (Table 3). We
//! cannot ship SPEC binaries or QPT traces, so this crate implements, for
//! each benchmark, a kernel that *executes the same algorithm class over
//! simulated data structures* and emits a deterministic micro-op trace:
//!
//! | name | algorithm class | reference-pattern signature |
//! |------|-----------------|------------------------------|
//! | `compress` | LZW with open-addressed hash table | scattered table probes, almost no spatial locality |
//! | `eqntott` | quicksort over PTERM-like records | record-pair compares, mixed locality |
//! | `espresso` | cube-list logic minimization | small working set, heavy reuse |
//! | `su2cor` | lattice sweeps over conflicting arrays | same-index reads of power-of-two-spaced arrays |
//! | `swm` | shallow-water stencils | streaming multi-array sweeps, little temporal reuse |
//! | `tomcatv` | mesh-generation stencils | row sweeps with neighbour reads |
//! | `dnasa2` | 2-D FFT + unrolled matrix multiply | butterfly strides + tiled reuse |
//! | `applu` / `hydro2d` / `swim` / `su2cor95` | larger 2-D/3-D grid solvers | streaming, larger footprints |
//! | `li` | cons-cell interpreter | pointer chasing in a small heap |
//! | `perl` | string hashing / associative arrays | dictionary scan + scattered probes |
//! | `vortex` | object database | index-tree descent + object-field bursts |
//!
//! Data-set sizes are scaled (see [`Scale`]) so that the cache-size
//! crossovers of the paper's tables land at the same *relative* positions
//! (cache ≪ footprint, cache ≈ footprint, cache ≫ footprint).
//!
//! # Example
//!
//! ```
//! use membw_workloads::{suite92, Scale};
//! use membw_trace::stats::TraceStats;
//!
//! let suite = suite92(Scale::Test);
//! let compress = suite.iter().find(|b| b.name() == "compress").unwrap();
//! let stats = TraceStats::of(&compress.workload());
//! assert!(stats.refs > 1_000);
//! ```

pub mod emit;
pub mod kernels;
pub mod suite;

mod compress;
mod eqntott;
mod espresso;
mod grid;
mod interp;
mod su2cor;
mod vortex;

pub use compress::Compress;
pub use eqntott::Eqntott;
pub use espresso::Espresso;
pub use grid::{Applu, Dnasa2, Hydro2d, Swm, Tomcatv};
pub use interp::{Li, Perl};
pub use su2cor::Su2cor;
pub use suite::{suite92, suite95, Benchmark, Scale, Suite};
pub use vortex::Vortex;
