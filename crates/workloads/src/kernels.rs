//! Parameterized algorithm kernels for the I/O-complexity analysis
//! (Table 2 / §2.4).
//!
//! The paper derives, Hong–Kung style, how off-chip traffic scales with
//! on-chip memory size `S` for four algorithms: tiled matrix multiply
//! (`O(N³/√S)` — here the tile is the explicit parameter), stencil
//! relaxation, FFT, and merge sort (`O(N log N / log S)`). These kernels
//! execute the real algorithms so the growth rates can be *measured*
//! (with the minimal-traffic cache of `membw-mtc`) rather than assumed.

use crate::emit::{mix64, Emit};
use membw_trace::{TraceSink, Workload};

const TMM_BASE: u64 = 0x90_0000_0000;

/// Tiled matrix multiply: `C = A·B`, all `n × n`, with `tile × tile`
/// blocking.
///
/// With a tile chosen so three tiles fit in on-chip memory, traffic is
/// `Θ(n³ / tile)` — the Table 2 row `O(N³/√S)`.
#[derive(Debug, Clone)]
pub struct TiledMatMul {
    n: u64,
    tile: u64,
}

impl TiledMatMul {
    /// Multiply `n × n` matrices with `tile`-sized blocks.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is zero or larger than `n`.
    pub fn new(n: u64, tile: u64) -> Self {
        assert!(tile > 0 && tile <= n, "tile must be in 1..=n");
        Self { n, tile }
    }

    /// Footprint in bytes (three matrices).
    pub fn footprint_bytes(&self) -> u64 {
        3 * self.n * self.n * 4
    }

    fn a(&self, i: u64, k: u64) -> u64 {
        TMM_BASE + (i * self.n + k) * 4
    }
    fn b(&self, k: u64, j: u64) -> u64 {
        TMM_BASE + 0x1000_0000 + (k * self.n + j) * 4
    }
    fn c(&self, i: u64, j: u64) -> u64 {
        TMM_BASE + 0x2000_0000 + (i * self.n + j) * 4
    }
}

impl Workload for TiledMatMul {
    fn name(&self) -> &str {
        "tmm"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        let n = self.n;
        let t = self.tile;
        let mut ii = 0;
        while ii < n {
            let mut jj = 0;
            while jj < n {
                let mut kk = 0;
                while kk < n {
                    for i in ii..(ii + t).min(n) {
                        for j in jj..(jj + t).min(n) {
                            let mut acc = e.load(self.c(i, j));
                            for k in kk..(kk + t).min(n) {
                                let av = e.load(self.a(i, k));
                                let bv = e.load(self.b(k, j));
                                let m = e.fp_mul(Some(av), Some(bv));
                                acc = e.fp_add(Some(m), Some(acc));
                            }
                            e.store(self.c(i, j), acc);
                            e.loop_back(0x1100, j + 1 < (jj + t).min(n));
                        }
                        e.loop_back(0x1140, i + 1 < (ii + t).min(n));
                    }
                    kk += t;
                }
                jj += t;
            }
            ii += t;
            e.loop_back(0x1180, ii < n);
        }
    }
}

const STENCIL_BASE: u64 = 0xa0_0000_0000;

/// Stencil relaxation: `iters` 5-point sweeps over an `n × n` matrix,
/// ping-ponging between two planes.
#[derive(Debug, Clone)]
pub struct Stencil {
    n: u64,
    iters: u64,
}

impl Stencil {
    /// An `n × n` stencil run for `iters` sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `iters` is zero.
    pub fn new(n: u64, iters: u64) -> Self {
        assert!(n >= 3 && iters > 0);
        Self { n, iters }
    }

    /// Footprint in bytes (two planes).
    pub fn footprint_bytes(&self) -> u64 {
        2 * self.n * self.n * 4
    }

    fn at(&self, plane: u64, i: u64, j: u64) -> u64 {
        STENCIL_BASE + plane * 0x1000_0000 + (i * self.n + j) * 4
    }
}

impl Workload for Stencil {
    fn name(&self) -> &str {
        "stencil"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        for it in 0..self.iters {
            let (src, dst) = (it % 2, (it + 1) % 2);
            for i in 1..self.n - 1 {
                for j in 1..self.n - 1 {
                    let c = e.load(self.at(src, i, j));
                    let l = e.load(self.at(src, i, j - 1));
                    let r = e.load(self.at(src, i, j + 1));
                    let u = e.load(self.at(src, i - 1, j));
                    let d = e.load(self.at(src, i + 1, j));
                    let s1 = e.fp_add(Some(l), Some(r));
                    let s2 = e.fp_add(Some(u), Some(d));
                    let s3 = e.fp_add(Some(s1), Some(s2));
                    let w = e.fp_mul(Some(s3), Some(c));
                    e.store(self.at(dst, i, j), w);
                    e.loop_back(0x1200, j + 2 < self.n);
                }
                e.loop_back(0x1240, i + 2 < self.n);
            }
            e.loop_back(0x1280, it + 1 < self.iters);
        }
    }
}

/// Time-tiled stencil: the blocked schedule the Table 2 `O(N²/√S)` law
/// presumes. Space is cut into `tile × tile` blocks; each block (plus a
/// halo) is swept `tile/2` timesteps before moving on, so a block's data
/// is loaded from memory once per *time block* rather than once per
/// sweep.
///
/// The emitted addresses approximate the trapezoidal schedule (the halo
/// is held fixed rather than shrinking per step); the traffic asymptotics
/// are what matter for the growth-rate measurement.
#[derive(Debug, Clone)]
pub struct TimeTiledStencil {
    n: u64,
    iters: u64,
    tile: u64,
}

impl TimeTiledStencil {
    /// An `n × n` stencil run for `iters` sweeps with `tile`-sized
    /// space-time blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`, `iters` is zero, or `tile` is zero or larger
    /// than `n`.
    pub fn new(n: u64, iters: u64, tile: u64) -> Self {
        assert!(n >= 3 && iters > 0);
        assert!(tile > 0 && tile <= n, "tile must be in 1..=n");
        Self { n, iters, tile }
    }

    /// Footprint in bytes (two planes).
    pub fn footprint_bytes(&self) -> u64 {
        2 * self.n * self.n * 4
    }

    fn at(&self, plane: u64, i: u64, j: u64) -> u64 {
        STENCIL_BASE + plane * 0x1000_0000 + (i * self.n + j) * 4
    }
}

impl Workload for TimeTiledStencil {
    fn name(&self) -> &str {
        "stencil-tiled"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        let t_block = (self.tile / 2).max(1);
        let mut t0 = 0;
        while t0 < self.iters {
            let steps = t_block.min(self.iters - t0);
            let halo = steps; // fixed outer halo for the whole block
            let mut bi = 1;
            while bi < self.n - 1 {
                let mut bj = 1;
                while bj < self.n - 1 {
                    let i_lo = bi.saturating_sub(halo).max(1);
                    let i_hi = (bi + self.tile + halo).min(self.n - 1);
                    let j_lo = bj.saturating_sub(halo).max(1);
                    let j_hi = (bj + self.tile + halo).min(self.n - 1);
                    for step in 0..steps {
                        let (src, dst) = ((t0 + step) % 2, (t0 + step + 1) % 2);
                        for i in i_lo..i_hi {
                            for j in j_lo..j_hi {
                                let c = e.load(self.at(src, i, j));
                                let l = e.load(self.at(src, i, j - 1));
                                let r = e.load(self.at(src, i, j + 1));
                                let u = e.load(self.at(src, i.saturating_sub(1).max(1), j));
                                let d = e.load(self.at(src, (i + 1).min(self.n - 2), j));
                                let s1 = e.fp_add(Some(l), Some(r));
                                let s2 = e.fp_add(Some(u), Some(d));
                                let s3 = e.fp_add(Some(s1), Some(s2));
                                let w = e.fp_mul(Some(s3), Some(c));
                                e.store(self.at(dst, i, j), w);
                            }
                            e.loop_back(0x12c0, i + 1 < i_hi);
                        }
                    }
                    bj += self.tile;
                }
                bi += self.tile;
                e.loop_back(0x1340, bi < self.n - 1);
            }
            t0 += steps;
        }
    }
}

const FFT_BASE: u64 = 0xb0_0000_0000;

/// An `N = 2^log2n`-point radix-2 FFT over interleaved complex words.
#[derive(Debug, Clone)]
pub struct Fft {
    log2n: u32,
}

impl Fft {
    /// A `2^log2n`-point transform.
    ///
    /// # Panics
    ///
    /// Panics if `log2n < 2`.
    pub fn new(log2n: u32) -> Self {
        assert!(log2n >= 2, "FFT needs at least 4 points");
        Self { log2n }
    }

    /// Footprint in bytes (complex array).
    pub fn footprint_bytes(&self) -> u64 {
        (2u64 << self.log2n) * 4
    }

    fn at(idx: u64, im: u64) -> u64 {
        FFT_BASE + (idx * 2 + im) * 4
    }
}

impl Workload for Fft {
    fn name(&self) -> &str {
        "fft"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        let n = 1u64 << self.log2n;
        for s in 0..self.log2n {
            let half = 1u64 << s;
            let mut base = 0;
            while base < n {
                for k in 0..half {
                    let (i0, i1) = (base + k, base + k + half);
                    let ar = e.load(Fft::at(i0, 0));
                    let ai = e.load(Fft::at(i0, 1));
                    let br = e.load(Fft::at(i1, 0));
                    let bi = e.load(Fft::at(i1, 1));
                    let tr = e.fp_mul(Some(br), Some(bi));
                    let s0 = e.fp_add(Some(ar), Some(tr));
                    let s1 = e.fp_add(Some(ai), Some(tr));
                    e.store(Fft::at(i0, 0), s0);
                    e.store(Fft::at(i0, 1), s1);
                    e.store(Fft::at(i1, 0), s0);
                    e.store(Fft::at(i1, 1), s1);
                    e.loop_back(0x1300, k + 1 < half);
                }
                base += half * 2;
                e.loop_back(0x1340, base < n);
            }
            e.loop_back(0x1380, s + 1 < self.log2n);
        }
    }
}

const SORT_BASE: u64 = 0xc0_0000_0000;

/// Bottom-up merge sort over `n` 4-byte keys, ping-ponging between two
/// buffers.
#[derive(Debug, Clone)]
pub struct MergeSort {
    n: u64,
    seed: u64,
}

impl MergeSort {
    /// Sort `n` keys.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n >= 2);
        Self { n, seed }
    }

    /// Footprint in bytes (two buffers).
    pub fn footprint_bytes(&self) -> u64 {
        2 * self.n * 4
    }

    fn at(buf: u64, i: u64) -> u64 {
        SORT_BASE + buf * 0x1000_0000 + i * 4
    }
}

impl Workload for MergeSort {
    fn name(&self) -> &str {
        "sort"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        let n = self.n as usize;
        let mut keys: Vec<u64> = (0..self.n).map(|i| mix64(self.seed ^ i)).collect();
        // Write the initial keys.
        for i in 0..self.n {
            e.store_imm(Self::at(0, i));
        }
        let mut scratch = keys.clone();
        let mut src = 0u64;
        let mut width = 1usize;
        while width < n {
            let dst = 1 - src;
            let mut lo = 0usize;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                let (mut i, mut j, mut o) = (lo, mid, lo);
                while i < mid || j < hi {
                    let take_left = j >= hi || (i < mid && keys[i] <= keys[j]);
                    let idx = if take_left { i } else { j };
                    let v = e.load(Self::at(src, idx as u64));
                    let cmp = e.int_op(Some(v), None);
                    e.branch(0x1400, take_left, Some(cmp));
                    e.store(Self::at(dst, o as u64), v);
                    scratch[o] = keys[idx];
                    if take_left {
                        i += 1;
                    } else {
                        j += 1;
                    }
                    o += 1;
                }
                lo = hi;
                e.loop_back(0x1440, lo < n);
            }
            std::mem::swap(&mut keys, &mut scratch);
            src = dst;
            width *= 2;
            e.loop_back(0x1480, width < n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::stats::TraceStats;

    #[test]
    fn tmm_compute_is_cubic_and_tile_invariant() {
        let coarse = TiledMatMul::new(32, 32).collect_mem_refs().len();
        let tiled = TiledMatMul::new(32, 8).collect_mem_refs().len();
        // Same asymptotic work regardless of tiling (within bookkeeping).
        let ratio = tiled as f64 / coarse as f64;
        assert!((0.8..1.3).contains(&ratio), "ratio = {ratio}");
        let big = TiledMatMul::new(64, 8).collect_mem_refs().len();
        assert!(big as f64 / tiled as f64 > 6.0, "n³ growth");
    }

    #[test]
    fn stencil_footprint_and_work() {
        let w = Stencil::new(32, 3);
        let s = TraceStats::of(&w);
        assert!(s.footprint_bytes(4) <= w.footprint_bytes());
        let one = Stencil::new(32, 1).collect_mem_refs().len();
        let three = Stencil::new(32, 3).collect_mem_refs().len();
        assert_eq!(three, one * 3, "work linear in iterations");
    }

    #[test]
    fn fft_touches_whole_array_each_stage() {
        let w = Fft::new(8);
        let s = TraceStats::of(&w);
        assert_eq!(s.footprint_bytes(4), w.footprint_bytes());
        // Each of the 8 stages does n/2 butterflies × 8 refs.
        assert_eq!(s.refs, 8 * 128 * 8);
    }

    #[test]
    fn merge_sort_does_log_passes() {
        let n = 256u64;
        let w = MergeSort::new(n, 1);
        let s = TraceStats::of(&w);
        // init writes + log2(256)=8 passes × (1 load + 1 store) per key.
        assert_eq!(s.refs, n + 8 * n * 2);
    }

    #[test]
    fn merge_sort_shadow_keys_end_sorted() {
        // Re-run the same merge logic on plain data to confirm the trace
        // generator implements a real sort.
        let mut keys: Vec<u64> = (0..100u64).map(|i| mix64(7 ^ i)).collect();
        let w = MergeSort::new(100, 7);
        let _ = w.collect_mem_refs();
        keys.sort_unstable();
        assert!(keys.windows(2).all(|p| p[0] <= p[1]));
    }

    #[test]
    fn time_tiled_stencil_is_deterministic_and_bounded() {
        let a = TimeTiledStencil::new(24, 4, 6).collect_mem_refs();
        let b = TimeTiledStencil::new(24, 4, 6).collect_mem_refs();
        assert_eq!(a, b);
        let s = TraceStats::of(&TimeTiledStencil::new(24, 4, 6));
        assert!(s.footprint_bytes(4) <= TimeTiledStencil::new(24, 4, 6).footprint_bytes());
    }

    #[test]
    fn time_tiling_improves_small_memory_reuse() {
        // With on-chip memory far below one plane, the tiled schedule
        // re-reads a small region repeatedly (high temporal locality),
        // unlike plain sweeps. Compare LRU miss ratios at a tiny capacity.
        use membw_trace::reuse::ReuseProfile;
        // N large enough that three source rows overflow the capacity,
        // tile small enough that a halo'd space-time block fits it.
        let plain = Stencil::new(160, 4);
        let tiled = TimeTiledStencil::new(160, 4, 4);
        let cap_blocks = 32; // 1 KiB at 32-byte blocks
        let p_plain = ReuseProfile::measure(&plain, 32).lru_miss_ratio(cap_blocks);
        let p_tiled = ReuseProfile::measure(&tiled, 32).lru_miss_ratio(cap_blocks);
        assert!(
            p_tiled < p_plain,
            "tiling must improve locality: {p_tiled} vs {p_plain}"
        );
    }

    #[test]
    fn all_kernels_deterministic() {
        for (a, b) in [
            (
                TiledMatMul::new(16, 4).collect_mem_refs(),
                TiledMatMul::new(16, 4).collect_mem_refs(),
            ),
            (
                MergeSort::new(64, 2).collect_mem_refs(),
                MergeSort::new(64, 2).collect_mem_refs(),
            ),
        ] {
            assert_eq!(a, b);
        }
    }
}
