//! `compress`: LZW compression over an open-addressed hash table.
//!
//! SPEC92's 129.compress spends its time probing a code table keyed by
//! (prefix, char) pairs; the probes land all over the table, so the
//! reference stream has almost no spatial locality — the paper's Table 7
//! shows it generating *more* traffic with a 64 KiB cache than with no
//! cache at all. This kernel runs a real LZW encoder over a synthetic
//! input with tunable redundancy, emitting the actual probe sequence of
//! an open-addressed (double-hashed) code table.

use crate::emit::{mix64, Emit};
use membw_trace::{TraceSink, Workload};

const INPUT_BASE: u64 = 0x1000_0000;
const OUTPUT_BASE: u64 = 0x1800_0000;
const TABLE_BASE: u64 = 0x2000_0000;
/// Bytes per hash-table entry: key word + code word.
const ENTRY_BYTES: u64 = 8;

/// The LZW/hash-table kernel. See the module-level documentation.
#[derive(Debug, Clone)]
pub struct Compress {
    input_bytes: u64,
    table_entries: u64,
    seed: u64,
}

impl Compress {
    /// Compress `input_bytes` of synthetic text through a code table of
    /// `table_entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a power of two.
    pub fn new(input_bytes: u64, table_entries: u64, seed: u64) -> Self {
        assert!(
            table_entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Self {
            input_bytes,
            table_entries,
            seed,
        }
    }

    /// Footprint in bytes (input + output stream + table).
    pub fn footprint_bytes(&self) -> u64 {
        3 * self.input_bytes + self.table_entries * ENTRY_BYTES
    }

    /// Synthetic input symbol at position `i`: a Markov-ish byte stream
    /// with enough repetition for the dictionary to get hits.
    fn symbol(&self, i: u64) -> u64 {
        // 32 hot symbols with occasional excursions.
        let r = mix64(self.seed ^ i);
        if r.is_multiple_of(8) {
            r >> 8 & 0xff
        } else {
            (r >> 8) % 32
        }
    }
}

impl Workload for Compress {
    fn name(&self) -> &str {
        "compress"
    }

    fn generate(&self, sink: &mut dyn TraceSink) {
        let mut e = Emit::new(sink);
        // Simulator-side table state (keys only; the trace carries the
        // probe addresses).
        let mut table: Vec<u64> = vec![u64::MAX; self.table_entries as usize];
        let mut next_code: u64 = 256;
        let mask = self.table_entries - 1;

        let mut prefix = self.symbol(0);
        let mut out_pos: u64 = 0;
        for i in 1..self.input_bytes {
            // Sequential input scan (word-granular).
            let in_reg = e.load(INPUT_BASE + (i & !3));
            let c = self.symbol(i);
            let key = (prefix << 9) | c | 1 << 63; // nonzero marker
                                                   // Double hashing, as in compress(1).
            let h1 = mix64(key) & mask;
            let h2 = (mix64(key ^ 0xabcdef) | 1) & mask;
            let mut slot = h1;
            let mut found = false;
            let mut probes = 0u64;
            loop {
                probes += 1;
                let entry_addr = TABLE_BASE + slot * ENTRY_BYTES;
                let k = e.load(entry_addr); // key word
                e.branch(0x100, table[slot as usize] == key, Some(k));
                if table[slot as usize] == key {
                    // Dictionary hit: read the code, extend the prefix.
                    let code = e.load(entry_addr + 4);
                    let _ = e.int_op(Some(code), Some(in_reg));
                    // Next prefix = the matched code; a compact code space
                    // keeps the dictionary hit rate high, as LZW on real
                    // text achieves through long matches.
                    prefix = mix64(key) & 0xff;
                    found = true;
                    break;
                }
                if table[slot as usize] == u64::MAX {
                    // Empty slot: insert if the table still has room.
                    if next_code < self.table_entries * 4 {
                        table[slot as usize] = key;
                        next_code += 1;
                        let kr = e.int_op(Some(in_reg), None);
                        e.store(entry_addr, kr);
                        e.store_imm(entry_addr + 4);
                    }
                    break;
                }
                slot = (slot + h2) & mask;
                if probes > 16 {
                    break; // pathological cluster; give up like compress does
                }
            }
            if !found {
                // Emit the code for the old prefix into the sequential
                // output stream; restart with c.
                let code = e.int_op(Some(in_reg), None);
                e.store(OUTPUT_BASE + (out_pos & !3), code);
                out_pos += 2; // ~12-bit codes
                prefix = c;
            }
            e.loop_back(0x140, i + 1 < self.input_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::stats::TraceStats;

    fn small() -> Compress {
        Compress::new(20_000, 1 << 12, 42)
    }

    #[test]
    fn deterministic() {
        assert_eq!(small().collect_mem_refs(), small().collect_mem_refs());
    }

    #[test]
    fn touches_most_of_the_table() {
        let s = TraceStats::of(&small());
        // Footprint should be dominated by the table, not the input.
        assert!(
            s.footprint_bytes(4) > 1 << 14,
            "footprint = {}",
            s.footprint_bytes(4)
        );
        assert!(s.writes > 0, "inserts write the table");
    }

    #[test]
    fn table_probes_have_little_spatial_locality() {
        // Consecutive table probes land in different 32-byte blocks: a
        // larger block buys almost nothing, which is why the paper's
        // Table 7 shows compress out-trafficking a cacheless system.
        let refs = small().collect_mem_refs();
        let table_refs: Vec<u64> = refs
            .iter()
            .filter(|r| r.addr >= TABLE_BASE)
            .map(|r| r.addr / 32)
            .collect();
        assert!(table_refs.len() > 10_000, "table traffic dominates");
        let same_block =
            table_refs.windows(2).filter(|w| w[0] == w[1]).count() as f64 / table_refs.len() as f64;
        assert!(
            same_block < 0.45,
            "consecutive probes should scatter, got {same_block}"
        );
    }

    #[test]
    fn footprint_accounting_is_close() {
        let w = small();
        let s = TraceStats::of(&w);
        assert!(s.footprint_bytes(4) <= w.footprint_bytes());
    }
}
