//! Replacement-policy machinery shared by the cache sets.
//!
//! Victim choice works off per-line metadata (`last_touch`, `filled_at`)
//! plus, for tree pseudo-LRU, a per-set bit vector. The policies here are
//! the ones the paper's Table 9 factor experiments exercise (LRU) plus the
//! cheap alternatives a "flexible cache" (§5.3) would offer.

use crate::config::ReplacementPolicy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-set tree-PLRU state, valid for power-of-two way counts.
///
/// Bit `i` of the word is internal node `i` of the binary tree (root at
/// 0); a 0 bit points left, 1 points right, and the victim walk follows
/// the pointers while an access flips the path away from itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlruBits(u64);

impl PlruBits {
    /// Walk the tree toward the pseudo-LRU victim among `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ways` is not a power of two or exceeds 64.
    pub fn victim(&self, ways: usize) -> usize {
        debug_assert!(ways.is_power_of_two() && ways <= 64);
        let mut node = 0usize; // index within a conceptual heap, 0-rooted
        let mut low = 0usize;
        let mut span = ways;
        while span > 1 {
            let right = (self.0 >> node) & 1 == 1;
            span /= 2;
            if right {
                low += span;
                node = 2 * node + 2;
            } else {
                node = 2 * node + 1;
            }
        }
        low
    }

    /// Record an access to `way`, flipping the path bits away from it.
    pub fn touch(&mut self, way: usize, ways: usize) {
        debug_assert!(ways.is_power_of_two() && ways <= 64);
        let mut node = 0usize;
        let mut low = 0usize;
        let mut span = ways;
        while span > 1 {
            span /= 2;
            let went_right = way >= low + span;
            // Point the node *away* from where we went.
            if went_right {
                self.0 &= !(1 << node);
                low += span;
                node = 2 * node + 2;
            } else {
                self.0 |= 1 << node;
                node = 2 * node + 1;
            }
        }
    }
}

/// Victim-selection engine: policy plus any global state (the random
/// stream).
#[derive(Debug)]
pub struct VictimPicker {
    policy: ReplacementPolicy,
    rng: Option<SmallRng>,
}

impl VictimPicker {
    /// Build a picker for `policy`.
    pub fn new(policy: ReplacementPolicy) -> Self {
        let rng = match policy {
            ReplacementPolicy::Random(seed) => Some(SmallRng::seed_from_u64(seed)),
            _ => None,
        };
        Self { policy, rng }
    }

    /// The policy this picker implements.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Choose a victim way given per-way `(last_touch, filled_at)`
    /// metadata and the set's PLRU bits.
    ///
    /// # Panics
    ///
    /// Panics if `meta` is empty.
    pub fn pick(&mut self, meta: &[(u64, u64)], plru: &PlruBits) -> usize {
        assert!(!meta.is_empty(), "cannot pick a victim from an empty set");
        match self.policy {
            ReplacementPolicy::Lru => meta
                .iter()
                .enumerate()
                .min_by_key(|(_, (touch, _))| *touch)
                .map(|(i, _)| i)
                .expect("non-empty"),
            ReplacementPolicy::Fifo => meta
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, filled))| *filled)
                .map(|(i, _)| i)
                .expect("non-empty"),
            ReplacementPolicy::Random(_) => {
                let rng = self.rng.as_mut().expect("random picker carries an rng");
                rng.gen_range(0..meta.len())
            }
            ReplacementPolicy::Plru => {
                if meta.len().is_power_of_two() {
                    plru.victim(meta.len())
                } else {
                    // Fall back to LRU for odd geometries.
                    meta.iter()
                        .enumerate()
                        .min_by_key(|(_, (touch, _))| *touch)
                        .map(|(i, _)| i)
                        .expect("non-empty")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plru_last_touched_is_not_victim() {
        let ways = 8;
        let mut bits = PlruBits::default();
        for w in 0..ways {
            bits.touch(w, ways);
            assert_ne!(bits.victim(ways), w, "victim must differ from MRU way");
        }
    }

    #[test]
    fn plru_cycles_through_all_ways_under_round_robin_touch() {
        // Touching the victim each time must eventually visit every way.
        let ways = 4;
        let mut bits = PlruBits::default();
        let mut seen = [false; 4];
        for _ in 0..16 {
            let v = bits.victim(ways);
            seen[v] = true;
            bits.touch(v, ways);
        }
        assert!(seen.iter().all(|&s| s), "seen = {seen:?}");
    }

    #[test]
    fn lru_picks_oldest_touch() {
        let mut p = VictimPicker::new(ReplacementPolicy::Lru);
        let meta = [(5, 0), (2, 1), (9, 2)];
        assert_eq!(p.pick(&meta, &PlruBits::default()), 1);
    }

    #[test]
    fn fifo_picks_oldest_fill() {
        let mut p = VictimPicker::new(ReplacementPolicy::Fifo);
        let meta = [(5, 7), (2, 3), (9, 1)];
        assert_eq!(p.pick(&meta, &PlruBits::default()), 2);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let meta = [(0, 0); 6];
        let picks1: Vec<usize> = {
            let mut p = VictimPicker::new(ReplacementPolicy::Random(42));
            (0..20)
                .map(|_| p.pick(&meta, &PlruBits::default()))
                .collect()
        };
        let picks2: Vec<usize> = {
            let mut p = VictimPicker::new(ReplacementPolicy::Random(42));
            (0..20)
                .map(|_| p.pick(&meta, &PlruBits::default()))
                .collect()
        };
        assert_eq!(picks1, picks2);
        assert!(picks1.iter().all(|&w| w < 6));
        assert!(
            picks1
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1
        );
    }

    #[test]
    fn plru_policy_falls_back_to_lru_for_non_power_of_two() {
        let mut p = VictimPicker::new(ReplacementPolicy::Plru);
        let meta = [(5, 0), (1, 1), (9, 2)];
        assert_eq!(p.pick(&meta, &PlruBits::default()), 1);
    }
}
