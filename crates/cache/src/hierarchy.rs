//! Multi-level cache hierarchies.

use crate::cache::{BelowRequest, Cache};
use crate::config::CacheConfig;
use crate::stats::CacheStats;
use membw_trace::MemRef;

/// A stack of caches (level 0 nearest the processor) in front of memory.
///
/// Each level's below-traffic is presented to the next level down;
/// whatever the last level emits is counted as memory traffic. This is
/// the structure behind the paper's multi-level traffic ratios (Eq. 4)
/// and effective pin bandwidth (Eq. 5).
///
/// # Example
///
/// ```
/// use membw_cache::{CacheConfig, Hierarchy};
/// use membw_trace::{pattern::Strided, Workload};
///
/// let l1 = CacheConfig::builder(1024, 32).build()?;
/// let l2 = CacheConfig::builder(8192, 64).build()?;
/// let mut h = Hierarchy::new(vec![l1, l2]);
/// Strided::reads(0, 4, 2048).repeat(2).for_each_mem_ref(&mut |r| { h.access(r); });
/// h.flush();
/// // The 8 KiB L2 holds the entire 8 KiB sweep; round two hits in L2.
/// let ratios = h.traffic_ratios();
/// assert!(ratios[1] < ratios[0]);
/// # Ok::<(), membw_cache::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct Hierarchy {
    levels: Vec<Cache>,
    memory_traffic: u64,
    flushed: bool,
    /// Reusable transfer buffers: the per-access cascade is heap-free
    /// once these reach their steady-state capacity.
    pending: Vec<BelowRequest>,
    next: Vec<BelowRequest>,
}

impl Hierarchy {
    /// Build a hierarchy from per-level configurations, level 0 first.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: Vec<CacheConfig>) -> Self {
        assert!(!configs.is_empty(), "hierarchy needs at least one level");
        Self {
            levels: configs.into_iter().map(Cache::new).collect(),
            memory_traffic: 0,
            flushed: false,
            pending: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Number of cache levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The cache at `level` (0 = closest to the processor).
    pub fn level(&self, level: usize) -> &Cache {
        &self.levels[level]
    }

    /// Present one processor reference; returns `true` if it hit in L1.
    pub fn access(&mut self, r: MemRef) -> bool {
        let outcome = self.levels[0].access(r);
        let hit = outcome.hit;
        let mut pending = std::mem::take(&mut self.pending);
        let mut next = std::mem::take(&mut self.next);
        pending.clear();
        pending.extend_from_slice(outcome.below());
        for lvl in 1..self.levels.len() {
            next.clear();
            for &req in &pending {
                let o = self.levels[lvl].access(below_to_ref(req));
                next.extend_from_slice(o.below());
            }
            std::mem::swap(&mut pending, &mut next);
        }
        self.memory_traffic += pending.iter().map(|b| b.bytes).sum::<u64>();
        self.pending = pending;
        self.next = next;
        hit
    }

    /// Flush every level, cascading write-backs downward. Idempotent.
    pub fn flush(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        for lvl in 0..self.levels.len() {
            let (mut pending, _) = self.levels[lvl].flush_collect();
            for nxt in lvl + 1..self.levels.len() {
                let mut next = Vec::new();
                for req in pending {
                    let o = self.levels[nxt].access(below_to_ref(req));
                    next.extend_from_slice(o.below());
                }
                pending = next;
            }
            self.memory_traffic += pending.iter().map(|b| b.bytes).sum::<u64>();
        }
    }

    /// Per-level statistics snapshot.
    pub fn stats(&self) -> Vec<CacheStats> {
        self.levels.iter().map(|c| *c.stats()).collect()
    }

    /// Bytes that reached memory (below the last level).
    pub fn memory_traffic(&self) -> u64 {
        self.memory_traffic
    }

    /// Traffic ratio `R_i` per level (Eq. 4): traffic below level `i`
    /// divided by traffic above it.
    ///
    /// Levels that received no traffic report a ratio of 0.
    pub fn traffic_ratios(&self) -> Vec<f64> {
        self.levels
            .iter()
            .map(|c| c.stats().traffic_ratio().unwrap_or(0.0))
            .collect()
    }

    /// Product of all per-level traffic ratios: the divisor of Eq. 5.
    pub fn combined_traffic_ratio(&self) -> f64 {
        self.traffic_ratios().iter().product()
    }
}

fn below_to_ref(req: BelowRequest) -> MemRef {
    let size = u16::try_from(req.bytes).expect("below-request fits in one transfer");
    if req.is_fetch() {
        MemRef::read(req.addr, size)
    } else {
        MemRef::write(req.addr, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(l1: u64, l2: u64) -> Hierarchy {
        Hierarchy::new(vec![
            CacheConfig::builder(l1, 32).build().unwrap(),
            CacheConfig::builder(l2, 64).build().unwrap(),
        ])
    }

    #[test]
    fn l2_filters_l1_misses() {
        let mut h = h(256, 4096);
        // Sweep 2 KiB twice: L1 (256B) misses both rounds; L2 (4 KiB)
        // holds everything and hits on the second round.
        for round in 0..2 {
            for w in 0..512u64 {
                h.access(MemRef::read(w * 4, 4));
            }
            let _ = round;
        }
        h.flush();
        let stats = h.stats();
        assert_eq!(stats[0].read_misses, 128, "64 blocks × 2 rounds");
        // L2 cold-misses 32 blocks of 64B in round one, hits in round two.
        assert_eq!(stats[1].read_misses, 32);
        assert_eq!(stats[1].read_hits, 96);
        assert_eq!(h.memory_traffic(), 32 * 64);
    }

    #[test]
    fn level_request_bytes_match_upper_traffic() {
        let mut h = h(256, 2048);
        for i in 0..1000u64 {
            let addr = (i * 52) % 8192;
            if i % 3 == 0 {
                h.access(MemRef::write(addr & !3, 4));
            } else {
                h.access(MemRef::read(addr & !3, 4));
            }
        }
        h.flush();
        let stats = h.stats();
        assert_eq!(
            stats[0].traffic_below(),
            stats[1].request_bytes,
            "L1's below traffic is exactly what L2 sees from above"
        );
    }

    #[test]
    fn memory_traffic_matches_last_level_traffic_below() {
        let mut h = h(256, 2048);
        for i in 0..2000u64 {
            h.access(MemRef::read((i * 4096) % (1 << 20), 4));
        }
        h.flush();
        let stats = h.stats();
        assert_eq!(h.memory_traffic(), stats[1].traffic_below());
    }

    #[test]
    fn flush_is_idempotent() {
        let mut h = h(256, 2048);
        h.access(MemRef::write(0, 4));
        h.flush();
        let t1 = h.memory_traffic();
        h.flush();
        assert_eq!(h.memory_traffic(), t1);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_hierarchy_panics() {
        let _ = Hierarchy::new(vec![]);
    }

    #[test]
    fn combined_ratio_is_product() {
        let mut h = h(256, 2048);
        for i in 0..4000u64 {
            h.access(MemRef::read((i * 36) % 16384, 4));
        }
        h.flush();
        let rs = h.traffic_ratios();
        assert!((h.combined_traffic_ratio() - rs[0] * rs[1]).abs() < 1e-12);
    }
}
