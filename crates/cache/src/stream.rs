//! Stream buffers (Jouppi \[24\], Palacharla & Kessler \[33\]).
//!
//! A small set of FIFO prefetch buffers sits beside the cache; a miss
//! that also misses every buffer head allocates a new buffer, which
//! prefetches the next `depth` sequential blocks. The paper's §2.1 lists
//! stream buffers among the latency-tolerance techniques that *increase*
//! traffic ("they prefetch unnecessary data at the end of a stream; they
//! also falsely identify streams") — this model exists so the ablation
//! benches can measure exactly that trade.

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::stats::CacheStats;
use membw_trace::MemRef;
use std::collections::VecDeque;

/// One FIFO prefetch buffer.
#[derive(Debug, Clone)]
struct StreamBuffer {
    /// Block addresses in FIFO order (head first).
    blocks: VecDeque<u64>,
    /// Next block address to prefetch when the buffer advances.
    next: u64,
    /// Age counter for LRU reallocation of buffers.
    last_use: u64,
}

/// A cache fronted by `num_buffers` stream buffers of `depth` blocks.
///
/// Traffic accounting matches the rest of the crate: prefetched blocks
/// count as prefetch traffic whether or not they are ever used; blocks
/// promoted from a buffer into the cache cost nothing extra (the bytes
/// already crossed when prefetched).
///
/// # Example
///
/// ```
/// use membw_cache::{CacheConfig, StreamBuffers};
/// use membw_trace::MemRef;
///
/// let cfg = CacheConfig::builder(1024, 32).build()?;
/// let mut sb = StreamBuffers::new(cfg, 2, 4);
/// // A sequential sweep: after the first miss the buffers run ahead.
/// for i in 0..64u64 {
///     sb.access(MemRef::read(i * 4, 4));
/// }
/// assert!(sb.stream_hits() > 0);
/// # Ok::<(), membw_cache::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct StreamBuffers {
    cache: Cache,
    buffers: Vec<StreamBuffer>,
    depth: usize,
    clock: u64,
    stream_hits: u64,
    stats_extra_prefetch: u64,
}

impl StreamBuffers {
    /// Build around a cache of `cfg` with `num_buffers` buffers of
    /// `depth` blocks each.
    ///
    /// # Panics
    ///
    /// Panics if `num_buffers` or `depth` is zero, or if `cfg` already
    /// enables tagged prefetch (one prefetcher at a time).
    pub fn new(cfg: CacheConfig, num_buffers: usize, depth: usize) -> Self {
        assert!(num_buffers > 0 && depth > 0);
        assert!(
            !cfg.tagged_prefetch(),
            "combine stream buffers with a non-prefetching cache"
        );
        Self {
            cache: Cache::new(cfg),
            buffers: Vec::with_capacity(num_buffers),
            depth,
            clock: 0,
            stream_hits: 0,
            stats_extra_prefetch: 0,
        }
        .with_capacity(num_buffers)
    }

    fn with_capacity(mut self, n: usize) -> Self {
        self.buffers.reserve(n);
        for _ in 0..n {
            self.buffers.push(StreamBuffer {
                blocks: VecDeque::new(),
                next: u64::MAX,
                last_use: 0,
            });
        }
        self
    }

    /// Misses that were satisfied by a stream buffer.
    pub fn stream_hits(&self) -> u64 {
        self.stream_hits
    }

    /// Combined statistics: the cache's counters plus buffer prefetch
    /// traffic.
    pub fn stats(&self) -> CacheStats {
        let mut s = *self.cache.stats();
        s.bytes_prefetched += self.stats_extra_prefetch;
        s
    }

    /// Total below-traffic including buffer prefetches.
    pub fn traffic_below(&self) -> u64 {
        self.stats().traffic_below()
    }

    /// Present one access; returns `true` on a cache or buffer-head hit.
    pub fn access(&mut self, r: MemRef) -> bool {
        self.clock += 1;
        let block_size = self.cache.config().block_size();
        let block_addr = r.addr & !(block_size - 1);
        if self.cache.is_resident(r.addr) {
            return self.cache.access(r).hit;
        }

        // Check buffer heads.
        let clock = self.clock;
        let depth = self.depth;
        if let Some(buf) = self
            .buffers
            .iter_mut()
            .find(|b| b.blocks.front() == Some(&block_addr))
        {
            // Buffer hit: pop the head, advance the stream by one block.
            buf.blocks.pop_front();
            buf.blocks.push_back(buf.next);
            self.stats_extra_prefetch += block_size;
            buf.next += block_size;
            buf.last_use = clock;
            self.stream_hits += 1;
            // Install into the cache; the install fetch would be counted
            // by Cache::access, so subtract it back out (the bytes
            // crossed when the buffer prefetched them).
            let before = self.cache.stats().bytes_fetched;
            let _ = self.cache.access(r);
            let fetched = self.cache.stats().bytes_fetched - before;
            self.stats_extra_prefetch = self.stats_extra_prefetch.saturating_sub(fetched);
            return true;
        }

        // True miss: demand-fetch through the cache and (re)allocate the
        // least-recently-used buffer to the new stream.
        let outcome = self.cache.access(r);
        let lru = self
            .buffers
            .iter_mut()
            .min_by_key(|b| b.last_use)
            .expect("at least one buffer");
        lru.blocks.clear();
        let mut next = block_addr + block_size;
        for _ in 0..depth {
            lru.blocks.push_back(next);
            self.stats_extra_prefetch += block_size;
            next += block_size;
        }
        lru.next = next;
        lru.last_use = clock;
        outcome.hit
    }

    /// Flush the cache (buffers hold clean prefetched data only).
    pub fn flush(&mut self) -> CacheStats {
        self.cache.flush();
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(buffers: usize, depth: usize) -> StreamBuffers {
        let cfg = CacheConfig::builder(1024, 32).build().unwrap();
        StreamBuffers::new(cfg, buffers, depth)
    }

    #[test]
    fn sequential_stream_hits_after_first_miss() {
        let mut s = sb(2, 4);
        let mut hits = 0;
        for i in 0..32u64 {
            if s.access(MemRef::read(i * 32, 4)) {
                hits += 1;
            }
        }
        assert!(s.stream_hits() >= 28, "stream hits = {}", s.stream_hits());
        assert!(hits >= 28);
    }

    #[test]
    fn random_accesses_waste_prefetch_traffic() {
        // The §2.1 claim: false streams fetch unnecessary data.
        let mut s = sb(2, 4);
        let mut plain = Cache::new(CacheConfig::builder(1024, 32).build().unwrap());
        let mut x = 1u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = ((x >> 30) % (1 << 22)) & !31;
            s.access(MemRef::read(addr, 4));
            plain.access(MemRef::read(addr, 4));
        }
        let s_traffic = s.flush().traffic_below();
        let plain_traffic = plain.flush().traffic_below();
        assert!(
            s_traffic > plain_traffic,
            "stream buffers must add traffic on random accesses: {s_traffic} vs {plain_traffic}"
        );
    }

    #[test]
    fn interleaved_streams_use_separate_buffers() {
        let mut s = sb(2, 4);
        for i in 0..16u64 {
            s.access(MemRef::read(i * 32, 4)); // stream A
            s.access(MemRef::read(0x100000 + i * 32, 4)); // stream B
        }
        assert!(
            s.stream_hits() >= 24,
            "two buffers should track two streams, hits = {}",
            s.stream_hits()
        );
    }

    #[test]
    fn one_buffer_thrashes_on_two_streams() {
        let mut s = sb(1, 4);
        for i in 0..16u64 {
            s.access(MemRef::read(i * 32, 4));
            s.access(MemRef::read(0x100000 + i * 32, 4));
        }
        assert!(
            s.stream_hits() < 4,
            "one buffer cannot hold two streams, hits = {}",
            s.stream_hits()
        );
    }

    #[test]
    #[should_panic(expected = "non-prefetching cache")]
    fn rejects_tagged_prefetch_cache() {
        let cfg = CacheConfig::builder(1024, 32)
            .tagged_prefetch(true)
            .build()
            .unwrap();
        let _ = StreamBuffers::new(cfg, 2, 4);
    }
}
