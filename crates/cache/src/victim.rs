//! Victim caching (Jouppi \[24\]): a small fully-associative buffer that
//! catches conflict evictions from a direct-mapped cache.
//!
//! The paper cites victim caches among the techniques that trade hardware
//! for conflict misses; we use this model in the ablation benches to ask
//! how much of the cache/MTC traffic gap associativity alone closes.

use crate::cache::Cache;
use crate::config::{CacheConfig, WriteAllocate, WritePolicy};
use crate::stats::CacheStats;
use membw_trace::{AccessKind, MemRef};
use std::collections::VecDeque;

/// A direct-mapped (or any) main cache backed by a small FIFO victim
/// buffer holding recently evicted blocks.
///
/// Victim hits promote the block back into the main cache (swapping with
/// the displaced line) at zero below-traffic cost; blocks that age out of
/// the buffer write back their dirty words.
///
/// # Example
///
/// ```
/// use membw_cache::{CacheConfig, VictimCache};
/// use membw_trace::MemRef;
///
/// let cfg = CacheConfig::builder(256, 32).build()?;
/// let mut vc = VictimCache::new(cfg, 4);
/// vc.access(MemRef::read(0, 4));     // miss
/// vc.access(MemRef::read(256, 4));   // conflict-evicts block 0 into buffer
/// vc.access(MemRef::read(0, 4));     // victim hit: no new memory traffic
/// assert_eq!(vc.victim_hits(), 1);
/// # Ok::<(), membw_cache::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct VictimCache {
    main: Cache,
    buffer: VecDeque<(u64, u64)>, // (block_addr, dirty_word_mask)
    capacity: usize,
    stats: CacheStats,
    victim_hits: u64,
    full_mask: u64,
}

impl VictimCache {
    /// Build a victim-cached configuration with a buffer of
    /// `victim_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is not write-back write-allocate (the only policy
    /// combination the promotion path supports), or if `victim_blocks`
    /// is 0.
    pub fn new(cfg: CacheConfig, victim_blocks: usize) -> Self {
        assert!(
            cfg.write_policy() == WritePolicy::WriteBack
                && cfg.write_allocate() == WriteAllocate::Allocate,
            "victim cache requires write-back write-allocate"
        );
        assert!(victim_blocks > 0, "victim buffer needs at least one block");
        let wpb = cfg.words_per_block();
        let full_mask = if wpb >= 64 {
            u64::MAX
        } else {
            (1u64 << wpb) - 1
        };
        Self {
            main: Cache::new(cfg),
            buffer: VecDeque::with_capacity(victim_blocks),
            capacity: victim_blocks,
            stats: CacheStats::default(),
            victim_hits: 0,
            full_mask,
        }
    }

    /// Combined statistics (main cache + buffer, counted here).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Accesses that missed the main cache but hit the victim buffer.
    pub fn victim_hits(&self) -> u64 {
        self.victim_hits
    }

    /// Push a displaced line into the buffer, writing back whatever falls
    /// out the far end.
    fn demote(&mut self, block_addr: u64, dirty: u64) {
        self.buffer.push_back((block_addr, dirty));
        if self.buffer.len() > self.capacity {
            let (_, old_dirty) = self.buffer.pop_front().expect("buffer non-empty");
            if old_dirty != 0 {
                self.stats.bytes_written_back += self.main.config().block_size();
            }
        }
    }

    /// Present one access.
    ///
    /// Returns `true` on a main-cache or victim-buffer hit.
    ///
    /// # Panics
    ///
    /// Panics if the access straddles a block boundary (split upstream).
    pub fn access(&mut self, r: MemRef) -> bool {
        let block_size = self.main.config().block_size();
        assert!(
            r.fits_in_block(block_size),
            "straddling access must be split before a victim cache"
        );
        self.stats.accesses += 1;
        self.stats.request_bytes += u64::from(r.size);
        let is_read = r.kind == AccessKind::Read;
        if is_read {
            self.stats.reads += 1;
        } else {
            self.stats.writes += 1;
        }

        if self.main.probe_touch(r) {
            if is_read {
                self.stats.read_hits += 1;
            } else {
                self.stats.write_hits += 1;
            }
            return true;
        }

        let block_addr = r.addr & !(block_size - 1);
        let need = self.main.word_mask(r);
        let write_dirty = if is_read { 0 } else { need };

        if let Some(pos) = self.buffer.iter().position(|(a, _)| *a == block_addr) {
            // Victim hit: promote, swap displaced line into the buffer.
            let (_, dirty) = self.buffer.remove(pos).expect("position valid");
            self.victim_hits += 1;
            if is_read {
                self.stats.read_hits += 1;
            } else {
                self.stats.write_hits += 1;
            }
            let displaced = self
                .main
                .swap_in(block_addr, self.full_mask, dirty | write_dirty);
            if let Some((addr, d)) = displaced {
                self.demote(addr, d);
            }
            return true;
        }

        // True miss: fetch the block from below.
        if is_read {
            self.stats.read_misses += 1;
        } else {
            self.stats.write_misses += 1;
        }
        self.stats.bytes_fetched += block_size;
        let displaced = self.main.swap_in(block_addr, self.full_mask, write_dirty);
        if let Some((addr, d)) = displaced {
            self.demote(addr, d);
        }
        false
    }

    /// Flush the main cache and buffer, counting dirty write-backs, and
    /// return the final statistics.
    pub fn flush(&mut self) -> CacheStats {
        let block_size = self.main.config().block_size();
        for (addr, dirty) in self.main.drain_lines() {
            let _ = addr;
            if dirty != 0 {
                self.stats.bytes_flushed += block_size;
            }
        }
        while let Some((_, dirty)) = self.buffer.pop_front() {
            if dirty != 0 {
                self.stats.bytes_flushed += block_size;
            }
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(size: u64, blocks: usize) -> VictimCache {
        VictimCache::new(CacheConfig::builder(size, 32).build().unwrap(), blocks)
    }

    #[test]
    fn conflict_ping_pong_is_absorbed() {
        // Two blocks mapping to the same direct-mapped set, alternating.
        let mut v = vc(256, 4);
        let mut plain = Cache::new(CacheConfig::builder(256, 32).build().unwrap());
        let mut victim_traffic = 0;
        for i in 0..100u64 {
            let addr = if i % 2 == 0 { 0 } else { 256 };
            v.access(MemRef::read(addr, 4));
            plain.access(MemRef::read(addr, 4));
        }
        victim_traffic += v.flush().traffic_below();
        let plain_stats = plain.flush();
        assert_eq!(v.stats().demand_misses(), 2, "only the two cold misses");
        assert_eq!(plain_stats.demand_misses(), 100, "plain cache thrashes");
        assert!(victim_traffic < plain_stats.traffic_below() / 10);
    }

    #[test]
    fn dirty_blocks_write_back_once_aged_out() {
        let mut v = vc(64, 1); // 2-block main, 1-block buffer
        v.access(MemRef::write(0, 4)); // miss, dirty in main
        v.access(MemRef::read(64, 4)); // conflicts: dirty block 0 demoted
        v.access(MemRef::read(128, 4)); // demotes block 64; block 0 ages out dirty
        assert_eq!(v.stats().bytes_written_back, 32);
        let s = v.flush();
        assert_eq!(s.bytes_written_back, 32);
    }

    #[test]
    fn victim_hit_preserves_dirty_data() {
        let mut v = vc(64, 2);
        v.access(MemRef::write(0, 4)); // dirty
        v.access(MemRef::read(64, 4)); // demote dirty block 0
        assert!(v.access(MemRef::read(0, 4)), "victim hit promotes");
        let s = v.flush();
        // The dirty word must still be written back at flush.
        assert_eq!(s.bytes_flushed, 32);
    }

    #[test]
    fn write_hits_set_dirty_in_main() {
        let mut v = vc(256, 2);
        v.access(MemRef::read(0, 4));
        assert!(v.access(MemRef::write(4, 4)));
        let s = v.flush();
        assert_eq!(s.bytes_flushed, 32);
    }

    #[test]
    #[should_panic(expected = "write-back write-allocate")]
    fn rejects_write_through() {
        let cfg = CacheConfig::builder(256, 32)
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let _ = VictimCache::new(cfg, 2);
    }
}
