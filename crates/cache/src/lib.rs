//! Functional cache simulation with precise traffic accounting.
//!
//! This crate is the workspace's analogue of the DineroIII simulator used
//! in §4–5 of Burger, Goodman and Kägi (ISCA 1996): a trace-driven,
//! *functional* (untimed) cache model whose purpose is to measure **memory
//! traffic** — the quantity the paper's traffic ratios (Eq. 4) and traffic
//! inefficiencies (Eq. 6) are built from.
//!
//! Traffic accounting follows the paper's rules (§4.1):
//!
//! * "total traffic" counts data moved *below* a cache: demand fetches,
//!   prefetch fetches, write-backs, and write-throughs;
//! * request (address) traffic is **not** counted;
//! * at end of run the cache is flushed and the flushed write-backs are
//!   included.
//!
//! # Example
//!
//! ```
//! use membw_cache::{Cache, CacheConfig};
//! use membw_trace::{pattern::Strided, Workload};
//!
//! // 1 KiB direct-mapped cache with 32-byte blocks.
//! let cfg = CacheConfig::builder(1024, 32).build()?;
//! let mut cache = Cache::new(cfg);
//!
//! // Sweep 4 KiB twice: every block misses both rounds (cache too small).
//! let sweep = Strided::reads(0, 4, 1024).repeat(2);
//! sweep.for_each_mem_ref(&mut |r| { cache.access(r); });
//! let stats = cache.flush();
//! assert_eq!(stats.demand_misses(), 256);
//! # Ok::<(), membw_cache::ConfigError>(())
//! ```

pub mod bypass;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod ratio;
pub mod replacement;
pub mod sector;
pub mod stats;
pub mod stream;
pub mod victim;

pub use bypass::BypassCache;
pub use cache::{AccessOutcome, BelowKind, BelowRequest, Cache, MAX_BELOW};
pub use config::{
    Associativity, CacheConfig, CacheConfigBuilder, ConfigError, ReplacementPolicy, WriteAllocate,
    WritePolicy,
};
pub use hierarchy::Hierarchy;
pub use ratio::{traffic_ratio, TrafficReport};
pub use sector::{SectorCache, SectorConfig};
pub use stats::CacheStats;
pub use stream::StreamBuffers;
pub use victim::VictimCache;
