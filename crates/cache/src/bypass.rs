//! Dynamic cache bypassing (Tyson, Farrens, Matthews & Pleszkun \[45\]).
//!
//! §5.2 of the paper notes that "for small caches, greater selectivity
//! about what is cached can significantly reduce memory traffic". This
//! model keeps a small table of 2-bit reuse counters indexed by block
//! address; blocks with no demonstrated reuse are fetched *around* the
//! cache (the word goes to the processor, nothing is allocated, nothing
//! useful is evicted).

use crate::cache::Cache;
use crate::config::{CacheConfig, WriteAllocate, WritePolicy};
use crate::stats::CacheStats;
use membw_trace::{AccessKind, MemRef};

/// A write-back write-allocate cache with reuse-predicted bypassing.
///
/// # Example
///
/// ```
/// use membw_cache::{BypassCache, CacheConfig};
/// use membw_trace::MemRef;
///
/// let cfg = CacheConfig::builder(256, 32).build()?;
/// let mut c = BypassCache::new(cfg, 256);
/// c.access(MemRef::read(0, 4));
/// # Ok::<(), membw_cache::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct BypassCache {
    cache: Cache,
    /// 2-bit saturating reuse counters, direct-mapped by block address.
    counters: Vec<u8>,
    bypasses: u64,
    extra_traffic: u64,
    extra_requests: u64,
    accesses: u64,
}

impl BypassCache {
    /// Build around a cache of `cfg` with a reuse table of
    /// `table_entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a power of two, or `cfg` is not
    /// write-back write-allocate.
    pub fn new(cfg: CacheConfig, table_entries: usize) -> Self {
        assert!(table_entries.is_power_of_two());
        assert!(
            cfg.write_policy() == WritePolicy::WriteBack
                && cfg.write_allocate() == WriteAllocate::Allocate,
            "bypass model requires write-back write-allocate"
        );
        Self {
            cache: Cache::new(cfg),
            // Start weakly reusable so first-touch blocks are cached.
            counters: vec![2; table_entries],
            bypasses: 0,
            extra_traffic: 0,
            extra_requests: 0,
            accesses: 0,
        }
    }

    fn counter_index(&self, block_addr: u64) -> usize {
        let mask = self.counters.len() as u64 - 1;
        ((block_addr / self.cache.config().block_size()) & mask) as usize
    }

    /// Misses served around the cache.
    pub fn bypasses(&self) -> u64 {
        self.bypasses
    }

    /// Combined statistics (bypassed words appear as write-through-style
    /// word traffic).
    pub fn stats(&self) -> CacheStats {
        let mut s = *self.cache.stats();
        s.bytes_written_through += self.extra_traffic;
        s.request_bytes += self.extra_requests;
        s.accesses += self.bypasses;
        s
    }

    /// Present one access; returns `true` on a cache hit.
    pub fn access(&mut self, r: MemRef) -> bool {
        self.accesses += 1;
        let block_size = self.cache.config().block_size();
        let block_addr = r.addr & !(block_size - 1);
        let idx = self.counter_index(block_addr);

        if self.cache.is_resident(r.addr) {
            // Reuse demonstrated: strengthen the counter.
            self.counters[idx] = (self.counters[idx] + 1).min(3);
            return self.cache.access(r).hit;
        }

        // Miss: predict reuse.
        let predict_reuse = self.counters[idx] >= 2;
        self.counters[idx] = self.counters[idx].saturating_sub(1);
        if predict_reuse {
            return self.cache.access(r).hit;
        }

        // Bypass: the word crosses the pins; nothing is allocated.
        self.bypasses += 1;
        self.extra_traffic += u64::from(r.size);
        self.extra_requests += u64::from(r.size);
        if r.kind == AccessKind::Write {
            // Write goes straight to memory (already counted above).
        }
        false
    }

    /// Flush the cache and return combined statistics.
    pub fn flush(&mut self) -> CacheStats {
        self.cache.flush();
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_single_use_data_gets_bypassed() {
        // One pass over a huge region: after the counters decay, most
        // blocks bypass, saving the 8x block-fill waste.
        let cfg = CacheConfig::builder(1024, 32).build().unwrap();
        let mut bypass = BypassCache::new(cfg, 64);
        let mut plain = Cache::new(cfg);
        for i in 0..20_000u64 {
            let addr = i * 4096; // one word per block, never reused
            bypass.access(MemRef::read(addr, 4));
            plain.access(MemRef::read(addr, 4));
        }
        let b = bypass.flush();
        let p = plain.flush();
        assert!(bypass.bypasses() > 10_000);
        assert!(
            b.traffic_below() < p.traffic_below() / 2,
            "bypass should cut traffic: {} vs {}",
            b.traffic_below(),
            p.traffic_below()
        );
    }

    #[test]
    fn hot_data_stays_cached() {
        let cfg = CacheConfig::builder(1024, 32).build().unwrap();
        let mut c = BypassCache::new(cfg, 64);
        let mut hits = 0u64;
        for i in 0..1000u64 {
            if c.access(MemRef::read((i % 8) * 32, 4)) {
                hits += 1;
            }
        }
        assert!(hits >= 990, "hot set must live in the cache, hits = {hits}");
        assert_eq!(c.bypasses(), 0, "reused blocks are never bypassed");
    }

    #[test]
    fn accounting_includes_bypassed_words() {
        let cfg = CacheConfig::builder(256, 32).build().unwrap();
        let mut c = BypassCache::new(cfg, 16);
        for i in 0..200u64 {
            c.access(MemRef::read(i * 512, 4));
        }
        let s = c.flush();
        assert_eq!(s.accesses, 200);
        assert!(s.bytes_written_through > 0, "bypassed words counted");
    }

    #[test]
    #[should_panic(expected = "write-back write-allocate")]
    fn rejects_other_write_policies() {
        let cfg = CacheConfig::builder(256, 32)
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let _ = BypassCache::new(cfg, 16);
    }
}
