//! Cache configuration and validation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Set associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Associativity {
    /// `n`-way set associative (1 = direct mapped).
    Ways(u32),
    /// Fully associative: one set spanning the whole cache.
    Full,
}

impl fmt::Display for Associativity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Associativity::Ways(1) => write!(f, "direct-mapped"),
            Associativity::Ways(n) => write!(f, "{n}-way"),
            Associativity::Full => write!(f, "fully-associative"),
        }
    }
}

/// What happens on a write hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Dirty data stays in the cache until eviction (or flush).
    WriteBack,
    /// Every write is propagated below immediately.
    WriteThrough,
}

/// What happens on a write miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteAllocate {
    /// Fetch the block, then write into it.
    Allocate,
    /// Do not allocate; send the write below.
    NoAllocate,
    /// Allocate the block *without* fetching, overwriting with the store
    /// data and tracking per-word validity (Jouppi's write-validate \[25\]).
    /// Only meaningful with [`WritePolicy::WriteBack`].
    Validate,
}

/// Replacement policy within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Least-recently-used.
    Lru,
    /// First-in-first-out (insertion order).
    Fifo,
    /// Pseudo-random, from a deterministic per-cache stream seeded here.
    Random(u64),
    /// Tree pseudo-LRU.
    Plru,
}

/// Errors from cache-configuration validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Size or block size is zero or not a power of two.
    NotPowerOfTwo(&'static str, u64),
    /// Block size exceeds cache size.
    BlockLargerThanCache {
        /// Block size in bytes.
        block: u64,
        /// Cache size in bytes.
        size: u64,
    },
    /// Size is not divisible into whole sets for the given associativity.
    BadGeometry(String),
    /// Block size exceeds the 256-byte per-word-mask limit.
    BlockTooLarge(u64),
    /// Write-validate requires write-back.
    ValidateNeedsWriteBack,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo(what, v) => {
                write!(f, "{what} must be a nonzero power of two, got {v}")
            }
            ConfigError::BlockLargerThanCache { block, size } => {
                write!(f, "block size {block} exceeds cache size {size}")
            }
            ConfigError::BadGeometry(msg) => write!(f, "invalid cache geometry: {msg}"),
            ConfigError::BlockTooLarge(b) => {
                write!(f, "block size {b} exceeds the 256-byte limit")
            }
            ConfigError::ValidateNeedsWriteBack => {
                write!(f, "write-validate requires a write-back cache")
            }
        }
    }
}

impl ConfigError {
    /// `true` for errors that describe an *unrepresentable geometry* —
    /// a block too large for the cache, or a size that will not divide
    /// into whole sets. Sweeps over capacity grids hit these at the
    /// small end of the axis and omit the point by design; any other
    /// variant means the caller built the configuration wrong and
    /// deserves a diagnostic rather than a silently missing point.
    pub fn is_geometry_limit(&self) -> bool {
        matches!(
            self,
            ConfigError::BlockLargerThanCache { .. } | ConfigError::BadGeometry(_)
        )
    }
}

impl std::error::Error for ConfigError {}

/// A validated cache configuration.
///
/// Construct through [`CacheConfig::builder`]; defaults match the paper's
/// baseline traffic-ratio experiments (Table 7): direct-mapped, 32-byte
/// blocks, write-allocate, write-back, LRU.
///
/// # Example
///
/// ```
/// use membw_cache::{Associativity, CacheConfig};
///
/// let cfg = CacheConfig::builder(64 * 1024, 32)
///     .associativity(Associativity::Ways(4))
///     .build()?;
/// assert_eq!(cfg.num_sets(), 512);
/// assert_eq!(cfg.words_per_block(), 8);
/// # Ok::<(), membw_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    size_bytes: u64,
    block_size: u64,
    associativity: Associativity,
    write_policy: WritePolicy,
    write_allocate: WriteAllocate,
    replacement: ReplacementPolicy,
    tagged_prefetch: bool,
}

impl CacheConfig {
    /// Start building a configuration of `size_bytes` with `block_size`
    /// blocks.
    pub fn builder(size_bytes: u64, block_size: u64) -> CacheConfigBuilder {
        CacheConfigBuilder {
            size_bytes,
            block_size,
            associativity: Associativity::Ways(1),
            write_policy: WritePolicy::WriteBack,
            write_allocate: WriteAllocate::Allocate,
            replacement: ReplacementPolicy::Lru,
            tagged_prefetch: false,
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Block (line) size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Associativity.
    pub fn associativity(&self) -> Associativity {
        self.associativity
    }

    /// Write-hit policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Write-miss policy.
    pub fn write_allocate(&self) -> WriteAllocate {
        self.write_allocate
    }

    /// Replacement policy.
    pub fn replacement(&self) -> ReplacementPolicy {
        self.replacement
    }

    /// Whether tagged sequential prefetch (Gindele \[17\]) is enabled.
    pub fn tagged_prefetch(&self) -> bool {
        self.tagged_prefetch
    }

    /// Number of blocks the cache holds.
    pub fn num_blocks(&self) -> u64 {
        self.size_bytes / self.block_size
    }

    /// Number of ways per set.
    pub fn ways(&self) -> u64 {
        match self.associativity {
            Associativity::Ways(n) => u64::from(n),
            Associativity::Full => self.num_blocks(),
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.num_blocks() / self.ways()
    }

    /// 4-byte words per block.
    pub fn words_per_block(&self) -> u64 {
        self.block_size / 4
    }

    /// Set index for a block-aligned address.
    pub fn set_of(&self, addr: u64) -> u64 {
        (addr / self.block_size) % self.num_sets()
    }

    /// Tag for an address.
    pub fn tag_of(&self, addr: u64) -> u64 {
        (addr / self.block_size) / self.num_sets()
    }

    /// Reconstruct the block-aligned address from a set index and tag.
    pub fn addr_of(&self, set: u64, tag: u64) -> u64 {
        (tag * self.num_sets() + set) * self.block_size
    }
}

/// Builder for [`CacheConfig`]; see [`CacheConfig::builder`].
#[derive(Debug, Clone)]
pub struct CacheConfigBuilder {
    size_bytes: u64,
    block_size: u64,
    associativity: Associativity,
    write_policy: WritePolicy,
    write_allocate: WriteAllocate,
    replacement: ReplacementPolicy,
    tagged_prefetch: bool,
}

impl CacheConfigBuilder {
    /// Set the associativity (default: direct-mapped).
    pub fn associativity(mut self, a: Associativity) -> Self {
        self.associativity = a;
        self
    }

    /// Set the write-hit policy (default: write-back).
    pub fn write_policy(mut self, p: WritePolicy) -> Self {
        self.write_policy = p;
        self
    }

    /// Set the write-miss policy (default: write-allocate).
    pub fn write_allocate(mut self, p: WriteAllocate) -> Self {
        self.write_allocate = p;
        self
    }

    /// Set the replacement policy (default: LRU).
    pub fn replacement(mut self, r: ReplacementPolicy) -> Self {
        self.replacement = r;
        self
    }

    /// Enable tagged sequential prefetch (default: off).
    pub fn tagged_prefetch(mut self, on: bool) -> Self {
        self.tagged_prefetch = on;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if sizes are not powers of two, the block
    /// does not fit, the geometry does not divide evenly, the block exceeds
    /// 256 bytes (the per-word valid-mask limit), or write-validate is
    /// combined with write-through.
    pub fn build(self) -> Result<CacheConfig, ConfigError> {
        if self.size_bytes == 0 || !self.size_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo("cache size", self.size_bytes));
        }
        if self.block_size == 0 || !self.block_size.is_power_of_two() || self.block_size < 4 {
            return Err(ConfigError::NotPowerOfTwo("block size", self.block_size));
        }
        if self.block_size > 256 {
            return Err(ConfigError::BlockTooLarge(self.block_size));
        }
        if self.block_size > self.size_bytes {
            return Err(ConfigError::BlockLargerThanCache {
                block: self.block_size,
                size: self.size_bytes,
            });
        }
        let blocks = self.size_bytes / self.block_size;
        let ways = match self.associativity {
            Associativity::Ways(0) => {
                return Err(ConfigError::BadGeometry(
                    "associativity of zero ways".into(),
                ))
            }
            Associativity::Ways(n) => u64::from(n),
            Associativity::Full => blocks,
        };
        if !blocks.is_multiple_of(ways) {
            return Err(ConfigError::BadGeometry(format!(
                "{blocks} blocks not divisible into {ways}-way sets"
            )));
        }
        let sets = blocks / ways;
        if !sets.is_power_of_two() {
            return Err(ConfigError::BadGeometry(format!(
                "{sets} sets is not a power of two"
            )));
        }
        if self.write_allocate == WriteAllocate::Validate
            && self.write_policy == WritePolicy::WriteThrough
        {
            return Err(ConfigError::ValidateNeedsWriteBack);
        }
        Ok(CacheConfig {
            size_bytes: self.size_bytes,
            block_size: self.block_size,
            associativity: self.associativity,
            write_policy: self.write_policy,
            write_allocate: self.write_allocate,
            replacement: self.replacement,
            tagged_prefetch: self.tagged_prefetch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry() {
        let cfg = CacheConfig::builder(1024, 32).build().unwrap();
        assert_eq!(cfg.num_blocks(), 32);
        assert_eq!(cfg.ways(), 1);
        assert_eq!(cfg.num_sets(), 32);
        assert_eq!(cfg.words_per_block(), 8);
    }

    #[test]
    fn fully_associative_is_one_set() {
        let cfg = CacheConfig::builder(1024, 32)
            .associativity(Associativity::Full)
            .build()
            .unwrap();
        assert_eq!(cfg.num_sets(), 1);
        assert_eq!(cfg.ways(), 32);
    }

    #[test]
    fn set_and_tag_round_trip() {
        let cfg = CacheConfig::builder(4096, 64)
            .associativity(Associativity::Ways(4))
            .build()
            .unwrap();
        for addr in [0u64, 64, 4096, 65536, 123456 & !63] {
            let set = cfg.set_of(addr);
            let tag = cfg.tag_of(addr);
            assert_eq!(cfg.addr_of(set, tag), addr & !(cfg.block_size() - 1));
            assert!(set < cfg.num_sets());
        }
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(matches!(
            CacheConfig::builder(1000, 32).build(),
            Err(ConfigError::NotPowerOfTwo("cache size", 1000))
        ));
        assert!(matches!(
            CacheConfig::builder(1024, 24).build(),
            Err(ConfigError::NotPowerOfTwo("block size", 24))
        ));
        assert!(matches!(
            CacheConfig::builder(16, 32).build(),
            Err(ConfigError::BlockLargerThanCache { .. })
        ));
        assert!(matches!(
            CacheConfig::builder(4096, 512).build(),
            Err(ConfigError::BlockTooLarge(512))
        ));
        assert!(matches!(
            CacheConfig::builder(1024, 32)
                .associativity(Associativity::Ways(0))
                .build(),
            Err(ConfigError::BadGeometry(_))
        ));
    }

    #[test]
    fn rejects_validate_with_write_through() {
        let err = CacheConfig::builder(1024, 32)
            .write_policy(WritePolicy::WriteThrough)
            .write_allocate(WriteAllocate::Validate)
            .build();
        assert_eq!(err, Err(ConfigError::ValidateNeedsWriteBack));
    }

    #[test]
    fn errors_display_nonempty() {
        let e = CacheConfig::builder(1000, 32).build().unwrap_err();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn associativity_display() {
        assert_eq!(Associativity::Ways(1).to_string(), "direct-mapped");
        assert_eq!(Associativity::Ways(4).to_string(), "4-way");
        assert_eq!(Associativity::Full.to_string(), "fully-associative");
    }
}
