//! Traffic-ratio measurement for single caches (the paper's Table 7).

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::stats::CacheStats;
use membw_trace::Workload;
use serde::{Deserialize, Serialize};

/// Result of running one workload through one cache configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Workload name.
    pub workload: String,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Final counters (after flush).
    pub stats: CacheStats,
    /// Traffic ratio `R` (Eq. 4); `None` for an empty trace.
    pub ratio: Option<f64>,
    /// Whether the cache is larger than the workload's touched footprint
    /// (the paper marks these cells `<<<` as uninteresting).
    pub exceeds_footprint: bool,
}

impl TrafficReport {
    /// Format the ratio the way the paper's Table 7 does: `<<<` when the
    /// cache exceeds the data-set size, otherwise a two-decimal number.
    pub fn cell(&self) -> String {
        if self.exceeds_footprint {
            "<<<".to_string()
        } else {
            match self.ratio {
                Some(r) => format!("{r:.2}"),
                None => "-".to_string(),
            }
        }
    }
}

/// Run `workload` through a cache of `cfg` (with end-of-run flush) and
/// report the traffic ratio.
///
/// `footprint_bytes` is the workload's touched data size, used to mark
/// oversized caches; pass 0 to disable the marking.
pub fn traffic_ratio<W: Workload + ?Sized>(
    workload: &W,
    cfg: CacheConfig,
    footprint_bytes: u64,
) -> TrafficReport {
    let mut cache = Cache::new(cfg);
    workload.for_each_mem_ref(&mut |r| {
        cache.access(r);
    });
    let stats = cache.flush();
    TrafficReport {
        workload: workload.name().to_string(),
        cache_bytes: cfg.size_bytes(),
        ratio: stats.traffic_ratio(),
        exceeds_footprint: footprint_bytes != 0 && cfg.size_bytes() >= footprint_bytes,
        stats,
    }
}

/// Sweep one workload across a list of cache sizes, holding the rest of
/// the configuration fixed. Returns one report per size.
///
/// # Panics
///
/// Panics if any size yields an invalid configuration (e.g. smaller than
/// the block size).
pub fn sweep_sizes<W: Workload + ?Sized>(
    workload: &W,
    sizes: &[u64],
    make_cfg: impl Fn(u64) -> CacheConfig,
    footprint_bytes: u64,
) -> Vec<TrafficReport> {
    sizes
        .iter()
        .map(|&s| traffic_ratio(workload, make_cfg(s), footprint_bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_trace::pattern::{Strided, UniformRandom};
    use membw_trace::stats::TraceStats;

    #[test]
    fn streaming_reads_have_ratio_one_for_word_blocks() {
        // Every 4-byte word read exactly once, 4-byte blocks: traffic in
        // equals requests — R = 1.
        let w = Strided::reads(0, 4, 4096);
        let cfg = CacheConfig::builder(1024, 4).build().unwrap();
        let rep = traffic_ratio(&w, cfg, 0);
        assert!((rep.ratio.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_spatial_locality_wastes_block_traffic() {
        // Touch one word per 32-byte block, once: the cache hauls 8 words
        // per useful word — R = 8.
        let w = Strided::reads(0, 32, 4096);
        let cfg = CacheConfig::builder(1024, 32).build().unwrap();
        let rep = traffic_ratio(&w, cfg, 0);
        assert!((rep.ratio.unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_falls_as_cache_grows() {
        let w = UniformRandom::new(0, 64 * 1024, 100_000, 11);
        let sizes = [1024, 4096, 16384, 65536];
        let reps = sweep_sizes(
            &w,
            &sizes,
            |s| CacheConfig::builder(s, 32).build().unwrap(),
            0,
        );
        for pair in reps.windows(2) {
            assert!(
                pair[1].ratio.unwrap() <= pair[0].ratio.unwrap() + 1e-9,
                "ratio should not rise with capacity on a uniform workload"
            );
        }
    }

    #[test]
    fn footprint_marking() {
        let w = Strided::reads(0, 4, 256); // 1 KiB footprint
        let stats = TraceStats::of(&w);
        let fp = stats.footprint_bytes(4);
        let small = traffic_ratio(&w, CacheConfig::builder(512, 32).build().unwrap(), fp);
        let large = traffic_ratio(&w, CacheConfig::builder(4096, 32).build().unwrap(), fp);
        assert!(!small.exceeds_footprint);
        assert!(large.exceeds_footprint);
        assert_eq!(large.cell(), "<<<");
        assert!(small.cell().parse::<f64>().is_ok());
    }
}
