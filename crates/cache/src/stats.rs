//! Per-cache event and traffic counters.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`Cache`](crate::Cache) over a run.
///
/// All byte counters measure traffic *below* the cache (toward memory),
/// per the paper's §4.1 methodology: demand fetches, prefetch fetches,
/// write-backs (including those forced by the end-of-run flush), and
/// write-throughs. Request (address) traffic is not counted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses presented to the cache.
    pub accesses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed (including partial-validity misses).
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Bytes fetched from below on demand misses.
    pub bytes_fetched: u64,
    /// Bytes fetched from below by the prefetcher.
    pub bytes_prefetched: u64,
    /// Bytes written back on dirty evictions.
    pub bytes_written_back: u64,
    /// Bytes written through (write-through hits/misses, no-allocate
    /// write misses).
    pub bytes_written_through: u64,
    /// Bytes written back by [`Cache::flush`](crate::Cache::flush).
    pub bytes_flushed: u64,
    /// Prefetch fills issued.
    pub prefetch_fills: u64,
    /// Request bytes presented from above (loads + stores × size).
    pub request_bytes: u64,
}

impl CacheStats {
    /// Read plus write misses.
    pub fn demand_misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Read plus write hits.
    pub fn demand_hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Demand miss ratio (0.0 for an idle cache).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.demand_misses() as f64 / self.accesses as f64
        }
    }

    /// Total bytes moved below the cache: fetches + prefetches +
    /// write-backs + write-throughs + flush write-backs.
    pub fn traffic_below(&self) -> u64 {
        self.bytes_fetched
            + self.bytes_prefetched
            + self.bytes_written_back
            + self.bytes_written_through
            + self.bytes_flushed
    }

    /// Traffic ratio `R` (Eq. 4): traffic below divided by request bytes
    /// from above. Returns `None` when no requests were made.
    pub fn traffic_ratio(&self) -> Option<f64> {
        if self.request_bytes == 0 {
            None
        } else {
            Some(self.traffic_below() as f64 / self.request_bytes as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = CacheStats {
            accesses: 10,
            reads: 6,
            writes: 4,
            read_hits: 4,
            read_misses: 2,
            write_hits: 3,
            write_misses: 1,
            bytes_fetched: 96,
            bytes_prefetched: 32,
            bytes_written_back: 64,
            bytes_written_through: 8,
            bytes_flushed: 32,
            prefetch_fills: 1,
            request_bytes: 40,
        };
        assert_eq!(s.demand_misses(), 3);
        assert_eq!(s.demand_hits(), 7);
        assert!((s.miss_ratio() - 0.3).abs() < 1e-12);
        assert_eq!(s.traffic_below(), 232);
        assert!((s.traffic_ratio().unwrap() - 232.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn idle_cache_ratios() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.traffic_ratio(), None);
    }
}
