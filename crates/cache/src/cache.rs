//! Single-level functional cache with traffic accounting.

use crate::config::{CacheConfig, WriteAllocate, WritePolicy};
use crate::replacement::{PlruBits, VictimPicker};
use crate::stats::CacheStats;
use membw_trace::{AccessKind, MemRef};

/// What a below-cache transfer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BelowKind {
    /// Block (or partial-block) fetch caused by a demand miss.
    Fetch,
    /// Block fetch caused by the prefetcher.
    PrefetchFetch,
    /// Dirty data written back on eviction or flush.
    Writeback,
    /// A write propagated through (write-through or no-allocate miss).
    WriteThrough,
}

/// A transfer emitted below the cache (toward memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BelowRequest {
    /// Starting byte address of the transfer.
    pub addr: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Transfer kind.
    pub kind: BelowKind,
}

impl BelowRequest {
    /// `true` if the transfer moves data *up* (fetch), `false` if down.
    pub fn is_fetch(&self) -> bool {
        matches!(self.kind, BelowKind::Fetch | BelowKind::PrefetchFetch)
    }

    const EMPTY: BelowRequest = BelowRequest {
        addr: 0,
        bytes: 0,
        kind: BelowKind::Fetch,
    };
}

/// Inline capacity of [`AccessOutcome`].
///
/// The worst case is statically bounded: a reference straddles at most
/// two blocks (accesses are ≤ 8 bytes, blocks ≥ 16), and each piece
/// emits at most four transfers — a read miss with tagged prefetch
/// produces eviction write-back + demand fetch + prefetch-eviction
/// write-back + prefetch fetch (a write-through allocating miss produces
/// at most three: write-back + fetch + write-through).
pub const MAX_BELOW: usize = 8;

/// Outcome of a single access: hit/miss plus the transfers it generated.
///
/// The transfer list lives inline (no heap allocation on the access
/// path); overflowing [`MAX_BELOW`] is a bug and asserts.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    below: [BelowRequest; MAX_BELOW],
    len: u8,
}

impl Default for AccessOutcome {
    fn default() -> Self {
        Self {
            hit: false,
            below: [BelowRequest::EMPTY; MAX_BELOW],
            len: 0,
        }
    }
}

impl AccessOutcome {
    /// Transfers emitted below the cache by this access, in issue order.
    pub fn below(&self) -> &[BelowRequest] {
        &self.below[..usize::from(self.len)]
    }

    /// Total bytes moved below by this access.
    pub fn bytes_below(&self) -> u64 {
        self.below().iter().map(|b| b.bytes).sum()
    }
}

/// Sink for the transfers an access (or flush) pushes below the cache.
///
/// Lets the eviction/prefetch helpers serve both the allocation-free
/// access path ([`AccessOutcome`]'s inline buffer) and the cold flush
/// path (a plain `Vec`).
pub(crate) trait PushBelow {
    fn push_below(&mut self, req: BelowRequest);
}

impl PushBelow for Vec<BelowRequest> {
    fn push_below(&mut self, req: BelowRequest) {
        self.push(req);
    }
}

impl PushBelow for AccessOutcome {
    fn push_below(&mut self, req: BelowRequest) {
        debug_assert!(
            usize::from(self.len) < MAX_BELOW,
            "one access cannot emit more than MAX_BELOW transfers"
        );
        // The index panics (release builds included) on overflow rather
        // than silently dropping traffic.
        self.below[usize::from(self.len)] = req;
        self.len += 1;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    /// Bit per 4-byte word: word holds up-to-date data.
    valid_mask: u64,
    /// Bit per 4-byte word: word is dirty.
    dirty_mask: u64,
    /// Tagged-prefetch bit: set once the line is demand-referenced.
    referenced: bool,
    last_touch: u64,
    filled_at: u64,
}

/// A single-level, functional (untimed) cache.
///
/// See the [crate docs](crate) for the traffic-accounting rules. Accesses
/// that straddle block boundaries are split QPT-style into per-block
/// sub-accesses, each counted separately.
///
/// # Example
///
/// ```
/// use membw_cache::{Cache, CacheConfig};
/// use membw_trace::MemRef;
///
/// let mut c = Cache::new(CacheConfig::builder(256, 32).build()?);
/// assert!(!c.access(MemRef::read(0, 4)).hit);   // cold miss
/// assert!(c.access(MemRef::read(28, 4)).hit);   // same block
/// assert_eq!(c.stats().bytes_fetched, 32);
/// # Ok::<(), membw_cache::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // num_sets * ways, set-major
    plru: Vec<PlruBits>,
    picker: VictimPicker,
    clock: u64,
    stats: CacheStats,
    full_mask: u64,
}

impl Cache {
    /// Build an empty cache for `cfg`.
    pub fn new(cfg: CacheConfig) -> Self {
        let blocks = (cfg.num_sets() * cfg.ways()) as usize;
        let wpb = cfg.words_per_block();
        let full_mask = if wpb >= 64 {
            u64::MAX
        } else {
            (1u64 << wpb) - 1
        };
        Self {
            cfg,
            lines: vec![Line::default(); blocks],
            plru: vec![PlruBits::default(); cfg.num_sets() as usize],
            picker: VictimPicker::new(cfg.replacement()),
            clock: 0,
            stats: CacheStats::default(),
            full_mask,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// `true` if the block containing `addr` is resident (any validity).
    pub fn is_resident(&self, addr: u64) -> bool {
        let set = self.cfg.set_of(addr);
        let tag = self.cfg.tag_of(addr);
        self.set_lines(set).iter().any(|l| l.valid && l.tag == tag)
    }

    fn set_lines(&self, set: u64) -> &[Line] {
        let ways = self.cfg.ways() as usize;
        let base = set as usize * ways;
        &self.lines[base..base + ways]
    }

    fn line_index(&self, set: u64, way: usize) -> usize {
        set as usize * self.cfg.ways() as usize + way
    }

    fn find(&self, set: u64, tag: u64) -> Option<usize> {
        self.set_lines(set)
            .iter()
            .position(|l| l.valid && l.tag == tag)
    }

    fn touch(&mut self, set: u64, way: usize) {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.cfg.ways() as usize;
        let idx = self.line_index(set, way);
        self.lines[idx].last_touch = clock;
        if ways.is_power_of_two() && ways <= 64 {
            self.plru[set as usize].touch(way, ways);
        }
    }

    /// Pick a victim way in `set`, preferring invalid lines.
    fn pick_victim(&mut self, set: u64) -> usize {
        if let Some(w) = self.set_lines(set).iter().position(|l| !l.valid) {
            return w;
        }
        let meta: Vec<(u64, u64)> = self
            .set_lines(set)
            .iter()
            .map(|l| (l.last_touch, l.filled_at))
            .collect();
        self.picker.pick(&meta, &self.plru[set as usize])
    }

    /// Evict `way` of `set` if valid, emitting a write-back when dirty.
    fn evict<O: PushBelow>(&mut self, set: u64, way: usize, out: &mut O, flush: bool) {
        let idx = self.line_index(set, way);
        let line = self.lines[idx];
        if !line.valid {
            return;
        }
        let dirty = line.dirty_mask & line.valid_mask;
        if dirty != 0 {
            let addr = self.cfg.addr_of(set, line.tag);
            let bytes = match self.cfg.write_allocate() {
                // Word-granular memory writes under write-validate.
                WriteAllocate::Validate => u64::from(dirty.count_ones()) * 4,
                // Whole-block write-back otherwise.
                _ => self.cfg.block_size(),
            };
            out.push_below(BelowRequest {
                addr,
                bytes,
                kind: BelowKind::Writeback,
            });
            if flush {
                self.stats.bytes_flushed += bytes;
            } else {
                self.stats.bytes_written_back += bytes;
            }
        }
        self.lines[idx] = Line::default();
    }

    /// Fill `way` of `set` with `tag`; the caller sets masks afterwards.
    fn fill(&mut self, set: u64, way: usize, tag: u64, referenced: bool) {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.line_index(set, way);
        self.lines[idx] = Line {
            valid: true,
            tag,
            valid_mask: 0,
            dirty_mask: 0,
            referenced,
            last_touch: clock,
            filled_at: clock,
        };
        let ways = self.cfg.ways() as usize;
        if ways.is_power_of_two() && ways <= 64 {
            self.plru[set as usize].touch(way, ways);
        }
    }

    /// Probe for a full-validity hit without any miss handling: touches
    /// the line and sets dirty bits on writes. Used by [`VictimCache`].
    ///
    /// [`VictimCache`]: crate::VictimCache
    pub(crate) fn probe_touch(&mut self, r: MemRef) -> bool {
        let set = self.cfg.set_of(r.addr);
        let tag = self.cfg.tag_of(r.addr);
        let need = self.word_mask(r);
        if let Some(way) = self.find(set, tag) {
            let idx = self.line_index(set, way);
            if r.kind.is_write() {
                self.lines[idx].valid_mask |= need;
                self.lines[idx].dirty_mask |= need;
                self.lines[idx].referenced = true;
                self.touch(set, way);
                return true;
            }
            if self.lines[idx].valid_mask & need == need {
                self.lines[idx].referenced = true;
                self.touch(set, way);
                return true;
            }
        }
        false
    }

    /// Install a block with the given masks, returning the displaced
    /// line's `(block_addr, dirty_word_mask)` if one was evicted. No
    /// traffic is counted — the caller owns the accounting. Used by
    /// [`VictimCache`](crate::VictimCache).
    pub(crate) fn swap_in(
        &mut self,
        block_addr: u64,
        valid_mask: u64,
        dirty_mask: u64,
    ) -> Option<(u64, u64)> {
        let set = self.cfg.set_of(block_addr);
        let tag = self.cfg.tag_of(block_addr);
        debug_assert!(self.find(set, tag).is_none(), "block already resident");
        let way = self.pick_victim(set);
        let idx = self.line_index(set, way);
        let old = self.lines[idx];
        let displaced = if old.valid {
            Some((
                self.cfg.addr_of(set, old.tag),
                old.dirty_mask & old.valid_mask,
            ))
        } else {
            None
        };
        self.fill(set, way, tag, true);
        let idx = self.line_index(set, way);
        self.lines[idx].valid_mask = valid_mask;
        self.lines[idx].dirty_mask = dirty_mask;
        displaced
    }

    /// Drain all resident lines as `(block_addr, dirty_word_mask)` pairs
    /// without counting traffic. Used by
    /// [`VictimCache`](crate::VictimCache) at flush time.
    pub(crate) fn drain_lines(&mut self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for set in 0..self.cfg.num_sets() {
            for way in 0..self.cfg.ways() as usize {
                let idx = self.line_index(set, way);
                let line = self.lines[idx];
                if line.valid {
                    out.push((
                        self.cfg.addr_of(set, line.tag),
                        line.dirty_mask & line.valid_mask,
                    ));
                    self.lines[idx] = Line::default();
                }
            }
        }
        out
    }

    /// Word-mask (within a block) covered by `r`.
    pub(crate) fn word_mask(&self, r: MemRef) -> u64 {
        let block = self.cfg.block_size();
        let off = r.addr % block;
        let first = off / 4;
        let last = (off + u64::from(r.size).max(1) - 1) / 4;
        let count = last - first + 1;
        let ones = if count >= 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        ones << first
    }

    /// Issue a tagged prefetch of the block after `block_addr`.
    fn prefetch_next<O: PushBelow>(&mut self, block_addr: u64, out: &mut O) {
        let next = block_addr + self.cfg.block_size();
        let set = self.cfg.set_of(next);
        let tag = self.cfg.tag_of(next);
        if self.find(set, tag).is_some() {
            return;
        }
        let way = self.pick_victim(set);
        self.evict(set, way, out, false);
        self.fill(set, way, tag, false);
        let idx = self.line_index(set, way);
        self.lines[idx].valid_mask = self.full_mask;
        out.push_below(BelowRequest {
            addr: next,
            bytes: self.cfg.block_size(),
            kind: BelowKind::PrefetchFetch,
        });
        self.stats.bytes_prefetched += self.cfg.block_size();
        self.stats.prefetch_fills += 1;
    }

    /// Present one access; splits block-straddling references.
    ///
    /// Returns the combined outcome (`hit` is true only if *all* pieces
    /// hit).
    pub fn access(&mut self, r: MemRef) -> AccessOutcome {
        if r.fits_in_block(self.cfg.block_size()) {
            return self.access_within_block(r);
        }
        // Split QPT-style into per-block pieces.
        let block = self.cfg.block_size();
        let mut outcome = AccessOutcome {
            hit: true,
            ..AccessOutcome::default()
        };
        let mut addr = r.addr;
        let end = r.addr + u64::from(r.size);
        while addr < end {
            let block_end = (addr / block + 1) * block;
            let piece = (block_end.min(end) - addr) as u16;
            let sub = MemRef {
                addr,
                size: piece,
                kind: r.kind,
            };
            let o = self.access_within_block(sub);
            outcome.hit &= o.hit;
            for &req in o.below() {
                outcome.push_below(req);
            }
            addr += u64::from(piece);
        }
        outcome
    }

    fn access_within_block(&mut self, r: MemRef) -> AccessOutcome {
        debug_assert!(r.fits_in_block(self.cfg.block_size()));
        self.stats.accesses += 1;
        self.stats.request_bytes += u64::from(r.size);
        match r.kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                self.read(r)
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                self.write(r)
            }
        }
    }

    fn read(&mut self, r: MemRef) -> AccessOutcome {
        let set = self.cfg.set_of(r.addr);
        let tag = self.cfg.tag_of(r.addr);
        let need = self.word_mask(r);
        let block_addr = r.addr & !(self.cfg.block_size() - 1);
        let mut out = AccessOutcome::default();

        if let Some(way) = self.find(set, tag) {
            let idx = self.line_index(set, way);
            if self.lines[idx].valid_mask & need == need {
                // Full hit.
                self.stats.read_hits += 1;
                self.touch(set, way);
                let first_use = !self.lines[idx].referenced;
                self.lines[idx].referenced = true;
                if self.cfg.tagged_prefetch() && first_use {
                    self.prefetch_next(block_addr, &mut out);
                }
                out.hit = true;
                return out;
            }
            // Partial-validity miss (write-validate line): fetch the
            // missing words of the block.
            self.stats.read_misses += 1;
            let missing = self.full_mask & !self.lines[idx].valid_mask;
            let bytes = u64::from(missing.count_ones()) * 4;
            out.push_below(BelowRequest {
                addr: block_addr,
                bytes,
                kind: BelowKind::Fetch,
            });
            self.stats.bytes_fetched += bytes;
            self.lines[idx].valid_mask = self.full_mask;
            self.lines[idx].referenced = true;
            self.touch(set, way);
            if self.cfg.tagged_prefetch() {
                self.prefetch_next(block_addr, &mut out);
            }
            return out;
        }

        // Full miss: evict, fetch, fill.
        self.stats.read_misses += 1;
        let way = self.pick_victim(set);
        self.evict(set, way, &mut out, false);
        self.fill(set, way, tag, true);
        let idx = self.line_index(set, way);
        self.lines[idx].valid_mask = self.full_mask;
        out.push_below(BelowRequest {
            addr: block_addr,
            bytes: self.cfg.block_size(),
            kind: BelowKind::Fetch,
        });
        self.stats.bytes_fetched += self.cfg.block_size();
        if self.cfg.tagged_prefetch() {
            self.prefetch_next(block_addr, &mut out);
        }
        out
    }

    fn write(&mut self, r: MemRef) -> AccessOutcome {
        let set = self.cfg.set_of(r.addr);
        let tag = self.cfg.tag_of(r.addr);
        let need = self.word_mask(r);
        let block_addr = r.addr & !(self.cfg.block_size() - 1);
        let mut out = AccessOutcome::default();

        if let Some(way) = self.find(set, tag) {
            // Write hit (line presence suffices; we overwrite words).
            self.stats.write_hits += 1;
            let idx = self.line_index(set, way);
            self.lines[idx].valid_mask |= need;
            self.lines[idx].referenced = true;
            match self.cfg.write_policy() {
                WritePolicy::WriteBack => {
                    self.lines[idx].dirty_mask |= need;
                }
                WritePolicy::WriteThrough => {
                    out.push_below(BelowRequest {
                        addr: r.addr,
                        bytes: u64::from(r.size),
                        kind: BelowKind::WriteThrough,
                    });
                    self.stats.bytes_written_through += u64::from(r.size);
                }
            }
            self.touch(set, way);
            out.hit = true;
            return out;
        }

        // Write miss.
        self.stats.write_misses += 1;
        match self.cfg.write_allocate() {
            WriteAllocate::NoAllocate => {
                out.push_below(BelowRequest {
                    addr: r.addr,
                    bytes: u64::from(r.size),
                    kind: BelowKind::WriteThrough,
                });
                self.stats.bytes_written_through += u64::from(r.size);
            }
            WriteAllocate::Allocate => {
                let way = self.pick_victim(set);
                self.evict(set, way, &mut out, false);
                self.fill(set, way, tag, true);
                out.push_below(BelowRequest {
                    addr: block_addr,
                    bytes: self.cfg.block_size(),
                    kind: BelowKind::Fetch,
                });
                self.stats.bytes_fetched += self.cfg.block_size();
                let idx = self.line_index(set, way);
                self.lines[idx].valid_mask = self.full_mask;
                match self.cfg.write_policy() {
                    WritePolicy::WriteBack => self.lines[idx].dirty_mask |= need,
                    WritePolicy::WriteThrough => {
                        out.push_below(BelowRequest {
                            addr: r.addr,
                            bytes: u64::from(r.size),
                            kind: BelowKind::WriteThrough,
                        });
                        self.stats.bytes_written_through += u64::from(r.size);
                    }
                }
            }
            WriteAllocate::Validate => {
                // Allocate without fetching; only written words valid.
                let way = self.pick_victim(set);
                self.evict(set, way, &mut out, false);
                self.fill(set, way, tag, true);
                let idx = self.line_index(set, way);
                self.lines[idx].valid_mask = need;
                self.lines[idx].dirty_mask = need;
            }
        }
        out
    }

    /// Write back all dirty data (end-of-run flush, counted separately as
    /// `bytes_flushed`), empty the cache, and return the final statistics.
    ///
    /// The emitted write-backs are also returned for hierarchy plumbing.
    pub fn flush(&mut self) -> CacheStats {
        self.flush_collect().1
    }

    /// Like [`Cache::flush`], also returning the emitted write-backs.
    pub fn flush_collect(&mut self) -> (Vec<BelowRequest>, CacheStats) {
        let mut out = Vec::new();
        for set in 0..self.cfg.num_sets() {
            for way in 0..self.cfg.ways() as usize {
                self.evict(set, way, &mut out, true);
            }
        }
        (out, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Associativity, ReplacementPolicy};

    fn cfg(size: u64, block: u64) -> CacheConfig {
        CacheConfig::builder(size, block).build().unwrap()
    }

    #[test]
    fn cold_miss_then_spatial_hit() {
        let mut c = Cache::new(cfg(256, 32));
        let o = c.access(MemRef::read(0, 4));
        assert!(!o.hit);
        assert_eq!(o.below().len(), 1);
        assert_eq!(o.below()[0].bytes, 32);
        assert!(o.below()[0].is_fetch());
        assert!(c.access(MemRef::read(28, 4)).hit);
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn conflict_misses_in_direct_mapped() {
        // 256-byte direct-mapped, 32B blocks: addresses 0 and 256 conflict.
        let mut c = Cache::new(cfg(256, 32));
        assert!(!c.access(MemRef::read(0, 4)).hit);
        assert!(!c.access(MemRef::read(256, 4)).hit);
        assert!(!c.access(MemRef::read(0, 4)).hit, "evicted by conflict");
        // Same pattern in a 2-way cache of the same size hits.
        let cfg2 = CacheConfig::builder(256, 32)
            .associativity(Associativity::Ways(2))
            .build()
            .unwrap();
        let mut c2 = Cache::new(cfg2);
        c2.access(MemRef::read(0, 4));
        c2.access(MemRef::read(256, 4));
        assert!(c2.access(MemRef::read(0, 4)).hit);
    }

    #[test]
    fn writeback_on_dirty_eviction_and_flush() {
        let mut c = Cache::new(cfg(64, 32)); // two blocks, direct-mapped
        c.access(MemRef::write(0, 4)); // miss: fetch 32, dirty
        assert_eq!(c.stats().bytes_fetched, 32);
        c.access(MemRef::read(64, 4)); // conflicts with block 0 (set 0)
        assert_eq!(c.stats().bytes_written_back, 32, "dirty eviction");
        c.access(MemRef::write(96, 4)); // set 1, dirty
        let stats = c.flush();
        assert_eq!(stats.bytes_flushed, 32, "flush writes back remaining dirty");
    }

    #[test]
    fn write_through_counts_every_write() {
        let c_cfg = CacheConfig::builder(256, 32)
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let mut c = Cache::new(c_cfg);
        c.access(MemRef::write(0, 4)); // miss: allocate (fetch 32) + through 4
        c.access(MemRef::write(0, 4)); // hit: through 4
        assert_eq!(c.stats().bytes_written_through, 8);
        assert_eq!(c.stats().bytes_fetched, 32);
        let s = c.flush();
        assert_eq!(s.bytes_flushed, 0, "write-through lines are never dirty");
    }

    #[test]
    fn no_allocate_write_miss_bypasses() {
        let c_cfg = CacheConfig::builder(256, 32)
            .write_allocate(WriteAllocate::NoAllocate)
            .build()
            .unwrap();
        let mut c = Cache::new(c_cfg);
        let o = c.access(MemRef::write(0, 4));
        assert!(!o.hit);
        assert_eq!(o.below()[0].kind, BelowKind::WriteThrough);
        assert_eq!(o.below()[0].bytes, 4);
        assert!(!c.is_resident(0));
    }

    #[test]
    fn write_validate_allocates_without_fetch() {
        let c_cfg = CacheConfig::builder(256, 32)
            .write_allocate(WriteAllocate::Validate)
            .build()
            .unwrap();
        let mut c = Cache::new(c_cfg);
        let o = c.access(MemRef::write(0, 4));
        assert!(!o.hit);
        assert_eq!(o.bytes_below(), 0, "no fetch on write-validate miss");
        assert!(c.is_resident(0));
        // Reading the written word hits; reading another word of the block
        // is a partial miss fetching only the 7 missing words.
        assert!(c.access(MemRef::read(0, 4)).hit);
        let o = c.access(MemRef::read(8, 4));
        assert!(!o.hit);
        assert_eq!(o.below()[0].bytes, 28);
        // Flush writes back only the dirty word.
        let s = c.flush();
        assert_eq!(s.bytes_flushed, 4);
    }

    #[test]
    fn lru_eviction_order() {
        let c_cfg = CacheConfig::builder(128, 32)
            .associativity(Associativity::Full)
            .build()
            .unwrap();
        let mut c = Cache::new(c_cfg); // 4 blocks FA LRU
        for b in 0..4u64 {
            c.access(MemRef::read(b * 32, 4));
        }
        c.access(MemRef::read(0, 4)); // touch block 0: LRU is now block 1
        c.access(MemRef::read(4 * 32, 4)); // evicts block 1
        assert!(c.is_resident(0));
        assert!(!c.is_resident(32));
        assert!(c.is_resident(64));
    }

    #[test]
    fn fifo_eviction_ignores_touches() {
        let c_cfg = CacheConfig::builder(128, 32)
            .associativity(Associativity::Full)
            .replacement(ReplacementPolicy::Fifo)
            .build()
            .unwrap();
        let mut c = Cache::new(c_cfg);
        for b in 0..4u64 {
            c.access(MemRef::read(b * 32, 4));
        }
        c.access(MemRef::read(0, 4)); // touch does not matter for FIFO
        c.access(MemRef::read(4 * 32, 4)); // evicts block 0 (first in)
        assert!(!c.is_resident(0));
        assert!(c.is_resident(32));
    }

    #[test]
    fn straddling_access_splits() {
        let mut c = Cache::new(cfg(256, 32));
        let o = c.access(MemRef::read(30, 4)); // straddles blocks 0 and 1
        assert!(!o.hit);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().bytes_fetched, 64);
        assert_eq!(c.stats().request_bytes, 4);
    }

    #[test]
    fn tagged_prefetch_fetches_next_block() {
        let c_cfg = CacheConfig::builder(256, 32)
            .tagged_prefetch(true)
            .build()
            .unwrap();
        let mut c = Cache::new(c_cfg);
        let o = c.access(MemRef::read(0, 4)); // miss: fetch 0, prefetch 32
        assert!(!o.hit);
        assert_eq!(c.stats().bytes_prefetched, 32);
        assert!(c.is_resident(32));
        // First use of the prefetched block triggers the next prefetch.
        let o = c.access(MemRef::read(32, 4));
        assert!(o.hit);
        assert!(c.is_resident(64));
        assert_eq!(c.stats().prefetch_fills, 2);
        // Re-touching an already-referenced block does not prefetch again.
        c.access(MemRef::read(32, 4));
        assert_eq!(c.stats().prefetch_fills, 2);
    }

    #[test]
    fn traffic_equals_sum_of_outcome_bytes() {
        let mut c = Cache::new(cfg(128, 32));
        let refs = [
            MemRef::read(0, 4),
            MemRef::write(128, 4),
            MemRef::read(256, 4),
            MemRef::write(0, 4),
            MemRef::read(128, 4),
        ];
        let mut total = 0;
        for r in refs {
            total += c.access(r).bytes_below();
        }
        let (flushed, stats) = c.flush_collect();
        total += flushed.iter().map(|b| b.bytes).sum::<u64>();
        assert_eq!(total, stats.traffic_below());
    }

    #[test]
    fn straddling_write_through_miss_fits_inline_capacity() {
        // Worst case for the inline buffer: a write-through allocating
        // write that straddles two blocks, with both victim lines dirty
        // — per piece: eviction write-back + allocate fetch + write-
        // through = 3 transfers, 6 total, within MAX_BELOW.
        let c_cfg = CacheConfig::builder(64, 32)
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let mut c = Cache::new(c_cfg); // two blocks, direct-mapped
                                       // Write-through lines are never dirty, so each straddle piece
                                       // caps at allocate fetch + write-through (the dirty-victim
                                       // worst case is exercised by the prefetch test below).
        c.access(MemRef::write(0, 4));
        c.access(MemRef::write(32, 4));
        let o = c.access(MemRef::write(94, 4)); // straddles blocks 2 and 3
        assert!(!o.hit);
        assert!(o.below().len() <= MAX_BELOW);
        let throughs = o
            .below()
            .iter()
            .filter(|b| b.kind == BelowKind::WriteThrough)
            .count();
        let fetches = o.below().iter().filter(|b| b.is_fetch()).count();
        assert_eq!(
            (throughs, fetches),
            (2, 2),
            "each piece allocates + writes through"
        );
    }

    #[test]
    fn worst_case_straddling_read_with_prefetch_fills_the_buffer() {
        // A straddling read miss in a tagged-prefetch write-back cache
        // where every victim is dirty: each piece emits eviction
        // write-back + fetch + prefetch-eviction write-back + prefetch
        // fetch = 4, so two pieces exactly fill MAX_BELOW.
        let c_cfg = CacheConfig::builder(64, 32)
            .tagged_prefetch(true)
            .build()
            .unwrap();
        let mut c = Cache::new(c_cfg); // two blocks, direct-mapped
                                       // Dirty every line the straddling read (and its prefetches)
                                       // will displace.
        for set in 0..2u64 {
            c.access(MemRef::write(set * 32, 4));
        }
        // Read straddling blocks 2|3: both map onto the dirty lines.
        let o = c.access(MemRef::read(94, 4));
        assert!(!o.hit);
        assert!(o.below().len() <= MAX_BELOW, "{}", o.below().len());
        assert!(
            o.below()
                .iter()
                .filter(|b| b.kind == BelowKind::Writeback)
                .count()
                >= 2,
            "dirty victims write back"
        );
        assert!(o.bytes_below() >= 4 * 32, "at least four block moves");
    }

    #[test]
    #[should_panic]
    fn inline_buffer_overflow_asserts() {
        let mut o = AccessOutcome::default();
        for _ in 0..=MAX_BELOW {
            o.push_below(BelowRequest {
                addr: 0,
                bytes: 1,
                kind: BelowKind::Fetch,
            });
        }
    }

    #[test]
    fn small_cache_can_exceed_unity_traffic_ratio() {
        // Single-word random-ish touches with 32B blocks: each miss hauls
        // 32 bytes for a 4-byte request → R approaches 8.
        let mut c = Cache::new(cfg(1024, 32));
        for i in 0..4096u64 {
            c.access(MemRef::read((i * 4096 + i * 4) % (1 << 22), 4));
        }
        let s = c.flush();
        assert!(s.traffic_ratio().unwrap() > 1.0);
    }
}
