//! Sector (sub-block) caches — Hill & Smith's block/sub-block design
//! space \[20\], the study the paper's traffic-ratio metric generalizes.
//!
//! A sector cache tags large *address blocks* but transfers small
//! *sub-blocks*: a miss fetches only the touched sub-block, so tag
//! overhead stays low while traffic approaches small-block behaviour.
//! Hill & Smith measured exactly this miss-ratio/traffic-ratio trade;
//! the `fig4` ablation bench uses this model to show where sectoring
//! lands between the 4 B and 32 B curves.

use crate::config::ConfigError;
use crate::replacement::{PlruBits, VictimPicker};
use crate::stats::CacheStats;
use crate::ReplacementPolicy;
use membw_trace::{AccessKind, MemRef};

/// Geometry and policy of a sector cache.
///
/// Always write-back, write-allocate-on-sub-block (a write miss fetches
/// nothing: the written words validate their sub-block, per the
/// write-validate discussion in §5.2 being orthogonal, we keep the
/// conservative fetch-on-write here), LRU over address blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectorConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Address-block (tagged) size in bytes.
    pub block_size: u64,
    /// Transfer sub-block size in bytes.
    pub subblock_size: u64,
    /// Ways per set.
    pub ways: u32,
}

impl SectorConfig {
    /// Validate the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for non-power-of-two sizes, a sub-block
    /// larger than the block, or geometry that does not divide evenly.
    pub fn validate(self) -> Result<Self, ConfigError> {
        for (what, v) in [
            ("cache size", self.size_bytes),
            ("block size", self.block_size),
            ("sub-block size", self.subblock_size),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo(what, v));
            }
        }
        if self.subblock_size > self.block_size {
            return Err(ConfigError::BadGeometry(format!(
                "sub-block {} exceeds block {}",
                self.subblock_size, self.block_size
            )));
        }
        if self.block_size / self.subblock_size > 64 {
            return Err(ConfigError::BadGeometry(
                "more than 64 sub-blocks per block".into(),
            ));
        }
        if self.block_size > self.size_bytes {
            return Err(ConfigError::BlockLargerThanCache {
                block: self.block_size,
                size: self.size_bytes,
            });
        }
        let blocks = self.size_bytes / self.block_size;
        if self.ways == 0 || !blocks.is_multiple_of(u64::from(self.ways)) {
            return Err(ConfigError::BadGeometry(format!(
                "{blocks} blocks not divisible into {}-way sets",
                self.ways
            )));
        }
        if !(blocks / u64::from(self.ways)).is_power_of_two() {
            return Err(ConfigError::BadGeometry("sets not a power of two".into()));
        }
        Ok(self)
    }

    fn num_sets(&self) -> u64 {
        self.size_bytes / self.block_size / u64::from(self.ways)
    }

    /// Sub-blocks per address block.
    pub fn subs_per_block(&self) -> u64 {
        self.block_size / self.subblock_size
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SectorLine {
    valid: bool,
    tag: u64,
    /// Bit per sub-block: present.
    present: u64,
    /// Bit per sub-block: dirty.
    dirty: u64,
    last_touch: u64,
}

/// A sector (sub-block) cache with traffic accounting.
///
/// # Example
///
/// ```
/// use membw_cache::sector::{SectorCache, SectorConfig};
/// use membw_trace::MemRef;
///
/// let cfg = SectorConfig {
///     size_bytes: 1024, block_size: 64, subblock_size: 8, ways: 1,
/// }.validate()?;
/// let mut c = SectorCache::new(cfg);
/// c.access(MemRef::read(0, 4));       // fetches ONE 8-byte sub-block
/// assert_eq!(c.stats().bytes_fetched, 8);
/// assert!(c.access(MemRef::read(4, 4)).0); // same sub-block: hit
/// # Ok::<(), membw_cache::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct SectorCache {
    cfg: SectorConfig,
    lines: Vec<SectorLine>,
    plru: Vec<PlruBits>,
    picker: VictimPicker,
    clock: u64,
    stats: CacheStats,
}

impl SectorCache {
    /// Build an empty sector cache.
    pub fn new(cfg: SectorConfig) -> Self {
        let blocks = (cfg.num_sets() * u64::from(cfg.ways)) as usize;
        Self {
            cfg,
            lines: vec![SectorLine::default(); blocks],
            plru: vec![PlruBits::default(); cfg.num_sets() as usize],
            picker: VictimPicker::new(ReplacementPolicy::Lru),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SectorConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_of(&self, addr: u64) -> u64 {
        (addr / self.cfg.block_size) % self.cfg.num_sets()
    }

    fn tag_of(&self, addr: u64) -> u64 {
        (addr / self.cfg.block_size) / self.cfg.num_sets()
    }

    fn sub_mask(&self, r: MemRef) -> u64 {
        let off = r.addr % self.cfg.block_size;
        let first = off / self.cfg.subblock_size;
        let last = (off + u64::from(r.size).max(1) - 1) / self.cfg.subblock_size;
        let count = last - first + 1;
        let ones = if count >= 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        ones << first
    }

    fn find(&self, set: u64, tag: u64) -> Option<usize> {
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        (0..ways).find(|&w| {
            let l = &self.lines[base + w];
            l.valid && l.tag == tag
        })
    }

    /// Present one access; returns `(hit, bytes_fetched_now)`.
    ///
    /// A "hit" requires both the address block and all touched
    /// sub-blocks to be present.
    ///
    /// # Panics
    ///
    /// Panics if the access straddles an address-block boundary (split
    /// upstream).
    pub fn access(&mut self, r: MemRef) -> (bool, u64) {
        assert!(
            r.fits_in_block(self.cfg.block_size),
            "straddling access must be split before a sector cache"
        );
        self.clock += 1;
        self.stats.accesses += 1;
        self.stats.request_bytes += u64::from(r.size);
        let is_read = r.kind == AccessKind::Read;
        if is_read {
            self.stats.reads += 1;
        } else {
            self.stats.writes += 1;
        }

        let set = self.set_of(r.addr);
        let tag = self.tag_of(r.addr);
        let need = self.sub_mask(r);
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;

        let way = match self.find(set, tag) {
            Some(w) => w,
            None => {
                // Block miss: evict a whole address block (write back its
                // dirty sub-blocks) and re-tag; no data moves yet.
                let meta: Vec<(u64, u64)> = (0..ways)
                    .map(|w| (self.lines[base + w].last_touch, 0))
                    .collect();
                let w = (0..ways)
                    .find(|&w| !self.lines[base + w].valid)
                    .unwrap_or_else(|| self.picker.pick(&meta, &self.plru[set as usize]));
                let old = self.lines[base + w];
                if old.valid {
                    let dirty_subs = (old.dirty & old.present).count_ones() as u64;
                    let wb = dirty_subs * self.cfg.subblock_size;
                    self.stats.bytes_written_back += wb;
                }
                self.lines[base + w] = SectorLine {
                    valid: true,
                    tag,
                    present: 0,
                    dirty: 0,
                    last_touch: self.clock,
                };
                w
            }
        };

        let line = &mut self.lines[base + way];
        line.last_touch = self.clock;
        let missing = need & !line.present;
        let hit = missing == 0;
        let mut fetched = 0;
        if !hit {
            if is_read {
                self.stats.read_misses += 1;
            } else {
                self.stats.write_misses += 1;
            }
            fetched = u64::from(missing.count_ones()) * self.cfg.subblock_size;
            self.stats.bytes_fetched += fetched;
            line.present |= missing;
        } else if is_read {
            self.stats.read_hits += 1;
        } else {
            self.stats.write_hits += 1;
        }
        if !is_read {
            line.dirty |= need;
        }
        (hit, fetched)
    }

    /// Flush all dirty sub-blocks and return the final statistics.
    pub fn flush(&mut self) -> CacheStats {
        for line in &mut self.lines {
            if line.valid {
                let dirty_subs = (line.dirty & line.present).count_ones() as u64;
                self.stats.bytes_flushed += dirty_subs * self.cfg.subblock_size;
                *line = SectorLine::default();
            }
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: u64, block: u64, sub: u64) -> SectorConfig {
        SectorConfig {
            size_bytes: size,
            block_size: block,
            subblock_size: sub,
            ways: 1,
        }
        .validate()
        .unwrap()
    }

    #[test]
    fn fetches_only_touched_subblocks() {
        let mut c = SectorCache::new(cfg(512, 64, 8));
        let (hit, fetched) = c.access(MemRef::read(0, 4));
        assert!(!hit);
        assert_eq!(fetched, 8);
        // Another sub-block of the same address block: block present,
        // sub-block missing → fetch 8 more.
        let (hit, fetched) = c.access(MemRef::read(32, 4));
        assert!(!hit);
        assert_eq!(fetched, 8);
        assert_eq!(c.stats().bytes_fetched, 16);
    }

    #[test]
    fn traffic_between_small_and_large_blocks() {
        // Sparse single-word touches: sector traffic ≈ sub-block bytes
        // per miss, far below whole-block fills.
        let mut sector = SectorCache::new(cfg(4096, 64, 8));
        let mut whole = crate::Cache::new(crate::CacheConfig::builder(4096, 64).build().unwrap());
        for i in 0..500u64 {
            let addr = i * 8192;
            sector.access(MemRef::read(addr, 4));
            whole.access(MemRef::read(addr, 4));
        }
        let s = sector.flush();
        let w = whole.flush();
        assert_eq!(s.bytes_fetched, 500 * 8);
        assert_eq!(w.bytes_fetched, 500 * 64);
    }

    #[test]
    fn dirty_subblocks_write_back_individually() {
        let mut c = SectorCache::new(cfg(128, 64, 8)); // 2 blocks
        c.access(MemRef::write(0, 4)); // sub-block 0 dirty
        c.access(MemRef::write(8, 4)); // sub-block 1 dirty
                                       // Conflict-evict block 0 (same set in a 2-block, 2-set cache? —
                                       // 128/64 = 2 blocks, direct-mapped → 2 sets; 128 maps to set 0).
        c.access(MemRef::read(128, 4));
        assert_eq!(c.stats().bytes_written_back, 16, "two dirty sub-blocks");
    }

    #[test]
    fn write_allocates_via_fetch() {
        let mut c = SectorCache::new(cfg(512, 64, 8));
        let (hit, fetched) = c.access(MemRef::write(0, 4));
        assert!(!hit);
        assert_eq!(fetched, 8, "conservative fetch-on-write");
        let s = c.flush();
        assert_eq!(s.bytes_flushed, 8);
    }

    #[test]
    fn subblock_equal_to_block_degenerates_to_plain_cache() {
        let mut sector = SectorCache::new(cfg(512, 32, 32));
        let mut plain = crate::Cache::new(crate::CacheConfig::builder(512, 32).build().unwrap());
        let mut x = 5u64;
        for _ in 0..400 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(13);
            let addr = ((x >> 40) % 4096) & !3;
            let r = if x.is_multiple_of(3) {
                MemRef::write(addr, 4)
            } else {
                MemRef::read(addr, 4)
            };
            sector.access(r);
            plain.access(r);
        }
        let s = sector.flush();
        let p = plain.flush();
        assert_eq!(s.bytes_fetched, p.bytes_fetched);
        assert_eq!(s.demand_misses(), p.demand_misses());
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(SectorConfig {
            size_bytes: 512,
            block_size: 32,
            subblock_size: 64,
            ways: 1
        }
        .validate()
        .is_err());
        assert!(SectorConfig {
            size_bytes: 500,
            block_size: 32,
            subblock_size: 8,
            ways: 1
        }
        .validate()
        .is_err());
    }
}
