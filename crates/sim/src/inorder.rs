//! Four-wide in-order superscalar core (experiments A–C).
//!
//! Timestamp-propagation model: each uop's issue time is the maximum of
//! its fetch time, its operands' ready times, and the structural
//! constraints (issue width 4, two load/store units, strict program-order
//! issue). Mispredicted branches stall fetch until resolution plus a
//! redirect penalty.

use crate::bpred::{BranchPredictor, TwoLevelPredictor};
use crate::machine::MachineSpec;
use crate::memsys::MemSystem;
use membw_runner::{ambient_cancel_token, CancelToken};
use membw_trace::uop::NUM_REGS;
use membw_trace::{OpClass, TraceSink, Uop, Workload};

/// Per-cycle slot accounting for a monotone (in-order) schedule.
#[derive(Debug, Clone, Copy)]
struct MonotoneWidth {
    cycle: u64,
    used: u32,
    width: u32,
}

impl MonotoneWidth {
    fn new(width: u32) -> Self {
        Self {
            cycle: 0,
            used: 0,
            width,
        }
    }

    /// First cycle `>= earliest` with a free slot; books it.
    fn schedule(&mut self, earliest: u64) -> u64 {
        if earliest > self.cycle {
            self.cycle = earliest;
            self.used = 0;
        }
        if self.used >= self.width {
            self.cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.cycle
    }
}

/// The in-order pipeline, consuming uops as a [`TraceSink`].
#[derive(Debug)]
pub struct InOrderCore {
    mem: MemSystem,
    bpred: TwoLevelPredictor,
    reg_ready: [u64; NUM_REGS],
    issue: MonotoneWidth,
    mem_ports: MonotoneWidth,
    fetch_cycle: u64,
    fetch_in_cycle: u32,
    fetch_width: u32,
    pc: u64,
    cur_fetch_block: u64,
    prev_issue: u64,
    mispredict_penalty: u64,
    finish: u64,
    uops: u64,
    /// Ambient cancellation token, captured at construction and polled
    /// every 4096 uops, so a drain or deadline stops a simulation
    /// within milliseconds.
    cancel: CancelToken,
}

impl InOrderCore {
    /// Build the core around an already-constructed memory system.
    pub fn new(spec: &MachineSpec, mem: MemSystem) -> Self {
        Self {
            mem,
            bpred: TwoLevelPredictor::new(spec.bpred_entries, 8),
            reg_ready: [0; NUM_REGS],
            issue: MonotoneWidth::new(spec.issue_width),
            mem_ports: MonotoneWidth::new(2),
            fetch_cycle: 0,
            fetch_in_cycle: 0,
            fetch_width: spec.issue_width,
            pc: 0x1000,
            cur_fetch_block: u64::MAX,
            prev_issue: 0,
            mispredict_penalty: spec.mispredict_penalty,
            finish: 0,
            uops: 0,
            cancel: ambient_cancel_token(),
        }
    }

    /// Run `workload` to completion and return total cycles.
    pub fn run<W: Workload + ?Sized>(
        spec: &MachineSpec,
        mem: MemSystem,
        workload: &W,
    ) -> (u64, MemSystem) {
        let mut core = Self::new(spec, mem);
        workload.generate(&mut core);
        core.into_result()
    }

    /// Total uops consumed.
    pub fn uops(&self) -> u64 {
        self.uops
    }

    /// Finish the run: total cycles and the memory system (for stats).
    pub fn into_result(self) -> (u64, MemSystem) {
        (self.finish.max(1), self.mem)
    }

    fn fetch_time(&mut self, ends_group: bool) -> u64 {
        let t = self.fetch_cycle;
        self.fetch_in_cycle += 1;
        if self.fetch_in_cycle >= self.fetch_width || ends_group {
            self.fetch_cycle += 1;
            self.fetch_in_cycle = 0;
        }
        t
    }

    /// Gate fetch on the I-cache when the synthetic PC crosses into a
    /// new fetch block (the paper's simulations include instruction
    /// fetching).
    fn gate_fetch(&mut self) {
        let block = self.pc / 32;
        if block != self.cur_fetch_block {
            let ready = self.mem.ifetch(self.fetch_cycle, self.pc);
            if ready > self.fetch_cycle {
                self.fetch_cycle = ready;
                self.fetch_in_cycle = 0;
            }
            self.cur_fetch_block = block;
        }
    }

    /// Advance the synthetic PC past `uop` (taken branches jump to their
    /// site address, closing the loop). Straight-line code wraps within
    /// a bounded hot-code region — real programs' instruction footprints
    /// are finite even when their data streams are not.
    fn advance_pc(&mut self, uop: &Uop) {
        const CODE_BASE: u64 = 0x1000;
        const CODE_EXTENT: u64 = 32 * 1024;
        self.pc = match uop.branch {
            Some(b) if b.taken => b.pc,
            _ => CODE_BASE + self.pc.wrapping_add(4).wrapping_sub(CODE_BASE) % CODE_EXTENT,
        };
    }

    fn operands_ready(&self, uop: &Uop) -> u64 {
        uop.srcs
            .iter()
            .flatten()
            .map(|&r| self.reg_ready[usize::from(r)])
            .max()
            .unwrap_or(0)
    }
}

impl TraceSink for InOrderCore {
    fn uop(&mut self, uop: Uop) {
        self.uops += 1;
        if self.uops.is_multiple_of(4096) {
            self.cancel.check();
        }
        self.gate_fetch();
        self.advance_pc(&uop);
        let taken_branch = uop.branch.is_some_and(|b| b.taken);
        let fetched = self.fetch_time(taken_branch);
        let ready = self.operands_ready(&uop);
        // Strict in-order issue: never before the previous uop.
        let earliest = fetched.max(ready).max(self.prev_issue);
        let issue = if uop.class.is_mem() {
            // Needs both an issue slot and one of the two LS units.
            let t = self.issue.schedule(earliest);
            self.mem_ports.schedule(t)
        } else {
            self.issue.schedule(earliest)
        };
        self.prev_issue = issue;

        let complete = match uop.class {
            OpClass::Load => {
                let addr = uop.mem.expect("load carries an address").addr;
                self.mem.load(issue, addr)
            }
            OpClass::Store => {
                let addr = uop.mem.expect("store carries an address").addr;
                self.mem.store(issue, addr)
            }
            OpClass::Branch => {
                let b = uop.branch.expect("branch carries info");
                let resolve = issue + 1;
                if !self.bpred.access(b.pc, b.taken) {
                    // Redirect: fetch restarts after resolution + penalty.
                    let restart = resolve + self.mispredict_penalty;
                    if restart > self.fetch_cycle {
                        self.fetch_cycle = restart;
                        self.fetch_in_cycle = 0;
                    }
                }
                resolve
            }
            c => issue + u64::from(c.latency()),
        };
        if let Some(d) = uop.dest {
            self.reg_ready[usize::from(d)] = complete;
        }
        self.finish = self.finish.max(complete);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Experiment, MemoryMode};
    use membw_trace::{MemRef, VecWorkload};

    fn run_uops(uops: Vec<Uop>, mode: MemoryMode) -> u64 {
        let spec = MachineSpec::spec92(Experiment::A);
        let mem = MemSystem::new(&spec.mem, mode);
        let mut core = InOrderCore::new(&spec, mem);
        for u in uops {
            core.uop(u);
        }
        core.into_result().0
    }

    #[test]
    fn independent_alu_ops_issue_four_wide() {
        // 40 independent ALU ops on a 4-wide machine: ~10 cycles.
        let uops: Vec<Uop> = (0..40)
            .map(|i| Uop::compute(OpClass::IntAlu, Some((i % 32) as u8), [None, None]))
            .collect();
        let t = run_uops(uops, MemoryMode::Perfect);
        assert!((10..=13).contains(&t), "t = {t}");
    }

    #[test]
    fn dependent_chain_serializes() {
        // 40 chained ALU ops: one per cycle regardless of width.
        let uops: Vec<Uop> = (0..40)
            .map(|_| Uop::compute(OpClass::IntAlu, Some(1), [Some(1), None]))
            .collect();
        let t = run_uops(uops, MemoryMode::Perfect);
        assert!(t >= 40, "t = {t}");
    }

    #[test]
    fn load_use_stall_with_real_memory() {
        // A load feeding an add: the add waits for the full miss latency.
        let uops = vec![
            Uop::load(MemRef::read(0x100000, 4), Some(1), [None, None]),
            Uop::compute(OpClass::IntAlu, Some(2), [Some(1), None]),
        ];
        let t_perfect = run_uops(uops.clone(), MemoryMode::Perfect);
        let t_full = run_uops(uops, MemoryMode::Full);
        assert!(t_full > t_perfect + 20, "{t_full} vs {t_perfect}");
    }

    #[test]
    fn mem_port_limit_throttles_loads() {
        // 16 independent loads that all hit (same block, after a warm-up
        // miss): at 2 LS units/cycle they need ≥ 8 cycles.
        let mut uops = vec![Uop::load(MemRef::read(0, 4), Some(1), [None, None])];
        for _ in 0..16 {
            uops.push(Uop::load(MemRef::read(4, 4), Some(2), [None, None]));
        }
        let t = run_uops(uops, MemoryMode::Perfect);
        assert!(t >= 8, "t = {t}");
    }

    #[test]
    fn mispredicted_branches_cost_fetch_cycles() {
        // Alternating hard-to-learn-immediately branches vs none.
        let mut with_branches = Vec::new();
        let mut x = 7u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            with_branches.push(Uop::branch(
                0x40 + (x % 64) * 4,
                (x >> 35).is_multiple_of(2),
                [None, None],
            ));
            with_branches.push(Uop::compute(OpClass::IntAlu, Some(1), [None, None]));
        }
        let plain: Vec<Uop> = (0..400)
            .map(|_| Uop::compute(OpClass::IntAlu, Some(1), [None, None]))
            .collect();
        let t_br = run_uops(with_branches, MemoryMode::Perfect);
        let t_plain = run_uops(plain, MemoryMode::Perfect);
        assert!(t_br > t_plain, "{t_br} vs {t_plain}");
    }

    #[test]
    fn stores_do_not_stall_retire() {
        // A long run of store misses: with the infinite write buffer, the
        // core never waits on them (perfect vs full differ only modestly
        // via fetch-group timing).
        let uops: Vec<Uop> = (0..64)
            .map(|i| Uop::store(MemRef::write(i * 0x10000, 4), [None, None]))
            .collect();
        let spec = MachineSpec::spec92(Experiment::C); // lockup-free
        let mem = MemSystem::new(&spec.mem, MemoryMode::Full);
        let mut core = InOrderCore::new(&spec, mem);
        for u in uops {
            core.uop(u);
        }
        let (t, _) = core.into_result();
        assert!(t < 64 * 4, "stores retire without waiting, t = {t}");
    }

    #[test]
    fn run_via_workload() {
        let w = VecWorkload::new("t", vec![MemRef::read(0, 4), MemRef::read(4, 4)]);
        let spec = MachineSpec::spec92(Experiment::A);
        let mem = MemSystem::new(&spec.mem, MemoryMode::Perfect);
        let (t, mem) = InOrderCore::run(&spec, mem, &w);
        assert!(t >= 1, "two 1-cycle loads issue together and finish at 1");
        assert_eq!(mem.stats().loads, 2);
    }
}
