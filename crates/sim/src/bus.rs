//! Inter-level bus timing: width, clock ratio, occupancy, contention.

/// A bus between two levels of the memory hierarchy.
///
/// Transfers occupy the bus for `ceil(bytes / width)` bus cycles, each
/// `ratio` CPU cycles long; a transfer that arrives while the bus is busy
/// queues behind it. In *infinite* mode (the paper's `T_I` run: an
/// "infinitely-wide path"), a transfer still pays one bus cycle of
/// latency for the critical word but occupies nothing, so contention
/// never arises.
///
/// # Example
///
/// ```
/// use membw_sim::bus::Bus;
///
/// // 128-bit bus at one third of the CPU clock.
/// let mut bus = Bus::new(16, 3);
/// let t1 = bus.acquire(0, 32);   // 2 bus cycles = 6 CPU cycles
/// assert_eq!(t1.start, 0);
/// assert_eq!(t1.first_beat, 3);
/// assert_eq!(t1.done, 6);
/// let t2 = bus.acquire(1, 32);   // queues behind the first transfer
/// assert_eq!(t2.start, 6);
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    width_bytes: u64,
    ratio: u64,
    infinite: bool,
    busy_until: u64,
    transfers: u64,
    bytes: u64,
    queued_cycles: u64,
}

/// Timing of one granted bus transfer (CPU cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrant {
    /// Cycle the transfer began (after any queueing).
    pub start: u64,
    /// Cycle the first beat (critical word) is delivered.
    pub first_beat: u64,
    /// Cycle the full transfer completes.
    pub done: u64,
}

impl Bus {
    /// A bus `width_bytes` wide whose cycle is `ratio` CPU cycles.
    ///
    /// # Panics
    ///
    /// Panics if `width_bytes` or `ratio` is zero.
    pub fn new(width_bytes: u64, ratio: u64) -> Self {
        assert!(width_bytes > 0, "bus width must be positive");
        assert!(ratio > 0, "clock ratio must be positive");
        Self {
            width_bytes,
            ratio,
            infinite: false,
            busy_until: 0,
            transfers: 0,
            bytes: 0,
            queued_cycles: 0,
        }
    }

    /// An infinitely-wide, contention-free path (the `T_I` run).
    pub fn infinite() -> Self {
        Self {
            width_bytes: u64::MAX,
            ratio: 1,
            infinite: true,
            busy_until: 0,
            transfers: 0,
            bytes: 0,
            queued_cycles: 0,
        }
    }

    /// `true` if this is the infinite-bandwidth model.
    pub fn is_infinite(&self) -> bool {
        self.infinite
    }

    /// Request a transfer of `bytes` at CPU cycle `now`.
    pub fn acquire(&mut self, now: u64, bytes: u64) -> BusGrant {
        self.transfers += 1;
        self.bytes += bytes;
        if self.infinite {
            // One beat of latency, no occupancy.
            return BusGrant {
                start: now,
                first_beat: now + 1,
                done: now + 1,
            };
        }
        let start = now.max(self.busy_until);
        self.queued_cycles += start - now;
        let beats = bytes.div_ceil(self.width_bytes).max(1);
        let done = start + beats * self.ratio;
        self.busy_until = done;
        BusGrant {
            start,
            first_beat: start + self.ratio,
            done,
        }
    }

    /// Total transfers granted.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Cumulative CPU cycles transfers spent waiting for the bus.
    pub fn queued_cycles(&self) -> u64 {
        self.queued_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_duration_scales_with_size_and_ratio() {
        let mut bus = Bus::new(8, 4); // 64-bit bus, quarter clock
        let g = bus.acquire(10, 64); // 8 beats × 4 = 32 cycles
        assert_eq!(g.start, 10);
        assert_eq!(g.first_beat, 14);
        assert_eq!(g.done, 42);
    }

    #[test]
    fn contention_queues_back_to_back() {
        let mut bus = Bus::new(16, 3);
        let a = bus.acquire(0, 16); // done at 3
        let b = bus.acquire(0, 16); // queues: starts at 3
        let c = bus.acquire(100, 16); // idle bus: starts immediately
        assert_eq!(a.done, 3);
        assert_eq!(b.start, 3);
        assert_eq!(b.done, 6);
        assert_eq!(c.start, 100);
        assert_eq!(bus.queued_cycles(), 3);
    }

    #[test]
    fn infinite_bus_never_queues() {
        let mut bus = Bus::infinite();
        for i in 0..100 {
            let g = bus.acquire(i, 1 << 20);
            assert_eq!(g.start, i);
            assert_eq!(g.done, i + 1);
        }
        assert_eq!(bus.queued_cycles(), 0);
        assert!(bus.is_infinite());
    }

    #[test]
    fn tiny_transfer_takes_one_beat() {
        let mut bus = Bus::new(16, 2);
        let g = bus.acquire(0, 4);
        assert_eq!(g.done, 2);
    }

    #[test]
    fn counters_accumulate() {
        let mut bus = Bus::new(8, 1);
        bus.acquire(0, 24);
        bus.acquire(0, 8);
        assert_eq!(bus.transfers(), 2);
        assert_eq!(bus.bytes(), 32);
    }
}
