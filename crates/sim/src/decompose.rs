//! Execution-time decomposition: `f_P`, `f_L`, `f_B` (§2, Eqs. 1–3).

use crate::inorder::InOrderCore;
use crate::machine::{CoreKind, MachineSpec, MemoryMode};
use crate::memsys::{MemSystem, MemSystemStats};
use crate::ruu::RuuCore;
use membw_trace::Workload;
use serde::{Deserialize, Serialize};

/// Result of the three-run decomposition for one workload on one machine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Decomposition {
    /// Cycles with a perfect (1-cycle) memory system: `T_P`.
    pub t_p: u64,
    /// Cycles with real latencies but infinite inter-level bandwidth:
    /// `T_I`.
    pub t_i: u64,
    /// Cycles with the full memory system: `T`.
    pub t: u64,
    /// Processing fraction `f_P = T_P / T`.
    pub f_p: f64,
    /// Raw-latency stall fraction `f_L = (T_I − T_P) / T`.
    pub f_l: f64,
    /// Bandwidth stall fraction `f_B = (T − T_I) / T`.
    pub f_b: f64,
    /// Memory-system counters from the full run.
    pub full_mem: MemSystemStats,
    /// Micro-ops executed.
    pub uops: u64,
}

impl Decomposition {
    /// Execution time normalized to `T_P` (the y-axis of Figure 3).
    pub fn normalized_time(&self) -> f64 {
        self.t as f64 / self.t_p as f64
    }

    /// Instructions (uops) per cycle of the full run.
    pub fn ipc(&self) -> f64 {
        self.uops as f64 / self.t as f64
    }
}

fn run_once<W: Workload + ?Sized>(
    workload: &W,
    spec: &MachineSpec,
    mode: MemoryMode,
) -> (u64, MemSystem, u64) {
    let mem = MemSystem::new(&spec.mem, mode);
    match spec.core {
        CoreKind::InOrder => {
            let mut core = InOrderCore::new(spec, mem);
            workload.generate(&mut core);
            let uops = core.uops();
            let (t, mem) = core.into_result();
            (t, mem, uops)
        }
        CoreKind::OutOfOrder => {
            let mut core = RuuCore::new(spec, mem);
            workload.generate(&mut core);
            let uops = core.uops();
            let (t, mem) = core.into_result();
            (t, mem, uops)
        }
    }
}

/// Decompose the execution time of `workload` on `spec` by running the
/// perfect, latency-only, and full simulations (§3.1).
///
/// The fractions satisfy `f_P + f_L + f_B = 1` up to floating-point
/// rounding. `T ≥ T_I` always holds (removing bandwidth limits cannot slow
/// a run); `T_I ≥ T_P` holds whenever real latencies only add time, which
/// the timing model guarantees.
pub fn decompose<W: Workload + ?Sized>(workload: &W, spec: &MachineSpec) -> Decomposition {
    let (t_p, _, uops) = run_once(workload, spec, MemoryMode::Perfect);
    let (t_i, _, _) = run_once(workload, spec, MemoryMode::LatencyOnly);
    let (t, mem, _) = run_once(workload, spec, MemoryMode::Full);
    // Guard the invariants against model corner cases.
    let t_i = t_i.max(t_p);
    let t = t.max(t_i);
    let tf = t as f64;
    Decomposition {
        t_p,
        t_i,
        t,
        f_p: t_p as f64 / tf,
        f_l: (t_i - t_p) as f64 / tf,
        f_b: (t - t_i) as f64 / tf,
        full_mem: mem.stats(),
        uops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Experiment;
    use membw_trace::pattern::{Strided, Zipf};

    #[test]
    fn fractions_sum_to_one() {
        let w = Strided::reads(0, 4, 5_000).with_write_every(5);
        for e in [Experiment::A, Experiment::D, Experiment::F] {
            let d = decompose(&w, &MachineSpec::spec92(e));
            assert!((d.f_p + d.f_l + d.f_b - 1.0).abs() < 1e-9, "{e:?}");
            assert!(d.f_p > 0.0 && d.f_l >= 0.0 && d.f_b >= 0.0);
            assert!(d.t >= d.t_i && d.t_i >= d.t_p);
        }
    }

    #[test]
    fn cache_resident_workload_has_tiny_stalls() {
        // A small hot set living comfortably in the 128 KiB L1: once the
        // 16 KiB footprint is resident, only cold misses ever stall.
        let w = Zipf::new(0, 1024, 16, 100_000, 0.9, 3);
        let d = decompose(&w, &MachineSpec::spec92(Experiment::A));
        assert!(d.f_p > 0.85, "f_p = {}", d.f_p);
    }

    #[test]
    fn streaming_workload_stalls_on_memory() {
        // A 4 MiB streaming sweep: constant misses all the way down.
        let w = Strided::reads(0, 4, 1 << 20);
        let d = decompose(&w, &MachineSpec::spec92(Experiment::A));
        assert!(d.f_p < 0.9, "streaming must stall; f_p = {}", d.f_p);
        assert!(d.f_l + d.f_b > 0.1);
    }

    #[test]
    fn normalized_time_and_ipc() {
        let w = Strided::reads(0, 4, 2_000);
        let d = decompose(&w, &MachineSpec::spec92(Experiment::A));
        assert!(d.normalized_time() >= 1.0);
        assert!(d.ipc() > 0.0 && d.ipc() <= 4.0);
    }
}
