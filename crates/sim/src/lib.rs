//! Cycle-level CPU and memory-hierarchy timing simulation.
//!
//! This crate reproduces the measurement instrument of §3 of Burger,
//! Goodman and Kägi (ISCA 1996): the decomposition of execution time into
//! processing time, raw-latency stall time, and bandwidth stall time, for
//! six machine configurations (**experiments A–F**) spanning in-order and
//! out-of-order issue, blocking and lockup-free caches, two block-size
//! points, and tagged prefetching.
//!
//! # Substitution note
//!
//! The paper uses SimpleScalar's execution-driven simulation of a
//! MIPS-like ISA. We simulate *timing* over dependency-annotated micro-op
//! traces instead (see `membw-trace`): the trace carries operation
//! classes, register dependencies, memory addresses, and branch outcomes —
//! exactly the inputs a cycle model consumes. Core timing uses timestamp
//! propagation (each uop's fetch/dispatch/issue/complete/commit times are
//! derived in program order), which models width, window, dependency,
//! structural, memory, and misprediction constraints without a per-cycle
//! event loop. Wrong-path memory traffic is not modeled (documented
//! deviation; DESIGN.md §7).
//!
//! # The three runs (§3.1)
//!
//! * **perfect** — every memory access completes in one cycle → `T_P`;
//! * **latency** — real hierarchy with infinitely wide, contention-free
//!   paths between levels → `T_I`;
//! * **full** — real hierarchy with finite buses and queueing → `T`.
//!
//! `f_P = T_P/T`, `f_L = (T_I − T_P)/T`, `f_B = (T − T_I)/T` (Eqs. 1–3).
//!
//! # Example
//!
//! ```
//! use membw_sim::{decompose, Experiment, MachineSpec};
//! use membw_trace::pattern::Strided;
//!
//! // A bandwidth-hungry streaming kernel on experiment A vs. F.
//! let w = Strided::reads(0, 4, 20_000).with_write_every(4);
//! let spec = MachineSpec::spec92(Experiment::A);
//! let d = decompose(&w, &spec);
//! assert!((d.f_p + d.f_l + d.f_b - 1.0).abs() < 1e-9);
//! ```

pub mod bpred;
pub mod bus;
pub mod decompose;
pub mod dram;
pub mod inorder;
pub mod machine;
pub mod memsys;
pub mod ruu;

pub use bpred::{BranchPredictor, TwoLevelPredictor};
pub use decompose::{decompose, Decomposition};
pub use dram::{Dram, DramConfig};
pub use machine::{CoreKind, Experiment, MachineSpec, MemoryMode, MemorySpec};
pub use memsys::{MemSystem, MemSystemStats};
