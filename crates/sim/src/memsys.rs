//! Timing model of the two-level memory hierarchy.
//!
//! Functional contents (hits, misses, evictions, traffic) come from the
//! `membw-cache` simulators; this module adds *time*: L2 and DRAM access
//! latencies, bus occupancy and queueing, critical-word-first returns,
//! MSHR-style lockup-free behaviour or blocking-cache serialization, and
//! an infinite write buffer (stores retire immediately; their traffic
//! still occupies the buses).

use crate::bus::Bus;
use crate::dram::{Dram, DramConfig};
use crate::machine::{MemoryMode, MemorySpec};
use membw_cache::{BelowKind, BelowRequest, Cache, CacheStats};
use membw_trace::{FastHashMap, MemRef};
use serde::{Deserialize, Serialize};

/// Aggregate counters of a [`MemSystem`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemSystemStats {
    /// Loads presented.
    pub loads: u64,
    /// Stores presented.
    pub stores: u64,
    /// Bytes that crossed the L2/memory boundary (the "pin traffic").
    pub memory_traffic: u64,
    /// CPU cycles requests spent queued for the L1/L2 bus.
    pub bus1_queued_cycles: u64,
    /// CPU cycles requests spent queued for the L2/memory bus.
    pub bus2_queued_cycles: u64,
}

/// The timed two-level hierarchy.
///
/// # Example
///
/// ```
/// use membw_sim::{Experiment, MachineSpec, MemSystem, MemoryMode};
///
/// let spec = MachineSpec::spec92(Experiment::A);
/// let mut m = MemSystem::new(&spec.mem, MemoryMode::Full);
/// let t0 = m.load(0, 0x1000);          // cold miss: goes to memory
/// let t1 = m.load(t0, 0x1000);         // now hits in one cycle
/// assert!(t0 > 30, "miss pays L2 + memory latency, got {t0}");
/// assert_eq!(t1, t0 + 1);
/// ```
#[derive(Debug)]
pub struct MemSystem {
    mode: MemoryMode,
    l1: Cache,
    icache: Option<Cache>,
    l2: Cache,
    bus1: Bus,
    bus2: Bus,
    dram: Dram,
    spec: MemorySpec,
    /// L1 blocks currently being filled -> cycle the fill completes.
    fill_ready: FastHashMap<u64, u64>,
    /// L2 blocks currently being filled -> cycle the fill completes.
    l2_fill_ready: FastHashMap<u64, u64>,
    /// Completion cycle of the most recent miss (blocking cache).
    last_miss_done: u64,
    /// Completion cycles of in-flight misses (lockup-free MSHRs).
    outstanding: Vec<u64>,
    /// Drain times of occupied write-buffer entries (finite buffers).
    write_buffer: Vec<u64>,
    stats: MemSystemStats,
}

impl MemSystem {
    /// Build the hierarchy described by `spec` under `mode`.
    pub fn new(spec: &MemorySpec, mode: MemoryMode) -> Self {
        let (bus1, bus2) = match mode {
            MemoryMode::Full => (
                Bus::new(spec.bus1_width, spec.bus1_ratio),
                Bus::new(spec.bus2_width, spec.bus2_ratio),
            ),
            _ => (Bus::infinite(), Bus::infinite()),
        };
        let dram = match mode {
            MemoryMode::Full => Dram::new(spec.dram),
            _ => Dram::new(DramConfig::infinite_banks(spec.dram.access_cycles)),
        };
        Self {
            mode,
            l1: Cache::new(spec.l1_config()),
            icache: spec.icache_config().map(Cache::new),
            l2: Cache::new(spec.l2_config()),
            bus1,
            bus2,
            dram,
            spec: *spec,
            fill_ready: FastHashMap::default(),
            l2_fill_ready: FastHashMap::default(),
            last_miss_done: 0,
            outstanding: Vec::new(),
            write_buffer: Vec::new(),
            stats: MemSystemStats::default(),
        }
    }

    /// The run mode.
    pub fn mode(&self) -> MemoryMode {
        self.mode
    }

    /// Aggregate counters (memory traffic, queueing).
    pub fn stats(&self) -> MemSystemStats {
        let mut s = self.stats;
        s.bus1_queued_cycles = self.bus1.queued_cycles();
        s.bus2_queued_cycles = self.bus2.queued_cycles();
        s
    }

    /// L1 functional counters.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// L2 functional counters.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Present an instruction fetch of the 32-byte block at `pc` issued
    /// at `now`; returns the cycle the block is available. Returns `now`
    /// when I-side modeling is disabled or memory is perfect.
    pub fn ifetch(&mut self, now: u64, pc: u64) -> u64 {
        if self.mode == MemoryMode::Perfect {
            return now;
        }
        let Some(ic) = self.icache.as_mut() else {
            return now;
        };
        let outcome = ic.access(MemRef::read(pc & !31, 4));
        if outcome.hit {
            return now;
        }
        let mut ready = now;
        for &req in outcome.below() {
            if req.is_fetch() {
                ready = self.fetch_from_l2(now, req);
            }
            // I-cache lines are never dirty; no write-backs occur.
        }
        ready
    }

    /// Present a load issued at `now`; returns its data-ready cycle.
    pub fn load(&mut self, now: u64, addr: u64) -> u64 {
        self.stats.loads += 1;
        if self.mode == MemoryMode::Perfect {
            return now + 1;
        }
        self.access(now, MemRef::read(addr, 4), true)
    }

    /// Present a store issued at `now`; returns its retire cycle.
    ///
    /// With the paper's infinite write buffer (the default), stores
    /// retire one cycle after issue regardless of hit/miss; miss traffic
    /// still occupies MSHRs and buses. With a finite buffer
    /// ([`MemorySpec::write_buffer_entries`] > 0), a store that finds
    /// the buffer full stalls until the oldest entry drains.
    pub fn store(&mut self, now: u64, addr: u64) -> u64 {
        self.stats.stores += 1;
        if self.mode == MemoryMode::Perfect {
            return now + 1;
        }
        let drains_at = self.access(now, MemRef::write(addr, 4), false);
        if self.spec.write_buffer_entries == 0 || self.mode != MemoryMode::Full {
            return now + 1;
        }
        // Finite buffer: occupy an entry until the store's below-L1
        // activity completes; a full buffer backpressures the core.
        self.write_buffer.retain(|&d| d > now);
        let mut retire = now + 1;
        if self.write_buffer.len() >= self.spec.write_buffer_entries {
            let earliest = self
                .write_buffer
                .iter()
                .copied()
                .min()
                .expect("full buffer is non-empty");
            retire = retire.max(earliest + 1);
            self.write_buffer.retain(|&d| d > earliest);
        }
        self.write_buffer.push(drains_at.max(now + 1));
        retire
    }

    /// Core of the timing model. Returns the data-ready cycle (loads).
    fn access(&mut self, now: u64, r: MemRef, wait_for_data: bool) -> u64 {
        let block = r.addr / self.spec.l1_block;
        let outcome = self.l1.access(r);
        if outcome.hit {
            // A hit on a still-filling block waits for the fill.
            let ready = self
                .fill_ready
                .get(&block)
                .copied()
                .unwrap_or(0)
                .max(now + 1);
            // Tagged prefetch can trigger on first use of a prefetched
            // block: schedule its traffic without stalling the core.
            self.schedule_async(now + 1, outcome.below());
            return ready;
        }

        // Miss. Structural constraints first.
        let mut issue = now + 1;
        if self.spec.blocking {
            issue = issue.max(self.last_miss_done);
        } else {
            self.outstanding.retain(|&c| c > issue);
            if self.outstanding.len() >= self.spec.mshrs {
                let earliest = self
                    .outstanding
                    .iter()
                    .copied()
                    .min()
                    .expect("outstanding non-empty when full");
                issue = issue.max(earliest);
                self.outstanding.retain(|&c| c > issue);
            }
        }

        let mut data_ready = issue;
        for req in outcome.below() {
            match req.kind {
                BelowKind::Fetch => {
                    data_ready = self.fetch_from_l2(issue, *req);
                }
                BelowKind::PrefetchFetch | BelowKind::Writeback | BelowKind::WriteThrough => {
                    self.schedule_one_async(issue, *req);
                }
            }
        }

        self.fill_ready.insert(block, data_ready);
        self.prune_fills(now);
        self.last_miss_done = self.last_miss_done.max(data_ready);
        if !self.spec.blocking {
            self.outstanding.push(data_ready);
        }
        if wait_for_data {
            data_ready
        } else {
            data_ready.max(now + 1)
        }
    }

    /// Time a demand fetch from L2 (and below), returning the cycle the
    /// critical word reaches the L1.
    fn fetch_from_l2(&mut self, t: u64, req: BelowRequest) -> u64 {
        let l2_block = req.addr / self.spec.l2_block;
        let size = u16::try_from(req.bytes.min(u64::from(u16::MAX))).expect("bounded");
        let outcome = self.l2.access(MemRef::read(req.addr, size));
        // Request reaches L2, which takes l2_latency to respond.
        let l2_done = t + self.spec.l2_latency;
        let data_at_l2 = if outcome.hit {
            // Account for an in-progress fill of this L2 block.
            self.l2_fill_ready
                .get(&l2_block)
                .copied()
                .unwrap_or(0)
                .max(l2_done)
        } else {
            let mut ready = l2_done;
            for sub in outcome.below() {
                match sub.kind {
                    BelowKind::Fetch => {
                        // DRAM access then transfer over the L2/memory
                        // bus, critical word first.
                        let mem_ready = self.dram.access(l2_done, sub.addr);
                        let grant = self.bus2.acquire(mem_ready, sub.bytes);
                        self.stats.memory_traffic += sub.bytes;
                        self.l2_fill_ready.insert(l2_block, grant.done);
                        ready = grant.first_beat;
                    }
                    _ => {
                        // L2 writebacks go to memory asynchronously.
                        self.bus2.acquire(l2_done, sub.bytes);
                        self.stats.memory_traffic += sub.bytes;
                    }
                }
            }
            ready
        };
        // Data crosses the L1/L2 bus, critical word first.
        let grant = self.bus1.acquire(data_at_l2, req.bytes);
        grant.first_beat
    }

    /// Schedule below-L1 transfers nobody waits on (write-backs,
    /// write-throughs, prefetches).
    fn schedule_async(&mut self, t: u64, reqs: &[BelowRequest]) {
        for req in reqs {
            self.schedule_one_async(t, *req);
        }
    }

    fn schedule_one_async(&mut self, t: u64, req: BelowRequest) {
        if req.is_fetch() {
            // Prefetch: full L2 path; nobody stalls on it now, but a
            // later demand hit on the block must wait for its arrival.
            let ready = self.fetch_from_l2(t, req);
            let block = req.addr / self.spec.l1_block;
            self.fill_ready.insert(block, ready);
        } else {
            // Writeback / write-through: occupy bus1, then update L2.
            let grant = self.bus1.acquire(t, req.bytes);
            let size = u16::try_from(req.bytes.min(u64::from(u16::MAX))).expect("bounded");
            let outcome = self.l2.access(MemRef::write(req.addr, size));
            for sub in outcome.below() {
                self.bus2.acquire(grant.done, sub.bytes);
                self.stats.memory_traffic += sub.bytes;
            }
        }
    }

    fn prune_fills(&mut self, now: u64) {
        if self.fill_ready.len() > 65536 {
            self.fill_ready.retain(|_, &mut c| c > now);
        }
        if self.l2_fill_ready.len() > 65536 {
            self.l2_fill_ready.retain(|_, &mut c| c > now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Experiment, MachineSpec};

    fn full(e: Experiment) -> MemSystem {
        MemSystem::new(&MachineSpec::spec92(e).mem, MemoryMode::Full)
    }

    #[test]
    fn perfect_mode_is_always_one_cycle() {
        let spec = MachineSpec::spec92(Experiment::A).mem;
        let mut m = MemSystem::new(&spec, MemoryMode::Perfect);
        assert_eq!(m.load(100, 0xdead000), 101);
        assert_eq!(m.store(200, 0xbeef000), 201);
        assert_eq!(m.stats().memory_traffic, 0);
    }

    #[test]
    fn l2_hit_is_faster_than_memory_miss() {
        let mut m = full(Experiment::A);
        // Cold miss: L1 miss, L2 miss → memory.
        let t_mem = m.load(0, 0x10000);
        // Evict from L1 by touching 4096 conflicting blocks... instead use
        // an address that shares the L2 block but a different L1 block:
        // L1 block 32B, L2 block 64B → 0x10020 is a new L1 block but the
        // same (already fetched) L2 block.
        let t_l2 = m.load(t_mem, 0x10020) - t_mem;
        assert!(t_l2 < t_mem, "L2 hit ({t_l2}) must beat memory ({t_mem})");
        assert!(t_l2 > 1, "L2 hit is not free");
    }

    #[test]
    fn store_retires_immediately_but_moves_traffic() {
        let mut m = full(Experiment::A);
        let t = m.store(0, 0x4000);
        assert_eq!(t, 1, "infinite write buffer retires stores at once");
        assert!(m.l1_stats().write_misses == 1);
        assert!(
            m.stats().memory_traffic > 0,
            "allocate fetch reached memory"
        );
    }

    #[test]
    fn blocking_cache_serializes_misses() {
        let mut blocking = full(Experiment::A); // blocking
        let mut lockup_free = full(Experiment::C); // MSHRs
                                                   // Two independent cold misses issued back-to-back.
        let b1 = blocking.load(0, 0x100000);
        let b2 = blocking.load(1, 0x200000);
        let c1 = lockup_free.load(0, 0x100000);
        let c2 = lockup_free.load(1, 0x200000);
        assert!(b2 >= b1 + b1 / 2, "second blocked miss waits");
        assert!(c2 < b2, "lockup-free overlaps misses: {c2} vs {b2}");
        assert_eq!(c1, b1, "first miss costs the same either way");
    }

    #[test]
    fn latency_only_mode_removes_queueing() {
        let spec = MachineSpec::spec92(Experiment::C).mem;
        let mut full_sys = MemSystem::new(&spec, MemoryMode::Full);
        let mut lat_sys = MemSystem::new(&spec, MemoryMode::LatencyOnly);
        // A burst of simultaneous misses: the full system queues on the
        // 64-bit memory bus, the latency-only system does not.
        let mut full_last = 0;
        let mut lat_last = 0;
        for i in 0..8u64 {
            full_last = full_last.max(full_sys.load(i, i * 0x100000));
            lat_last = lat_last.max(lat_sys.load(i, i * 0x100000));
        }
        assert!(lat_last < full_last, "{lat_last} vs {full_last}");
        assert_eq!(
            full_sys.stats().memory_traffic,
            lat_sys.stats().memory_traffic,
            "functional traffic is identical across modes"
        );
        assert_eq!(lat_sys.stats().bus2_queued_cycles, 0);
    }

    #[test]
    fn hit_on_filling_block_waits_for_fill() {
        let mut m = full(Experiment::C);
        let t1 = m.load(0, 0x8000);
        // Second word of the same block, issued while the fill is in
        // flight: functionally a hit, but the data is not there yet.
        let t2 = m.load(1, 0x8004);
        assert!(t2 >= t1, "hit under fill cannot complete before the fill");
    }

    #[test]
    fn icache_misses_gate_fetch_and_share_the_memory_path() {
        let mut spec = MachineSpec::spec92(Experiment::C).mem;
        spec.icache_bytes = 64 * 1024;
        let mut m = MemSystem::new(&spec, MemoryMode::Full);
        // Cold I-block: costs a real trip through L2/memory.
        let t1 = m.ifetch(0, 0x1000);
        assert!(t1 > 20, "cold I-miss pays the hierarchy, got {t1}");
        // Same block again: free.
        assert_eq!(m.ifetch(t1, 0x1010), t1);
        // Disabled I-side is always free.
        let base = MachineSpec::spec92(Experiment::C).mem;
        let mut off = MemSystem::new(&base, MemoryMode::Full);
        assert_eq!(off.ifetch(5, 0x1000), 5);
        // I-traffic reached memory.
        assert!(m.stats().memory_traffic > 0);
    }

    #[test]
    fn finite_write_buffer_backpressures_store_bursts() {
        let mut spec = MachineSpec::spec92(Experiment::C).mem;
        spec.write_buffer_entries = 2;
        let mut finite = MemSystem::new(&spec, MemoryMode::Full);
        let mut infinite =
            MemSystem::new(&MachineSpec::spec92(Experiment::C).mem, MemoryMode::Full);
        // A burst of store misses to distinct blocks.
        let mut t_fin = 0;
        let mut t_inf = 0;
        for i in 0..16u64 {
            t_fin = finite.store(t_fin, i * 0x100000);
            t_inf = infinite.store(t_inf, i * 0x100000);
        }
        assert!(
            t_fin > t_inf,
            "a 2-entry buffer must stall the burst: {t_fin} vs {t_inf}"
        );
        assert_eq!(t_inf, 16, "infinite buffer retires one per cycle");
        // In latency-only mode the buffer model is disabled (bandwidth
        // effects belong to the full run).
        let mut lat = MemSystem::new(&spec, MemoryMode::LatencyOnly);
        let mut t = 0;
        for i in 0..16u64 {
            t = lat.store(t, i * 0x100000);
        }
        assert_eq!(t, 16);
    }

    #[test]
    fn prefetch_moves_traffic_without_stalling() {
        let spec = MachineSpec::spec92(Experiment::E).mem; // prefetch on
        let mut m = MemSystem::new(&spec, MemoryMode::Full);
        let t = m.load(0, 0); // miss on block 0 → prefetch block 1
        assert!(m.l1_stats().prefetch_fills >= 1);
        // First use of the prefetched block hits (after waiting for the
        // in-flight fill) and triggers the prefetch of block 2, which
        // lives in a *different L2 block* — so by the time the demand
        // stream arrives there, the memory access is already under way.
        let t2 = m.load(t, 32);
        let t3 = m.load(t2 + 30, 64);
        let no_pf_spec = MachineSpec::spec92(Experiment::D).mem;
        let mut n = MemSystem::new(&no_pf_spec, MemoryMode::Full);
        let u = n.load(0, 0);
        let u2 = n.load(u, 32);
        assert!(u2 > u + 2, "without prefetch the next block misses");
        let u3 = n.load(u2 + 30, 64);
        assert!(
            t3 - (t2 + 30) < u3 - (u2 + 30),
            "prefetch must hide part of block 2's latency: {} vs {}",
            t3 - (t2 + 30),
            u3 - (u2 + 30)
        );
        assert!(
            m.stats().memory_traffic >= n.stats().memory_traffic,
            "prefetch cannot reduce total traffic here"
        );
    }
}
