//! Banked DRAM with open-page row buffers.
//!
//! Table 4 assumes "infinite banks", and §2.3 argues DRAM chips are
//! "unlikely to become a long-term performance bottleneck" thanks to
//! EDO/synchronous/Rambus parts. This model makes that assumption
//! testable: finite banks serialize same-bank accesses, and an open row
//! buffer makes consecutive same-row accesses cheaper — so benches can
//! measure how far from "infinite" a real part may be before the
//! conclusion changes.

use serde::{Deserialize, Serialize};

/// DRAM timing/geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of banks; `0` means infinite (the paper's Table 4).
    pub banks: u32,
    /// Full access latency in CPU cycles (row activate + column).
    pub access_cycles: u64,
    /// Row-buffer hit latency in CPU cycles (column access only).
    pub row_hit_cycles: u64,
    /// Row size in bytes.
    pub row_bytes: u64,
    /// Bank-interleave granularity in bytes (consecutive chunks of this
    /// size go to consecutive banks).
    pub interleave_bytes: u64,
}

impl DramConfig {
    /// The paper's Table 4 memory: 90 ns at `mhz`, infinite banks.
    pub fn infinite_banks(access_cycles: u64) -> Self {
        Self {
            banks: 0,
            access_cycles,
            row_hit_cycles: access_cycles / 3,
            row_bytes: 2048,
            interleave_bytes: 64,
        }
    }

    /// A finite-banked part with open-page policy.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero (use [`DramConfig::infinite_banks`]) or
    /// sizes are not powers of two.
    pub fn banked(banks: u32, access_cycles: u64, row_hit_cycles: u64) -> Self {
        assert!(banks > 0, "use infinite_banks for the paper's model");
        Self {
            banks,
            access_cycles,
            row_hit_cycles,
            row_bytes: 2048,
            interleave_bytes: 64,
        }
    }
}

/// Runtime DRAM state: per-bank busy-until and open row.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    busy_until: Vec<u64>,
    open_row: Vec<Option<u64>>,
    accesses: u64,
    row_hits: u64,
    bank_wait_cycles: u64,
}

impl Dram {
    /// Build an idle DRAM.
    pub fn new(cfg: DramConfig) -> Self {
        let n = cfg.banks.max(1) as usize;
        Self {
            cfg,
            busy_until: vec![0; n],
            open_row: vec![None; n],
            accesses: 0,
            row_hits: 0,
            bank_wait_cycles: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn bank_of(&self, addr: u64) -> usize {
        if self.cfg.banks == 0 {
            0
        } else {
            ((addr / self.cfg.interleave_bytes) % u64::from(self.cfg.banks)) as usize
        }
    }

    fn row_of(&self, addr: u64) -> u64 {
        addr / self.cfg.row_bytes
    }

    /// Request the data at `addr` at cycle `now`; returns the cycle the
    /// bank delivers it.
    pub fn access(&mut self, now: u64, addr: u64) -> u64 {
        self.accesses += 1;
        if self.cfg.banks == 0 {
            // Infinite banks: pure latency, every access a "row miss"
            // (conservative, matching the paper's flat 90 ns).
            return now + self.cfg.access_cycles;
        }
        let bank = self.bank_of(addr);
        let row = self.row_of(addr);
        let start = now.max(self.busy_until[bank]);
        self.bank_wait_cycles += start - now;
        let latency = if self.open_row[bank] == Some(row) {
            self.row_hits += 1;
            self.cfg.row_hit_cycles
        } else {
            self.open_row[bank] = Some(row);
            self.cfg.access_cycles
        };
        let done = start + latency;
        self.busy_until[bank] = done;
        done
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Row-buffer hits (always 0 with infinite banks).
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Cycles spent waiting for busy banks.
    pub fn bank_wait_cycles(&self) -> u64 {
        self.bank_wait_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_banks_are_flat_latency() {
        let mut d = Dram::new(DramConfig::infinite_banks(27));
        assert_eq!(d.access(0, 0), 27);
        assert_eq!(d.access(0, 0), 27, "no serialization");
        assert_eq!(d.access(100, 1 << 30), 127);
        assert_eq!(d.bank_wait_cycles(), 0);
    }

    #[test]
    fn same_bank_accesses_serialize() {
        let mut d = Dram::new(DramConfig::banked(4, 27, 9));
        // Same bank (same interleave chunk), different rows.
        let t1 = d.access(0, 0);
        let t2 = d.access(0, 4096 * 4); // bank 0 again (16KB = 64 chunks, 64%4=0)
        assert_eq!(t1, 27);
        assert!(t2 > t1, "bank busy: {t2}");
        assert!(d.bank_wait_cycles() > 0);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = Dram::new(DramConfig::banked(4, 27, 9));
        let t1 = d.access(0, 0);
        let t2 = d.access(0, 64); // next chunk → bank 1
        assert_eq!(t1, 27);
        assert_eq!(t2, 27, "parallel banks");
    }

    #[test]
    fn open_row_hits_are_faster() {
        let mut d = Dram::new(DramConfig::banked(2, 27, 9));
        let t1 = d.access(0, 0); // opens row 0 of bank 0
        let t2 = d.access(t1, 0); // row hit
        assert_eq!(t2 - t1, 9);
        assert_eq!(d.row_hits(), 1);
        // A different row in the same bank closes the page.
        let t3 = d.access(t2, 4096); // row 2, bank 0 (4096/64=64 chunks, 64%2=0)
        assert_eq!(t3 - t2, 27);
    }

    #[test]
    fn burst_to_one_bank_queues_linearly() {
        let mut d = Dram::new(DramConfig::banked(2, 20, 5));
        let mut last = 0;
        for i in 0..8u64 {
            // All to bank 0, alternating rows → no row hits.
            last = d.access(0, i * 128 * 2 * 2048);
        }
        assert_eq!(last, 8 * 20, "fully serialized");
    }
}
