//! RUU-based out-of-order core with speculative loads (experiments D–F).
//!
//! The Register Update Unit (Sohi \[41\]) unifies the reorder buffer and
//! reservation stations: uops dispatch in order into RUU slots, issue out
//! of order as operands arrive, and commit in order. Loads issue
//! speculatively (they do not wait for earlier branches); mispredicted
//! branches redirect fetch at resolution. The load/store queue bounds
//! in-flight memory operations; slots and LSQ entries free at commit.

use crate::bpred::{BranchPredictor, TwoLevelPredictor};
use crate::machine::MachineSpec;
use crate::memsys::MemSystem;
use membw_runner::{ambient_cancel_token, CancelToken};
use membw_trace::uop::NUM_REGS;
use membw_trace::{OpClass, TraceSink, Uop, Workload};
use std::collections::VecDeque;

/// Per-cycle slot accounting that tolerates out-of-order requests.
///
/// A dense ring of per-cycle counters over the active scheduling window
/// (`base` is the cycle of the ring's front). Scheduling and pruning
/// are amortized O(1) with no steady-state allocation — the ring's
/// capacity converges on the widest window the run ever needs. This is
/// the hot loop of the out-of-order core: every uop books a dispatch,
/// issue, (possibly) memory-port, and commit slot.
#[derive(Debug)]
struct CycleWidth {
    width: u32,
    counts: VecDeque<u32>,
    /// Cycle number of `counts[0]`; requests below it are clamped up,
    /// exactly like the pruned watermark they replace.
    base: u64,
}

impl CycleWidth {
    fn new(width: u32) -> Self {
        Self {
            width,
            counts: VecDeque::new(),
            base: 0,
        }
    }

    /// First cycle `>= earliest` with a free slot; books it.
    fn schedule(&mut self, earliest: u64) -> u64 {
        let t = earliest.max(self.base);
        let mut idx = (t - self.base) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        loop {
            if self.counts[idx] < self.width {
                self.counts[idx] += 1;
                return self.base + idx as u64;
            }
            idx += 1;
            if idx == self.counts.len() {
                self.counts.push_back(0);
            }
        }
    }

    /// Cycles `< floor` can never be requested again; drop their entries.
    fn prune(&mut self, floor: u64) {
        while self.base < floor {
            if self.counts.pop_front().is_none() {
                self.base = floor;
                return;
            }
            self.base += 1;
        }
    }
}

/// The out-of-order pipeline, consuming uops as a [`TraceSink`].
#[derive(Debug)]
pub struct RuuCore {
    mem: MemSystem,
    bpred: TwoLevelPredictor,
    reg_ready: [u64; NUM_REGS],
    /// Commit times of the last `ruu_slots` uops (slot reuse).
    slot_free: VecDeque<u64>,
    ruu_slots: usize,
    /// Commit times of the last `lsq_entries` memory uops.
    lsq_free: VecDeque<u64>,
    lsq_entries: usize,
    dispatch: CycleWidth,
    issue: CycleWidth,
    mem_ports: CycleWidth,
    commit: CycleWidth,
    fetch_cycle: u64,
    fetch_in_cycle: u32,
    fetch_width: u32,
    pc: u64,
    cur_fetch_block: u64,
    last_commit: u64,
    mispredict_penalty: u64,
    finish: u64,
    uops: u64,
    /// Ambient cancellation token, captured at construction and polled
    /// on the same 4096-uop cadence as the scheduler prune, so a drain
    /// or deadline stops a simulation within milliseconds.
    cancel: CancelToken,
}

impl RuuCore {
    /// Build the core around an already-constructed memory system.
    ///
    /// # Panics
    ///
    /// Panics if the spec's RUU or LSQ size is zero.
    pub fn new(spec: &MachineSpec, mem: MemSystem) -> Self {
        assert!(spec.ruu_slots > 0, "out-of-order core needs RUU slots");
        assert!(spec.lsq_entries > 0, "out-of-order core needs LSQ entries");
        Self {
            mem,
            bpred: TwoLevelPredictor::new(spec.bpred_entries, 8),
            reg_ready: [0; NUM_REGS],
            slot_free: VecDeque::with_capacity(spec.ruu_slots),
            ruu_slots: spec.ruu_slots,
            lsq_free: VecDeque::with_capacity(spec.lsq_entries),
            lsq_entries: spec.lsq_entries,
            dispatch: CycleWidth::new(spec.issue_width),
            issue: CycleWidth::new(spec.issue_width),
            mem_ports: CycleWidth::new(2),
            commit: CycleWidth::new(spec.issue_width),
            fetch_cycle: 0,
            fetch_in_cycle: 0,
            fetch_width: spec.issue_width,
            pc: 0x1000,
            cur_fetch_block: u64::MAX,
            last_commit: 0,
            mispredict_penalty: spec.mispredict_penalty,
            finish: 0,
            uops: 0,
            cancel: ambient_cancel_token(),
        }
    }

    /// Run `workload` to completion; returns total cycles and the memory
    /// system.
    pub fn run<W: Workload + ?Sized>(
        spec: &MachineSpec,
        mem: MemSystem,
        workload: &W,
    ) -> (u64, MemSystem) {
        let mut core = Self::new(spec, mem);
        workload.generate(&mut core);
        core.into_result()
    }

    /// Total uops consumed.
    pub fn uops(&self) -> u64 {
        self.uops
    }

    /// Finish the run: total cycles and the memory system (for stats).
    pub fn into_result(self) -> (u64, MemSystem) {
        (self.finish.max(1), self.mem)
    }

    fn fetch_time(&mut self, ends_group: bool) -> u64 {
        let t = self.fetch_cycle;
        self.fetch_in_cycle += 1;
        if self.fetch_in_cycle >= self.fetch_width || ends_group {
            self.fetch_cycle += 1;
            self.fetch_in_cycle = 0;
        }
        t
    }

    /// Gate fetch on the I-cache when the synthetic PC crosses into a
    /// new fetch block (the paper's simulations include instruction
    /// fetching).
    fn gate_fetch(&mut self) {
        let block = self.pc / 32;
        if block != self.cur_fetch_block {
            let ready = self.mem.ifetch(self.fetch_cycle, self.pc);
            if ready > self.fetch_cycle {
                self.fetch_cycle = ready;
                self.fetch_in_cycle = 0;
            }
            self.cur_fetch_block = block;
        }
    }

    /// Advance the synthetic PC past `uop` (taken branches jump to their
    /// site address, closing the loop). Straight-line code wraps within
    /// a bounded hot-code region — real programs' instruction footprints
    /// are finite even when their data streams are not.
    fn advance_pc(&mut self, uop: &Uop) {
        const CODE_BASE: u64 = 0x1000;
        const CODE_EXTENT: u64 = 32 * 1024;
        self.pc = match uop.branch {
            Some(b) if b.taken => b.pc,
            _ => CODE_BASE + self.pc.wrapping_add(4).wrapping_sub(CODE_BASE) % CODE_EXTENT,
        };
    }

    fn operands_ready(&self, uop: &Uop) -> u64 {
        uop.srcs
            .iter()
            .flatten()
            .map(|&r| self.reg_ready[usize::from(r)])
            .max()
            .unwrap_or(0)
    }
}

impl TraceSink for RuuCore {
    fn uop(&mut self, uop: Uop) {
        self.uops += 1;
        self.gate_fetch();
        self.advance_pc(&uop);
        let taken_branch = uop.branch.is_some_and(|b| b.taken);
        let fetched = self.fetch_time(taken_branch);

        // Dispatch: in order, when an RUU slot (and LSQ entry) frees.
        let mut earliest = fetched;
        if self.slot_free.len() >= self.ruu_slots {
            earliest = earliest.max(self.slot_free.pop_front().expect("full queue"));
        }
        if uop.class.is_mem() && self.lsq_free.len() >= self.lsq_entries {
            earliest = earliest.max(self.lsq_free.pop_front().expect("full queue"));
        }
        let dispatched = self.dispatch.schedule(earliest);

        // Issue: out of order, operands + width + ports.
        let ready = self.operands_ready(&uop).max(dispatched + 1);
        let issue = if uop.class.is_mem() {
            let t = self.issue.schedule(ready);
            self.mem_ports.schedule(t)
        } else {
            self.issue.schedule(ready)
        };

        let complete = match uop.class {
            OpClass::Load => {
                let addr = uop.mem.expect("load carries an address").addr;
                self.mem.load(issue, addr)
            }
            OpClass::Store => {
                // Address/data ready at issue; memory update at commit
                // through the write buffer.
                issue + 1
            }
            OpClass::Branch => {
                let b = uop.branch.expect("branch carries info");
                let resolve = issue + 1;
                if !self.bpred.access(b.pc, b.taken) {
                    let restart = resolve + self.mispredict_penalty;
                    if restart > self.fetch_cycle {
                        self.fetch_cycle = restart;
                        self.fetch_in_cycle = 0;
                    }
                }
                resolve
            }
            c => issue + u64::from(c.latency()),
        };
        if let Some(d) = uop.dest {
            self.reg_ready[usize::from(d)] = complete;
        }

        // Commit: in order, after completion.
        let commit = self.commit.schedule(complete.max(self.last_commit));
        self.last_commit = commit;
        self.slot_free.push_back(commit);
        if uop.class.is_mem() {
            self.lsq_free.push_back(commit);
            if uop.class == OpClass::Store {
                // The store's memory side effect happens at commit.
                let addr = uop.mem.expect("store carries an address").addr;
                self.mem.store(commit, addr);
            }
        }
        self.finish = self.finish.max(commit);

        // Nothing can be scheduled before the oldest in-flight commit.
        if self.uops.is_multiple_of(4096) {
            self.cancel.check();
            let floor = self.slot_free.front().copied().unwrap_or(0);
            self.dispatch.prune(floor);
            self.issue.prune(floor);
            self.mem_ports.prune(floor);
            self.commit.prune(floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inorder::InOrderCore;
    use crate::machine::{Experiment, MemoryMode};
    use membw_trace::MemRef;

    fn run_ruu(uops: &[Uop], e: Experiment, mode: MemoryMode) -> u64 {
        let spec = MachineSpec::spec92(e);
        let mem = MemSystem::new(&spec.mem, mode);
        let mut core = RuuCore::new(&spec, mem);
        for &u in uops {
            core.uop(u);
        }
        core.into_result().0
    }

    fn run_inorder(uops: &[Uop], e: Experiment, mode: MemoryMode) -> u64 {
        let spec = MachineSpec::spec92(e);
        let mem = MemSystem::new(&spec.mem, mode);
        let mut core = InOrderCore::new(&spec, mem);
        for &u in uops {
            core.uop(u);
        }
        core.into_result().0
    }

    /// Interleaved long-latency loads and independent ALU work.
    fn miss_plus_alu(n: u64) -> Vec<Uop> {
        let mut uops = Vec::new();
        for i in 0..n {
            uops.push(Uop::load(
                MemRef::read(i * 0x40000, 4),
                Some(1),
                [None, None],
            ));
            // Dependent op right after the load (in-order pain).
            uops.push(Uop::compute(OpClass::IntAlu, Some(2), [Some(1), None]));
            // Independent work the OoO core can slide under the miss.
            for _ in 0..6 {
                uops.push(Uop::compute(OpClass::IntAlu, Some(3), [None, None]));
            }
        }
        uops
    }

    #[test]
    fn ooo_hides_latency_better_than_in_order() {
        let uops = miss_plus_alu(50);
        let t_in = run_inorder(&uops, Experiment::C, MemoryMode::Full);
        let t_ooo = run_ruu(&uops, Experiment::D, MemoryMode::Full);
        assert!(t_ooo < t_in, "out-of-order should win: {t_ooo} vs {t_in}");
    }

    #[test]
    fn wider_window_helps_on_miss_heavy_code() {
        // Same machine, only the RUU size varies; contention-free memory
        // so extra overlap cannot backfire through queueing.
        let uops = miss_plus_alu(80);
        let run_with_window = |slots: usize| {
            let mut spec = MachineSpec::spec92(Experiment::D);
            spec.ruu_slots = slots;
            let mem = MemSystem::new(&spec.mem, MemoryMode::LatencyOnly);
            let mut core = RuuCore::new(&spec, mem);
            for &u in &uops {
                core.uop(u);
            }
            core.into_result().0
        };
        let t_small = run_with_window(8);
        let t_big = run_with_window(64);
        assert!(
            t_big <= t_small,
            "bigger window cannot hurt: {t_big} vs {t_small}"
        );
    }

    #[test]
    fn dependent_chain_still_serializes() {
        let uops: Vec<Uop> = (0..100)
            .map(|_| Uop::compute(OpClass::IntAlu, Some(1), [Some(1), None]))
            .collect();
        let t = run_ruu(&uops, Experiment::D, MemoryMode::Perfect);
        assert!(t >= 100, "t = {t}");
    }

    #[test]
    fn independent_work_fills_the_width() {
        let uops: Vec<Uop> = (0..400)
            .map(|i| Uop::compute(OpClass::IntAlu, Some((i % 32) as u8), [None, None]))
            .collect();
        let t = run_ruu(&uops, Experiment::D, MemoryMode::Perfect);
        assert!((100..140).contains(&t), "4-wide: ~100 cycles, got {t}");
    }

    #[test]
    fn commit_is_in_order() {
        // A slow load followed by fast ALU ops: everything commits after
        // the load's completion, so total time tracks the load.
        let mut uops = vec![Uop::load(MemRef::read(0x80000, 4), Some(1), [None, None])];
        for _ in 0..8 {
            uops.push(Uop::compute(OpClass::IntAlu, Some(2), [None, None]));
        }
        let t_full = run_ruu(&uops, Experiment::D, MemoryMode::Full);
        let t_perfect = run_ruu(&uops, Experiment::D, MemoryMode::Perfect);
        assert!(t_full > t_perfect + 20, "{t_full} vs {t_perfect}");
    }

    #[test]
    fn lsq_bounds_inflight_memory_ops() {
        // More independent loads than LSQ entries: they cannot all overlap.
        let uops: Vec<Uop> = (0..64)
            .map(|i| Uop::load(MemRef::read(i * 0x40000, 4), Some(1), [None, None]))
            .collect();
        let t_small = {
            let mut spec = MachineSpec::spec92(Experiment::D);
            spec.lsq_entries = 2;
            let mem = MemSystem::new(&spec.mem, MemoryMode::LatencyOnly);
            let mut core = RuuCore::new(&spec, mem);
            for &u in &uops {
                core.uop(u);
            }
            core.into_result().0
        };
        let t_big = {
            let mut spec = MachineSpec::spec92(Experiment::D);
            spec.lsq_entries = 64;
            spec.ruu_slots = 64;
            let mem = MemSystem::new(&spec.mem, MemoryMode::LatencyOnly);
            let mut core = RuuCore::new(&spec, mem);
            for &u in &uops {
                core.uop(u);
            }
            core.into_result().0
        };
        assert!(t_small > t_big, "{t_small} vs {t_big}");
    }

    #[test]
    #[should_panic(expected = "RUU slots")]
    fn rejects_zero_window() {
        let mut spec = MachineSpec::spec92(Experiment::D);
        spec.ruu_slots = 0;
        let mem = MemSystem::new(&spec.mem, MemoryMode::Perfect);
        let _ = RuuCore::new(&spec, mem);
    }
}
