//! Machine configurations: the paper's experiments A–F (Tables 4–5).

use crate::dram::DramConfig;
use membw_cache::{Associativity, CacheConfig, ReplacementPolicy};
use serde::{Deserialize, Serialize};

/// The six latency-tolerance configurations of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Experiment {
    A,
    B,
    C,
    D,
    E,
    F,
}

impl Experiment {
    /// All six experiments in order.
    pub const ALL: [Experiment; 6] = [
        Experiment::A,
        Experiment::B,
        Experiment::C,
        Experiment::D,
        Experiment::E,
        Experiment::F,
    ];

    /// Single-letter label.
    pub fn label(&self) -> &'static str {
        match self {
            Experiment::A => "A",
            Experiment::B => "B",
            Experiment::C => "C",
            Experiment::D => "D",
            Experiment::E => "E",
            Experiment::F => "F",
        }
    }
}

/// Core model used by an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreKind {
    /// Four-wide in-order superscalar (experiments A–C).
    InOrder,
    /// RUU-based out-of-order with speculative loads (experiments D–F).
    OutOfOrder,
}

/// Which memory model a run uses (the three runs of §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryMode {
    /// Every access completes in one cycle (measures `T_P`).
    Perfect,
    /// Real latencies, infinitely-wide contention-free paths (`T_I`).
    LatencyOnly,
    /// Full system with finite buses and queueing (`T`).
    Full,
}

/// Memory-hierarchy parameters (Table 4 plus the per-experiment block
/// sizes and cache-blocking flags of Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// L1 data capacity in bytes.
    pub l1_bytes: u64,
    /// L1 block size in bytes.
    pub l1_block: u64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 block size in bytes.
    pub l2_block: u64,
    /// L2 associativity (the paper: 4-way).
    pub l2_ways: u32,
    /// L1/L2 bus width in bytes (the paper: 128 bits = 16).
    pub bus1_width: u64,
    /// L1/L2 bus cycle in CPU cycles.
    pub bus1_ratio: u64,
    /// L2/memory bus width in bytes (the paper: 64 bits = 8).
    pub bus2_width: u64,
    /// L2/memory bus cycle in CPU cycles.
    pub bus2_ratio: u64,
    /// L2 access latency in CPU cycles (30 ns at the CPU clock).
    pub l2_latency: u64,
    /// Main-memory access latency in CPU cycles (90 ns).
    pub mem_latency: u64,
    /// DRAM bank/row model (Table 4: infinite banks by default).
    pub dram: DramConfig,
    /// `true` for a blocking L1 (misses serialize; hits still serviced).
    pub blocking: bool,
    /// MSHR count for a lockup-free L1.
    pub mshrs: usize,
    /// Tagged sequential prefetch in the L1 (experiments E–F).
    pub tagged_prefetch: bool,
    /// Write-buffer entries; 0 = infinite (Table 4's assumption).
    pub write_buffer_entries: usize,
    /// Instruction-cache capacity in bytes; 0 disables I-side modeling
    /// (the default — the paper's QPT traces are data-only, §4.1, and
    /// the synthetic uop streams carry only loop-site PCs).
    ///
    /// Setting this (e.g. 64 KiB per Table 4's SPEC95 I-cache) gates
    /// fetch on a modeled I-cache whose misses share the L2 and buses
    /// with data traffic.
    pub icache_bytes: u64,
}

impl MemorySpec {
    /// Functional L1 configuration.
    pub fn l1_config(&self) -> CacheConfig {
        CacheConfig::builder(self.l1_bytes, self.l1_block)
            .associativity(Associativity::Ways(1))
            .replacement(ReplacementPolicy::Lru)
            .tagged_prefetch(self.tagged_prefetch)
            .build()
            .expect("table-4 L1 geometry is valid")
    }

    /// Functional I-cache configuration (`None` when disabled).
    pub fn icache_config(&self) -> Option<CacheConfig> {
        if self.icache_bytes == 0 {
            return None;
        }
        Some(
            CacheConfig::builder(self.icache_bytes, 32)
                .associativity(Associativity::Ways(1))
                .replacement(ReplacementPolicy::Lru)
                .build()
                .expect("icache geometry is valid"),
        )
    }

    /// Functional L2 configuration.
    pub fn l2_config(&self) -> CacheConfig {
        CacheConfig::builder(self.l2_bytes, self.l2_block)
            .associativity(Associativity::Ways(self.l2_ways))
            .replacement(ReplacementPolicy::Lru)
            .build()
            .expect("table-4 L2 geometry is valid")
    }
}

/// A full machine: core + memory + predictor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Which experiment this is.
    pub experiment: Experiment,
    /// Core model.
    pub core: CoreKind,
    /// Issue (and fetch/commit) width.
    pub issue_width: u32,
    /// RUU slots (out-of-order only).
    pub ruu_slots: usize,
    /// Load/store-queue entries (also caps in-flight memory ops for the
    /// in-order core's two load/store units).
    pub lsq_entries: usize,
    /// Branch-predictor table entries.
    pub bpred_entries: usize,
    /// Cycles from mispredicted-branch resolution to fetch restart.
    pub mispredict_penalty: u64,
    /// Processor clock in MHz (used to derive the latency cycles below).
    pub cpu_mhz: u64,
    /// Memory-hierarchy parameters.
    pub mem: MemorySpec,
}

fn ns_to_cycles(ns: u64, mhz: u64) -> u64 {
    // cycles = ns * GHz = ns * mhz / 1000, rounded up.
    (ns * mhz).div_ceil(1000)
}

impl MachineSpec {
    /// The SPEC92-era configuration of experiment `e` (Tables 4–5):
    /// 128 KiB L1, 1 MiB 4-way L2, 300 MHz (400 MHz for F), bus/CPU clock
    /// ratio 3.
    pub fn spec92(e: Experiment) -> Self {
        let mhz = match e {
            Experiment::F => 400,
            _ => 300,
        };
        let (l1_block, l2_block) = match e {
            Experiment::B => (64, 128),
            _ => (32, 64),
        };
        let blocking = matches!(e, Experiment::A | Experiment::B);
        let prefetch = matches!(e, Experiment::E | Experiment::F);
        let (core, ruu, lsq) = match e {
            Experiment::A | Experiment::B | Experiment::C => (CoreKind::InOrder, 0, 8),
            Experiment::D | Experiment::E => (CoreKind::OutOfOrder, 16, 8),
            Experiment::F => (CoreKind::OutOfOrder, 64, 32),
        };
        let bpred = match e {
            Experiment::A | Experiment::B | Experiment::C => 8192,
            _ => 16384,
        };
        MachineSpec {
            experiment: e,
            core,
            issue_width: 4,
            ruu_slots: ruu,
            lsq_entries: lsq,
            bpred_entries: bpred,
            mispredict_penalty: 3,
            cpu_mhz: mhz,
            mem: MemorySpec {
                l1_bytes: 128 * 1024,
                l1_block,
                l2_bytes: 1024 * 1024,
                l2_block,
                l2_ways: 4,
                bus1_width: 16,
                bus1_ratio: 3,
                bus2_width: 8,
                bus2_ratio: 3,
                l2_latency: ns_to_cycles(30, mhz),
                mem_latency: ns_to_cycles(90, mhz),
                dram: DramConfig::infinite_banks(ns_to_cycles(90, mhz)),
                blocking,
                mshrs: 8,
                tagged_prefetch: prefetch,
                write_buffer_entries: 0,
                icache_bytes: 0,
            },
        }
    }

    /// The SPEC95-era configuration of experiment `e` (Tables 4–5):
    /// 64 KiB L1 D-cache, 2 MiB 4-way L2, 300 MHz (600 MHz for F),
    /// bus/CPU clock ratio 4, larger windows.
    pub fn spec95(e: Experiment) -> Self {
        let mhz = match e {
            Experiment::F => 600,
            _ => 300,
        };
        let (l1_block, l2_block) = match e {
            Experiment::B => (64, 128),
            _ => (32, 64),
        };
        let blocking = matches!(e, Experiment::A | Experiment::B);
        let prefetch = matches!(e, Experiment::E | Experiment::F);
        let (core, ruu, lsq) = match e {
            Experiment::A | Experiment::B | Experiment::C => (CoreKind::InOrder, 0, 32),
            Experiment::D | Experiment::E => (CoreKind::OutOfOrder, 64, 32),
            Experiment::F => (CoreKind::OutOfOrder, 128, 64),
        };
        let bpred = match e {
            Experiment::A | Experiment::B | Experiment::C => 8192,
            _ => 16384,
        };
        MachineSpec {
            experiment: e,
            core,
            issue_width: 4,
            ruu_slots: ruu,
            lsq_entries: lsq,
            bpred_entries: bpred,
            mispredict_penalty: 3,
            cpu_mhz: mhz,
            mem: MemorySpec {
                l1_bytes: 64 * 1024,
                l1_block,
                l2_bytes: 2 * 1024 * 1024,
                l2_block,
                l2_ways: 4,
                bus1_width: 16,
                bus1_ratio: 4,
                bus2_width: 8,
                bus2_ratio: 4,
                l2_latency: ns_to_cycles(30, mhz),
                mem_latency: ns_to_cycles(90, mhz),
                dram: DramConfig::infinite_banks(ns_to_cycles(90, mhz)),
                blocking,
                mshrs: 8,
                tagged_prefetch: prefetch,
                write_buffer_entries: 0,
                icache_bytes: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec92_a_matches_tables() {
        let m = MachineSpec::spec92(Experiment::A);
        assert_eq!(m.core, CoreKind::InOrder);
        assert!(m.mem.blocking);
        assert_eq!(m.mem.l1_block, 32);
        assert_eq!(m.mem.l2_block, 64);
        assert_eq!(m.mem.l1_bytes, 128 * 1024);
        assert_eq!(m.mem.l2_bytes, 1024 * 1024);
        assert_eq!(m.mem.l2_latency, 9, "30 ns at 300 MHz");
        assert_eq!(m.mem.mem_latency, 27, "90 ns at 300 MHz");
        assert!(!m.mem.tagged_prefetch);
    }

    #[test]
    fn spec92_b_doubles_blocks() {
        let m = MachineSpec::spec92(Experiment::B);
        assert_eq!(m.mem.l1_block, 64);
        assert_eq!(m.mem.l2_block, 128);
    }

    #[test]
    fn spec92_f_is_most_aggressive() {
        let m = MachineSpec::spec92(Experiment::F);
        assert_eq!(m.core, CoreKind::OutOfOrder);
        assert_eq!(m.cpu_mhz, 400);
        assert_eq!(m.ruu_slots, 64);
        assert!(m.mem.tagged_prefetch);
        assert!(!m.mem.blocking);
        assert_eq!(m.mem.l2_latency, 12, "30 ns at 400 MHz");
    }

    #[test]
    fn spec95_scales_windows_and_clock() {
        let d = MachineSpec::spec95(Experiment::D);
        assert_eq!(d.ruu_slots, 64);
        let f = MachineSpec::spec95(Experiment::F);
        assert_eq!(f.ruu_slots, 128);
        assert_eq!(f.cpu_mhz, 600);
        assert_eq!(f.mem.mem_latency, 54, "90 ns at 600 MHz");
        assert_eq!(f.mem.l1_bytes, 64 * 1024);
        assert_eq!(f.mem.l2_bytes, 2 * 1024 * 1024);
    }

    #[test]
    fn cache_configs_build() {
        for e in Experiment::ALL {
            let m = MachineSpec::spec92(e);
            let _ = m.mem.l1_config();
            let _ = m.mem.l2_config();
            let m = MachineSpec::spec95(e);
            let _ = m.mem.l1_config();
            let _ = m.mem.l2_config();
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Experiment::ALL.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
