//! Two-level adaptive branch prediction.

/// A branch predictor consulted at fetch and trained at resolve.
pub trait BranchPredictor {
    /// Predict the direction of the branch at `pc`.
    fn predict(&self, pc: u64) -> bool;
    /// Train with the actual outcome.
    fn update(&mut self, pc: u64, taken: bool);
    /// Lookups made so far.
    fn lookups(&self) -> u64;
    /// Mispredictions so far.
    fn mispredictions(&self) -> u64;
    /// Predict and update in one step, returning `true` on a correct
    /// prediction.
    fn access(&mut self, pc: u64, taken: bool) -> bool {
        let correct = self.predict(pc) == taken;
        self.update(pc, taken);
        correct
    }
}

/// Two-level adaptive predictor (gshare flavour): a global history
/// register XOR-folded with the PC indexes a table of 2-bit saturating
/// counters. Table sizes of 8 K and 16 K entries match the paper's
/// Table 5.
///
/// # Example
///
/// ```
/// use membw_sim::{BranchPredictor, TwoLevelPredictor};
///
/// let mut p = TwoLevelPredictor::new(8192, 8);
/// // A strongly-biased branch trains quickly.
/// for _ in 0..8 { p.access(0x400, true); }
/// assert!(p.predict(0x400));
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelPredictor {
    table: Vec<u8>,
    history: u64,
    history_mask: u64,
    lookups: u64,
    mispredicts: u64,
}

impl TwoLevelPredictor {
    /// Build a predictor with `entries` 2-bit counters and `history_bits`
    /// of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits > 63`.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table entries must be a power of two"
        );
        assert!(history_bits <= 63, "history register is at most 63 bits");
        Self {
            // Counters start weakly taken (2): loop branches predict well
            // from the start, matching common hardware reset state.
            table: vec![2; entries],
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let h = self.history & self.history_mask;
        (((pc >> 2) ^ h) as usize) & (self.table.len() - 1)
    }
}

impl BranchPredictor for TwoLevelPredictor {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        self.lookups += 1;
        let idx = self.index(pc);
        let predicted = self.table[idx] >= 2;
        if predicted != taken {
            self.mispredicts += 1;
        }
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }

    fn lookups(&self) -> u64 {
        self.lookups
    }

    fn mispredictions(&self) -> u64 {
        self.mispredicts
    }
}

/// A predictor that is always right — used in sensitivity tests to
/// isolate memory-induced stalls from control stalls.
#[derive(Debug, Clone, Default)]
pub struct OraclePredictor {
    lookups: u64,
}

impl OraclePredictor {
    /// A fresh oracle.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BranchPredictor for OraclePredictor {
    fn predict(&self, _pc: u64) -> bool {
        true
    }
    fn update(&mut self, _pc: u64, _taken: bool) {
        self.lookups += 1;
    }
    fn lookups(&self) -> u64 {
        self.lookups
    }
    fn mispredictions(&self) -> u64 {
        0
    }
    fn access(&mut self, _pc: u64, _taken: bool) -> bool {
        self.lookups += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_branch_saturates() {
        let mut p = TwoLevelPredictor::new(1024, 4);
        for _ in 0..20 {
            p.access(0x100, true);
        }
        assert!(p.predict(0x100));
        // Early mispredicts only; late ones all correct.
        assert!(p.mispredictions() <= 2);
        assert_eq!(p.lookups(), 20);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // T N T N …: a history-indexed table learns it; saturating-counter
        // only (no history) could not.
        let mut p = TwoLevelPredictor::new(4096, 8);
        let mut wrong_late = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let correct = p.access(0x200, taken);
            if i >= 100 && !correct {
                wrong_late += 1;
            }
        }
        assert_eq!(wrong_late, 0, "pattern should be fully learned");
    }

    #[test]
    fn distinct_branches_use_distinct_counters() {
        let mut p = TwoLevelPredictor::new(8192, 0); // no history: pure PC
        for _ in 0..10 {
            p.access(0x400, true);
            p.access(0x404, false);
        }
        assert!(p.predict(0x400));
        assert!(!p.predict(0x404));
    }

    #[test]
    fn oracle_never_wrong() {
        let mut p = OraclePredictor::new();
        for i in 0..50 {
            assert!(p.access(0x10, i % 3 == 0));
        }
        assert_eq!(p.mispredictions(), 0);
        assert_eq!(p.lookups(), 50);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_table() {
        let _ = TwoLevelPredictor::new(1000, 8);
    }
}
