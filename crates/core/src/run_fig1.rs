//! Figure 1: physical microprocessor trends (pins, MIPS/pin,
//! MIPS/(pin MB/s)) with fitted growth rates.

use crate::audit::Auditor;
use crate::error::MembwError;
use crate::report::Table;
use membw_analytic::pins::{dataset, fit_growth, Processor, Series};
use serde::{Deserialize, Serialize};

/// The three fitted growth rates of Figure 1.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Annual pin-count growth (the paper's dotted line: ≈ 0.16).
    pub pin_growth: f64,
    /// Annual MIPS-per-pin growth (Figure 1b).
    pub mips_per_pin_growth: f64,
    /// Annual MIPS-per-bandwidth growth (Figure 1c).
    pub mips_per_bandwidth_growth: f64,
}

/// Regenerate Figure 1: the dataset table plus the three trend fits.
///
/// # Errors
///
/// Returns [`MembwError::InvariantViolation`] under `--audit strict` if
/// a fitted growth rate is non-finite or a dataset row is degenerate.
pub fn run() -> Result<(Fig1Result, Table), MembwError> {
    let data = dataset();
    let result = Fig1Result {
        pin_growth: fit_growth(&data, Series::Pins),
        mips_per_pin_growth: fit_growth(&data, Series::MipsPerPin),
        mips_per_bandwidth_growth: fit_growth(&data, Series::MipsPerBandwidth),
    };
    let mut audit = Auditor::new("fig1");
    audit.finite("fits", "pin growth", result.pin_growth);
    audit.finite("fits", "MIPS/pin growth", result.mips_per_pin_growth);
    audit.finite(
        "fits",
        "MIPS/bandwidth growth",
        result.mips_per_bandwidth_growth,
    );
    for p in &data {
        audit.positive(p.name, "pins", f64::from(p.pins));
        audit.positive(p.name, "MIPS", p.mips);
        audit.positive(p.name, "package MB/s", p.package_mb_s);
    }
    audit.finish()?;
    let mut table = Table::new(
        format!(
            "Figure 1: physical trends (fits: pins {:+.1}%/yr, MIPS/pin {:+.1}%/yr, MIPS/(pin MB/s) {:+.1}%/yr)",
            result.pin_growth * 100.0,
            result.mips_per_pin_growth * 100.0,
            result.mips_per_bandwidth_growth * 100.0
        ),
        ["Processor", "Year", "Pins", "MIPS", "MB/s", "MIPS/pin", "MIPS/(MB/s)"]
            .map(String::from)
            .to_vec(),
    );
    let mut sorted: Vec<Processor> = data;
    sorted.sort_by_key(|p| (p.year, p.pins));
    for p in sorted {
        table.row(vec![
            p.name.to_string(),
            p.year.to_string(),
            p.pins.to_string(),
            format!("{:.2}", p.mips),
            format!("{:.0}", p.package_mb_s),
            format!("{:.4}", p.mips_per_pin()),
            format!("{:.4}", p.mips_per_bandwidth()),
        ]);
    }
    Ok((result, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trends_match_the_paper_qualitatively() {
        let (r, t) = run().expect("audit passes");
        assert!((0.10..0.22).contains(&r.pin_growth));
        assert!(r.mips_per_pin_growth > r.pin_growth);
        assert!(r.mips_per_bandwidth_growth > 0.0);
        assert_eq!(t.num_rows(), 18);
    }
}
