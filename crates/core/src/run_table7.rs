//! Table 7: traffic ratios for 32-byte-block direct-mapped caches,
//! 1 KB – 2 MB, over the SPEC92 workloads — plus the Eq. 5 effective
//! pin bandwidth they imply.

use crate::audit::Auditor;
use crate::error::{collect_jobs, MembwError};
use crate::report::{size_label, Table};
use membw_analytic::effective_pin_bandwidth;
use membw_cache::{Cache, CacheConfig, CacheStats};
use membw_runner::Runner;
use membw_sweep::{sweep_lru, SweepMode, SweepSpec};
use membw_trace::{MemRef, Workload};
use membw_workloads::{suite92, Scale};
use serde::{Deserialize, Serialize};

/// The cache sizes of Table 7's columns.
pub const SIZES: [u64; 12] = [
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
];

/// One benchmark's row: the traffic ratio per cache size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7Row {
    /// Benchmark name.
    pub name: String,
    /// Footprint used for the `<<<` marking.
    pub footprint_bytes: u64,
    /// `(cache_bytes, ratio)`; ratio is `None` for `<<<` cells.
    pub ratios: Vec<(u64, Option<f64>)>,
}

/// The whole experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7Result {
    /// Per-benchmark rows.
    pub rows: Vec<Table7Row>,
    /// Mean traffic ratio over cells with size ≥ 64 KiB and below the
    /// benchmark's data-set size (the paper reports 0.51).
    pub mean_reasonable_ratio: f64,
    /// Eq. 5: effective pin bandwidth for a nominal 800 MB/s package at
    /// the mean ratio.
    pub effective_pin_bandwidth_mb_s: f64,
}

/// Full per-size [`CacheStats`] for the table's 32-byte-block
/// direct-mapped sweep, by either engine. All twelve geometries are
/// representable, so the stack path yields a stat for every size.
fn sweep_stats(refs: &[MemRef], mode: SweepMode) -> Vec<CacheStats> {
    match mode {
        SweepMode::Direct => SIZES
            .iter()
            .map(|&size| {
                let cfg = CacheConfig::builder(size, 32)
                    .build()
                    .expect("valid geometry");
                let mut cache = Cache::new(cfg);
                for &r in refs {
                    cache.access(r);
                }
                cache.flush()
            })
            .collect(),
        SweepMode::Stack => sweep_lru(&SweepSpec::new(32), &SIZES, refs)
            .into_iter()
            .map(|s| s.expect("1KB-2MB direct-mapped 32B-block geometries are valid"))
            .collect(),
    }
}

fn row_for(b: &membw_workloads::Benchmark, refs: &[MemRef], mode: SweepMode) -> Table7Row {
    let ratios = SIZES
        .iter()
        .zip(sweep_stats(refs, mode))
        .map(|(&size, stats)| {
            let oversized = size >= b.footprint_bytes;
            (
                size,
                if oversized {
                    None
                } else {
                    stats.traffic_ratio()
                },
            )
        })
        .collect();
    Table7Row {
        name: b.name().to_string(),
        footprint_bytes: b.footprint_bytes,
        ratios,
    }
}

/// Regenerate Table 7 at `scale` with the default sweep engine
/// ([`SweepMode::Stack`]).
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any benchmark's job ultimately
/// failed (after the configured retry budget).
pub fn run(scale: Scale) -> Result<(Table7Result, Table), MembwError> {
    run_with(scale, SweepMode::default())
}

/// Regenerate Table 7 at `scale` with an explicit sweep engine.
///
/// One run-engine job per benchmark; each replays the shared trace and
/// owns the whole size sweep — one trace pass under
/// [`SweepMode::Stack`], twelve under [`SweepMode::Direct`], identical
/// output either way. Rows merge in suite order. Jobs are
/// fault-isolated and checkpointed under the batch label `table7` (the
/// key encodes the sweep mode).
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any benchmark's job ultimately
/// failed (after the configured retry budget).
pub fn run_with(scale: Scale, mode: SweepMode) -> Result<(Table7Result, Table), MembwError> {
    let suite = suite92(scale);
    let key = format!("v2/table7/{scale:?}/{mode}/{}", suite.len());
    let rows = Runner::from_env().checkpointed("table7", &key, suite.len(), |i| {
        let b = &suite[i];
        // Replay the shared recording once into a flat vector, then sweep.
        let refs: Vec<MemRef> = b.replayable().collect_mem_refs();
        row_for(b, &refs, mode)
    });
    let rows: Vec<Table7Row> = collect_jobs("table7", rows, |i| suite[i].name().to_string())?;

    let mut audit = Auditor::new("table7");
    if mode == SweepMode::Stack && membw_sweep::verify_requested() {
        for (i, row) in rows.iter().enumerate() {
            let b = &suite[i];
            let refs = b.replayable().collect_mem_refs();
            let want = row_for(b, &refs, SweepMode::Direct);
            let ok = want.ratios.len() == row.ratios.len()
                && want
                    .ratios
                    .iter()
                    .zip(&row.ratios)
                    .all(|(w, g)| w.0 == g.0 && w.1.map(f64::to_bits) == g.1.map(f64::to_bits));
            audit.sweep_exact(&row.name, ok, || {
                format!(
                    "stack sweep diverged from direct simulation: {:?} vs {:?}",
                    want.ratios, row.ratios
                )
            });
        }
    }
    for r in &rows {
        for (size, ratio) in &r.ratios {
            if let Some(ratio) = ratio {
                audit.traffic_ratio(&format!("{} @ {}", r.name, size_label(*size)), *ratio);
            }
        }
    }
    // Under `--analytic assist`, check every in-range traffic-ratio
    // cell against the ECM traffic prediction and its bound (serial
    // section; checkpoint keys and stdout are untouched).
    if crate::fastpath::assist_enabled() {
        crate::fastpath::assist_table7(&mut audit, &suite, &rows);
    }

    let reasonable: Vec<f64> = rows
        .iter()
        .flat_map(|r| {
            r.ratios
                .iter()
                .filter(|(s, v)| *s >= 64 * 1024 && v.is_some())
                .map(|(_, v)| v.expect("filtered"))
        })
        .collect();
    let mean = if reasonable.is_empty() {
        0.0
    } else {
        reasonable.iter().sum::<f64>() / reasonable.len() as f64
    };
    let result = Table7Result {
        rows,
        mean_reasonable_ratio: mean,
        effective_pin_bandwidth_mb_s: if mean > 0.0 {
            effective_pin_bandwidth(800.0, &[mean])
        } else {
            800.0
        },
    };
    audit.positive(
        "summary",
        "effective pin bandwidth (Eq. 5)",
        result.effective_pin_bandwidth_mb_s,
    );
    audit.finish()?;

    let mut headers = vec!["Trace".to_string()];
    headers.extend(SIZES.iter().map(|&s| size_label(s)));
    let mut table = Table::new(
        format!(
            "Table 7: traffic ratios, 32B-block direct-mapped (mean >=64KB cells: {:.2}; E_pin @800MB/s = {:.0} MB/s)",
            result.mean_reasonable_ratio, result.effective_pin_bandwidth_mb_s
        ),
        headers,
    );
    for r in &result.rows {
        let mut cells = vec![r.name.clone()];
        cells.extend(r.ratios.iter().map(|(_, v)| match v {
            Some(x) => format!("{x:.2}"),
            None => "<<<".to_string(),
        }));
        table.row(cells);
    }
    Ok((result, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_behave_like_the_paper() {
        let (res, table) = run(Scale::Test).expect("no faults injected");
        assert_eq!(table.num_rows(), 7);
        // Small caches exceed R=1 for at least one low-locality code.
        let any_over_one = res.rows.iter().any(|r| {
            r.ratios
                .iter()
                .take(3)
                .any(|(_, v)| v.is_some_and(|x| x > 1.0))
        });
        assert!(
            any_over_one,
            "1-4KB caches should out-traffic no-cache somewhere"
        );
        // Ratios never negative; oversized cells marked.
        for r in &res.rows {
            for (s, v) in &r.ratios {
                if *s >= r.footprint_bytes {
                    assert!(v.is_none(), "{}: {s} should be <<<", r.name);
                }
            }
        }
        assert!(res.mean_reasonable_ratio >= 0.0);
    }

    #[test]
    fn stack_and_direct_modes_agree() {
        let (stack, _) = run_with(Scale::Test, SweepMode::Stack).expect("no faults injected");
        let (direct, _) = run_with(Scale::Test, SweepMode::Direct).expect("no faults injected");
        assert_eq!(
            stack.mean_reasonable_ratio.to_bits(),
            direct.mean_reasonable_ratio.to_bits()
        );
        for (a, b) in stack.rows.iter().zip(&direct.rows) {
            assert_eq!(a.name, b.name);
            for ((sa, ra), (sb, rb)) in a.ratios.iter().zip(&b.ratios) {
                assert_eq!(sa, sb);
                assert_eq!(
                    ra.map(f64::to_bits),
                    rb.map(f64::to_bits),
                    "{} @ {sa}",
                    a.name
                );
            }
        }
    }
}
