//! Paper-style aligned text tables, plus wall-clock/throughput
//! accounting for the run engine.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A simple column-aligned table with a title, rendered as monospace
/// text (the shape of the paper's tables).
///
/// # Example
///
/// ```
/// use membw_core::Table;
///
/// let mut t = Table::new("Table X: demo", vec!["Trace".into(), "1KB".into()]);
/// t.row(vec!["compress".into(), "3.03".into()]);
/// let s = t.render();
/// assert!(s.contains("compress"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Title text.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The rows, for programmatic inspection.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render to aligned text: title, rule, header, rule, rows.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let rule = "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1));
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&rule);
        out.push('\n');
        out.push_str(&line(&self.headers));
        out.push('\n');
        out.push_str(&rule);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Simulated micro-ops retired process-wide, accumulated by the run
/// targets as their jobs finish. Feeds the uops/s column of
/// [`timing_table`].
static UOPS_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Record `n` simulated micro-ops (called from inside run-engine jobs;
/// the counter is atomic so any merge order yields the same total).
pub fn count_uops(n: u64) {
    UOPS_EXECUTED.fetch_add(n, Ordering::Relaxed);
}

/// Total simulated micro-ops recorded so far.
pub fn uops_executed() -> u64 {
    UOPS_EXECUTED.load(Ordering::Relaxed)
}

/// Wall-clock and throughput accounting for one repro target, printed
/// on **stderr** so experiment output on stdout stays byte-identical
/// across `--jobs` settings.
#[derive(Debug, Clone)]
pub struct TargetTiming {
    /// Target name as passed to `repro`.
    pub target: String,
    /// Wall time of the target, start to finish.
    pub wall: Duration,
    /// Jobs the run engine executed for this target.
    pub jobs: u64,
    /// Summed per-job wall time (exceeds `wall` when jobs overlap).
    pub busy: Duration,
    /// Simulated micro-ops retired during this target.
    pub uops: u64,
}

impl TargetTiming {
    /// Simulated micro-ops per wall-clock second.
    pub fn uops_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.uops as f64 / s
        } else {
            0.0
        }
    }

    /// Parallel speedup realised: summed job time over wall time.
    pub fn speedup(&self) -> f64 {
        let w = self.wall.as_secs_f64();
        if w > 0.0 {
            self.busy.as_secs_f64() / w
        } else {
            1.0
        }
    }
}

/// Render per-target timings plus a totals row as a [`Table`].
pub fn timing_table(timings: &[TargetTiming], threads: usize) -> Table {
    let mut t = Table::new(
        format!("Run-engine timing ({threads} job thread(s))"),
        ["Target", "Wall", "Jobs", "Busy", "Speedup", "Uops/s"]
            .map(String::from)
            .to_vec(),
    );
    let fmt_d = |d: Duration| format!("{:.2}s", d.as_secs_f64());
    let fmt_rate = |r: f64| {
        if r >= 1e6 {
            format!("{:.1}M", r / 1e6)
        } else if r >= 1e3 {
            format!("{:.1}k", r / 1e3)
        } else {
            format!("{r:.0}")
        }
    };
    for x in timings {
        t.row(vec![
            x.target.clone(),
            fmt_d(x.wall),
            x.jobs.to_string(),
            fmt_d(x.busy),
            format!("{:.1}x", x.speedup()),
            fmt_rate(x.uops_per_sec()),
        ]);
    }
    let total = TargetTiming {
        target: "TOTAL".to_string(),
        wall: timings.iter().map(|x| x.wall).sum(),
        jobs: timings.iter().map(|x| x.jobs).sum(),
        busy: timings.iter().map(|x| x.busy).sum(),
        uops: timings.iter().map(|x| x.uops).sum(),
    };
    t.row(vec![
        total.target.clone(),
        fmt_d(total.wall),
        total.jobs.to_string(),
        fmt_d(total.busy),
        format!("{:.1}x", total.speedup()),
        fmt_rate(total.uops_per_sec()),
    ]);
    t
}

/// Render the failed jobs of a campaign as a [`Table`] (printed on
/// **stderr** by `repro`, so healthy stdout stays byte-identical).
pub fn failure_table(target: &str, failures: &[crate::error::FailedJob]) -> Table {
    let mut t = Table::new(
        format!("FAILED jobs in target '{target}'"),
        ["Job", "Experiment", "Workload/cell", "Attempts", "Error"]
            .map(String::from)
            .to_vec(),
    );
    for f in failures {
        t.row(vec![
            format!("{}:{}", f.label, f.index),
            f.label.clone(),
            f.job.clone(),
            f.attempts.to_string(),
            f.error.clone(),
        ]);
    }
    t
}

/// Format a byte count the way the paper's column heads do (1KB … 2MB).
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{}MB", bytes / (1024 * 1024))
    } else if bytes >= 1024 {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        // Header and data lines are equal width.
        assert_eq!(lines[2].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(64), "64B");
        assert_eq!(size_label(1024), "1KB");
        assert_eq!(size_label(64 * 1024), "64KB");
        assert_eq!(size_label(2 * 1024 * 1024), "2MB");
    }

    #[test]
    fn accessors() {
        let mut t = Table::new("T", vec!["a".into()]);
        t.row(vec!["1".into()]);
        assert_eq!(t.title(), "T");
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.rows()[0][0], "1");
    }
}
