//! Table 2: application growth rates — the analytic `C/D` laws, checked
//! against *measured* minimal traffic from the MTC simulator.
//!
//! For each algorithm we run the real kernel (from
//! `membw_workloads::kernels`) through Belady-managed caches of size `S`
//! and `4S` and compare the measured `C/D` gain to the analytic
//! prediction (`√4 = 2` for TMM/Stencil, `log₂`-law for FFT/Sort).

use crate::audit::Auditor;
use crate::error::MembwError;
use crate::report::Table;
use membw_analytic::growth::Algorithm;
use membw_mtc::{MinCache, MinConfig, MinWritePolicy};
use membw_trace::Workload;
use membw_workloads::kernels::{Fft, MergeSort, TiledMatMul, TimeTiledStencil};
use serde::{Deserialize, Serialize};

/// One algorithm's analytic-vs-measured comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Algorithm name.
    pub name: String,
    /// Table 2's symbolic `C/D` gain.
    pub gain_label: String,
    /// Analytic `C/D` gain for `S → 4S`.
    pub predicted_gain: f64,
    /// Measured gain: traffic(S) / traffic(4S) at fixed computation.
    pub measured_gain: f64,
}

fn mtc_traffic(w: &dyn Workload, capacity_bytes: u64) -> u64 {
    let refs = w.collect_mem_refs();
    let cfg = MinConfig::new(capacity_bytes, 4, MinWritePolicy::Allocate, true);
    MinCache::simulate(&cfg, &refs).traffic_below()
}

/// Regenerate Table 2: analytic columns plus the empirical check at
/// on-chip size `s_bytes → 4·s_bytes`.
///
/// # Errors
///
/// Returns [`MembwError::InvariantViolation`] under `--audit strict` if
/// any gain column is non-positive or non-finite.
///
/// # Panics
///
/// Panics if `s_bytes` is not a power of two (MTC requirement).
pub fn run(s_bytes: u64) -> Result<(Vec<Table2Row>, Table), MembwError> {
    let s_elems = (s_bytes / 4) as f64;
    // Problem sizes chosen so footprints comfortably exceed 4·S.
    let tmm_n = 48u64;
    let stencil_n = 128u64;
    let fft_log2 = 12u32;
    let sort_n = 1u64 << 13;

    // For TMM the schedule must adapt to S (that is the whole point of
    // tiling): pick tile ≈ √(S/3 words).
    let tile = |s: u64| (((s / 4) as f64 / 3.0).sqrt() as u64).clamp(2, tmm_n);
    let rows = vec![
        {
            let t1 = mtc_traffic(&TiledMatMul::new(tmm_n, tile(s_bytes)), s_bytes);
            let t4 = mtc_traffic(&TiledMatMul::new(tmm_n, tile(4 * s_bytes)), 4 * s_bytes);
            Table2Row {
                name: "TMM".into(),
                gain_label: Algorithm::Tmm.gain_label().into(),
                predicted_gain: Algorithm::Tmm.cd_gain(tmm_n as f64, s_elems, 4.0),
                measured_gain: t1 as f64 / t4 as f64,
            }
        },
        {
            // The stencil law presumes a time-tiled schedule adapted to
            // S, just as TMM presumes tiling.
            // tile = sqrt(S/8 words): a (2·tile)² halo'd region on two
            // planes is exactly S bytes.
            let stile = |s: u64| (((s / 4) as f64 / 8.0).sqrt() as u64).clamp(2, stencil_n);
            let t1 = mtc_traffic(
                &TimeTiledStencil::new(stencil_n, 8, stile(s_bytes)),
                s_bytes,
            );
            let t4 = mtc_traffic(
                &TimeTiledStencil::new(stencil_n, 8, stile(4 * s_bytes)),
                4 * s_bytes,
            );
            Table2Row {
                name: "Stencil".into(),
                gain_label: Algorithm::Stencil.gain_label().into(),
                predicted_gain: Algorithm::Stencil.cd_gain(stencil_n as f64, s_elems, 4.0),
                measured_gain: t1 as f64 / t4 as f64,
            }
        },
        {
            let w = Fft::new(fft_log2);
            let t1 = mtc_traffic(&w, s_bytes);
            let t4 = mtc_traffic(&w, 4 * s_bytes);
            Table2Row {
                name: "FFT".into(),
                gain_label: Algorithm::Fft.gain_label().into(),
                predicted_gain: Algorithm::Fft.cd_gain((1u64 << fft_log2) as f64, s_elems, 4.0),
                measured_gain: t1 as f64 / t4 as f64,
            }
        },
        {
            let w = MergeSort::new(sort_n, 2);
            let t1 = mtc_traffic(&w, s_bytes);
            let t4 = mtc_traffic(&w, 4 * s_bytes);
            Table2Row {
                name: "Sort".into(),
                gain_label: Algorithm::Sort.gain_label().into(),
                predicted_gain: Algorithm::Sort.cd_gain(sort_n as f64, s_elems, 4.0),
                measured_gain: t1 as f64 / t4 as f64,
            }
        },
    ];

    let mut audit = Auditor::new("table2");
    for r in &rows {
        audit.positive(&r.name, "predicted C/D gain", r.predicted_gain);
        audit.positive(&r.name, "measured C/D gain", r.measured_gain);
    }
    audit.finish()?;

    let mut table = Table::new(
        format!(
            "Table 2: application growth rates (C/D gain for S = {} -> {} bytes, k = 4)",
            s_bytes,
            4 * s_bytes
        ),
        ["Algorithm", "C/D gain", "Predicted (k=4)", "Measured"]
            .map(String::from)
            .to_vec(),
    );
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            r.gain_label.clone(),
            format!("{:.2}", r.predicted_gain),
            format!("{:.2}", r.measured_gain),
        ]);
    }
    Ok((rows, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_gains_track_the_analytic_laws() {
        let (rows, _) = run(1024).expect("audit passes");
        let tmm = &rows[0];
        // √4 = 2: the measured tiled-MM gain should land near 2 (the
        // compulsory N² term and tile rounding blur it).
        assert!(
            (1.3..3.0).contains(&tmm.measured_gain),
            "TMM gain = {}",
            tmm.measured_gain
        );
        let fft = &rows[2];
        // log-law: much smaller gain than TMM.
        assert!(
            fft.measured_gain < tmm.measured_gain,
            "FFT {} vs TMM {}",
            fft.measured_gain,
            tmm.measured_gain
        );
        for r in &rows {
            assert!(
                r.measured_gain >= 0.95,
                "{}: more memory must not increase minimal traffic (gain {})",
                r.name,
                r.measured_gain
            );
        }
    }
}
