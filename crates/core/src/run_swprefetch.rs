//! Software prefetching (extension): §2.1's Table 1 row — and §6's
//! warning — measured.
//!
//! A compiler-style prefetch pass (non-binding early loads) on the
//! lockup-free in-order machine (experiment C), applied to two kernels:
//!
//! * `li` (dependent pointer walks, latency-bound): prefetching converts
//!   a 2× slowdown into processing time — latency tolerance works;
//! * `swm` (streaming, bus-saturated): prefetching buys nothing — the
//!   paper's §6 warning that latency tolerance "has the potential to
//!   worsen performance if memory bandwidth … is the primary bottleneck"
//!   (and the inaccurate variant moves strictly more bytes).

use crate::audit::Auditor;
use crate::error::MembwError;
use crate::report::Table;
use membw_sim::{decompose, Experiment, MachineSpec};
use membw_trace::swprefetch::SoftwarePrefetch;
use membw_trace::Workload;
use membw_workloads::{Li, Swm};
use serde::{Deserialize, Serialize};

/// One configuration's decomposition summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwPrefetchCell {
    /// Kernel name.
    pub kernel: String,
    /// Configuration label.
    pub config: String,
    /// Full-run cycles.
    pub cycles: u64,
    /// Latency-stall fraction.
    pub f_l: f64,
    /// Bandwidth-stall fraction.
    pub f_b: f64,
    /// Memory traffic in bytes.
    pub memory_traffic: u64,
}

fn measure(
    kernel: &str,
    w: &dyn Workload,
    config: &str,
    cells: &mut Vec<SwPrefetchCell>,
    audit: &mut Auditor,
) {
    let spec = MachineSpec::spec92(Experiment::C);
    let d = decompose(w, &spec);
    audit.decomposition(&format!("{kernel}/{config}"), &d);
    cells.push(SwPrefetchCell {
        kernel: kernel.into(),
        config: config.into(),
        cycles: d.t,
        f_l: d.f_l,
        f_b: d.f_b,
        memory_traffic: d.full_mem.memory_traffic,
    });
}

/// Run none / accurate / inaccurate software prefetching on experiment C
/// for a latency-bound and a bandwidth-bound kernel.
///
/// # Errors
///
/// Returns [`MembwError::InvariantViolation`] under `--audit strict` if
/// any decomposition breaks the §3 identities.
pub fn run() -> Result<(Vec<SwPrefetchCell>, Table), MembwError> {
    let mut cells = Vec::new();
    let mut audit = Auditor::new("swprefetch");
    // Dependent pointer walks over a 256 KiB heap: L2-latency-bound.
    let li = Li::new(32 * 1024, 900, 7);
    measure("li", &li, "none", &mut cells, &mut audit);
    measure(
        "li",
        &SoftwarePrefetch::new(li.clone(), 64),
        "accurate d=64",
        &mut cells,
        &mut audit,
    );
    measure(
        "li",
        &SoftwarePrefetch::with_inaccuracy(li.clone(), 64, 64, 5),
        "25% wrong d=64",
        &mut cells,
        &mut audit,
    );
    // Streaming stencil: the memory bus is already saturated.
    let swm = Swm::new(96, 96, 2);
    measure("swm", &swm, "none", &mut cells, &mut audit);
    measure(
        "swm",
        &SoftwarePrefetch::new(swm.clone(), 64),
        "accurate d=64",
        &mut cells,
        &mut audit,
    );
    measure(
        "swm",
        &SoftwarePrefetch::with_inaccuracy(swm.clone(), 64, 64, 5),
        "25% wrong d=64",
        &mut cells,
        &mut audit,
    );
    audit.finish()?;

    let mut table = Table::new(
        "Software prefetching on experiment C: latency-bound vs bandwidth-bound",
        ["Kernel", "Config", "Cycles", "f_L", "f_B", "Traffic KB"]
            .map(String::from)
            .to_vec(),
    );
    for c in &cells {
        table.row(vec![
            c.kernel.clone(),
            c.config.clone(),
            c.cycles.to_string(),
            format!("{:.2}", c.f_l),
            format!("{:.2}", c.f_b),
            (c.memory_traffic / 1024).to_string(),
        ]);
    }
    Ok((cells, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetching_helps_latency_bound_but_not_bandwidth_bound_code() {
        let (cells, table) = run().expect("audit passes");
        assert_eq!(table.num_rows(), 6);
        let get = |k: &str, c: &str| {
            cells
                .iter()
                .find(|x| x.kernel == k && x.config == c)
                .expect("cell exists")
        };
        // Latency-bound: big speedup, latency stalls vanish.
        let li_none = get("li", "none");
        let li_pf = get("li", "accurate d=64");
        assert!(
            (li_none.cycles as f64) > 1.5 * li_pf.cycles as f64,
            "li must speed up: {} vs {}",
            li_none.cycles,
            li_pf.cycles
        );
        assert!(li_pf.f_l < li_none.f_l);
        // Bandwidth-bound: essentially no speedup (the §6 warning).
        let swm_none = get("swm", "none");
        let swm_pf = get("swm", "accurate d=64");
        assert!(
            (swm_pf.cycles as f64) > 0.95 * swm_none.cycles as f64,
            "swm cannot be prefetched past the bus: {} vs {}",
            swm_pf.cycles,
            swm_none.cycles
        );
        // Inaccurate prefetching strictly adds traffic on both kernels.
        for k in ["li", "swm"] {
            assert!(
                get(k, "25% wrong d=64").memory_traffic > get(k, "accurate d=64").memory_traffic,
                "{k}: wrong prefetches must move extra bytes"
            );
        }
    }
}
