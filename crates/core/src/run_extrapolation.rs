//! §4.3: the ten-year package extrapolation.

use crate::audit::Auditor;
use crate::error::MembwError;
use crate::report::Table;
use membw_analytic::extrapolate::{paper_projection, project, Projection};

/// Regenerate the §4.3 projection (1996 → 2006 and a few mid-points).
///
/// # Errors
///
/// Returns [`MembwError::InvariantViolation`] under `--audit strict` if
/// a projected quantity is non-positive or non-finite.
pub fn run() -> Result<(Projection, Table), MembwError> {
    let final_proj = paper_projection();
    let mut table = Table::new(
        "Section 4.3: extrapolated package requirements (16%/yr pins, 60%/yr performance)",
        ["Year", "Pins", "Perf multiple", "BW/pin multiple"]
            .map(String::from)
            .to_vec(),
    );
    let mut audit = Auditor::new("extrapolation");
    for years in [0u32, 2, 4, 6, 8, 10] {
        let p = project(600.0, 0.16, 0.60, years);
        let cell = format!("{}", 1996 + years);
        audit.positive(&cell, "projected pins", p.pins);
        audit.positive(&cell, "performance multiple", p.performance_multiple);
        audit.positive(
            &cell,
            "per-pin bandwidth multiple",
            p.per_pin_bandwidth_multiple,
        );
        table.row(vec![
            (1996 + years).to_string(),
            format!("{:.0}", p.pins),
            format!("{:.1}x", p.performance_multiple),
            format!("{:.1}x", p.per_pin_bandwidth_multiple),
        ]);
    }
    audit.finish()?;
    Ok((final_proj, table))
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_the_25x_claim() {
        let (p, t) = super::run().expect("audit passes");
        assert!((20.0..30.0).contains(&p.per_pin_bandwidth_multiple));
        assert!((2000.0..3500.0).contains(&p.pins));
        assert!(t.render().contains("2006"));
    }
}
