//! ASCII scatter/line plots for figure-shaped output.
//!
//! Figures 1 and 4 of the paper are log-scale scatter plots; the `repro`
//! binary renders them as monospace charts so the curves' shapes (who is
//! above whom, where the knees fall) are visible without leaving the
//! terminal.

/// One plotted series: marker, label, points.
type Series = (char, String, Vec<(f64, f64)>);

/// A scatter plot with optional log axes.
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    title: String,
    width: usize,
    height: usize,
    log_x: bool,
    log_y: bool,
    series: Vec<Series>,
}

impl AsciiPlot {
    /// A new plot of `width × height` character cells.
    ///
    /// # Panics
    ///
    /// Panics if `width < 16` or `height < 6`.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 16 && height >= 6, "plot too small to render");
        Self {
            title: title.into(),
            width,
            height,
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Use log₁₀ scales on both axes (the paper's Figure 4).
    pub fn log_log(mut self) -> Self {
        self.log_x = true;
        self.log_y = true;
        self
    }

    /// Use a log₁₀ y-axis with a linear x-axis (the paper's Figure 1).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Add a series drawn with `marker`.
    ///
    /// Points with non-positive coordinates are dropped on log axes.
    pub fn series(
        mut self,
        marker: char,
        label: impl Into<String>,
        points: Vec<(f64, f64)>,
    ) -> Self {
        self.series.push((marker, label.into(), points));
        self
    }

    fn tx(&self, v: f64) -> f64 {
        if self.log_x {
            v.log10()
        } else {
            v
        }
    }

    fn ty(&self, v: f64) -> f64 {
        if self.log_y {
            v.log10()
        } else {
            v
        }
    }

    /// Render to a string (title, canvas with axes, legend).
    pub fn render(&self) -> String {
        let pts: Vec<(usize, f64, f64)> = self
            .series
            .iter()
            .enumerate()
            .flat_map(|(i, (_, _, ps))| {
                let (log_x, log_y) = (self.log_x, self.log_y);
                ps.iter()
                    .filter(move |(x, y)| (!log_x || *x > 0.0) && (!log_y || *y > 0.0))
                    .map(move |&(x, y)| (i, x, y))
            })
            .collect();
        if pts.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, x, y) in &pts {
            let (x, y) = (self.tx(x), self.ty(y));
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(si, x, y) in &pts {
            let fx = (self.tx(x) - x0) / (x1 - x0);
            let fy = (self.ty(y) - y0) / (y1 - y0);
            let cx = (fx * (self.width - 1) as f64).round() as usize;
            let cy = (self.height - 1) - (fy * (self.height - 1) as f64).round() as usize;
            let marker = self.series[si].0;
            // Later series overwrite earlier ones where they collide.
            grid[cy][cx] = marker;
        }

        let ylab = |v: f64| -> String {
            let raw = if self.log_y { 10f64.powf(v) } else { v };
            format_si(raw)
        };
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for (row, line) in grid.iter().enumerate() {
            let frac = 1.0 - row as f64 / (self.height - 1) as f64;
            let yv = y0 + frac * (y1 - y0);
            let label = if row == 0 || row == self.height - 1 || row == self.height / 2 {
                format!("{:>8} |", ylab(yv))
            } else {
                format!("{:>8} |", "")
            };
            out.push_str(&label);
            out.extend(line.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(self.width)));
        let xl = if self.log_x { 10f64.powf(x0) } else { x0 };
        let xr = if self.log_x { 10f64.powf(x1) } else { x1 };
        out.push_str(&format!(
            "{:>10}{}{:>width$}\n",
            format_si(xl),
            "",
            format_si(xr),
            width = self.width - format_si(xl).len().min(self.width)
        ));
        for (marker, label, _) in &self.series {
            out.push_str(&format!("  {marker} {label}\n"));
        }
        out
    }
}

/// Compact SI-ish formatting: 1.5K, 2M, 0.25.
fn format_si(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e4 {
        format!("{:.1}K", v / 1e3)
    } else if a >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markers_and_legend() {
        let p = AsciiPlot::new("T", 40, 10)
            .series('o', "up", vec![(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
            .series('x', "down", vec![(1.0, 3.0), (3.0, 1.0)]);
        let s = p.render();
        assert!(s.contains('o'));
        assert!(s.contains('x'));
        assert!(s.contains("up"));
        assert!(s.contains("down"));
        assert!(s.lines().count() >= 13);
    }

    #[test]
    fn monotone_series_renders_monotone() {
        let p = AsciiPlot::new("T", 40, 12).series(
            '*',
            "line",
            (1..=10).map(|i| (i as f64, i as f64)).collect(),
        );
        let s = p.render();
        // Row of the first '*' per column must be non-increasing in
        // column order (y grows with x).
        let rows: Vec<&str> = s.lines().skip(1).take(12).collect();
        let mut last_row_for_col = None;
        for col in 0..40 {
            for (ri, row) in rows.iter().enumerate() {
                let chars: Vec<char> = row.chars().collect();
                let off = 10 + col; // label prefix is 10 chars
                if off < chars.len() && chars[off] == '*' {
                    if let Some(last) = last_row_for_col {
                        assert!(ri <= last, "series must rise left-to-right");
                    }
                    last_row_for_col = Some(ri);
                }
            }
        }
    }

    #[test]
    fn log_log_drops_non_positive_points() {
        let p = AsciiPlot::new("T", 30, 8).log_log().series(
            '#',
            "s",
            vec![(0.0, 5.0), (10.0, 100.0), (100.0, 1000.0)],
        );
        let s = p.render();
        assert_eq!(s.matches('#').count(), 2 + 1, "two points + legend marker");
    }

    #[test]
    fn empty_plot_says_so() {
        let p = AsciiPlot::new("T", 30, 8);
        assert!(p.render().contains("no data"));
    }

    #[test]
    fn si_formatting() {
        assert_eq!(format_si(1536.0), "1536");
        assert_eq!(format_si(15360.0), "15.4K");
        assert_eq!(format_si(1978.0), "1978", "years print plainly");
        assert_eq!(format_si(2_000_000.0), "2.0M");
        assert_eq!(format_si(0.25), "0.25");
        assert_eq!(format_si(64.0), "64");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_canvas() {
        let _ = AsciiPlot::new("T", 4, 2);
    }
}
