//! Table 8: traffic inefficiencies (`G`, Eq. 6) for 32-byte-block
//! direct-mapped caches against same-size MTCs — plus the Eq. 7 upper
//! bound on effective pin bandwidth.

use crate::audit::Auditor;
use crate::error::{collect_jobs, MembwError};
use crate::report::{size_label, Table};
use crate::run_table7::SIZES;
use membw_analytic::upper_bound_epin;
use membw_cache::{Cache, CacheConfig};
use membw_mtc::{min_sweep, MinCache, MinConfig};
use membw_runner::Runner;
use membw_sweep::{sweep_lru, SweepMode, SweepSpec};
use membw_trace::{MemRef, Workload};
use membw_workloads::{suite92, Scale};
use serde::{Deserialize, Serialize};

/// One benchmark's row: `G` per cache size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table8Row {
    /// Benchmark name.
    pub name: String,
    /// Footprint used for the `<<<` marking.
    pub footprint_bytes: u64,
    /// `(cache_bytes, G)`; `None` for `<<<` cells.
    pub inefficiencies: Vec<(u64, Option<f64>)>,
}

/// The whole experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table8Result {
    /// Per-benchmark rows.
    pub rows: Vec<Table8Row>,
    /// Largest `G` observed outside `<<<` cells (the paper: up to two
    /// orders of magnitude).
    pub max_g: f64,
    /// Eq. 7 bound for a nominal 800 MB/s package, R = 0.5, at the
    /// median observed `G`.
    pub oe_pin_at_median_g: f64,
}

/// `(cache_traffic, mtc_traffic)` per *included* size (below the
/// footprint), by either engine. Under [`SweepMode::Stack`] the cache
/// side is one [`sweep_lru`] pass and the MTC side one [`min_sweep`]
/// pass over all included capacities.
fn row_traffic(refs: &[MemRef], included: &[u64], mode: SweepMode) -> Vec<(u64, u64)> {
    match mode {
        SweepMode::Direct => included
            .iter()
            .map(|&size| {
                let cfg = CacheConfig::builder(size, 32)
                    .build()
                    .expect("valid geometry");
                let mut cache = Cache::new(cfg);
                for &r in refs {
                    cache.access(r);
                }
                let cache_traffic = cache.flush().traffic_below();
                let mtc_traffic = MinCache::simulate(&MinConfig::mtc(size), refs).traffic_below();
                (cache_traffic, mtc_traffic)
            })
            .collect(),
        SweepMode::Stack => {
            let cache = sweep_lru(&SweepSpec::new(32), included, refs);
            let cfgs: Vec<MinConfig> = included.iter().map(|&s| MinConfig::mtc(s)).collect();
            let mtc = min_sweep(&cfgs, refs);
            cache
                .into_iter()
                .zip(mtc)
                .map(|(c, m)| {
                    let c = c.expect("1KB-2MB direct-mapped 32B-block geometries are valid");
                    (c.traffic_below(), m.traffic_below())
                })
                .collect()
        }
    }
}

fn row_for(b: &membw_workloads::Benchmark, refs: &[MemRef], mode: SweepMode) -> Table8Row {
    let included: Vec<u64> = SIZES
        .iter()
        .copied()
        .filter(|&s| s < b.footprint_bytes)
        .collect();
    let mut traffic = row_traffic(refs, &included, mode).into_iter();
    let mut inefficiencies = Vec::new();
    for &size in &SIZES {
        if size >= b.footprint_bytes {
            inefficiencies.push((size, None));
            continue;
        }
        let (cache_traffic, mtc_traffic) =
            traffic.next().expect("one traffic pair per included size");
        let g = if mtc_traffic == 0 {
            None
        } else {
            Some(cache_traffic as f64 / mtc_traffic as f64)
        };
        inefficiencies.push((size, g));
    }
    Table8Row {
        name: b.name().to_string(),
        footprint_bytes: b.footprint_bytes,
        inefficiencies,
    }
}

/// Regenerate Table 8 at `scale` with the default sweep engine
/// ([`SweepMode::Stack`]).
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any benchmark's job ultimately
/// failed (after the configured retry budget).
pub fn run(scale: Scale) -> Result<(Table8Result, Table), MembwError> {
    run_with(scale, SweepMode::default())
}

/// Regenerate Table 8 at `scale` with an explicit sweep engine.
///
/// One run-engine job per benchmark (trace regenerated per job, the
/// whole size sweep inside — two trace passes under
/// [`SweepMode::Stack`], two per size under [`SweepMode::Direct`],
/// identical output either way); `all_g` is rebuilt from the merged
/// rows in canonical benchmark-major, size-major order. Jobs are
/// fault-isolated and checkpointed under the batch label `table8` (the
/// key encodes the sweep mode).
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any benchmark's job ultimately
/// failed (after the configured retry budget).
pub fn run_with(scale: Scale, mode: SweepMode) -> Result<(Table8Result, Table), MembwError> {
    let suite = suite92(scale);
    let key = format!("v2/table8/{scale:?}/{mode}/{}", suite.len());
    let rows = Runner::from_env().checkpointed("table8", &key, suite.len(), |i| {
        let b = &suite[i];
        let refs: Vec<MemRef> = b.replayable().collect_mem_refs();
        row_for(b, &refs, mode)
    });
    let rows: Vec<Table8Row> = collect_jobs("table8", rows, |i| suite[i].name().to_string())?;

    let mut audit = Auditor::new("table8");
    if mode == SweepMode::Stack && membw_sweep::verify_requested() {
        for (i, row) in rows.iter().enumerate() {
            let b = &suite[i];
            let refs = b.replayable().collect_mem_refs();
            let want = row_for(b, &refs, SweepMode::Direct);
            let ok = want.inefficiencies.len() == row.inefficiencies.len()
                && want
                    .inefficiencies
                    .iter()
                    .zip(&row.inefficiencies)
                    .all(|(w, g)| w.0 == g.0 && w.1.map(f64::to_bits) == g.1.map(f64::to_bits));
            audit.sweep_exact(&row.name, ok, || {
                format!(
                    "stack sweep diverged from direct simulation: {:?} vs {:?}",
                    want.inefficiencies, row.inefficiencies
                )
            });
        }
    }
    for r in &rows {
        for (size, g) in &r.inefficiencies {
            if let Some(g) = g {
                audit.inefficiency(&format!("{} @ {}", r.name, size_label(*size)), *g);
            }
        }
    }

    let mut all_g: Vec<f64> = rows
        .iter()
        .flat_map(|r| r.inefficiencies.iter().filter_map(|(_, g)| *g))
        .collect();
    all_g.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let max_g = all_g.last().copied().unwrap_or(1.0);
    let median_g = if all_g.is_empty() {
        1.0
    } else {
        all_g[all_g.len() / 2].max(1.0)
    };
    let result = Table8Result {
        rows,
        max_g,
        oe_pin_at_median_g: upper_bound_epin(800.0, &[0.5], &[median_g]),
    };
    audit.positive("summary", "OE_pin bound (Eq. 7)", result.oe_pin_at_median_g);
    audit.finish()?;

    let mut headers = vec!["Trace".to_string()];
    headers.extend(SIZES.iter().map(|&s| size_label(s)));
    let mut table = Table::new(
        format!(
            "Table 8: traffic inefficiencies vs same-size MTC (max G = {:.1}; OE_pin @800MB/s,R=0.5,median G = {:.0} MB/s)",
            result.max_g, result.oe_pin_at_median_g
        ),
        headers,
    );
    for r in &result.rows {
        let mut cells = vec![r.name.clone()];
        cells.extend(r.inefficiencies.iter().map(|(_, v)| match v {
            Some(g) => format!("{g:.1}"),
            None => "<<<".to_string(),
        }));
        table.row(cells);
    }
    Ok((result, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inefficiencies_are_at_least_one_and_sizable() {
        let (res, table) = run(Scale::Test).expect("no faults injected");
        assert_eq!(table.num_rows(), 7);
        for r in &res.rows {
            for (s, g) in &r.inefficiencies {
                if let Some(g) = g {
                    assert!(
                        *g >= 0.99,
                        "{} @ {s}: G = {g} must be >= 1 (MTC is a lower bound)",
                        r.name
                    );
                }
            }
        }
        // The gap should be substantial somewhere (paper: 2–100).
        assert!(res.max_g > 3.0, "max G = {}", res.max_g);
    }

    #[test]
    fn stack_and_direct_modes_agree() {
        let (stack, _) = run_with(Scale::Test, SweepMode::Stack).expect("no faults injected");
        let (direct, _) = run_with(Scale::Test, SweepMode::Direct).expect("no faults injected");
        assert_eq!(stack.max_g.to_bits(), direct.max_g.to_bits());
        assert_eq!(
            stack.oe_pin_at_median_g.to_bits(),
            direct.oe_pin_at_median_g.to_bits()
        );
        for (a, b) in stack.rows.iter().zip(&direct.rows) {
            assert_eq!(a.name, b.name);
            for ((sa, ga), (sb, gb)) in a.inefficiencies.iter().zip(&b.inefficiencies) {
                assert_eq!(sa, sb);
                assert_eq!(
                    ga.map(f64::to_bits),
                    gb.map(f64::to_bits),
                    "{} @ {sa}",
                    a.name
                );
            }
        }
    }
}
