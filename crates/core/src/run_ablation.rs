//! Ablation: what each cache-assist technique does to misses *and*
//! traffic.
//!
//! Table 1 of the paper predicts that latency-tolerance hardware buys
//! its miss reductions with extra bandwidth. This experiment makes that
//! trade concrete on our workloads: a plain cache vs. tagged prefetch
//! (Gindele \[17\]), stream buffers (Jouppi \[24\]), a victim cache
//! (Jouppi \[24\]), and reuse-predicted bypassing (Tyson et al. \[45\]).

use crate::audit::Auditor;
use crate::error::{collect_jobs, MembwError};
use crate::report::Table;
use membw_cache::{BypassCache, Cache, CacheConfig, CacheStats, StreamBuffers, VictimCache};
use membw_runner::Runner;
use membw_trace::{MemRef, Workload};
use membw_workloads::{suite92, Scale};
use serde::{Deserialize, Serialize};

/// One (workload, technique) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationCell {
    /// Workload name.
    pub workload: String,
    /// Technique label.
    pub technique: String,
    /// Demand misses that had to wait on the hierarchy (stream-buffer
    /// hits are *not* counted as misses here — they hide latency).
    pub misses: u64,
    /// Total below-cache traffic in bytes.
    pub traffic: u64,
}

/// The whole ablation grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationResult {
    /// All measurements.
    pub cells: Vec<AblationCell>,
    /// Cache capacity used.
    pub cache_bytes: u64,
}

/// The techniques compared.
pub const TECHNIQUES: [&str; 5] = [
    "plain",
    "tagged-prefetch",
    "stream-buffers",
    "victim",
    "bypass",
];

fn run_one(technique: &str, refs: &[MemRef], cfg: CacheConfig) -> (u64, u64) {
    match technique {
        "plain" => {
            let mut c = Cache::new(cfg);
            for &r in refs {
                c.access(r);
            }
            let s: CacheStats = c.flush();
            (s.demand_misses(), s.traffic_below())
        }
        "tagged-prefetch" => {
            let pf_cfg = CacheConfig::builder(cfg.size_bytes(), cfg.block_size())
                .associativity(cfg.associativity())
                .tagged_prefetch(true)
                .build()
                .expect("valid geometry");
            let mut c = Cache::new(pf_cfg);
            for &r in refs {
                c.access(r);
            }
            let s = c.flush();
            (s.demand_misses(), s.traffic_below())
        }
        "stream-buffers" => {
            let mut c = StreamBuffers::new(cfg, 4, 4);
            let mut waited = 0u64;
            for &r in refs {
                if !c.access(r) {
                    waited += 1;
                }
            }
            let s = c.flush();
            (waited, s.traffic_below())
        }
        "victim" => {
            let mut c = VictimCache::new(cfg, 8);
            for &r in refs {
                c.access(r);
            }
            let s = c.flush();
            (s.demand_misses(), s.traffic_below())
        }
        "bypass" => {
            let mut c = BypassCache::new(cfg, 1024);
            for &r in refs {
                c.access(r);
            }
            let s = c.flush();
            (s.demand_misses() + c.bypasses(), s.traffic_below())
        }
        other => unreachable!("unknown technique {other}"),
    }
}

/// Run the ablation over the SPEC92 suite at `scale` with
/// `cache_bytes` caches (32-byte blocks, direct-mapped).
///
/// Jobs are fault-isolated and checkpointed under the batch label
/// `ablation`.
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any (benchmark, technique) cell
/// ultimately failed (after the configured retry budget).
pub fn run(scale: Scale, cache_bytes: u64) -> Result<(AblationResult, Table), MembwError> {
    let suite = suite92(scale);
    let cfg = CacheConfig::builder(cache_bytes, 32)
        .build()
        .expect("valid geometry");
    // One run-engine job per (benchmark, technique) cell,
    // benchmark-major; each job replays the shared recorded trace.
    let n_t = TECHNIQUES.len();
    let key = format!(
        "v1/ablation/{scale:?}/{cache_bytes}/{}x{}",
        suite.len(),
        n_t
    );
    let raw = Runner::from_env().checkpointed("ablation", &key, suite.len() * n_t, |k| {
        let b = &suite[k / n_t];
        let t = TECHNIQUES[k % n_t];
        let refs = b.replayable().collect_mem_refs();
        let (misses, traffic) = run_one(t, &refs, cfg);
        AblationCell {
            workload: b.name().to_string(),
            technique: t.to_string(),
            misses,
            traffic,
        }
    });
    let cells: Vec<AblationCell> = collect_jobs("ablation", raw, |k| {
        format!("{}/{}", suite[k / n_t].name(), TECHNIQUES[k % n_t])
    })?;

    let mut audit = Auditor::new("ablation");
    for c in &cells {
        // A technique that reports zero traffic on a real workload means
        // the instrument broke, not that the cache was free.
        audit.positive(
            &format!("{}/{}", c.workload, c.technique),
            "below-cache traffic",
            c.traffic as f64,
        );
    }
    audit.finish()?;

    let mut headers = vec!["Workload".to_string()];
    for t in TECHNIQUES {
        headers.push(format!("{t} miss"));
        headers.push(format!("{t} KB"));
    }
    let mut table = Table::new(
        format!("Ablation: misses and traffic per assist technique ({cache_bytes}B cache)"),
        headers,
    );
    for b in &suite {
        let mut row = vec![b.name().to_string()];
        for t in TECHNIQUES {
            let c = cells
                .iter()
                .find(|c| c.workload == b.name() && c.technique == t)
                .expect("cell exists");
            row.push(c.misses.to_string());
            row.push((c.traffic / 1024).to_string());
        }
        table.row(row);
    }
    Ok((AblationResult { cells, cache_bytes }, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_complete() {
        let (res, table) = run(Scale::Test, 8 * 1024).expect("no faults injected");
        assert_eq!(res.cells.len(), 7 * 5);
        assert_eq!(table.num_rows(), 7);
    }

    #[test]
    fn prefetch_trades_traffic_for_misses_on_streaming_code() {
        // Table 1's claim, quantified: on swm (streaming), tagged
        // prefetch cuts waited-on misses but does not cut traffic.
        let (res, _) = run(Scale::Test, 8 * 1024).expect("no faults injected");
        let get = |w: &str, t: &str| {
            res.cells
                .iter()
                .find(|c| c.workload == w && c.technique == t)
                .expect("cell")
        };
        let plain = get("swm", "plain");
        let pf = get("swm", "tagged-prefetch");
        assert!(pf.misses < plain.misses, "prefetch hides misses");
        assert!(
            pf.traffic >= plain.traffic,
            "prefetch cannot reduce traffic on streams"
        );
        let sb = get("swm", "stream-buffers");
        assert!(sb.misses < plain.misses, "stream buffers hide misses");
    }

    #[test]
    fn bypass_cuts_traffic_on_low_locality_code() {
        let (res, _) = run(Scale::Test, 8 * 1024).expect("no faults injected");
        let get = |w: &str, t: &str| {
            res.cells
                .iter()
                .find(|c| c.workload == w && c.technique == t)
                .expect("cell")
        };
        let plain = get("compress", "plain");
        let by = get("compress", "bypass");
        assert!(
            by.traffic < plain.traffic,
            "bypassing must cut compress's block-fill waste: {} vs {}",
            by.traffic,
            plain.traffic
        );
    }
}
