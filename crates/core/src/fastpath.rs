//! The analytic fast path: machine-spec bridge, assist-mode audit
//! hooks, and analytic-only target renderers.
//!
//! Three entry points, one per `--analytic` mode consumer:
//!
//! * [`ecm_config`] converts a full [`MachineSpec`] into the slice the
//!   ECM predictor reads;
//! * the `assist_*` helpers are called by `run_fig3` / `run_fig4` /
//!   `run_table7` after simulation to feed every simulated cell and
//!   its prediction through the auditor's `analytic-bound` invariant;
//! * [`render_target_analytic`] renders a supported target from
//!   signatures alone — microseconds of arithmetic, no trace arena,
//!   admitted to the memory governor as *light* work (no arena
//!   accounting, never throttled).
//!
//! Analytic output is deliberately **not** byte-compatible with the
//! simulated tables: every analytic table is labelled with the model
//! version and carries a ± relative-bound column, so a prediction can
//! never be mistaken for a measurement.

use crate::audit::Auditor;
use crate::report::{size_label, Table};
use crate::run_fig3::Fig3Cell;
use crate::run_fig4::Fig4Panel;
use crate::run_table7::Table7Row;
use crate::targets::RenderedTarget;
use membw_analytic::ecm::{
    self, AnalyticMode, EcmConfig, TrafficGeometry, MODEL_VERSION, TRIAGE_MAX_REL,
};
use membw_analytic::effective_pin_bandwidth;
use membw_runner::ambient_governor;
use membw_sim::{Experiment, MachineSpec};
use membw_workloads::{suite92, suite95, Benchmark, Scale, Suite};

/// `true` when the current thread runs with `--analytic assist`.
pub fn assist_enabled() -> bool {
    ecm::configured_mode() == AnalyticMode::Assist
}

/// The targets [`render_target_analytic`] can answer.
pub const ANALYTIC_TARGETS: [&str; 3] = ["fig3", "table7", "fig4"];

/// Whether `target` has an analytic rendering.
pub fn analytic_supported(target: &str) -> bool {
    ANALYTIC_TARGETS.contains(&target)
}

/// The slice of a machine specification the ECM model consumes.
pub fn ecm_config(spec: &MachineSpec) -> EcmConfig {
    EcmConfig {
        in_order: spec.core == membw_sim::CoreKind::InOrder,
        blocking: spec.mem.blocking,
        tagged_prefetch: spec.mem.tagged_prefetch,
        issue_width: u64::from(spec.issue_width),
        mispredict_penalty: spec.mispredict_penalty,
        l1_bytes: spec.mem.l1_bytes,
        l1_block: spec.mem.l1_block,
        l2_bytes: spec.mem.l2_bytes,
        l2_block: spec.mem.l2_block,
        l2_latency: spec.mem.l2_latency,
        mem_latency: spec.mem.mem_latency,
        bus1_bytes_per_cycle: spec.mem.bus1_width as f64 / spec.mem.bus1_ratio.max(1) as f64,
        bus2_bytes_per_cycle: spec.mem.bus2_width as f64 / spec.mem.bus2_ratio.max(1) as f64,
    }
}

fn spec_for(suite: Suite, e: Experiment) -> MachineSpec {
    match suite {
        Suite::Spec92 => MachineSpec::spec92(e),
        Suite::Spec95 => MachineSpec::spec95(e),
    }
}

fn calibrating() -> bool {
    std::env::var("MEMBW_ANALYTIC_CALIBRATE").is_ok_and(|v| v == "1")
}

fn calibrate_line(kind: &str, cell: &str, predicted: f64, bound: f64, simulated: f64) {
    if calibrating() {
        let rel_err = if simulated != 0.0 {
            (predicted - simulated).abs() / simulated
        } else {
            f64::INFINITY
        };
        eprintln!(
            "calibrate[{kind}] {cell}: pred={predicted:.1} sim={simulated:.1} \
             rel_err={rel_err:.3} bound={bound:.1}"
        );
    }
}

/// Assist hook for Figure 3: check every simulated decomposition cell
/// against the predicted total cycle count.
pub(crate) fn assist_fig3(
    audit: &mut Auditor,
    suite: Suite,
    benchmarks: &[Benchmark],
    cells: &[Fig3Cell],
) {
    for b in benchmarks {
        let sig = b.signature();
        for c in cells.iter().filter(|c| c.benchmark == b.name()) {
            let Some(&e) = Experiment::ALL.iter().find(|e| e.label() == c.experiment) else {
                continue;
            };
            let cfg = ecm_config(&spec_for(suite, e));
            let Some(pred) = ecm::predict_time(&sig.kernel, &cfg) else {
                continue;
            };
            let cell = format!("{}/{}", c.benchmark, c.experiment);
            let simulated = c.decomposition.t as f64;
            calibrate_line("fig3", &cell, pred.cycles, pred.bound, simulated);
            audit.analytic_bound(&cell, pred.model, pred.cycles, pred.bound, simulated);
        }
    }
}

/// Assist hook for Table 7: check every in-range traffic-ratio cell
/// against the predicted ratio for a direct-mapped 32 B-block cache.
pub(crate) fn assist_table7(audit: &mut Auditor, benchmarks: &[Benchmark], rows: &[Table7Row]) {
    for row in rows {
        let Some(b) = benchmarks.iter().find(|b| b.name() == row.name) else {
            continue;
        };
        let sig = b.signature();
        for (size, ratio) in &row.ratios {
            let Some(simulated) = ratio else { continue };
            let Some(pred) =
                ecm::predict_traffic(&sig.kernel, 32, *size, TrafficGeometry::Assoc { ways: 1 })
            else {
                continue;
            };
            let Some((r, r_bound)) = pred.ratio(sig.kernel.request_bytes) else {
                continue;
            };
            let cell = format!("{} @ {}", row.name, size_label(*size));
            calibrate_line("table7", &cell, r, r_bound, *simulated);
            audit.analytic_bound(&cell, pred.model, r, r_bound, *simulated);
        }
    }
}

/// The `(block granularity, geometry)` behind a Figure 4 curve label.
fn curve_geometry(label: &str) -> Option<(u64, TrafficGeometry)> {
    if let Some(block) = label.strip_suffix("B blocks") {
        let block: u64 = block.parse().ok()?;
        return Some((block, TrafficGeometry::Assoc { ways: 4 }));
    }
    match label {
        // The MTC requests at word (4 B) granularity, §5.2.
        "MTC write-allocate" => Some((4, TrafficGeometry::MtcAllocate)),
        "MTC write-validate" => Some((4, TrafficGeometry::MtcValidate)),
        _ => None,
    }
}

/// Assist hook for Figure 4: check every simulated `(curve, capacity)`
/// traffic point against the predicted byte count.
pub(crate) fn assist_fig4(audit: &mut Auditor, benchmarks: &[Benchmark], panels: &[Fig4Panel]) {
    for panel in panels {
        let Some(b) = benchmarks.iter().find(|b| b.name() == panel.name) else {
            continue;
        };
        let sig = b.signature();
        for curve in &panel.curves {
            let Some((block, geom)) = curve_geometry(&curve.label) else {
                continue;
            };
            for &(capacity, traffic) in &curve.points {
                let Some(pred) = ecm::predict_traffic(&sig.kernel, block, capacity, geom) else {
                    continue;
                };
                let cell = format!("{}/{} @ {}", panel.name, curve.label, size_label(capacity));
                calibrate_line("fig4", &cell, pred.bytes, pred.bound, traffic as f64);
                audit.analytic_bound(&cell, pred.model, pred.bytes, pred.bound, traffic as f64);
            }
        }
    }
}

/// One analytic rendering plus the worst relative bound across its
/// cells (the serve triage signal).
pub struct AnalyticRender {
    /// The rendered output (stdout + artifacts, like a simulated run).
    pub rendered: RenderedTarget,
    /// Worst `bound / prediction` over every rendered cell.
    pub worst_rel: f64,
    /// Model version that produced the render (serve provenance).
    pub model: &'static str,
}

impl AnalyticRender {
    /// `true` when every rendered cell's relative bound is within the
    /// serve-triage threshold ([`TRIAGE_MAX_REL`]).
    pub fn is_tight(&self) -> bool {
        self.worst_rel <= TRIAGE_MAX_REL
    }
}

fn fig3_analytic(scale: Scale) -> AnalyticRender {
    let mut out = RenderedTarget {
        stdout: String::new(),
        artifacts: Vec::new(),
    };
    let mut worst_rel = 0.0f64;
    for (suite, label) in [(Suite::Spec92, "SPEC92"), (Suite::Spec95, "SPEC95")] {
        let benchmarks = match suite {
            Suite::Spec92 => suite92(scale),
            Suite::Spec95 => suite95(scale),
        };
        let mut table = Table::new(
            format!("Figure 3 ({label} benchmarks) — analytic {MODEL_VERSION} prediction"),
            [
                "Benchmark",
                "Exp",
                "Norm. time",
                "f_P",
                "f_L",
                "f_B",
                "±rel",
            ]
            .map(String::from)
            .to_vec(),
        );
        for b in &benchmarks {
            let sig = b.signature();
            let spec_a = spec_for(suite, Experiment::A);
            let base = ecm::predict_time(&sig.kernel, &ecm_config(&spec_a))
                .expect("signature covers the Table 4-5 block sizes");
            let base_tp_seconds = base.t_p / spec_a.cpu_mhz as f64;
            for e in Experiment::ALL {
                let spec = spec_for(suite, e);
                let pred = ecm::predict_time(&sig.kernel, &ecm_config(&spec))
                    .expect("signature covers the Table 4-5 block sizes");
                worst_rel = worst_rel.max(pred.rel_bound());
                let seconds = pred.cycles / spec.cpu_mhz as f64;
                table.row(vec![
                    b.name().to_string(),
                    e.label().to_string(),
                    format!("{:.2}", seconds / base_tp_seconds),
                    format!("{:.2}", pred.t_p / pred.cycles),
                    format!("{:.2}", pred.t_l / pred.cycles),
                    format!("{:.2}", pred.t_b / pred.cycles),
                    format!("{:.2}", pred.rel_bound()),
                ]);
            }
        }
        out.stdout.push_str(&table.render());
        out.stdout.push('\n');
    }
    AnalyticRender {
        rendered: out,
        worst_rel,
        model: ecm::MODEL_VERSION,
    }
}

fn table7_analytic(scale: Scale) -> AnalyticRender {
    let suite = suite92(scale);
    let mut worst_rel = 0.0f64;
    let mut rows: Vec<(String, Vec<Option<f64>>)> = Vec::new();
    let mut reasonable: Vec<f64> = Vec::new();
    for b in &suite {
        let sig = b.signature();
        let mut cells = Vec::new();
        for &size in &crate::run_table7::SIZES {
            if size >= b.footprint_bytes {
                cells.push(None);
                continue;
            }
            let ratio =
                ecm::predict_traffic(&sig.kernel, 32, size, TrafficGeometry::Assoc { ways: 1 })
                    .and_then(|p| {
                        worst_rel = worst_rel.max(p.rel_bound());
                        p.ratio(sig.kernel.request_bytes).map(|(r, _)| r)
                    });
            if let Some(r) = ratio {
                if size >= 64 * 1024 {
                    reasonable.push(r);
                }
            }
            cells.push(ratio);
        }
        rows.push((b.name().to_string(), cells));
    }
    let mean = if reasonable.is_empty() {
        0.0
    } else {
        reasonable.iter().sum::<f64>() / reasonable.len() as f64
    };
    let epin = if mean > 0.0 {
        effective_pin_bandwidth(800.0, &[mean])
    } else {
        800.0
    };

    let mut headers = vec!["Trace".to_string()];
    headers.extend(crate::run_table7::SIZES.iter().map(|&s| size_label(s)));
    let mut table = Table::new(
        format!(
            "Table 7 — analytic {MODEL_VERSION} prediction, 32B-block direct-mapped \
             (mean >=64KB cells: {mean:.2}; E_pin @800MB/s = {epin:.0} MB/s)"
        ),
        headers,
    );
    for (name, cells) in &rows {
        let mut row = vec![name.clone()];
        row.extend(cells.iter().map(|v| match v {
            Some(x) => format!("{x:.2}"),
            None => "<<<".to_string(),
        }));
        table.row(row);
    }
    let mut out = RenderedTarget {
        stdout: String::new(),
        artifacts: Vec::new(),
    };
    out.stdout.push_str(&table.render());
    out.stdout.push('\n');
    AnalyticRender {
        rendered: out,
        worst_rel,
        model: ecm::MODEL_VERSION,
    }
}

fn fig4_analytic(scale: Scale) -> AnalyticRender {
    let suite = suite92(scale);
    let panel_names = ["compress", "eqntott", "swm"];
    let mut labels: Vec<String> = crate::run_fig4::BLOCK_SIZES
        .iter()
        .map(|b| format!("{b}B blocks"))
        .collect();
    labels.push("MTC write-allocate".to_string());
    labels.push("MTC write-validate".to_string());

    let mut out = RenderedTarget {
        stdout: String::new(),
        artifacts: Vec::new(),
    };
    let mut worst_rel = 0.0f64;
    for name in panel_names {
        let b = suite
            .iter()
            .find(|b| b.name() == name)
            .expect("panel benchmark exists in SPEC92 suite");
        let sig = b.signature();
        let mut table = Table::new(
            format!(
                "Figure 4 ({name}) — analytic {MODEL_VERSION} prediction: traffic in KB vs size"
            ),
            {
                let mut h = vec!["Size".to_string()];
                h.extend(labels.iter().cloned());
                h
            },
        );
        for s in crate::run_fig4::sizes() {
            let mut cells = vec![size_label(s)];
            for label in &labels {
                let (block, geom) = curve_geometry(label).expect("labels are well-formed");
                // Match the simulated figure's omission rule: a 4-way
                // set needs block × 4 bytes of capacity.
                let invalid = matches!(geom, TrafficGeometry::Assoc { .. }) && block * 4 > s;
                let v = if invalid {
                    None
                } else {
                    ecm::predict_traffic(&sig.kernel, block, s, geom).map(|p| {
                        worst_rel = worst_rel.max(p.rel_bound());
                        format!("{:.0}", p.bytes / 1024.0)
                    })
                };
                cells.push(v.unwrap_or_else(|| "-".to_string()));
            }
            table.row(cells);
        }
        out.stdout.push_str(&table.render());
        out.stdout.push('\n');
    }
    AnalyticRender {
        rendered: out,
        worst_rel,
        model: ecm::MODEL_VERSION,
    }
}

/// Render `target` from trace signatures alone.
///
/// Returns `None` for targets without an analytic model (the caller
/// falls back to simulation). The computation is admitted to the
/// memory governor as *light* work: it holds no trace arena, so it
/// never counts toward the degradation ladder's in-flight estimate.
pub fn render_target_analytic(target: &str, scale: Scale) -> Option<AnalyticRender> {
    if !analytic_supported(target) {
        return None;
    }
    let _light = ambient_governor().admit_light();
    Some(match target {
        "fig3" => fig3_analytic(scale),
        "table7" => table7_analytic(scale),
        "fig4" => fig4_analytic(scale),
        _ => unreachable!("analytic_supported gates the target list"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecm_config_mirrors_the_machine_spec() {
        let spec = MachineSpec::spec92(Experiment::A);
        let cfg = ecm_config(&spec);
        assert!(cfg.in_order);
        assert!(cfg.blocking);
        assert!(!cfg.tagged_prefetch);
        assert_eq!(cfg.l1_bytes, 128 * 1024);
        assert_eq!(cfg.l2_latency, 9);
        assert_eq!(cfg.mispredict_penalty, spec.mispredict_penalty);
        assert!((cfg.bus1_bytes_per_cycle - 16.0 / 3.0).abs() < 1e-12);
        let f = ecm_config(&MachineSpec::spec95(Experiment::F));
        assert!(!f.in_order);
        assert!(f.tagged_prefetch);
    }

    #[test]
    fn curve_labels_map_to_geometries() {
        assert_eq!(
            curve_geometry("32B blocks"),
            Some((32, TrafficGeometry::Assoc { ways: 4 }))
        );
        assert_eq!(
            curve_geometry("MTC write-validate"),
            Some((4, TrafficGeometry::MtcValidate))
        );
        assert_eq!(curve_geometry("nonsense"), None);
    }

    #[test]
    fn analytic_targets_are_a_subset_of_renderables() {
        for t in ANALYTIC_TARGETS {
            assert!(crate::targets::renderable(t), "{t}");
            assert!(analytic_supported(t));
        }
        assert!(!analytic_supported("table8"));
        assert!(!analytic_supported("dump"));
    }

    #[test]
    fn analytic_renders_are_deterministic_and_labelled() {
        let a = render_target_analytic("table7", Scale::Test).expect("supported");
        let b = render_target_analytic("table7", Scale::Test).expect("supported");
        assert_eq!(a.rendered.stdout, b.rendered.stdout);
        assert!(a.rendered.stdout.contains(MODEL_VERSION));
        assert!(a.worst_rel.is_finite());
        assert_eq!(a.worst_rel.to_bits(), b.worst_rel.to_bits());
        assert!(render_target_analytic("table8", Scale::Test).is_none());
    }
}
