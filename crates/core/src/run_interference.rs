//! Shared-cache interference (extension): the §2.1–2.2 multithreading /
//! single-chip-multiprocessor argument, measured.
//!
//! "Frequent switching of threads will increase interference in the
//! caches …"; "if one processor loses performance due to limited pin
//! bandwidth, then multiple processors on a chip will lose far more
//! performance for the same reason." We interleave 1, 2, and 4 contexts
//! of the same kernel (distinct address spaces) through one cache and
//! watch the traffic *per context* grow.

use crate::audit::Auditor;
use crate::error::MembwError;
use crate::report::Table;
use membw_cache::{Cache, CacheConfig};
use membw_trace::{Interleave, Workload};
use membw_workloads::{Espresso, Li, Vortex};
use serde::{Deserialize, Serialize};

/// One (kernel, context-count) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceCell {
    /// Kernel name.
    pub workload: String,
    /// Number of interleaved contexts.
    pub contexts: usize,
    /// Traffic ratio of the shared cache.
    pub traffic_ratio: f64,
    /// Miss ratio of the shared cache.
    pub miss_ratio: f64,
}

/// The whole interference grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceResult {
    /// All measurements.
    pub cells: Vec<InterferenceCell>,
    /// Shared-cache capacity in bytes.
    pub cache_bytes: u64,
    /// Context-switch granularity in uops.
    pub switch_every: usize,
}

fn measure<W: Workload>(threads: Vec<W>, chunk: usize, cache_bytes: u64) -> (f64, f64) {
    // Separate each thread's address space by a large offset.
    let il = Interleave::new(threads, chunk, 1 << 36);
    let cfg = CacheConfig::builder(cache_bytes, 32)
        .build()
        .expect("valid geometry");
    let mut cache = Cache::new(cfg);
    il.for_each_mem_ref(&mut |r| {
        cache.access(r);
    });
    let stats = cache.flush();
    (
        stats.traffic_ratio().expect("non-empty trace"),
        stats.miss_ratio(),
    )
}

/// Run the interference experiment: each kernel at 1, 2, and 4 contexts
/// through a shared cache of `cache_bytes`, switching every
/// `switch_every` uops.
///
/// # Errors
///
/// Returns [`MembwError::InvariantViolation`] under `--audit strict` if
/// any cell's ratios are out of range.
pub fn run(
    cache_bytes: u64,
    switch_every: usize,
) -> Result<(InterferenceResult, Table), MembwError> {
    let mut cells = Vec::new();
    // Kernels whose single-context working set fits the shared cache, so
    // interference (not capacity alone) is what multi-context runs add.
    type Builder = Box<dyn Fn(u64) -> Box<dyn Workload>>;
    let builders: Vec<(&str, Builder)> = vec![
        (
            "espresso",
            Box::new(|seed| Box::new(Espresso::new(160, 8, 4, seed)) as Box<dyn Workload>),
        ),
        (
            "li",
            Box::new(|seed| Box::new(Li::new(2048, 300, seed)) as Box<dyn Workload>),
        ),
        (
            "vortex",
            Box::new(|seed| Box::new(Vortex::new(1024, 3000, seed)) as Box<dyn Workload>),
        ),
    ];
    for (name, build) in &builders {
        for contexts in [1usize, 2, 4] {
            let threads: Vec<Box<dyn Workload>> =
                (0..contexts as u64).map(|i| build(100 + i)).collect();
            let (traffic_ratio, miss_ratio) = measure(threads, switch_every, cache_bytes);
            cells.push(InterferenceCell {
                workload: name.to_string(),
                contexts,
                traffic_ratio,
                miss_ratio,
            });
        }
    }

    let mut audit = Auditor::new("interference");
    for c in &cells {
        let cell = format!("{}/{} ctx", c.workload, c.contexts);
        audit.traffic_ratio(&cell, c.traffic_ratio);
        audit.unit_fraction(&cell, "miss ratio", c.miss_ratio);
    }
    audit.finish()?;

    let mut table = Table::new(
        format!(
            "Shared-cache interference ({} bytes, switch every {switch_every} uops)",
            cache_bytes
        ),
        [
            "Kernel",
            "1 ctx R",
            "2 ctx R",
            "4 ctx R",
            "1 ctx miss",
            "4 ctx miss",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (name, _) in &builders {
        let get = |ctx: usize| {
            cells
                .iter()
                .find(|c| c.workload == *name && c.contexts == ctx)
                .expect("cell exists")
        };
        table.row(vec![
            name.to_string(),
            format!("{:.2}", get(1).traffic_ratio),
            format!("{:.2}", get(2).traffic_ratio),
            format!("{:.2}", get(4).traffic_ratio),
            format!("{:.3}", get(1).miss_ratio),
            format!("{:.3}", get(4).miss_ratio),
        ]);
    }
    Ok((
        InterferenceResult {
            cells,
            cache_bytes,
            switch_every,
        },
        table,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_contexts_mean_more_traffic_per_reference() {
        let (res, table) = run(16 * 1024, 200).expect("audit passes");
        assert_eq!(table.num_rows(), 3);
        for name in ["espresso", "li", "vortex"] {
            let get = |ctx: usize| {
                res.cells
                    .iter()
                    .find(|c| c.workload == name && c.contexts == ctx)
                    .expect("cell")
            };
            assert!(
                get(4).traffic_ratio > get(1).traffic_ratio,
                "{name}: 4-context sharing must raise the traffic ratio ({} vs {})",
                get(4).traffic_ratio,
                get(1).traffic_ratio
            );
            assert!(
                get(4).miss_ratio >= get(1).miss_ratio,
                "{name}: interference cannot reduce misses"
            );
        }
    }

    #[test]
    fn two_contexts_sit_between_one_and_four() {
        let (res, _) = run(16 * 1024, 200).expect("audit passes");
        let li = |ctx: usize| {
            res.cells
                .iter()
                .find(|c| c.workload == "li" && c.contexts == ctx)
                .expect("cell")
                .traffic_ratio
        };
        assert!(li(1) <= li(2) + 1e-9 && li(2) <= li(4) + 1e-9);
    }
}
