//! `MembwError`: the workspace-wide structured error type.
//!
//! Every `run_*` entry point that can fail — because a run-engine job
//! panicked or timed out, or because archiving results hit the
//! filesystem — returns `Result<_, MembwError>` instead of panicking,
//! so a campaign driver (`repro`) can finish the healthy targets,
//! summarize what failed, and exit nonzero.

use membw_runner::JobFailure;
use std::path::PathBuf;

/// One job that ultimately failed (after the retry budget), resolved
/// from its canonical index to the human name of its matrix cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedJob {
    /// Batch label (`"table8"`, `"fig3/SPEC92"`).
    pub label: String,
    /// The matrix cell: `"compress"`, `"swm/F"`, `"eqntott/32B blocks"`.
    pub job: String,
    /// Canonical index within the batch.
    pub index: usize,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// Why the final attempt failed.
    pub error: String,
}

/// Why a `run_*` entry point (or the `repro` driver) failed.
#[derive(Debug)]
pub enum MembwError {
    /// A filesystem operation failed; `context` says what was being
    /// attempted ("create JSON directory", "write JSON archive").
    Io {
        /// What the operation was for.
        context: String,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Loading or saving a binary trace failed.
    Trace {
        /// The trace file.
        path: PathBuf,
        /// The underlying trace error.
        source: membw_trace::io::TraceIoError,
    },
    /// One or more run-engine jobs in a batch ultimately failed.
    Jobs {
        /// The failures, in canonical index order.
        failures: Vec<FailedJob>,
    },
    /// The runtime invariant auditor found violated paper identities
    /// under `--audit strict` (see [`crate::audit`]).
    InvariantViolation {
        /// Every violated check, in audit order; each names its target
        /// and matrix cell.
        violations: Vec<crate::audit::Violation>,
    },
}

impl std::fmt::Display for MembwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembwError::Io {
                context,
                path,
                source,
            } => write!(f, "cannot {context} at {}: {source}", path.display()),
            MembwError::Trace { path, source } => {
                write!(f, "trace file {}: {source}", path.display())
            }
            MembwError::Jobs { failures } => {
                write!(f, "{} job(s) failed", failures.len(),)?;
                if let Some(first) = failures.first() {
                    write!(
                        f,
                        " (first: {} job {} [{}], {} after {} attempt(s))",
                        first.label, first.index, first.job, first.error, first.attempts
                    )?;
                }
                Ok(())
            }
            MembwError::InvariantViolation { violations } => {
                write!(f, "{} paper invariant(s) violated", violations.len())?;
                if let Some(first) = violations.first() {
                    write!(f, " (first: {first})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for MembwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MembwError::Io { source, .. } => Some(source),
            MembwError::Trace { source, .. } => Some(source),
            MembwError::Jobs { .. } | MembwError::InvariantViolation { .. } => None,
        }
    }
}

impl MembwError {
    /// An [`MembwError::Io`] with its context and path filled in.
    pub fn io(
        context: impl Into<String>,
        path: impl Into<PathBuf>,
        source: std::io::Error,
    ) -> Self {
        MembwError::Io {
            context: context.into(),
            path: path.into(),
            source,
        }
    }

    /// The failed jobs, if this is a job-batch failure.
    pub fn failed_jobs(&self) -> &[FailedJob] {
        match self {
            MembwError::Jobs { failures } => failures,
            _ => &[],
        }
    }

    /// The violated invariants, if this is a strict-audit failure.
    pub fn invariant_violations(&self) -> &[crate::audit::Violation] {
        match self {
            MembwError::InvariantViolation { violations } => violations,
            _ => &[],
        }
    }
}

/// Split a fault-isolated batch ([`membw_runner::Runner::try_run`] /
/// `checkpointed`) into its successes, or a [`MembwError::Jobs`]
/// carrying every failure. `name` resolves a job index to the human
/// name of its matrix cell.
///
/// # Errors
///
/// Returns [`MembwError::Jobs`] if any job failed; healthy siblings'
/// results are dropped (the caller reruns with `--resume` to pick them
/// up from the checkpoint instead of recomputing).
pub fn collect_jobs<T>(
    label: &str,
    results: Vec<Result<T, JobFailure>>,
    name: impl Fn(usize) -> String,
) -> Result<Vec<T>, MembwError> {
    let mut ok = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(v) => ok.push(v),
            Err(e) => failures.push(FailedJob {
                label: label.to_string(),
                job: name(i),
                index: e.index,
                attempts: e.attempts,
                error: e.error.to_string(),
            }),
        }
    }
    if failures.is_empty() {
        Ok(ok)
    } else {
        Err(MembwError::Jobs { failures })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membw_runner::JobError;

    #[test]
    fn collect_passes_clean_batches_through() {
        let results: Vec<Result<u32, JobFailure>> = vec![Ok(1), Ok(2), Ok(3)];
        let out = collect_jobs("t", results, |i| format!("job{i}")).expect("clean");
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn collect_gathers_every_failure_with_names() {
        let results: Vec<Result<u32, JobFailure>> = vec![
            Ok(1),
            Err(JobFailure {
                index: 1,
                attempts: 2,
                error: JobError::Panicked("boom".into()),
            }),
            Err(JobFailure {
                index: 2,
                attempts: 1,
                error: JobError::TimedOut(std::time::Duration::from_secs(3)),
            }),
        ];
        let err = collect_jobs("table8", results, |i| format!("bench{i}")).unwrap_err();
        let jobs = err.failed_jobs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].job, "bench1");
        assert_eq!(jobs[0].attempts, 2);
        assert!(jobs[0].error.contains("boom"));
        assert_eq!(jobs[1].job, "bench2");
        let msg = err.to_string();
        assert!(msg.contains("2 job(s) failed"), "{msg}");
        assert!(msg.contains("bench1"), "{msg}");
    }

    #[test]
    fn invariant_violations_name_target_and_cell() {
        let e = MembwError::InvariantViolation {
            violations: vec![crate::audit::Violation {
                target: "table8".to_string(),
                cell: "compress @ 16KB".to_string(),
                invariant: "inefficiency",
                detail: "G = 0.7 < 1".to_string(),
            }],
        };
        let msg = e.to_string();
        assert!(msg.contains("1 paper invariant(s) violated"), "{msg}");
        assert!(msg.contains("table8"), "{msg}");
        assert!(msg.contains("compress @ 16KB"), "{msg}");
        assert_eq!(e.invariant_violations().len(), 1);
        assert!(e.failed_jobs().is_empty());
    }

    #[test]
    fn io_errors_name_the_path_and_context() {
        let e = MembwError::io(
            "create JSON directory",
            "/no/such/dir",
            std::io::Error::from(std::io::ErrorKind::PermissionDenied),
        );
        let msg = e.to_string();
        assert!(msg.contains("create JSON directory"), "{msg}");
        assert!(msg.contains("/no/such/dir"), "{msg}");
    }
}
