//! DRAM bank sensitivity (extension): how many banks before "infinite"?
//!
//! Table 4 assumes infinite memory banks, and §2.3 argues DRAM is
//! "unlikely to become a long-term performance bottleneck". This
//! experiment swaps finite banked parts (with open-page row buffers)
//! into experiment F and measures how quickly execution time converges
//! to the infinite-bank baseline.

use crate::audit::Auditor;
use crate::error::MembwError;
use crate::report::Table;
use membw_sim::{decompose, DramConfig, Experiment, MachineSpec};
use membw_trace::Workload;
use membw_workloads::{Swm, Vortex};
use serde::{Deserialize, Serialize};

/// One (workload, banks) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DramCell {
    /// Workload name.
    pub workload: String,
    /// Bank count (0 = infinite).
    pub banks: u32,
    /// Full-system cycles.
    pub cycles: u64,
    /// Slowdown vs. the infinite-bank run.
    pub slowdown: f64,
    /// Bandwidth-stall fraction.
    pub f_b: f64,
}

/// Bank counts swept (0 = the paper's infinite).
pub const BANK_SWEEP: [u32; 5] = [1, 2, 4, 16, 0];

/// Run the bank sweep on experiment F.
///
/// # Errors
///
/// Returns [`MembwError::InvariantViolation`] under `--audit strict` if
/// any cell breaks the §3 identities.
pub fn run() -> Result<(Vec<DramCell>, Table), MembwError> {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Swm::new(64, 64, 2)),
        Box::new(Vortex::new(2048, 4000, 7)),
    ];
    let mut cells = Vec::new();
    for w in &workloads {
        let mut infinite_cycles = None;
        // Measure infinite first so slowdowns are relative to it.
        let mut order = BANK_SWEEP;
        order.reverse();
        let mut per_w = Vec::new();
        for banks in order {
            let mut spec = MachineSpec::spec92(Experiment::F);
            let base = spec.mem.dram.access_cycles;
            spec.mem.dram = if banks == 0 {
                DramConfig::infinite_banks(base)
            } else {
                DramConfig::banked(banks, base, base / 3)
            };
            let d = decompose(w, &spec);
            if banks == 0 {
                infinite_cycles = Some(d.t);
            }
            per_w.push((banks, d));
        }
        let baseline = infinite_cycles.expect("infinite run measured") as f64;
        for (banks, d) in per_w {
            cells.push(DramCell {
                workload: w.name().to_string(),
                banks,
                cycles: d.t,
                slowdown: d.t as f64 / baseline,
                f_b: d.f_b,
            });
        }
    }

    let mut audit = Auditor::new("dram");
    for c in &cells {
        let cell = format!("{}/{} banks", c.workload, c.banks);
        audit.positive(&cell, "cycles", c.cycles as f64);
        audit.positive(&cell, "slowdown", c.slowdown);
        audit.unit_fraction(&cell, "f_B", c.f_b);
    }
    audit.finish()?;

    let mut table = Table::new(
        "DRAM bank sensitivity (experiment F; slowdown vs infinite banks)",
        ["Workload", "Banks", "Cycles", "Slowdown", "f_B"]
            .map(String::from)
            .to_vec(),
    );
    for c in &cells {
        table.row(vec![
            c.workload.clone(),
            if c.banks == 0 {
                "inf".to_string()
            } else {
                c.banks.to_string()
            },
            c.cycles.to_string(),
            format!("{:.2}x", c.slowdown),
            format!("{:.2}", c.f_b),
        ]);
    }
    Ok((cells, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_banks_slow_things_down_and_many_converge() {
        let (cells, table) = run().expect("audit passes");
        assert_eq!(table.num_rows(), 2 * BANK_SWEEP.len());
        for w in ["swm", "vortex"] {
            let get = |banks: u32| {
                cells
                    .iter()
                    .find(|c| c.workload == w && c.banks == banks)
                    .expect("cell")
            };
            assert!(
                get(1).slowdown >= get(16).slowdown,
                "{w}: one bank cannot beat sixteen"
            );
            assert!(
                get(16).slowdown < 1.35,
                "{w}: 16 banks should approach infinite, got {}",
                get(16).slowdown
            );
            assert!(
                (get(0).slowdown - 1.0).abs() < 1e-9,
                "infinite is its own baseline"
            );
        }
    }
}
