//! Coarse-grained speculation cost (extension): §2.2's Multiscalar
//! argument, measured.
//!
//! "Processors that rely heavily on coarse-grained speculative execution
//! … increase memory traffic whenever they must squash a task." We sweep
//! the squash rate on experiment F and report traffic and the bandwidth
//! -stall share.

use crate::audit::Auditor;
use crate::error::MembwError;
use crate::report::Table;
use membw_sim::{decompose, Experiment, MachineSpec};
use membw_trace::squash::Squashing;
use membw_workloads::Tomcatv;
use serde::{Deserialize, Serialize};

/// One squash-rate point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeculationCell {
    /// Squash probability (out of 256).
    pub squash_per_256: u32,
    /// Memory traffic of the full run, bytes.
    pub memory_traffic: u64,
    /// Full-run cycles.
    pub cycles: u64,
    /// Bandwidth-stall fraction.
    pub f_b: f64,
}

/// Squash rates swept (out of 256): 0 %, 12.5 %, 25 %, 50 %.
pub const RATES: [u32; 4] = [0, 32, 64, 128];

/// Run the squash-rate sweep on experiment F with a streaming kernel.
///
/// # Errors
///
/// Returns [`MembwError::InvariantViolation`] under `--audit strict` if
/// any decomposition breaks the §3 identities.
pub fn run() -> Result<(Vec<SpeculationCell>, Table), MembwError> {
    let spec = MachineSpec::spec92(Experiment::F);
    // Big enough that wrong-path loads miss beyond the L1.
    let base = Tomcatv::new(96, 2);
    let mut cells = Vec::new();
    let mut audit = Auditor::new("speculation");
    for rate in RATES {
        let w = Squashing::new(base.clone(), 256, rate, 11);
        let d = decompose(&w, &spec);
        audit.decomposition(&format!("squash {rate}/256"), &d);
        cells.push(SpeculationCell {
            squash_per_256: rate,
            memory_traffic: d.full_mem.memory_traffic,
            cycles: d.t,
            f_b: d.f_b,
        });
    }
    audit.finish()?;
    let mut table = Table::new(
        "Coarse-grained speculation: squash rate vs traffic (experiment F, tomcatv kernel)",
        ["Squash %", "Memory traffic KB", "Cycles", "f_B"]
            .map(String::from)
            .to_vec(),
    );
    for c in &cells {
        table.row(vec![
            format!("{:.1}", f64::from(c.squash_per_256) / 2.56),
            (c.memory_traffic / 1024).to_string(),
            c.cycles.to_string(),
            format!("{:.2}", c.f_b),
        ]);
    }
    Ok((cells, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squashing_increases_traffic_monotonically() {
        let (cells, table) = run().expect("audit passes");
        assert_eq!(table.num_rows(), RATES.len());
        for pair in cells.windows(2) {
            assert!(
                pair[1].memory_traffic >= pair[0].memory_traffic,
                "traffic must grow with squash rate: {} -> {}",
                pair[0].memory_traffic,
                pair[1].memory_traffic
            );
        }
        let first = &cells[0];
        let last = &cells[cells.len() - 1];
        assert!(
            last.memory_traffic > first.memory_traffic,
            "50% squashes must move more bytes"
        );
        assert!(last.cycles > first.cycles, "squashes cost time too");
    }
}
