//! Figure 2: the two opposing technology trends, rendered from the
//! models instead of the paper's "qualitative, not real data" sketch.
//!
//! * (a) processor bandwidth (words/s, growing at 60 %/yr) vs. off-chip
//!   bandwidth (growing with pins at 16 %/yr) — gap (1);
//! * (b) for a fixed program, computation stays constant while off-chip
//!   traffic falls as on-chip memory grows (TMM's `1/√S` law) — gap (2).

use crate::audit::Auditor;
use crate::error::MembwError;
use crate::plot::AsciiPlot;
use crate::report::Table;
use membw_analytic::growth::Algorithm;
use serde::{Deserialize, Serialize};

/// One year's point on both panels.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig2Point {
    /// Years after the base year.
    pub year: u32,
    /// Processor operand demand, normalized to year 0.
    pub processor_bandwidth: f64,
    /// Off-chip (pin) bandwidth, normalized to year 0.
    pub offchip_bandwidth: f64,
    /// TMM off-chip traffic for a fixed N, normalized to year 0 (on-chip
    /// memory assumed to double every ~2.3 years with density).
    pub traffic: f64,
    /// Gap (1) minus gap (2): positive = bandwidth pressure is winning.
    pub pressure: f64,
}

/// Evaluate both panels over `years` years.
///
/// # Errors
///
/// Returns [`MembwError::InvariantViolation`] under `--audit strict` if
/// any point is non-positive or non-finite.
pub fn run(years: u32) -> Result<(Vec<Fig2Point>, Table, Vec<AsciiPlot>), MembwError> {
    let n = 4096.0; // fixed program size
    let s0 = 16.0 * 1024.0; // base on-chip memory, elements
    let mem_growth: f64 = 1.35; // on-chip memory per year (4x per ~4.6 yrs)
    let base_traffic = Algorithm::Tmm.traffic(n, s0);
    let mut points = Vec::new();
    for year in 0..=years {
        let proc = 1.60f64.powi(year as i32);
        let pins = 1.16f64.powi(year as i32);
        let s = s0 * mem_growth.powi(year as i32);
        let traffic = Algorithm::Tmm.traffic(n, s) / base_traffic;
        // Demand per unit of off-chip supply, net of traffic filtering.
        let pressure = (proc * traffic) / pins;
        points.push(Fig2Point {
            year,
            processor_bandwidth: proc,
            offchip_bandwidth: pins,
            traffic,
            pressure,
        });
    }

    let mut audit = Auditor::new("fig2");
    for p in &points {
        let cell = format!("year {}", p.year);
        audit.positive(&cell, "processor bandwidth", p.processor_bandwidth);
        audit.positive(&cell, "off-chip bandwidth", p.offchip_bandwidth);
        audit.positive(&cell, "normalized traffic", p.traffic);
        audit.positive(&cell, "net pressure", p.pressure);
    }
    audit.finish()?;

    let mut table = Table::new(
        "Figure 2: processing vs bandwidth trends (normalized to year 0)",
        [
            "Year",
            "Proc b/w",
            "Off-chip b/w",
            "Traffic (fixed N)",
            "Net pressure",
        ]
        .map(String::from)
        .to_vec(),
    );
    for p in &points {
        table.row(vec![
            p.year.to_string(),
            format!("{:.2}", p.processor_bandwidth),
            format!("{:.2}", p.offchip_bandwidth),
            format!("{:.2}", p.traffic),
            format!("{:.2}", p.pressure),
        ]);
    }

    let plot_a = AsciiPlot::new("Figure 2a: processor vs off-chip bandwidth (log y)", 56, 12)
        .log_y()
        .series(
            'p',
            "processor b/w",
            points
                .iter()
                .map(|p| (f64::from(p.year), p.processor_bandwidth))
                .collect(),
        )
        .series(
            'o',
            "off-chip b/w",
            points
                .iter()
                .map(|p| (f64::from(p.year), p.offchip_bandwidth))
                .collect(),
        );
    let plot_b = AsciiPlot::new(
        "Figure 2b: fixed-program traffic as on-chip memory grows",
        56,
        12,
    )
    .series(
        't',
        "off-chip traffic",
        points
            .iter()
            .map(|p| (f64::from(p.year), p.traffic))
            .collect(),
    );
    Ok((points, table, vec![plot_a, plot_b]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_one_outpaces_gap_two() {
        // The §2.4 conclusion: processing-demand growth beats the traffic
        // reduction bought by bigger on-chip memory, so net pressure on
        // the pins rises.
        let (points, table, plots) = run(10).expect("audit passes");
        assert_eq!(points.len(), 11);
        assert_eq!(table.num_rows(), 11);
        assert_eq!(plots.len(), 2);
        assert!(points[10].pressure > points[0].pressure * 3.0);
        // Traffic itself falls (memory growth helps)...
        assert!(points[10].traffic < points[0].traffic);
        // ...but demand grows faster than pins supply.
        assert!(points[10].processor_bandwidth / points[10].offchip_bandwidth > 10.0);
    }

    #[test]
    fn plots_render() {
        let (_, _, plots) = run(6).expect("audit passes");
        for p in &plots {
            assert!(p.render().lines().count() > 10);
        }
    }
}
